package avmon

import (
	"time"

	"avmon/internal/core"
	"avmon/internal/hashing"
	"avmon/internal/ids"
)

// ID identifies a node by its <IP address, port> pair, the unit over
// which the consistency condition is evaluated (paper Section 3.1).
type ID = ids.ID

// ParseID converts "a.b.c.d:port" into an ID.
func ParseID(addr string) (ID, error) { return ids.Parse(addr) }

// SimID returns the identity of simulated node i.
func SimID(i int) ID { return ids.Sim(i) }

// Variant selects one of the coarse-view sizing policies of Section
// 4.2 (Table 1).
type Variant = hashing.Variant

// Coarse-view sizing variants.
const (
	// VariantGeneric uses cvs = log2(N).
	VariantGeneric = hashing.VariantGeneric
	// VariantMD minimizes memory/bandwidth and discovery time.
	VariantMD = hashing.VariantMD
	// VariantMDC minimizes memory/bandwidth, discovery time, and
	// computation; the paper's recommended default.
	VariantMDC = hashing.VariantMDC
	// VariantDC minimizes discovery time and computation.
	VariantDC = hashing.VariantDC
)

// HashName selects the hash behind the consistency condition.
type HashName string

// Supported hashes. MD5 is the paper's default; Fast is a
// statistically equivalent non-cryptographic mixer recommended for
// large simulations.
const (
	HashMD5  HashName = "md5"
	HashSHA1 HashName = "sha1"
	HashFast HashName = "fast"
)

func (h HashName) hasher() hashing.Hasher {
	switch h {
	case HashMD5:
		return hashing.MD5Hasher{}
	case HashSHA1:
		return hashing.SHA1Hasher{}
	default:
		return hashing.FastHasher{}
	}
}

// SelectionScheme is the consistent, verifiable monitor-selection
// relation; Related(y, x) reports whether y monitors x. The discovery
// protocol accepts any implementation (Section 3.2).
type SelectionScheme = core.SelectionScheme

// NewSelector builds the paper's hash-based selection scheme with
// pinging-set parameter k and expected system size n.
func NewSelector(hash HashName, k, n int) (SelectionScheme, error) {
	return hashing.NewSelector(hash.hasher(), k, n)
}

// DefaultK returns the paper's default pinging-set parameter
// K = log2(N).
func DefaultK(n int) int { return hashing.DefaultK(n) }

// DefaultCVS returns the paper's experimental coarse-view size
// 4·N^(1/4) (4× Optimal-MDC, Section 5).
func DefaultCVS(n int) int { return hashing.DefaultCVS(n) }

// ExpectedDiscoveryTime returns the analytical bound on expected
// monitor-discovery time, in protocol periods (Section 4.1).
func ExpectedDiscoveryTime(cvs, n int) float64 {
	return hashing.ExpectedDiscoveryTime(cvs, n)
}

// VerifyReport checks monitors reported by (or on behalf of) subject
// against the scheme, enforcing the verifiability property: reported
// monitors that fail the consistency condition are rejected, so a
// selfish node cannot have colluders vouch for its availability.
func VerifyReport(scheme SelectionScheme, subject ID, reported []ID, minimum int) ([]ID, error) {
	return core.VerifyReport(scheme, subject, reported, minimum)
}

// NodeOptions carries the per-node protocol knobs shared by simulated
// clusters and real Services.
type NodeOptions struct {
	// K is the pinging-set parameter (0 = log2 N).
	K int
	// CVS is the coarse-view size (0 = variant default; if Variant is
	// also zero, 4·N^(1/4)).
	CVS int
	// Variant picks an optimal cvs policy when CVS is 0.
	Variant Variant
	// Period is the coarse-membership protocol period T (0 = 1 minute).
	Period time.Duration
	// MonitorPeriod is the monitoring period TA (0 = 1 minute).
	MonitorPeriod time.Duration
	// Hash picks the hash function (default Fast for clusters, MD5
	// for Services).
	Hash HashName
	// Forgetful enables forgetful pinging (Section 3.3).
	Forgetful bool
	// ForgetfulTau overrides τ (0 = 2 minutes).
	ForgetfulTau time.Duration
	// ForgetfulC overrides c (0 = 1).
	ForgetfulC float64
	// PR2 enables the indegree-repair optimization (Section 5.4).
	PR2 bool
	// HistoryStyle selects availability history maintenance: "raw"
	// (default), "recent:<dur>", or "aged:<alpha>".
	HistoryStyle string
	// NoHashMemo disables the consistency-condition memo that
	// simulated clusters wrap around cryptographic hashes (MD5/SHA-1).
	// The memo changes no result — only speed — so this knob exists
	// for A/B determinism tests and microbenchmarks.
	NoHashMemo bool
	// DisableReshuffle and RejoinFullWeight are ablation knobs used by
	// the evaluation; they switch off parts of the published protocol.
	DisableReshuffle bool
	RejoinFullWeight bool
}

// simScheme builds the selection scheme for a simulated cluster: the
// paper's selector, wrapped in a pair-verdict memo when the hash is
// cryptographic. A memo hit is several times cheaper than an MD5 or
// SHA-1 digest but dearer than the fast mixer, so FastHasher runs
// unwrapped. Memoization affects speed only, never verdicts; see
// hashing.MemoSelector.
func (o NodeOptions) simScheme(k, n int) (SelectionScheme, error) {
	sel, err := hashing.NewSelector(o.Hash.hasher(), k, n)
	if err != nil {
		return nil, err
	}
	if o.NoHashMemo {
		return sel, nil
	}
	switch o.Hash {
	case HashMD5, HashSHA1:
		return hashing.Memoize(sel, 0), nil
	}
	return sel, nil
}

// cvsFor resolves the effective coarse-view size for system size n.
func (o NodeOptions) cvsFor(n int) int {
	if o.CVS > 0 {
		return o.CVS
	}
	if o.Variant != 0 {
		return o.Variant.CVS(n)
	}
	return hashing.DefaultCVS(n)
}

// kFor resolves the effective K for system size n.
func (o NodeOptions) kFor(n int) int {
	if o.K > 0 {
		return o.K
	}
	return hashing.DefaultK(n)
}
