package avmon

import (
	"time"

	"avmon/internal/simnet"
)

// LatencyModel is a one-way message latency distribution for simulated
// clusters (ClusterConfig.LatencyModel). Every model declares a
// provable floor, MinLatency(), which a sharded cluster adopts as its
// conservative lookahead window — the adaptive-lookahead contract that
// keeps heterogeneous WAN runs byte-identical to serial runs. All
// draws come from the sending node's private lane stream.
type LatencyModel = simnet.LatencyModel

// LossModel is a per-message loss process for simulated clusters
// (ClusterConfig.LossModel). Models are immutable; per-sender channel
// state (e.g. the Gilbert-Elliott burst state) lives with the sending
// node and evolves only on its lane, preserving determinism at any
// shard count.
type LossModel = simnet.LossModel

// NewConstantLatency returns the default network model: every message
// takes exactly d (one way). d must be positive; it doubles as the
// sharded lookahead floor.
func NewConstantLatency(d time.Duration) (LatencyModel, error) {
	return simnet.NewConstantLatency(d)
}

// NewLognormalLatency returns a heavy-tailed WAN latency model: each
// draw is floor + a lognormal tail with the given median and shape
// sigma, clamped at cap (0 = uncapped). The floor models propagation
// delay and is the model's MinLatency — a sharded cluster uses it as
// the lookahead window, so larger floors mean wider windows and less
// synchronization.
func NewLognormalLatency(floor, median time.Duration, sigma float64, cap time.Duration) (LatencyModel, error) {
	return simnet.NewLognormalLatency(floor, median, sigma, cap)
}

// NewZoneLatency returns a zoned WAN latency model: nodes map
// deterministically onto len(base) zones (simulated index mod zone
// count), and a message from zone i to zone j takes base[i][j]
// scaled by 1 + uniform(0, jitter). MinLatency is the smallest matrix
// entry.
func NewZoneLatency(base [][]time.Duration, jitter float64) (LatencyModel, error) {
	return simnet.NewZoneLatency(base, jitter)
}

// NewBernoulliLoss returns the memoryless loss process: each message
// is dropped independently with probability p ∈ [0, 1). Equivalent to
// setting ClusterConfig.Loss.
func NewBernoulliLoss(p float64) (LossModel, error) {
	return simnet.NewBernoulliLoss(p)
}

// NewGilbertElliottLoss returns a bursty (Gilbert-Elliott) loss
// process: each sender's channel alternates between a good state
// (drop probability lossGood) and a bad state (lossBad ≥ lossGood),
// entering bad with probability enterBad per message and leaving with
// exitBad — mean burst length 1/exitBad messages. Correlated loss is
// what distinguishes real WAN outages from independent drops; figure
// `wan` sweeps both regimes.
func NewGilbertElliottLoss(enterBad, exitBad, lossGood, lossBad float64) (LossModel, error) {
	return simnet.NewGilbertElliottLoss(enterBad, exitBad, lossGood, lossBad)
}
