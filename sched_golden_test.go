package avmon

import (
	"testing"
	"time"
)

// schedGolden pins the deterministic scheduler counters of one fixed
// configuration. Barriers, windows, and lane migrations are pure
// functions of (config, seed) under the engine's determinism contract
// — they must never move because of a refactor, an allocation diet, or
// a data-layout change. A legitimate scheduler-policy change may move
// them, in which case this table is updated deliberately, with the
// change that moved it called out in review.
type schedGolden struct {
	name      string
	shards    int
	sched     *SchedulerConfig
	barriers  uint64
	windows   uint64
	migrated  uint64
	steps     uint64
	wantMoves bool // migrations must be nonzero (forced rebalancing)
}

// TestSchedulerCountersGolden is the CI perf gate on the sharded
// scheduler's deterministic counters at fixed small N: a SYNTH-BD
// population (births keep lane counts moving) for 30 simulated
// minutes, under the default and the forced-adaptive scheduler.
func TestSchedulerCountersGolden(t *testing.T) {
	goldens := []schedGolden{
		{name: "default-4shards", shards: 4, sched: nil,
			barriers: 7388, windows: 10079, migrated: 122, steps: 109027, wantMoves: true},
		{name: "forced-4shards", shards: 4, sched: forcedScheduler(),
			barriers: 7363, windows: 10056, migrated: 249, steps: 109027, wantMoves: true},
	}
	for _, g := range goldens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			model, err := NewSYNTHBDModel(64, 0.3, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			c, err := NewCluster(ClusterConfig{
				N: 64, Seed: 33, Shards: g.shards, Scheduler: g.sched,
				Options: NodeOptions{Forgetful: true},
			}, model)
			if err != nil {
				t.Fatal(err)
			}
			c.Run(30 * time.Minute)
			st, ok := c.SchedStats()
			if !ok {
				t.Fatal("sharded cluster reports no scheduler stats")
			}
			if c.Steps() != g.steps {
				t.Errorf("steps = %d, golden %d", c.Steps(), g.steps)
			}
			if st.Barriers != g.barriers {
				t.Errorf("barriers = %d, golden %d", st.Barriers, g.barriers)
			}
			if st.Windows != g.windows {
				t.Errorf("windows = %d, golden %d", st.Windows, g.windows)
			}
			if st.Migrations != g.migrated {
				t.Errorf("migrations = %d, golden %d", st.Migrations, g.migrated)
			}
			if g.wantMoves && st.Migrations == 0 {
				t.Error("forced scheduler performed no migrations; the golden proves nothing")
			}
		})
	}
}
