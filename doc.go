// Package avmon is a Go implementation of AVMON — the availability
// monitoring overlay of Morales & Gupta, "AVMON: Optimal and Scalable
// Discovery of Consistent Availability Monitoring Overlays for
// Distributed Systems" (ICDCS 2007).
//
// AVMON selects, for every node x, a pinging set PS(x) of nodes that
// monitor x's long-term availability, and discovers those monitors
// scalably. Selection uses the consistent hash condition
// H(y, x) ≤ K/N, which is simultaneously:
//
//   - consistent: the relation never changes under churn,
//   - verifiable: any third node can recompute it, so nodes cannot
//     advertise colluders as their monitors, and
//   - random: monitors are uniform and pairwise uncorrelated.
//
// Discovery runs on a lightweight coarse overlay: each node keeps a
// small random coarse view, periodically swaps views with one member,
// and checks the consistency condition across the union — notifying
// any matched pair. Three optimal coarse-view sizes (MD, DC, MDC)
// minimize different combinations of memory/bandwidth, discovery time,
// and computation.
//
// # Quick start (simulated cluster)
//
//	cfg := avmon.ClusterConfig{N: 100, Seed: 1}
//	cl, err := avmon.NewCluster(cfg, avmon.NewSTATModel(100))
//	if err != nil { ... }
//	cl.Run(30 * time.Minute)
//	ps := cl.MonitorsOf(0) // who monitors node 0?
//
// # Real deployment
//
// Service runs the same protocol over UDP; see NewService and
// cmd/avmon-node.
//
// Subpackages under internal implement the protocol core, the
// discrete-event simulator, churn models and trace substrates, the
// baseline schemes the paper compares against, and one experiment
// generator per table and figure in the paper (see DESIGN.md and
// EXPERIMENTS.md).
package avmon
