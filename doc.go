// Package avmon is a Go implementation of AVMON — the availability
// monitoring overlay of Morales & Gupta, "AVMON: Optimal and Scalable
// Discovery of Consistent Availability Monitoring Overlays for
// Distributed Systems" (ICDCS 2007).
//
// AVMON selects, for every node x, a pinging set PS(x) of nodes that
// monitor x's long-term availability, and discovers those monitors
// scalably. Selection uses the consistent hash condition
// H(y, x) ≤ K/N, which is simultaneously:
//
//   - consistent: the relation never changes under churn,
//   - verifiable: any third node can recompute it, so nodes cannot
//     advertise colluders as their monitors, and
//   - random: monitors are uniform and pairwise uncorrelated.
//
// Discovery runs on a lightweight coarse overlay: each node keeps a
// small random coarse view, periodically swaps views with one member,
// and checks the consistency condition across the union — notifying
// any matched pair. Three optimal coarse-view sizes (MD, DC, MDC)
// minimize different combinations of memory/bandwidth, discovery time,
// and computation.
//
// # Quick start (simulated cluster)
//
// A Cluster is a fully simulated deployment: a deterministic
// discrete-event engine, a simulated network, a churn model, and one
// protocol node per host. Everything is a pure function of the seed:
//
//	cfg := avmon.ClusterConfig{N: 200, Seed: 1}
//	cl, err := avmon.NewCluster(cfg, avmon.NewSTATModel(200))
//	if err != nil { ... }
//	cl.Run(30 * time.Minute)     // simulated time, sub-second wall time
//	ps := cl.MonitorsOf(0)       // who monitors node 0?
//	st := cl.Stats(0)            // traffic, discovery times, uptime
//
// # Heterogeneous WAN networks
//
// The default network is a constant 50 ms per message. Realistic
// wide-area scenarios replace it with a heterogeneous latency model
// and a loss process (ClusterConfig.LatencyModel / LossModel):
//
//	lat, _ := avmon.NewLognormalLatency(
//	    5*time.Millisecond,   // floor: propagation delay, provable minimum
//	    60*time.Millisecond,  // median of the queueing tail
//	    0.6,                  // lognormal shape
//	    2*time.Second)        // cap
//	loss, _ := avmon.NewGilbertElliottLoss(0.02, 0.25, 0.001, 0.3)
//	cl, err := avmon.NewCluster(avmon.ClusterConfig{
//	    N: 200, Seed: 1, Shards: 8,
//	    LatencyModel: lat, LossModel: loss,
//	}, avmon.NewSTATModel(200))
//
// Every model declares a provable floor (LatencyModel.MinLatency).
// With Shards > 1 the run is partitioned across parallel engine
// shards whose conservative lookahead window adapts to that floor —
// and the results are byte-identical to the serial run at any shard
// count, because all latency and loss randomness is drawn from the
// sending node's private lane stream (see DESIGN.md, "Parallel
// simulation" and "Network models").
//
// # Determinism contract
//
// For one ClusterConfig (including Seed), every protocol-observable
// quantity — monitor sets, traffic counters, discovery times, event
// counts — is identical across runs, across Shards values, and across
// experiment-engine parallelism. Randomness is never shared between
// execution lanes; anything that would observe scheduler interleaving
// is either owned by the control lane or forbidden (the engine panics
// on violations).
//
// # Real deployment
//
// Service runs the same protocol over UDP; see NewService and
// cmd/avmon-node. Because the simulated and real runners execute the
// identical single-threaded core (internal/core), simulation results
// transfer to deployments by construction.
//
// Subpackages under internal implement the protocol core, the serial
// and sharded discrete-event engines (internal/sim), the simulated
// network and its WAN models (internal/simnet), churn models and trace
// substrates, the baseline schemes the paper compares against, and one
// experiment generator per table and figure in the paper plus the
// beyond-paper scale and wan sweeps (see DESIGN.md and
// EXPERIMENTS.md).
package avmon
