package avmon

import (
	"sync"
	"time"
)

// DefaultAnswerCacheEntries bounds the number of availability reports
// an AnswerCache holds before an epoch flush. Each entry is a few
// hundred bytes, so a full cache costs a few tens of megabytes —
// bounded regardless of how many distinct subjects a query front-end
// serves.
const DefaultAnswerCacheEntries = 1 << 16

// AnswerCache is a bounded, TTL-expiring cache of verified availability
// reports, keyed by subject. It follows the same bounded-memo policy as
// the hashing layer's MemoSelector — a capacity-bounded map with epoch
// flushes instead of per-entry recency tracking — but adds a TTL tied
// to the monitoring period: an availability estimate can only change
// when monitors take a new sample, so an answer younger than one
// monitoring period is as fresh as a re-query.
//
// Unlike MemoSelector (single-threaded by contract), AnswerCache is
// safe for concurrent use: it serves the Service query plane, where
// any number of QueryAvailability and QueryBatch calls run at once.
// Cached *AvailabilityReport values are shared between callers and
// must be treated as read-only.
type AnswerCache struct {
	mu      sync.Mutex
	ttl     time.Duration
	cap     int
	entries map[ID]answerEntry

	hits    uint64
	misses  uint64
	flushes uint64
}

type answerEntry struct {
	report *AvailabilityReport
	stored time.Time
}

// NewAnswerCache builds a cache whose answers expire after ttl.
// capacity ≤ 0 selects DefaultAnswerCacheEntries; ttl must be positive.
func NewAnswerCache(ttl time.Duration, capacity int) *AnswerCache {
	if capacity <= 0 {
		capacity = DefaultAnswerCacheEntries
	}
	return &AnswerCache{
		ttl:     ttl,
		cap:     capacity,
		entries: make(map[ID]answerEntry),
	}
}

// TTL returns the cache's answer lifetime.
func (c *AnswerCache) TTL() time.Duration { return c.ttl }

// Get returns the cached report for subject if it is younger than the
// TTL at time now. Expired entries are removed on lookup.
func (c *AnswerCache) Get(subject ID, now time.Time) (*AvailabilityReport, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[subject]
	if ok && now.Sub(e.stored) < c.ttl {
		c.hits++
		return e.report, true
	}
	if ok {
		delete(c.entries, subject)
	}
	c.misses++
	return nil, false
}

// Put stores a verified report, keyed by its Subject, stamped at time
// now. When the capacity bound is hit the whole cache is flushed (one
// epoch), mirroring MemoSelector: the hot subject population shifts
// slowly, so a flush repopulates within one TTL window.
func (c *AnswerCache) Put(report *AvailabilityReport, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[report.Subject]; !ok && len(c.entries) >= c.cap {
		c.entries = make(map[ID]answerEntry)
		c.flushes++
	}
	c.entries[report.Subject] = answerEntry{report: report, stored: now}
}

// AnswerCacheStats reports cache effectiveness counters.
type AnswerCacheStats struct {
	// Hits counts lookups answered from the cache.
	Hits uint64
	// Misses counts lookups that went to the network (including
	// lookups that found only an expired entry).
	Misses uint64
	// Flushes counts epoch flushes triggered by the capacity bound.
	Flushes uint64
	// Entries is the number of reports currently cached.
	Entries int
}

// Stats returns a snapshot of the cache counters.
func (c *AnswerCache) Stats() AnswerCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return AnswerCacheStats{Hits: c.hits, Misses: c.misses, Flushes: c.flushes, Entries: len(c.entries)}
}

// Reset drops all cached answers (the counters survive).
func (c *AnswerCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[ID]answerEntry)
	c.flushes++
}
