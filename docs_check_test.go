package avmon

// Documentation lints, run as ordinary tests (and by the CI docs job):
// every exported identifier in the packages whose contracts carry
// determinism/lane obligations must have a doc comment, and the
// top-level markdown files must not contain dangling relative links.
// Both checks use only the standard library, so they cost nothing to
// run anywhere `go test` runs.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docCheckedPackages are the directories whose exported surface makes
// determinism/lane promises and therefore must document them. Keep in
// sync with the CI docs job and the godoc-audit note in DESIGN.md.
var docCheckedPackages = []string{".", "internal/sim", "internal/simnet"}

// TestDocComments fails for every exported top-level declaration
// (type, func, method, const, var) in docCheckedPackages that lacks a
// doc comment.
func TestDocComments(t *testing.T) {
	for _, dir := range docCheckedPackages {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			for _, pkg := range pkgs {
				for _, file := range pkg.Files {
					for _, decl := range file.Decls {
						for _, miss := range undocumented(decl) {
							pos := fset.Position(miss.pos)
							t.Errorf("%s:%d: exported %s has no doc comment",
								pos.Filename, pos.Line, miss.name)
						}
					}
				}
			}
		})
	}
}

// missing names one undocumented exported declaration.
type missing struct {
	name string
	pos  token.Pos
}

// undocumented returns the exported names declared by decl that carry
// no doc comment (neither on the declaration group nor on the spec).
func undocumented(decl ast.Decl) []missing {
	var out []missing
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return nil
		}
		if d.Doc == nil {
			out = append(out, missing{name: funcLabel(d), pos: d.Pos()})
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					out = append(out, missing{name: "type " + s.Name.Name, pos: s.Pos()})
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						out = append(out, missing{name: name.Name, pos: name.Pos()})
					}
				}
			}
		}
	}
	return out
}

// exportedReceiver reports whether a method's receiver type is
// exported (methods on unexported types are internal surface).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true // be conservative: lint it
		}
	}
}

// funcLabel renders "func Name" or "method (T).Name" for messages.
func funcLabel(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "func " + d.Name.Name
	}
	return "method " + d.Name.Name
}

// checkedMarkdown are the user-facing documents whose links must not
// dangle.
var checkedMarkdown = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks fails for every relative markdown link in
// checkedMarkdown whose target file does not exist, or whose #anchor
// does not match a heading in the target document.
func TestMarkdownLinks(t *testing.T) {
	for _, doc := range checkedMarkdown {
		doc := doc
		t.Run(doc, func(t *testing.T) {
			data, err := os.ReadFile(doc)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
				target := m[1]
				if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
					strings.HasPrefix(target, "mailto:") {
					continue // external links are out of scope (no network in CI)
				}
				file, anchor, _ := strings.Cut(target, "#")
				if file == "" {
					file = doc // intra-document anchor
				}
				path := filepath.Join(filepath.Dir(doc), file)
				if _, err := os.Stat(path); err != nil {
					t.Errorf("%s: link target %q does not exist", doc, target)
					continue
				}
				if anchor != "" && strings.HasSuffix(strings.ToLower(file), ".md") {
					if !hasAnchor(t, path, anchor) {
						t.Errorf("%s: anchor %q not found in %s", doc, anchor, file)
					}
				}
			}
		})
	}
}

// hasAnchor reports whether the markdown file contains a heading whose
// GitHub-style slug equals anchor.
func hasAnchor(t *testing.T, path, anchor string) bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimSpace(strings.TrimLeft(line, "#"))
		if slugify(heading) == strings.ToLower(anchor) {
			return true
		}
	}
	return false
}

// slugify approximates GitHub's heading-anchor algorithm: lowercase,
// drop everything but letters/digits/spaces/hyphens, spaces to
// hyphens.
func slugify(s string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			sb.WriteRune(r)
		case r == ' ':
			sb.WriteRune('-')
		}
	}
	return sb.String()
}
