package avmon

import (
	"errors"
	"fmt"
	"time"

	"avmon/internal/core"
)

// ErrQueryTimeout reports that a remote node did not answer within the
// deadline.
var ErrQueryTimeout = errors.New("avmon: query timed out")

// AvailabilityReport is the result of a verified availability query
// (the full Section 3.3 usage flow: ask the subject for l monitors,
// verify each against the consistency condition, then ask the verified
// monitors for their estimates).
type AvailabilityReport struct {
	// Subject is the node whose availability was queried.
	Subject ID
	// Monitors are the verified monitors that answered.
	Monitors []ID
	// Estimates are the per-monitor availability estimates, aligned
	// with Monitors.
	Estimates []float64
	// Mean is the average of Estimates.
	Mean float64
}

// QueryAvailability performs the end-to-end availability lookup
// against a remote node: it requests l monitors from subject, verifies
// the report (rejecting fabricated monitors), queries each verified
// monitor for its estimate of subject, and aggregates the answers.
// It blocks up to timeout.
func (s *Service) QueryAvailability(subject ID, l int, timeout time.Duration) (*AvailabilityReport, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	deadline := time.Now().Add(timeout)

	reported, err := s.fetchReport(subject, l, deadline)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	scheme := s.node.Config().Scheme
	s.mu.Unlock()
	verified, err := core.VerifyReport(scheme, subject, reported, minNonZero(l, len(reported)))
	if err != nil {
		return nil, fmt.Errorf("avmon: monitor report for %v rejected: %w", subject, err)
	}

	report := &AvailabilityReport{Subject: subject}
	var sum float64
	for _, mon := range verified {
		est, err := s.fetchEstimate(mon, subject, deadline)
		if err != nil {
			continue // unreachable or non-tracking monitors are skipped
		}
		report.Monitors = append(report.Monitors, mon)
		report.Estimates = append(report.Estimates, est)
		sum += est
	}
	if len(report.Monitors) == 0 {
		return nil, fmt.Errorf("avmon: no verified monitor of %v answered: %w", subject, ErrQueryTimeout)
	}
	report.Mean = sum / float64(len(report.Monitors))
	return report, nil
}

func minNonZero(l, n int) int {
	if l <= 0 || l > n {
		return n
	}
	return l
}

// fetchReport asks subject for count monitors and waits for the reply.
func (s *Service) fetchReport(subject ID, count int, deadline time.Time) ([]ID, error) {
	ch := make(chan *core.Message, 1)
	s.armResponse(subject, core.MsgReportResp, ch)
	defer s.disarmResponse()
	s.mu.Lock()
	s.node.QueryReport(subject, count)
	s.mu.Unlock()
	select {
	case m := <-ch:
		return m.View, nil
	case <-time.After(time.Until(deadline)):
		return nil, fmt.Errorf("avmon: monitor report from %v: %w", subject, ErrQueryTimeout)
	}
}

// fetchEstimate asks one monitor for its estimate of subject.
func (s *Service) fetchEstimate(monitor, subject ID, deadline time.Time) (float64, error) {
	ch := make(chan *core.Message, 1)
	s.armResponse(monitor, core.MsgAvailResp, ch)
	defer s.disarmResponse()
	s.mu.Lock()
	s.node.QueryAvailability(monitor, subject)
	s.mu.Unlock()
	select {
	case m := <-ch:
		if !m.Known {
			return 0, fmt.Errorf("avmon: %v does not track %v", monitor, subject)
		}
		return m.Avail, nil
	case <-time.After(time.Until(deadline)):
		return 0, fmt.Errorf("avmon: estimate from %v: %w", monitor, ErrQueryTimeout)
	}
}

// armResponse points the node's response hook at a one-shot channel
// filtered by sender and message type. Queries are serialized by
// construction (each arms, sends, waits, disarms).
func (s *Service) armResponse(from ID, msgType core.MsgType, ch chan *core.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.node.SetResponseHandler(func(sender ID, m *core.Message) {
		if sender != from || m.Type != msgType {
			return
		}
		select {
		case ch <- m:
		default:
		}
	})
}

func (s *Service) disarmResponse() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.node.SetResponseHandler(nil)
}
