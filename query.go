package avmon

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"avmon/internal/core"
)

// ErrQueryTimeout reports that a remote node did not answer within the
// deadline.
var ErrQueryTimeout = errors.New("avmon: query timed out")

// AvailabilityReport is the result of a verified availability query
// (the full Section 3.3 usage flow: ask the subject for l monitors,
// verify each against the consistency condition, then ask the verified
// monitors for their estimates).
type AvailabilityReport struct {
	// Subject is the node whose availability was queried.
	Subject ID
	// Monitors are the verified monitors that answered.
	Monitors []ID
	// Estimates are the per-monitor availability estimates, aligned
	// with Monitors.
	Estimates []float64
	// Mean is the average of Estimates.
	Mean float64
}

// BatchAnswer is one per-subject result of QueryBatch. Exactly one of
// Report and Err is set.
type BatchAnswer struct {
	// Subject is the queried node.
	Subject ID
	// Report is the verified availability report, nil on failure.
	Report *AvailabilityReport
	// Err explains a failed lookup (timeout, rejected monitor report,
	// or no verified monitor answering).
	Err error
}

// respKey correlates a response to its outstanding query: the answering
// peer, the expected response type, and the caller-chosen nonce echoed
// by the responder.
type respKey struct {
	peer  ID
	typ   core.MsgType
	nonce uint64
}

// respDispatcher routes incoming response messages to the query that
// asked for them. It is installed once as the node's response handler
// and replaces the old arm/disarm one-shot hook, which could serve only
// a single in-flight query and silently dropped answers when two
// queries raced. Any number of queries may now wait concurrently, each
// on its own correlation key.
type respDispatcher struct {
	mu      sync.Mutex
	waiters map[respKey]chan *core.Message
	// stale counts responses that matched no waiter: late answers
	// after a timeout, or forged/replayed datagrams whose nonce does
	// not correlate with any outstanding query.
	stale uint64
}

func newRespDispatcher() *respDispatcher {
	return &respDispatcher{waiters: make(map[respKey]chan *core.Message)}
}

// subscribe registers a one-shot waiter for key and returns the channel
// its response will be delivered on. The caller must cancel(key) when
// done (delivery also unregisters, so cancel after delivery is a no-op).
func (d *respDispatcher) subscribe(key respKey) chan *core.Message {
	ch := make(chan *core.Message, 1)
	d.mu.Lock()
	d.waiters[key] = ch
	d.mu.Unlock()
	return ch
}

// cancel unregisters the waiter for key, if still present.
func (d *respDispatcher) cancel(key respKey) {
	d.mu.Lock()
	delete(d.waiters, key)
	d.mu.Unlock()
}

// dispatch is the node's response handler: it matches a response to the
// waiter keyed by (sender, type, nonce) and delivers it. Responses with
// no matching waiter — stale answers arriving after their query timed
// out, or replays with a non-matching nonce — are counted and dropped,
// never delivered to a different query.
func (d *respDispatcher) dispatch(from ID, m *core.Message) {
	key := respKey{peer: from, typ: m.Type, nonce: m.Nonce}
	d.mu.Lock()
	ch, ok := d.waiters[key]
	if ok {
		delete(d.waiters, key)
	} else {
		d.stale++
	}
	d.mu.Unlock()
	if ok {
		ch <- m // buffered, exactly one send per subscription
	}
}

// staleCount returns how many uncorrelated responses were dropped.
func (d *respDispatcher) staleCount() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stale
}

// pending returns the number of outstanding waiters (for tests).
func (d *respDispatcher) pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.waiters)
}

// queryTimer bounds one query's sequence of network waits with a single
// reused time.Timer instead of a fresh time.After channel per wait
// (which would pin memory until each abandoned timer fired).
type queryTimer struct {
	deadline time.Time
	timer    *time.Timer // lazily created, stopped+drained between waits
}

func newQueryTimer(deadline time.Time) *queryTimer {
	return &queryTimer{deadline: deadline}
}

// wait blocks until a message arrives on ch or the deadline passes. An
// already-expired deadline takes a fast path that never arms the timer:
// it still drains an answer that has already been delivered, otherwise
// fails immediately.
func (t *queryTimer) wait(ch <-chan *core.Message) (*core.Message, error) {
	d := time.Until(t.deadline)
	if d <= 0 {
		select {
		case m := <-ch:
			return m, nil
		default:
			return nil, ErrQueryTimeout
		}
	}
	if t.timer == nil {
		t.timer = time.NewTimer(d)
	} else {
		t.timer.Reset(d)
	}
	select {
	case m := <-ch:
		// Stop for reuse; if the timer fired concurrently, drain the
		// tick so the next wait's select doesn't see a phantom expiry.
		if !t.timer.Stop() {
			<-t.timer.C
		}
		return m, nil
	case <-t.timer.C:
		return nil, ErrQueryTimeout
	}
}

// stop releases the underlying timer.
func (t *queryTimer) stop() {
	if t.timer != nil {
		t.timer.Stop()
	}
}

// QueryAvailability performs the end-to-end availability lookup
// against a remote node: it requests l monitors from subject, verifies
// the report (rejecting fabricated monitors), queries each verified
// monitor for its estimate of subject, and aggregates the answers.
// It blocks up to timeout.
//
// Concurrent calls are fully supported: every in-flight query waits on
// its own correlation key (peer, response type, nonce), so answers are
// never delivered to the wrong caller. With the answer cache enabled
// (ServiceConfig.QueryCache), a fresh cached report is returned without
// touching the network.
func (s *Service) QueryAvailability(subject ID, l int, timeout time.Duration) (*AvailabilityReport, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	now := time.Now()
	if s.answers != nil {
		if r, ok := s.answers.Get(subject, now); ok {
			return r, nil
		}
	}
	qt := newQueryTimer(now.Add(timeout))
	defer qt.stop()
	report, err := s.queryOne(subject, l, qt)
	if err != nil {
		return nil, err
	}
	if s.answers != nil {
		s.answers.Put(report, time.Now())
	}
	return report, nil
}

// queryOne runs the fetch-report / verify / fetch-estimates flow for a
// single subject under one query timer.
func (s *Service) queryOne(subject ID, l int, qt *queryTimer) (*AvailabilityReport, error) {
	reported, err := s.fetchReport(subject, l, qt)
	if err != nil {
		return nil, err
	}
	verified, err := core.VerifyReport(s.scheme(), subject, reported, minNonZero(l, len(reported)))
	if err != nil {
		return nil, fmt.Errorf("avmon: monitor report for %v rejected: %w", subject, err)
	}

	report := &AvailabilityReport{Subject: subject}
	var sum float64
	for _, mon := range verified {
		est, err := s.fetchEstimate(mon, subject, qt)
		if err != nil {
			continue // unreachable or non-tracking monitors are skipped
		}
		report.Monitors = append(report.Monitors, mon)
		report.Estimates = append(report.Estimates, est)
		sum += est
	}
	if len(report.Monitors) == 0 {
		return nil, fmt.Errorf("avmon: no verified monitor of %v answered: %w", subject, ErrQueryTimeout)
	}
	report.Mean = sum / float64(len(report.Monitors))
	return report, nil
}

func minNonZero(l, n int) int {
	if l <= 0 || l > n {
		return n
	}
	return l
}

// scheme returns the node's selection scheme (safe to use without the
// lock afterwards: selectors are stateless).
func (s *Service) scheme() core.SelectionScheme {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node.Config().Scheme
}

// fetchReport asks subject for count monitors and waits for the reply.
func (s *Service) fetchReport(subject ID, count int, qt *queryTimer) ([]ID, error) {
	nonce := s.nextNonce()
	key := respKey{peer: subject, typ: core.MsgReportResp, nonce: nonce}
	ch := s.disp.subscribe(key)
	defer s.disp.cancel(key)
	s.mu.Lock()
	s.node.QueryReport(subject, count, nonce)
	s.mu.Unlock()
	m, err := qt.wait(ch)
	if err != nil {
		return nil, fmt.Errorf("avmon: monitor report from %v: %w", subject, err)
	}
	return m.View, nil
}

// fetchEstimate asks one monitor for its estimate of subject.
func (s *Service) fetchEstimate(monitor, subject ID, qt *queryTimer) (float64, error) {
	nonce := s.nextNonce()
	key := respKey{peer: monitor, typ: core.MsgAvailResp, nonce: nonce}
	ch := s.disp.subscribe(key)
	defer s.disp.cancel(key)
	s.mu.Lock()
	s.node.QueryAvailability(monitor, subject, nonce)
	s.mu.Unlock()
	m, err := qt.wait(ch)
	if err != nil {
		return 0, fmt.Errorf("avmon: estimate from %v: %w", monitor, err)
	}
	if !m.Known {
		return 0, fmt.Errorf("avmon: %v does not track %v", monitor, subject)
	}
	return m.Avail, nil
}

// QueryBatch resolves many subjects in one sweep, amortizing socket
// round-trips: per-subject monitor reports are fetched and verified
// concurrently, then each distinct monitor is asked once — with a
// single AVAIL-BATCH-REQ covering every subject it vouches for —
// instead of one AVAIL-REQ per (monitor, subject) pair. Results are
// returned in subject order; cached answers (when the cache is
// enabled) are served without network traffic. Failed subjects carry
// a per-subject error rather than failing the whole batch.
//
// timeout bounds each of the two network phases (report fetch, batched
// estimate fetch) separately — the call blocks at most about twice
// that — so an unreachable subject exhausting phase one cannot starve
// live subjects of their estimate phase.
func (s *Service) QueryBatch(subjects []ID, l int, timeout time.Duration) []BatchAnswer {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	now := time.Now()
	answers := make([]BatchAnswer, len(subjects))
	var misses []int
	for i, subject := range subjects {
		answers[i].Subject = subject
		if s.answers != nil {
			if r, ok := s.answers.Get(subject, now); ok {
				answers[i].Report = r
				continue
			}
		}
		misses = append(misses, i)
	}
	if len(misses) == 0 {
		return answers
	}
	scheme := s.scheme()

	// Stage 1: fetch and verify each missing subject's monitor report
	// concurrently. verifiedBy[i] holds subject i's verified monitors.
	verifiedBy := make(map[int][]ID, len(misses))
	var vmu sync.Mutex
	var wg sync.WaitGroup
	for _, i := range misses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qt := newQueryTimer(now.Add(timeout))
			defer qt.stop()
			subject := subjects[i]
			reported, err := s.fetchReport(subject, l, qt)
			if err != nil {
				answers[i].Err = err
				return
			}
			verified, err := core.VerifyReport(scheme, subject, reported, minNonZero(l, len(reported)))
			if err != nil {
				answers[i].Err = fmt.Errorf("avmon: monitor report for %v rejected: %w", subject, err)
				return
			}
			vmu.Lock()
			verifiedBy[i] = verified
			vmu.Unlock()
		}(i)
	}
	wg.Wait()

	// Stage 2: invert to monitor → subjects and issue one batched
	// availability request per distinct monitor.
	bySubject := make(map[int]map[ID]float64, len(verifiedBy)) // subject idx → monitor → estimate
	perMonitor := make(map[ID][]int)
	for i, mons := range verifiedBy {
		bySubject[i] = make(map[ID]float64, len(mons))
		for _, mon := range mons {
			perMonitor[mon] = append(perMonitor[mon], i)
		}
	}
	// The estimate phase gets its own deadline: the slowest stage-1
	// subject (e.g. an unreachable one timing out) must not leave live
	// subjects with an already-expired window here.
	estDeadline := time.Now().Add(timeout)
	var emu sync.Mutex
	for mon, idxs := range perMonitor {
		wg.Add(1)
		go func(mon ID, idxs []int) {
			defer wg.Done()
			qt := newQueryTimer(estDeadline)
			defer qt.stop()
			batch := make([]ID, len(idxs))
			for j, i := range idxs {
				batch[j] = subjects[i]
			}
			ests, knowns, err := s.fetchBatchEstimates(mon, batch, qt)
			if err != nil {
				return // this monitor contributes nothing
			}
			emu.Lock()
			for j, i := range idxs {
				if knowns[j] {
					bySubject[i][mon] = ests[j]
				}
			}
			emu.Unlock()
		}(mon, idxs)
	}
	wg.Wait()

	// Stage 3: assemble per-subject reports, preserving each subject's
	// verified-monitor order for determinism.
	fill := time.Now()
	for i, mons := range verifiedBy {
		report := &AvailabilityReport{Subject: subjects[i]}
		var sum float64
		for _, mon := range mons {
			est, ok := bySubject[i][mon]
			if !ok {
				continue
			}
			report.Monitors = append(report.Monitors, mon)
			report.Estimates = append(report.Estimates, est)
			sum += est
		}
		if len(report.Monitors) == 0 {
			answers[i].Err = fmt.Errorf("avmon: no verified monitor of %v answered: %w",
				subjects[i], ErrQueryTimeout)
			continue
		}
		report.Mean = sum / float64(len(report.Monitors))
		answers[i].Report = report
		if s.answers != nil {
			s.answers.Put(report, fill)
		}
	}
	return answers
}

// fetchBatchEstimates sends one AVAIL-BATCH-REQ for all subjects to a
// monitor and waits for the aligned response. It validates the echoed
// subject list and payload shape before trusting the answer.
func (s *Service) fetchBatchEstimates(monitor ID, subjects []ID, qt *queryTimer) ([]float64, []bool, error) {
	nonce := s.nextNonce()
	key := respKey{peer: monitor, typ: core.MsgAvailBatchResp, nonce: nonce}
	ch := s.disp.subscribe(key)
	defer s.disp.cancel(key)
	s.mu.Lock()
	s.node.QueryAvailabilityBatch(monitor, subjects, nonce)
	s.mu.Unlock()
	m, err := qt.wait(ch)
	if err != nil {
		return nil, nil, fmt.Errorf("avmon: batch estimates from %v: %w", monitor, err)
	}
	if len(m.View) != len(subjects) || len(m.Avails) != len(subjects) || len(m.Knowns) != len(subjects) {
		return nil, nil, fmt.Errorf("avmon: %v answered batch with wrong shape (%d/%d/%d entries, want %d)",
			monitor, len(m.View), len(m.Avails), len(m.Knowns), len(subjects))
	}
	for j, subject := range subjects {
		if m.View[j] != subject {
			return nil, nil, fmt.Errorf("avmon: %v echoed subject %v at position %d, want %v",
				monitor, m.View[j], j, subject)
		}
	}
	return m.Avails, m.Knowns, nil
}
