package avmon

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"avmon/internal/ids"
	"avmon/internal/memnet"
	"avmon/internal/observer"
	"avmon/internal/simnet"
)

// newMemnetServices boots n real Service instances over an in-process
// memnet loopback, bootstrapped in a chain, and returns them with the
// network. Cleanup stops every service and closes the network.
func newMemnetServices(t *testing.T, n int, opts NodeOptions, netCfg memnet.Config) ([]*Service, *memnet.Network) {
	t.Helper()
	net := memnet.New(netCfg)
	t.Cleanup(net.Close)
	services := make([]*Service, 0, n)
	for i := 0; i < n; i++ {
		id := ids.Sim(i + 1)
		tr, err := net.Listen(id)
		if err != nil {
			t.Fatalf("memnet.Listen %d: %v", i, err)
		}
		cfg := ServiceConfig{
			Addr:      id.String(),
			N:         n,
			Options:   opts,
			Seed:      int64(i + 1),
			Transport: tr,
		}
		if i > 0 {
			cfg.Bootstrap = ids.Sim(1 + i/2).String() // binary-ish bootstrap tree
		}
		s, err := NewService(cfg)
		if err != nil {
			t.Fatalf("NewService %d: %v", i, err)
		}
		services = append(services, s)
		t.Cleanup(s.Stop)
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
	}
	return services, net
}

// waitDiscovered polls until at least want services report a non-empty
// pinging set, failing the test at the deadline.
func waitDiscovered(t *testing.T, services []*Service, want int, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		discovered := 0
		for _, s := range services {
			if ps, _, _, _ := s.Stats(); ps > 0 {
				discovered++
			}
		}
		if discovered >= want {
			return
		}
		if time.Now().After(end) {
			t.Fatalf("after %v only %d of %d services discovered monitors (want ≥ %d)",
				deadline, discovered, len(services), want)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestServiceMemnetLifecycleScale boots 200 real Service nodes over
// memnet, runs an observer concurrently with the protocol, issues
// queries, and stops everything — the start→query→stop lifecycle edge
// the realnet harness depends on, exercised under -race in CI.
func TestServiceMemnetLifecycleScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large realnet test")
	}
	const n = 200
	lat, err := simnet.NewConstantLatency(2 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Periods are deliberately modest: 200 nodes under the race
	// detector saturate the loopback if driven at sim-benchmark rates.
	opts := NodeOptions{
		K:             5,
		CVS:           10,
		Period:        250 * time.Millisecond,
		MonitorPeriod: 250 * time.Millisecond,
		Hash:          HashFast,
	}
	services, net := newMemnetServices(t, n, opts,
		memnet.Config{Latency: lat, Seed: 7, InboxDepth: 8192})

	// Observe every node while the protocol runs.
	obs := observer.New(50 * time.Millisecond)
	for _, s := range services {
		obs.Add(observer.Target{Node: s})
	}
	obs.Start()
	defer obs.Stop()

	waitDiscovered(t, services, n*6/10, 60*time.Second)

	// Query subjects end to end through the running mesh until one
	// resolves (individual attempts may race monitor churn).
	answered := 0
	for i := 0; i < 20 && answered == 0; i++ {
		subject := services[(i*17+3)%n]
		if ps, _, _, _ := subject.Stats(); ps == 0 {
			continue
		}
		querier := services[(i*29+11)%n]
		if querier == subject {
			continue
		}
		if r, err := querier.QueryAvailability(subject.ID(), 0, 3*time.Second); err == nil {
			answered++
			if r.Mean < 0 || r.Mean > 1 {
				t.Errorf("availability estimate %v out of [0,1]", r.Mean)
			}
		}
	}
	if answered == 0 {
		t.Error("no query against the live mesh succeeded")
	}

	obs.Stop()
	if obs.Scrapes() == 0 {
		t.Error("observer never completed a scrape")
	}
	// Observed discovery must be visible for most nodes.
	found := 0
	for i := 0; i < obs.Size(); i++ {
		if _, ok := obs.DiscoveryTime(i); ok {
			found++
		}
	}
	if found < n/2 {
		t.Errorf("observer recorded discovery for only %d/%d nodes", found, n)
	}

	// Orderly stop of all 200 nodes; Cleanup re-stops idempotently.
	for _, s := range services {
		s.Stop()
	}
	if st := net.Stats(); st.InboxOverflows > 0 {
		t.Logf("memnet inbox overflows: %d", st.InboxOverflows)
	}
}

// TestServiceObserverInvariance proves scraping is side-effect free:
// with protocol tickers effectively frozen, hammering the observer
// concurrently must leave every node's protocol fingerprint untouched.
func TestServiceObserverInvariance(t *testing.T) {
	const n = 20
	opts := NodeOptions{
		K:             4,
		CVS:           6,
		Period:        50 * time.Millisecond,
		MonitorPeriod: 50 * time.Millisecond,
		Hash:          HashFast,
	}
	services, _ := newMemnetServices(t, n, opts, memnet.Config{Seed: 11})
	waitDiscovered(t, services, n/2, 30*time.Second)

	// Freeze the protocol by stopping every service's tickers — the
	// scrape surface stays readable after Stop.
	for _, s := range services {
		s.Stop()
	}

	fingerprint := func() []string {
		fps := make([]string, n)
		for i, s := range services {
			ps, ts, cv, checks := s.Stats()
			fps[i] = fmt.Sprintf("%d/%d/%d/%d/%v/%v", ps, ts, cv, checks, s.Monitors(), s.Targets())
		}
		return fps
	}
	before := fingerprint()

	obs := observer.New(time.Millisecond)
	for _, s := range services {
		obs.Add(observer.Target{Node: s})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				obs.ScrapeOnce()
			}
		}()
	}
	wg.Wait()

	after := fingerprint()
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("node %d fingerprint changed under scraping:\n before %s\n after  %s",
				i, before[i], after[i])
		}
	}
	if obs.Scrapes() != 400 {
		t.Errorf("Scrapes = %d, want 400", obs.Scrapes())
	}
}

// TestServiceQueryBatchMemnetLoss runs QueryBatch against live memnet
// nodes under bursty Gilbert-Elliott loss: live subjects may answer,
// a stopped subject must fail with its own error without starving the
// rest (the per-phase timeout isolation property).
func TestServiceQueryBatchMemnetLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent realnet test")
	}
	const n = 10
	lat, err := simnet.NewConstantLatency(2 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Mild bursty loss: ~9% of time in a bad state dropping 30%.
	loss, err := simnet.NewGilbertElliottLoss(0.05, 0.5, 0.01, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	opts := NodeOptions{
		K:             4,
		CVS:           6,
		Period:        50 * time.Millisecond,
		MonitorPeriod: 50 * time.Millisecond,
		Hash:          HashFast,
	}
	services, _ := newMemnetServices(t, n, opts, memnet.Config{Latency: lat, Loss: loss, Seed: 3})
	waitDiscovered(t, services, n-2, 30*time.Second)

	dead := services[n-1]
	dead.Stop()

	querier := services[0]
	subjects := []ID{services[2].ID(), services[4].ID(), dead.ID()}
	deadline := time.Now().Add(20 * time.Second)
	for {
		answers := querier.QueryBatch(subjects, 0, 2*time.Second)
		if len(answers) != len(subjects) {
			t.Fatalf("QueryBatch returned %d answers for %d subjects", len(answers), len(subjects))
		}
		if answers[2].Err == nil {
			t.Fatalf("stopped subject resolved: %+v", answers[2].Report)
		}
		live := 0
		for _, a := range answers[:2] {
			if a.Err == nil && a.Report != nil {
				live++
			}
		}
		if live >= 1 {
			return // dead subject isolated, live subjects answered
		}
		if time.Now().After(deadline) {
			t.Fatalf("no live subject ever resolved under loss: %v / %v", answers[0].Err, answers[1].Err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// TestServiceDroppedResponsesOverMemnet forces a response to arrive
// after its query timed out — 40ms of modeled latency against a 1ms
// query timeout — and asserts the stale answer is accounted.
func TestServiceDroppedResponsesOverMemnet(t *testing.T) {
	const n = 4
	lat, err := simnet.NewConstantLatency(40 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	opts := NodeOptions{
		K:             2,
		CVS:           4,
		Period:        50 * time.Millisecond,
		MonitorPeriod: 50 * time.Millisecond,
		Hash:          HashFast,
	}
	services, _ := newMemnetServices(t, n, opts, memnet.Config{Latency: lat, Seed: 5})
	waitDiscovered(t, services, 1, 30*time.Second)

	querier, subject := services[0], services[1]
	deadline := time.Now().Add(15 * time.Second)
	for querier.DroppedResponses() == 0 {
		_, err := querier.QueryAvailability(subject.ID(), 0, time.Millisecond)
		if err == nil {
			t.Fatal("1ms query beat 80ms of round-trip latency")
		}
		if !errors.Is(err, ErrQueryTimeout) {
			t.Fatalf("unexpected query error: %v", err)
		}
		// The REPORT-RESP lands ~80ms after the request; give it time
		// to reach the dispatcher and be counted stale.
		time.Sleep(120 * time.Millisecond)
		if time.Now().After(deadline) {
			t.Fatal("stale response never counted in DroppedResponses")
		}
	}
}

// TestServiceNewServiceClosesSocketOnError asserts the UDP socket is
// released when validation fails after the bind: rebinding the same
// address must succeed immediately.
func TestServiceNewServiceClosesSocketOnError(t *testing.T) {
	addr := fmt.Sprintf("127.0.0.1:%d", 30000+rand.Intn(20000))
	bad := ServiceConfig{
		Addr: addr,
		N:    16,
		// CVS 1 fails core validation strictly after the socket bind.
		Options: NodeOptions{CVS: 1, Hash: HashFast},
	}
	if _, err := NewService(bad); err == nil {
		t.Fatal("NewService accepted CVS=1")
	}
	good := bad
	good.Options.CVS = 4
	s, err := NewService(good)
	if err != nil {
		t.Fatalf("rebind after failed NewService: %v", err)
	}
	s.Stop()
}

// TestServiceInjectedTransportIdentity rejects a transport bound to a
// different identity than Addr, and leaves it open for the caller.
func TestServiceInjectedTransportIdentity(t *testing.T) {
	net := memnet.New(memnet.Config{Seed: 1})
	defer net.Close()
	tr, err := net.Listen(ids.Sim(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewService(ServiceConfig{
		Addr:      ids.Sim(2).String(),
		N:         8,
		Options:   NodeOptions{CVS: 4, Hash: HashFast},
		Transport: tr,
	})
	if err == nil {
		t.Fatal("NewService accepted a transport bound to a different identity")
	}
	// The caller still owns the transport after the failure.
	s, err := NewService(ServiceConfig{
		Addr:      ids.Sim(1).String(),
		N:         8,
		Options:   NodeOptions{CVS: 4, Hash: HashFast},
		Transport: tr,
	})
	if err != nil {
		t.Fatalf("reusing the transport with the matching Addr: %v", err)
	}
	s.Stop()
}

// warpClock compresses protocol time by an integer factor: tickers
// fire factor× faster and Now advances factor seconds per wall second.
type warpClock struct {
	start  time.Time
	factor int
}

func (w warpClock) Now() time.Time {
	return w.start.Add(time.Since(w.start) * time.Duration(w.factor))
}

func (w warpClock) Ticker(period time.Duration) (<-chan time.Time, func()) {
	t := time.NewTicker(period / time.Duration(w.factor))
	return t.C, t.Stop
}

// TestServiceAcceleratedClock proves clock injection compresses the
// protocol: nodes configured with a 2s period discover each other in
// well under 2s of wall time because the injected clock runs 50×.
func TestServiceAcceleratedClock(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent realnet test")
	}
	const n = 6
	clock := warpClock{start: time.Now(), factor: 50}
	net := memnet.New(memnet.Config{Seed: 9})
	t.Cleanup(net.Close)
	opts := NodeOptions{
		K:             3,
		CVS:           4,
		Period:        2 * time.Second, // 40ms of wall time at 50×
		MonitorPeriod: 2 * time.Second,
		Hash:          HashFast,
	}
	services := make([]*Service, 0, n)
	for i := 0; i < n; i++ {
		id := ids.Sim(i + 1)
		tr, err := net.Listen(id)
		if err != nil {
			t.Fatal(err)
		}
		cfg := ServiceConfig{
			Addr:      id.String(),
			N:         n,
			Options:   opts,
			Seed:      int64(i + 1),
			Transport: tr,
			Clock:     clock,
		}
		if i > 0 {
			cfg.Bootstrap = ids.Sim(1).String()
		}
		s, err := NewService(cfg)
		if err != nil {
			t.Fatal(err)
		}
		services = append(services, s)
		t.Cleanup(s.Stop)
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
	}
	// 10s of wall time is 500s ≈ 250 protocol periods at 50× — far
	// more than discovery needs; without acceleration, 10s of wall
	// time would cover only 5 periods.
	waitDiscovered(t, services, n*2/3, 10*time.Second)
}
