package avmon

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"avmon/internal/core"
	"avmon/internal/ids"
)

// waitForQueryableSubject blocks until some service has discovered
// monitors and a warm-up query against it succeeds, returning the
// subject and a querier. Monitors need a few monitoring periods to
// accumulate ping history before estimates exist.
func waitForQueryableSubject(t *testing.T, services []*Service) (subject, querier *Service) {
	t.Helper()
	deadline := time.After(20 * time.Second)
	for subject == nil {
		for _, s := range services {
			if len(s.Monitors()) > 0 {
				subject = s
				break
			}
		}
		if subject == nil {
			select {
			case <-deadline:
				t.Fatal("no service discovered monitors")
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
	querier = services[0]
	if querier == subject {
		querier = services[1]
	}
	for {
		if _, err := querier.QueryAvailability(subject.ID(), 1, 2*time.Second); err == nil {
			return subject, querier
		}
		select {
		case <-deadline:
			t.Fatal("warm-up query never succeeded")
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// TestConcurrentQueryAvailability is the regression test for the racy
// single-handler query path: before the correlation-keyed dispatcher,
// two in-flight QueryAvailability calls re-pointed the node's one
// response hook at each other's channel, so answers were delivered to
// the wrong query (or dropped) and calls timed out spuriously. With
// the dispatcher, N concurrent queries against a live cluster must all
// succeed. Run under -race in CI.
func TestConcurrentQueryAvailability(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network test")
	}
	opts := NodeOptions{
		K:             4,
		CVS:           4,
		Period:        50 * time.Millisecond,
		MonitorPeriod: 50 * time.Millisecond,
	}
	services := newLocalServices(t, 6, opts)
	subject, querier := waitForQueryableSubject(t, services)

	const queries = 24
	errs := make([]error, queries)
	var wg sync.WaitGroup
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			report, err := querier.QueryAvailability(subject.ID(), 1, 5*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			if report.Subject != subject.ID() || len(report.Monitors) == 0 {
				errs[i] = fmt.Errorf("bad report %+v", report)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent query %d failed: %v", i, err)
		}
	}
}

func TestDispatcherCorrelation(t *testing.T) {
	peerA := MustParseID(t, "10.0.0.1:1000")
	peerB := MustParseID(t, "10.0.0.2:1000")
	d := newRespDispatcher()

	chA := d.subscribe(respKey{peer: peerA, typ: core.MsgAvailResp, nonce: 7})
	chB := d.subscribe(respKey{peer: peerB, typ: core.MsgAvailResp, nonce: 9})
	if d.pending() != 2 {
		t.Fatalf("pending = %d, want 2", d.pending())
	}

	// A stale response — right peer and type, wrong nonce — must be
	// dropped, not delivered to either waiter.
	d.dispatch(peerA, &core.Message{Type: core.MsgAvailResp, Nonce: 8})
	// Wrong type with a matching nonce must be dropped too.
	d.dispatch(peerA, &core.Message{Type: core.MsgReportResp, Nonce: 7})
	// Right key from the wrong peer: dropped.
	d.dispatch(peerB, &core.Message{Type: core.MsgAvailResp, Nonce: 7})
	if got := d.staleCount(); got != 3 {
		t.Errorf("staleCount = %d, want 3", got)
	}
	select {
	case m := <-chA:
		t.Fatalf("waiter A received uncorrelated message %+v", m)
	case m := <-chB:
		t.Fatalf("waiter B received uncorrelated message %+v", m)
	default:
	}

	// Exact matches are delivered to their own waiters.
	d.dispatch(peerB, &core.Message{Type: core.MsgAvailResp, Nonce: 9, Avail: 0.5})
	d.dispatch(peerA, &core.Message{Type: core.MsgAvailResp, Nonce: 7, Avail: 1})
	if m := <-chA; m.Avail != 1 {
		t.Errorf("waiter A got %+v", m)
	}
	if m := <-chB; m.Avail != 0.5 {
		t.Errorf("waiter B got %+v", m)
	}
	if d.pending() != 0 {
		t.Errorf("pending = %d after delivery, want 0", d.pending())
	}
	// Delivery unregisters: a duplicate of an answered response is
	// stale, and cancel after delivery is a no-op.
	d.dispatch(peerA, &core.Message{Type: core.MsgAvailResp, Nonce: 7})
	if got := d.staleCount(); got != 4 {
		t.Errorf("staleCount after replay = %d, want 4", got)
	}
	d.cancel(respKey{peer: peerA, typ: core.MsgAvailResp, nonce: 7})
}

func TestQueryTimerExpiredFastPath(t *testing.T) {
	qt := newQueryTimer(time.Now().Add(-time.Second))
	defer qt.stop()

	// Expired with no answer pending: immediate timeout, no timer armed.
	ch := make(chan *core.Message, 1)
	if _, err := qt.wait(ch); !errors.Is(err, ErrQueryTimeout) {
		t.Fatalf("expired wait returned %v, want ErrQueryTimeout", err)
	}
	if qt.timer != nil {
		t.Error("expired fast path armed a timer")
	}

	// Expired but the answer already arrived: still delivered.
	ch <- &core.Message{Type: core.MsgAvailResp, Avail: 1}
	m, err := qt.wait(ch)
	if err != nil || m.Avail != 1 {
		t.Fatalf("expired wait with buffered answer = (%+v, %v)", m, err)
	}
}

func TestQueryTimerReuse(t *testing.T) {
	qt := newQueryTimer(time.Now().Add(5 * time.Second))
	defer qt.stop()
	ch := make(chan *core.Message, 1)
	for i := 0; i < 3; i++ {
		ch <- &core.Message{Seq: uint64(i)}
		m, err := qt.wait(ch)
		if err != nil || m.Seq != uint64(i) {
			t.Fatalf("wait %d = (%+v, %v)", i, m, err)
		}
	}
	timer := qt.timer
	if timer == nil {
		t.Fatal("no timer allocated across live waits")
	}
	ch <- &core.Message{Seq: 99}
	if m, _ := qt.wait(ch); m.Seq != 99 || qt.timer != timer {
		t.Error("timer not reused across waits")
	}
}

func TestMinNonZero(t *testing.T) {
	tests := []struct{ l, n, want int }{
		{0, 5, 5},  // l=0 means "all reported"
		{-1, 5, 5}, // negative behaves like zero
		{3, 5, 3},  // honest minimum passes through
		{7, 5, 5},  // l > len(report) clamps to the report size
		{1, 0, 0},  // empty report
		{0, 0, 0},
	}
	for _, tt := range tests {
		if got := minNonZero(tt.l, tt.n); got != tt.want {
			t.Errorf("minNonZero(%d, %d) = %d, want %d", tt.l, tt.n, got, tt.want)
		}
	}
}

func TestVerifyReportEdgeCases(t *testing.T) {
	scheme, err := NewSelector(HashMD5, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	subject := MustParseID(t, "10.0.0.1:9")
	mon1 := MustParseID(t, "10.0.0.2:9")
	mon2 := MustParseID(t, "10.0.0.3:9")
	// K=N makes every pair related, so mon1/mon2 verify.

	t.Run("l=0 accepts any honest report", func(t *testing.T) {
		verified, err := VerifyReport(scheme, subject, []ID{mon1, mon2}, minNonZero(0, 2))
		if err != nil || len(verified) != 2 {
			t.Errorf("verified=%v err=%v", verified, err)
		}
		// Even an empty report verifies when nothing is required.
		if _, err := VerifyReport(scheme, subject, nil, minNonZero(0, 0)); err != nil {
			t.Errorf("empty report with l=0 rejected: %v", err)
		}
	})
	t.Run("l greater than report length", func(t *testing.T) {
		// Raw VerifyReport with minimum > len is short…
		_, err := VerifyReport(scheme, subject, []ID{mon1}, 3)
		var re *core.ReportError
		if !errors.As(err, &re) || !re.Short {
			t.Errorf("want Short ReportError, got %v", err)
		}
		// …but the query path clamps via minNonZero, accepting the
		// monitors that do exist.
		verified, err := VerifyReport(scheme, subject, []ID{mon1}, minNonZero(3, 1))
		if err != nil || len(verified) != 1 {
			t.Errorf("clamped verify = (%v, %v)", verified, err)
		}
	})
	t.Run("duplicate monitor IDs are bogus", func(t *testing.T) {
		_, err := VerifyReport(scheme, subject, []ID{mon1, mon1, mon2}, 3)
		var re *core.ReportError
		if !errors.As(err, &re) {
			t.Fatalf("duplicate-padded report accepted (err=%v)", err)
		}
		if len(re.Bogus) != 1 || re.Bogus[0] != mon1 {
			t.Errorf("Bogus = %v, want the duplicated entry", re.Bogus)
		}
	})
}

func TestAnswerCache(t *testing.T) {
	base := time.Unix(1000, 0)
	ttl := 100 * time.Millisecond
	c := NewAnswerCache(ttl, 2)
	s1 := MustParseID(t, "10.0.0.1:1")
	s2 := MustParseID(t, "10.0.0.2:1")
	s3 := MustParseID(t, "10.0.0.3:1")
	r1 := &AvailabilityReport{Subject: s1, Mean: 0.5}

	if _, ok := c.Get(s1, base); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(r1, base)
	if got, ok := c.Get(s1, base.Add(ttl/2)); !ok || got != r1 {
		t.Fatalf("fresh entry = (%v, %v), want the stored report", got, ok)
	}
	// At and past the TTL the entry is expired and evicted.
	if _, ok := c.Get(s1, base.Add(ttl)); ok {
		t.Error("expired entry served")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 1 hit, 2 misses, 0 entries", st)
	}

	// Capacity bound: the third distinct subject triggers an epoch
	// flush, after which only the newcomer remains.
	c.Put(&AvailabilityReport{Subject: s1}, base)
	c.Put(&AvailabilityReport{Subject: s2}, base)
	c.Put(&AvailabilityReport{Subject: s3}, base)
	st = c.Stats()
	if st.Flushes != 1 || st.Entries != 1 {
		t.Errorf("after overflow stats = %+v, want 1 flush, 1 entry", st)
	}
	if _, ok := c.Get(s3, base); !ok {
		t.Error("entry stored after flush missing")
	}
	// Re-putting an existing subject must not flush.
	c.Put(&AvailabilityReport{Subject: s3, Mean: 1}, base)
	if st = c.Stats(); st.Flushes != 1 {
		t.Errorf("overwrite flushed: %+v", st)
	}

	c.Reset()
	if st = c.Stats(); st.Entries != 0 || st.Flushes != 2 {
		t.Errorf("after Reset stats = %+v", st)
	}
	if c.TTL() != ttl {
		t.Errorf("TTL() = %v, want %v", c.TTL(), ttl)
	}
}

func TestAnswerCacheConcurrent(t *testing.T) {
	c := NewAnswerCache(time.Hour, 64)
	now := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids.Sim(i % 100)
				c.Put(&AvailabilityReport{Subject: id}, now)
				c.Get(id, now)
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Hits == 0 {
		t.Errorf("no hits under concurrent load: %+v", st)
	}
}

func TestServiceStopOrderings(t *testing.T) {
	newService := func(t *testing.T) *Service {
		t.Helper()
		s, err := NewService(ServiceConfig{
			Addr: fmt.Sprintf("127.0.0.1:%d", 26000+rand.Intn(2000)),
			N:    4,
			Options: NodeOptions{
				K: 2, CVS: 2, Period: time.Second, MonitorPeriod: time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	t.Run("stop twice", func(t *testing.T) {
		s := newService(t)
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		s.Stop()
		s.Stop() // must not panic on a second close or hang in Wait
	})
	t.Run("stop before start", func(t *testing.T) {
		s := newService(t)
		s.Stop() // nothing launched: must return, not deadlock
		s.Stop()
	})
	t.Run("start after stop", func(t *testing.T) {
		s := newService(t)
		s.Stop()
		if err := s.Start(); err == nil {
			t.Error("Start after Stop succeeded; goroutines would leak on a closed socket")
			s.Stop()
		}
	})
	t.Run("concurrent stops", func(t *testing.T) {
		s := newService(t)
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); s.Stop() }()
		}
		wg.Wait()
	})
}

func TestServiceQueryBatchEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network test")
	}
	opts := NodeOptions{
		K:             4,
		CVS:           4,
		Period:        50 * time.Millisecond,
		MonitorPeriod: 50 * time.Millisecond,
	}
	services := newLocalServices(t, 6, opts)
	subject, querier := waitForQueryableSubject(t, services)

	ghost := MustParseID(t, "127.0.0.1:1")
	answers := querier.QueryBatch([]ID{subject.ID(), ghost}, 1, 5*time.Second)
	if len(answers) != 2 {
		t.Fatalf("QueryBatch returned %d answers, want 2", len(answers))
	}
	if answers[0].Subject != subject.ID() || answers[1].Subject != ghost {
		t.Fatal("answers not in subject order")
	}
	if answers[0].Err != nil || answers[0].Report == nil {
		t.Fatalf("live subject failed: %v", answers[0].Err)
	}
	if got := answers[0].Report; got.Mean < 0.5 || got.Mean > 1 || len(got.Monitors) == 0 {
		t.Errorf("batch report = %+v, want mean near 1 with monitors", got)
	}
	if answers[1].Err == nil {
		t.Error("ghost subject produced an answer")
	}
}

func TestServiceQueryCache(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network test")
	}
	opts := NodeOptions{
		K:             4,
		CVS:           4,
		Period:        50 * time.Millisecond,
		MonitorPeriod: 50 * time.Millisecond,
	}
	base := 30000 + rand.Intn(20000)
	services := make([]*Service, 0, 6)
	for i := 0; i < 6; i++ {
		cfg := ServiceConfig{
			Addr:          fmt.Sprintf("127.0.0.1:%d", base+i),
			N:             6,
			Options:       opts,
			Seed:          int64(i + 1),
			QueryCache:    true,
			QueryCacheTTL: time.Hour, // answers stay fresh for the whole test
		}
		if i > 0 {
			cfg.Bootstrap = fmt.Sprintf("127.0.0.1:%d", base)
		}
		s, err := NewService(cfg)
		if err != nil {
			t.Fatalf("NewService %d: %v", i, err)
		}
		services = append(services, s)
		t.Cleanup(s.Stop)
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
	}
	subject, querier := waitForQueryableSubject(t, services)

	first, err := querier.QueryAvailability(subject.ID(), 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	second, err := querier.QueryAvailability(subject.ID(), 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Error("second query within the TTL did not return the cached report")
	}
	st, ok := querier.QueryCacheStats()
	if !ok || st.Hits == 0 {
		t.Errorf("cache stats = (%+v, %v), want hits > 0", st, ok)
	}
	// QueryBatch serves the same cache.
	answers := querier.QueryBatch([]ID{subject.ID()}, 1, 5*time.Second)
	if answers[0].Report != first {
		t.Error("QueryBatch missed the cached report")
	}
}
