package avmon

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"avmon/internal/core"
	"avmon/internal/ids"
	"avmon/internal/netstack"
)

// Transport is the pluggable datagram layer beneath a Service: the
// protocol core's best-effort Send, a blocking receive loop, and a
// Close that unblocks it. netstack.UDPTransport (real UDP sockets)
// and memnet.Transport (in-process loopback with injected latency and
// loss) both implement it, so the same Service — and the same
// conformance assertions — run over either network.
type Transport interface {
	core.Transport
	// Serve reads datagrams and invokes handle for each valid message
	// until Close; malformed datagrams are counted and dropped.
	Serve(handle func(from ids.ID, m *core.Message)) error
	// Close shuts the transport down and unblocks Serve.
	Close() error
}

// Clock supplies a Service's notion of protocol time: Now stamps
// protocol events (joins, ticks, incoming messages) and Ticker drives
// the periodic protocol loops. Injecting a clock lets harnesses and
// tests accelerate or script protocol periods; nil selects the wall
// clock (time.Now / time.NewTicker). The query plane always uses wall
// time for its network deadlines.
type Clock interface {
	// Now returns the current protocol time.
	Now() time.Time
	// Ticker returns a channel delivering a tick roughly every period
	// and a stop function releasing the ticker's resources.
	Ticker(period time.Duration) (<-chan time.Time, func())
}

// wallClock is the default Clock: real time.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) Ticker(period time.Duration) (<-chan time.Time, func()) {
	t := time.NewTicker(period)
	return t.C, t.Stop
}

// ServiceConfig parameterizes a real-network AVMON node.
type ServiceConfig struct {
	// Addr is this node's bind address and identity, "a.b.c.d:port".
	Addr string
	// Bootstrap is an existing node's address, empty for the first
	// node of a deployment.
	Bootstrap string
	// N is the expected stable system size (the protocol parameter).
	N int
	// Options are the per-node protocol knobs. Hash defaults to MD5
	// (the paper's choice) for real deployments.
	Options NodeOptions
	// Seed seeds the node's private randomness; 0 uses the clock.
	Seed int64
	// QueryCache enables the bounded availability-answer cache on the
	// query path: a verified report younger than the cache TTL is
	// served without any network traffic. Cached reports are shared
	// between callers and must be treated as read-only.
	QueryCache bool
	// QueryCacheTTL overrides the cache's answer lifetime; 0 ties it
	// to the node's monitoring period (an estimate cannot change
	// faster than monitors sample, so that is the natural freshness
	// horizon).
	QueryCacheTTL time.Duration
	// QueryCacheEntries bounds the cache; 0 selects
	// DefaultAnswerCacheEntries.
	QueryCacheEntries int
	// Transport overrides the datagram layer. Nil binds a real UDP
	// socket on Addr (netstack.Listen); non-nil injects any Transport
	// — e.g. a memnet loopback endpoint — which must be bound to the
	// same identity as Addr. Once NewService succeeds the Service owns
	// the transport and closes it on Stop; if NewService fails, an
	// injected transport is left open for the caller to close.
	Transport Transport
	// Clock overrides the Service's protocol time source (nil = the
	// wall clock). Harnesses inject accelerated clocks to compress
	// protocol periods without touching the system clock.
	Clock Clock
}

// Service runs one AVMON node over UDP: a receive loop plus protocol
// and monitoring tickers, all serialized onto the single-threaded
// protocol core. Create with NewService, then Start; Stop shuts down
// the socket and all goroutines.
type Service struct {
	cfg       ServiceConfig
	node      *core.Node
	transport Transport
	clock     Clock
	bootstrap ids.ID

	// disp routes query responses to their callers by correlation key;
	// answers holds the optional bounded TTL answer cache (nil when
	// disabled). nonceBase/nonceCtr generate per-query nonces.
	disp      *respDispatcher
	answers   *AnswerCache
	nonceBase uint64
	nonceCtr  uint64 // atomic

	mu      sync.Mutex // serializes node access
	started bool
	stopped bool

	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
}

// NewService validates the configuration and binds the UDP socket.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("avmon: ServiceConfig.N must be positive")
	}
	id, err := ids.Parse(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("avmon: bad Addr: %w", err)
	}
	var bootstrap ids.ID
	if cfg.Bootstrap != "" {
		bootstrap, err = ids.Parse(cfg.Bootstrap)
		if err != nil {
			return nil, fmt.Errorf("avmon: bad Bootstrap: %w", err)
		}
	}
	if cfg.Options.Hash == "" {
		cfg.Options.Hash = HashMD5
	}
	scheme, err := NewSelector(cfg.Options.Hash, cfg.Options.kFor(cfg.N), cfg.N)
	if err != nil {
		return nil, err
	}
	transport := cfg.Transport
	ownsTransport := false
	if transport == nil {
		t, err := netstack.Listen(id)
		if err != nil {
			return nil, err
		}
		transport = t
		ownsTransport = true
	} else if ident, ok := transport.(interface{ ID() ids.ID }); ok && ident.ID() != id {
		return nil, fmt.Errorf("avmon: injected transport is bound to %v, not Addr %v", ident.ID(), id)
	}
	// From here on every failure must release a transport we created,
	// or the socket leaks and the address stays unbindable.
	fail := func(err error) (*Service, error) {
		if ownsTransport {
			_ = transport.Close()
		}
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	node, err := core.NewNode(core.Config{
		ID:            id,
		Scheme:        scheme,
		Transport:     transport,
		Rand:          rand.New(rand.NewSource(seed)), // all node access is serialized by s.mu
		CVS:           cfg.Options.cvsFor(cfg.N),
		Period:        cfg.Options.Period,
		MonitorPeriod: cfg.Options.MonitorPeriod,
		Forgetful:     cfg.Options.Forgetful,
		ForgetfulTau:  cfg.Options.ForgetfulTau,
		ForgetfulC:    cfg.Options.ForgetfulC,
		PR2:           cfg.Options.PR2,
		HistoryStyle:  cfg.Options.HistoryStyle,
	})
	if err != nil {
		return fail(err)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = wallClock{}
	}
	s := &Service{
		cfg:       cfg,
		node:      node,
		transport: transport,
		clock:     clock,
		bootstrap: bootstrap,
		disp:      newRespDispatcher(),
		nonceBase: mix64(uint64(seed)),
		stop:      make(chan struct{}),
	}
	// The dispatcher is the node's single, permanent response handler;
	// individual queries subscribe per correlation key instead of
	// re-pointing the hook (which raced under concurrent queries).
	node.SetResponseHandler(s.disp.dispatch)
	if cfg.QueryCache {
		ttl := cfg.QueryCacheTTL
		if ttl <= 0 {
			ttl = node.Config().MonitorPeriod
		}
		s.answers = NewAnswerCache(ttl, cfg.QueryCacheEntries)
	}
	return s, nil
}

// nextNonce returns a fresh query-correlation nonce. Nonces are drawn
// from a mixed atomic counter so concurrent queries never collide, and
// never zero (protocol messages leave the nonce field zero).
func (s *Service) nextNonce() uint64 {
	n := mix64(s.nonceBase + atomic.AddUint64(&s.nonceCtr, 1))
	if n == 0 {
		n = 1
	}
	return n
}

// mix64 is the splitmix64 finalizer: a bijective avalanche mix, so
// sequential counter values map to well-spread nonces.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ID returns the service's identity.
func (s *Service) ID() ID { return s.node.ID() }

// Start joins the system and launches the receive loop and protocol
// tickers. It returns immediately. Starting twice, or starting after
// Stop, returns an error without launching anything.
func (s *Service) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("avmon: service already started")
	}
	if s.stopped {
		s.mu.Unlock()
		return fmt.Errorf("avmon: service already stopped")
	}
	s.started = true
	s.node.Join(s.clock.Now(), s.bootstrap)
	cfg := s.node.Config()
	// All WaitGroup Adds happen inside this critical section: a
	// concurrent Stop can only observe started=true after we release
	// the lock, so its Wait never races an Add.
	s.done.Add(3)
	s.mu.Unlock()

	go func() {
		defer s.done.Done()
		_ = s.transport.Serve(func(from ID, m *core.Message) {
			s.mu.Lock()
			s.node.Handle(from, m, s.clock.Now())
			s.mu.Unlock()
		})
	}()
	go s.runTicker(cfg.Period, s.node.Tick)
	go s.runTicker(cfg.MonitorPeriod, s.node.MonitorTick)
	return nil
}

// runTicker drives one protocol ticker until Stop. The caller accounts
// for it in the done WaitGroup before spawning.
func (s *Service) runTicker(period time.Duration, fn func(time.Time)) {
	defer s.done.Done()
	ticks, stop := s.clock.Ticker(period)
	defer stop()
	for {
		select {
		case <-ticks:
			s.mu.Lock()
			fn(s.clock.Now())
			s.mu.Unlock()
		case <-s.stop:
			return
		}
	}
}

// Stop leaves the system and shuts down all goroutines and the socket.
// It is idempotent: repeated Stops, Stop before Start, and Stop racing
// Start are all safe (a Start losing the race returns an error instead
// of launching).
func (s *Service) Stop() {
	s.mu.Lock()
	wasStopped := s.stopped
	s.stopped = true
	if !wasStopped && s.started {
		s.node.Leave(s.clock.Now())
	}
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	_ = s.transport.Close() // idempotent at the socket layer
	s.done.Wait()
}

// QueryCacheStats returns the answer-cache counters; ok is false when
// the cache is disabled.
func (s *Service) QueryCacheStats() (stats AnswerCacheStats, ok bool) {
	if s.answers == nil {
		return AnswerCacheStats{}, false
	}
	return s.answers.Stats(), true
}

// DroppedResponses reports how many uncorrelated query responses the
// dispatcher discarded: stale answers arriving after their query timed
// out, or replays whose nonce matched no outstanding query.
func (s *Service) DroppedResponses() uint64 { return s.disp.staleCount() }

// Monitors returns this node's currently discovered pinging set.
func (s *Service) Monitors() []ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node.PS()
}

// Targets returns the nodes this node currently monitors.
func (s *Service) Targets() []ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node.TS()
}

// ReportMonitors applies the l-out-of-K reporting policy.
func (s *Service) ReportMonitors(count int) []ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node.ReportMonitors(count)
}

// EstimateOf returns this node's availability estimate for a node it
// monitors.
func (s *Service) EstimateOf(target ID) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node.EstimateOf(target)
}

// Stats returns a coarse protocol snapshot.
func (s *Service) Stats() (psSize, tsSize, cvSize int, hashChecks uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.node.PS()), len(s.node.TS()), len(s.node.CV()), s.node.HashChecks()
}
