package avmon

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"avmon/internal/core"
	"avmon/internal/ids"
	"avmon/internal/netstack"
)

// ServiceConfig parameterizes a real-network AVMON node.
type ServiceConfig struct {
	// Addr is this node's bind address and identity, "a.b.c.d:port".
	Addr string
	// Bootstrap is an existing node's address, empty for the first
	// node of a deployment.
	Bootstrap string
	// N is the expected stable system size (the protocol parameter).
	N int
	// Options are the per-node protocol knobs. Hash defaults to MD5
	// (the paper's choice) for real deployments.
	Options NodeOptions
	// Seed seeds the node's private randomness; 0 uses the clock.
	Seed int64
}

// Service runs one AVMON node over UDP: a receive loop plus protocol
// and monitoring tickers, all serialized onto the single-threaded
// protocol core. Create with NewService, then Start; Stop shuts down
// the socket and all goroutines.
type Service struct {
	cfg       ServiceConfig
	node      *core.Node
	transport *netstack.UDPTransport
	bootstrap ids.ID

	mu      sync.Mutex // serializes node access
	started bool

	stop chan struct{}
	done sync.WaitGroup
}

// NewService validates the configuration and binds the UDP socket.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("avmon: ServiceConfig.N must be positive")
	}
	id, err := ids.Parse(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("avmon: bad Addr: %w", err)
	}
	var bootstrap ids.ID
	if cfg.Bootstrap != "" {
		bootstrap, err = ids.Parse(cfg.Bootstrap)
		if err != nil {
			return nil, fmt.Errorf("avmon: bad Bootstrap: %w", err)
		}
	}
	if cfg.Options.Hash == "" {
		cfg.Options.Hash = HashMD5
	}
	scheme, err := NewSelector(cfg.Options.Hash, cfg.Options.kFor(cfg.N), cfg.N)
	if err != nil {
		return nil, err
	}
	transport, err := netstack.Listen(id)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	node, err := core.NewNode(core.Config{
		ID:            id,
		Scheme:        scheme,
		Transport:     transport,
		Rand:          rand.New(rand.NewSource(seed)), // all node access is serialized by s.mu
		CVS:           cfg.Options.cvsFor(cfg.N),
		Period:        cfg.Options.Period,
		MonitorPeriod: cfg.Options.MonitorPeriod,
		Forgetful:     cfg.Options.Forgetful,
		ForgetfulTau:  cfg.Options.ForgetfulTau,
		ForgetfulC:    cfg.Options.ForgetfulC,
		PR2:           cfg.Options.PR2,
		HistoryStyle:  cfg.Options.HistoryStyle,
	})
	if err != nil {
		_ = transport.Close()
		return nil, err
	}
	return &Service{
		cfg:       cfg,
		node:      node,
		transport: transport,
		bootstrap: bootstrap,
		stop:      make(chan struct{}),
	}, nil
}

// ID returns the service's identity.
func (s *Service) ID() ID { return s.node.ID() }

// Start joins the system and launches the receive loop and protocol
// tickers. It returns immediately.
func (s *Service) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("avmon: service already started")
	}
	s.started = true
	s.node.Join(time.Now(), s.bootstrap)
	s.mu.Unlock()

	s.done.Add(1)
	go func() {
		defer s.done.Done()
		_ = s.transport.Serve(func(from ID, m *core.Message) {
			s.mu.Lock()
			s.node.Handle(from, m, time.Now())
			s.mu.Unlock()
		})
	}()

	cfg := s.node.Config()
	s.runTicker(cfg.Period, s.node.Tick)
	s.runTicker(cfg.MonitorPeriod, s.node.MonitorTick)
	return nil
}

func (s *Service) runTicker(period time.Duration, fn func(time.Time)) {
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				s.mu.Lock()
				fn(now)
				s.mu.Unlock()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop leaves the system and shuts down all goroutines and the socket.
// It is safe to call once.
func (s *Service) Stop() {
	s.mu.Lock()
	s.node.Leave(time.Now())
	s.mu.Unlock()
	close(s.stop)
	_ = s.transport.Close()
	s.done.Wait()
}

// Monitors returns this node's currently discovered pinging set.
func (s *Service) Monitors() []ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node.PS()
}

// Targets returns the nodes this node currently monitors.
func (s *Service) Targets() []ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node.TS()
}

// ReportMonitors applies the l-out-of-K reporting policy.
func (s *Service) ReportMonitors(count int) []ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node.ReportMonitors(count)
}

// EstimateOf returns this node's availability estimate for a node it
// monitors.
func (s *Service) EstimateOf(target ID) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.node.EstimateOf(target)
}

// Stats returns a coarse protocol snapshot.
func (s *Service) Stats() (psSize, tsSize, cvSize int, hashChecks uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.node.PS()), len(s.node.TS()), len(s.node.CV()), s.node.HashChecks()
}
