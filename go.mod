module avmon

go 1.22
