package avmon

import (
	"fmt"
	"time"

	"avmon/internal/churn"
	"avmon/internal/core"
	"avmon/internal/ids"
	"avmon/internal/sim"
	"avmon/internal/simnet"
	"avmon/internal/trace"
)

// ChurnModel drives node lifecycle events for a simulated cluster
// (STAT, SYNTH, SYNTH-BD, or a trace replay).
type ChurnModel = churn.Model

// NewSTATModel returns the static model: n nodes, no churn.
func NewSTATModel(n int) ChurnModel { return churn.NewSTAT(n) }

// NewSYNTHModel returns the paper's SYNTH model: exponential
// join/leave churn at the given per-hour rate (paper: 0.2), no births
// or deaths.
func NewSYNTHModel(n int, churnPerHour float64) (ChurnModel, error) {
	return churn.NewSYNTH(churn.SynthConfig{N: n, ChurnPerHour: churnPerHour})
}

// NewSYNTHBDModel returns SYNTH plus births and deaths at the given
// per-day fraction of N (paper: 0.2 for SYNTH-BD, 0.4 for SYNTH-BD2).
func NewSYNTHBDModel(n int, churnPerHour, birthDeathPerDay float64) (ChurnModel, error) {
	return churn.NewSYNTHBD(churn.SynthConfig{
		N:                n,
		ChurnPerHour:     churnPerHour,
		BirthDeathPerDay: birthDeathPerDay,
	})
}

// NewMixedModel returns a heterogeneous population: nStable nodes
// that are almost always up plus nFlaky nodes that churn heavily
// (≈33% availability). Availability-aware node selection — the
// paper's motivating applications — pays off exactly in this regime.
func NewMixedModel(nStable, nFlaky int) (ChurnModel, error) {
	return churn.NewMixed(churn.MixedConfig{NStable: nStable, NFlaky: nFlaky})
}

// NewPlanetLabModel returns a trace-driven model over a synthetic
// PlanetLab-like availability trace (N hosts, 1-second granularity,
// ≈91% availability; see DESIGN.md for the substitution rationale).
func NewPlanetLabModel(n int, duration time.Duration, seed int64) (ChurnModel, error) {
	return trace.NewModel(trace.GeneratePlanetLab(n, duration, seed))
}

// NewOvernetModel returns a trace-driven model over a synthetic
// Overnet-like churn trace (stable size n, 20-minute granularity,
// ≈20%/hour churn with ongoing births and deaths).
func NewOvernetModel(n int, duration time.Duration, seed int64) (ChurnModel, error) {
	return trace.NewModel(trace.GenerateOvernet(n, duration, seed))
}

// ClusterConfig parameterizes a simulated AVMON deployment.
type ClusterConfig struct {
	// N is the protocol parameter N (expected stable system size).
	// Defaults to the churn model's StableN.
	N int
	// Seed makes the whole simulation deterministic.
	Seed int64
	// Options are the per-node protocol knobs.
	Options NodeOptions
	// OverreportFraction makes this fraction of nodes report 100%
	// availability for everything they monitor (Figure 20's attack).
	OverreportFraction float64
	// Latency is the constant one-way message latency (default 50ms).
	Latency time.Duration
	// Loss is an independent per-message drop probability, for
	// failure-injection testing (default 0).
	Loss float64
}

// Traffic is a snapshot of one node's network counters.
type Traffic struct {
	MsgsOut      uint64
	MsgsIn       uint64
	BytesOut     uint64
	BytesIn      uint64
	UselessMsgs  uint64 // messages sent to currently-dead nodes
	UselessBytes uint64
}

// MemberStats is a snapshot of one simulated node's protocol state.
type MemberStats struct {
	Alive           bool
	Dead            bool // left for good
	EverBorn        bool
	PSSize          int
	TSSize          int
	CVSize          int
	MemoryEntries   int
	HashChecks      uint64
	DiscoveryTimes  []time.Duration // birth → i-th monitor discovered
	Traffic         Traffic
	MonPingsSent    uint64
	MonAcks         uint64
	PingsSaved      uint64
	UselessMonPings uint64        // monitoring pings sent while the target was dead
	BornAtOffset    time.Duration // birth time relative to the simulation epoch
	UpTime          time.Duration // cumulative time alive
	LifeTime        time.Duration // birth → now (zero if never born)
}

// TrueAvailability is the node's actual fraction of lifetime spent
// alive (the ground truth for Figures 17 and 20).
func (s MemberStats) TrueAvailability() float64 {
	if s.LifeTime <= 0 {
		return 0
	}
	return float64(s.UpTime) / float64(s.LifeTime)
}

// member is one simulated node plus its harness state.
type member struct {
	node *core.Node
	ep   *simnet.Endpoint

	tick *sim.Ticker
	mon  *sim.Ticker

	everBorn bool
	dead     bool
	bornAt   time.Time
	upSince  time.Time // valid while alive
	upTotal  time.Duration

	uselessMonPings uint64 // monitoring pings sent to dead targets
}

// transport adapts a simnet endpoint to core.Transport, counting
// monitoring pings aimed at currently-dead targets (the "useless
// pings" of Figure 18).
type transport struct {
	net *simnet.Network
	ep  *simnet.Endpoint
	m   *member
}

func (t transport) Send(to ids.ID, m *core.Message) {
	if m.Type == core.MsgMonPing && !t.net.Alive(to) {
		t.m.uselessMonPings++
	}
	t.ep.Send(to, m, m.WireSize())
}

// Cluster is a fully simulated AVMON deployment: a discrete-event
// engine, a simulated network, a churn model, and one protocol node
// per simulated host. It is the substrate for every experiment in
// EXPERIMENTS.md and is deterministic for a given seed.
type Cluster struct {
	cfg     ClusterConfig
	eng     *sim.Engine
	net     *simnet.Network
	scheme  SelectionScheme
	model   ChurnModel
	members []*member
	k       int
	cvs     int
}

var _ churn.Driver = (*Cluster)(nil)

// NewCluster builds a cluster driven by the given churn model. The
// model must be freshly constructed (Install is called here).
func NewCluster(cfg ClusterConfig, model ChurnModel) (*Cluster, error) {
	if model == nil {
		return nil, fmt.Errorf("avmon: nil churn model")
	}
	if cfg.N <= 0 {
		cfg.N = model.StableN()
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("avmon: cannot determine system size N")
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 50 * time.Millisecond
	}
	if cfg.OverreportFraction < 0 || cfg.OverreportFraction > 1 {
		return nil, fmt.Errorf("avmon: OverreportFraction %v outside [0,1]", cfg.OverreportFraction)
	}
	k := cfg.Options.kFor(cfg.N)
	scheme, err := cfg.Options.simScheme(k, cfg.N)
	if err != nil {
		return nil, err
	}
	eng := sim.New(cfg.Seed)
	c := &Cluster{
		cfg:    cfg,
		eng:    eng,
		net:    simnet.New(eng, simnet.WithLatency(simnet.ConstantLatency(cfg.Latency)), simnet.WithLoss(cfg.Loss)),
		scheme: scheme,
		model:  model,
		k:      k,
		cvs:    cfg.Options.cvsFor(cfg.N),
	}
	model.Install(eng, c)
	return c, nil
}

// --- churn.Driver ----------------------------------------------------

// Birth implements churn.Driver.
func (c *Cluster) Birth(idx int) {
	for len(c.members) <= idx {
		c.members = append(c.members, nil)
	}
	if c.members[idx] != nil {
		return // model misuse; ignore
	}
	id := ids.Sim(idx)
	m := &member{}
	ep, err := c.net.Attach(id, func(from ids.ID, msg any, _ int) {
		cm, ok := msg.(*core.Message)
		if !ok {
			return
		}
		m.node.Handle(from, cm, c.eng.Now())
	})
	if err != nil {
		return // duplicate identity; model misuse
	}
	m.ep = ep
	// One private random source per node: the compact 8-byte source
	// keeps 10^5-node populations from burning ~5 KB of generator
	// state each (≈ 500 MB at N = 100,000 with rand.NewSource).
	seed := c.cfg.Seed ^ (int64(idx)+1)*0x5851F42D4C957F2D
	rng := sim.CompactRand(seed)
	nodeCfg := core.Config{
		ID:               id,
		Scheme:           c.scheme,
		Transport:        transport{net: c.net, ep: ep, m: m},
		Rand:             rng,
		CVS:              c.cvs,
		Period:           c.cfg.Options.Period,
		MonitorPeriod:    c.cfg.Options.MonitorPeriod,
		Forgetful:        c.cfg.Options.Forgetful,
		ForgetfulTau:     c.cfg.Options.ForgetfulTau,
		ForgetfulC:       c.cfg.Options.ForgetfulC,
		PR2:              c.cfg.Options.PR2,
		HistoryStyle:     c.cfg.Options.HistoryStyle,
		Overreport:       rng.Float64() < c.cfg.OverreportFraction,
		DisableReshuffle: c.cfg.Options.DisableReshuffle,
		RejoinFullWeight: c.cfg.Options.RejoinFullWeight,
	}
	node, err := core.NewNode(nodeCfg)
	if err != nil {
		return // config was validated at cluster construction
	}
	m.node = node
	c.members[idx] = m
	c.bringUp(m)
	m.everBorn = true
	m.bornAt = c.eng.Now()
}

// Rejoin implements churn.Driver.
func (c *Cluster) Rejoin(idx int) {
	m := c.memberAt(idx)
	if m == nil || m.dead || m.ep.Alive() {
		return
	}
	c.bringUp(m)
}

// Leave implements churn.Driver.
func (c *Cluster) Leave(idx int) {
	m := c.memberAt(idx)
	if m == nil || !m.ep.Alive() {
		return
	}
	c.takeDown(m)
}

// Death implements churn.Driver.
func (c *Cluster) Death(idx int) {
	m := c.memberAt(idx)
	if m == nil {
		return
	}
	if m.ep.Alive() {
		c.takeDown(m)
	}
	m.dead = true
}

func (c *Cluster) bringUp(m *member) {
	now := c.eng.Now()
	m.ep.SetAlive(true)
	m.upSince = now
	bootstrap := c.net.RandomAlive(m.node.ID())
	m.node.Join(now, bootstrap)
	period := m.node.Config().Period
	monPeriod := m.node.Config().MonitorPeriod
	offTick := time.Duration(c.eng.Rand().Int63n(int64(period)))
	offMon := time.Duration(c.eng.Rand().Int63n(int64(monPeriod)))
	m.tick = c.eng.NewTicker(period, offTick, m.node.Tick)
	m.mon = c.eng.NewTicker(monPeriod, offMon, m.node.MonitorTick)
}

func (c *Cluster) takeDown(m *member) {
	now := c.eng.Now()
	m.node.Leave(now)
	m.ep.SetAlive(false)
	m.upTotal += now.Sub(m.upSince)
	if m.tick != nil {
		m.tick.Stop()
	}
	if m.mon != nil {
		m.mon.Stop()
	}
}

func (c *Cluster) memberAt(idx int) *member {
	if idx < 0 || idx >= len(c.members) {
		return nil
	}
	return c.members[idx]
}

// --- Public surface ---------------------------------------------------

// Run advances the simulation by d of virtual time.
func (c *Cluster) Run(d time.Duration) { c.eng.RunFor(d) }

// Elapsed returns the virtual time since the simulation epoch.
func (c *Cluster) Elapsed() time.Duration { return c.eng.Elapsed() }

// Steps returns the number of simulation events executed so far
// (a deterministic measure of how much work the run performed).
func (c *Cluster) Steps() uint64 { return c.eng.Steps() }

// Scheme returns the cluster's selection scheme.
func (c *Cluster) Scheme() SelectionScheme { return c.scheme }

// K returns the effective pinging-set parameter.
func (c *Cluster) K() int { return c.k }

// CVS returns the effective coarse-view size.
func (c *Cluster) CVS() int { return c.cvs }

// Size returns the number of nodes ever created.
func (c *Cluster) Size() int { return len(c.members) }

// AliveCount returns the number of currently alive nodes.
func (c *Cluster) AliveCount() int {
	n := 0
	for _, m := range c.members {
		if m != nil && m.ep.Alive() {
			n++
		}
	}
	return n
}

// EnrollControl births count extra control-group nodes now, subject to
// the model's ongoing churn, and returns their indexes (the Figure 3
// methodology).
func (c *Cluster) EnrollControl(count int) []int {
	out := make([]int, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, c.model.Enroll())
	}
	return out
}

// IDOf returns the identity of node idx.
func (c *Cluster) IDOf(idx int) ID { return ids.Sim(idx) }

// IndexOf recovers a node's index from its identity; ok is false for
// identities that are not cluster members.
func (c *Cluster) IndexOf(id ID) (int, bool) {
	idx, ok := ids.SimIndex(id)
	if !ok || c.memberAt(idx) == nil {
		return 0, false
	}
	return idx, true
}

// MonitorsOf returns PS(idx) as currently discovered by node idx.
func (c *Cluster) MonitorsOf(idx int) []ID {
	m := c.memberAt(idx)
	if m == nil {
		return nil
	}
	return m.node.PS()
}

// CoarseViewOf returns node idx's current coarse view CV(idx).
func (c *Cluster) CoarseViewOf(idx int) []ID {
	m := c.memberAt(idx)
	if m == nil {
		return nil
	}
	return m.node.CV()
}

// TargetsOf returns TS(idx) as currently discovered by node idx.
func (c *Cluster) TargetsOf(idx int) []ID {
	m := c.memberAt(idx)
	if m == nil {
		return nil
	}
	return m.node.TS()
}

// ReportMonitors invokes the l-out-of-K reporting policy on node idx.
func (c *Cluster) ReportMonitors(idx, count int) []ID {
	m := c.memberAt(idx)
	if m == nil {
		return nil
	}
	return m.node.ReportMonitors(count)
}

// EstimateBy returns monitor idx's availability estimate of target.
func (c *Cluster) EstimateBy(idx int, target ID) (float64, bool) {
	m := c.memberAt(idx)
	if m == nil {
		return 0, false
	}
	return m.node.EstimateOf(target)
}

// Stats snapshots node idx's protocol and traffic state.
func (c *Cluster) Stats(idx int) MemberStats {
	m := c.memberAt(idx)
	if m == nil {
		return MemberStats{}
	}
	counters := m.ep.Counters()
	mon := m.node.MonitoringStats()
	up := m.upTotal
	if m.ep.Alive() {
		up += c.eng.Now().Sub(m.upSince)
	}
	var life time.Duration
	if m.everBorn {
		life = c.eng.Now().Sub(m.bornAt)
	}
	return MemberStats{
		Alive:          m.ep.Alive(),
		Dead:           m.dead,
		EverBorn:       m.everBorn,
		PSSize:         len(m.node.PS()),
		TSSize:         len(m.node.TS()),
		CVSize:         len(m.node.CV()),
		MemoryEntries:  m.node.MemoryEntries(),
		HashChecks:     m.node.HashChecks(),
		DiscoveryTimes: m.node.DiscoveryTimes(),
		Traffic: Traffic{
			MsgsOut:      counters.MsgsOut,
			MsgsIn:       counters.MsgsIn,
			BytesOut:     counters.BytesOut,
			BytesIn:      counters.BytesIn,
			UselessMsgs:  counters.UselessMsgs,
			UselessBytes: counters.UselessBytes,
		},
		MonPingsSent:    mon.PingsSent,
		MonAcks:         mon.Acks,
		PingsSaved:      mon.PingsSaved,
		UselessMonPings: m.uselessMonPings,
		BornAtOffset:    m.bornAt.Sub(sim.Epoch),
		UpTime:          up,
		LifeTime:        life,
	}
}

// ResetTraffic zeroes every node's traffic counters (call at the end
// of an experiment's warm-up phase).
func (c *Cluster) ResetTraffic() {
	for _, m := range c.members {
		if m != nil {
			m.ep.ResetCounters()
		}
	}
}
