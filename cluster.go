package avmon

import (
	"fmt"
	"sync/atomic"
	"time"

	"avmon/internal/churn"
	"avmon/internal/core"
	"avmon/internal/ids"
	"avmon/internal/sim"
	"avmon/internal/simnet"
	"avmon/internal/trace"
)

// ChurnModel drives node lifecycle events for a simulated cluster
// (STAT, SYNTH, SYNTH-BD, or a trace replay).
type ChurnModel = churn.Model

// NewSTATModel returns the static model: n nodes, no churn.
func NewSTATModel(n int) ChurnModel { return churn.NewSTAT(n) }

// NewSYNTHModel returns the paper's SYNTH model: exponential
// join/leave churn at the given per-hour rate (paper: 0.2), no births
// or deaths.
func NewSYNTHModel(n int, churnPerHour float64) (ChurnModel, error) {
	return churn.NewSYNTH(churn.SynthConfig{N: n, ChurnPerHour: churnPerHour})
}

// NewSYNTHBDModel returns SYNTH plus births and deaths at the given
// per-day fraction of N (paper: 0.2 for SYNTH-BD, 0.4 for SYNTH-BD2).
func NewSYNTHBDModel(n int, churnPerHour, birthDeathPerDay float64) (ChurnModel, error) {
	return churn.NewSYNTHBD(churn.SynthConfig{
		N:                n,
		ChurnPerHour:     churnPerHour,
		BirthDeathPerDay: birthDeathPerDay,
	})
}

// NewMixedModel returns a heterogeneous population: nStable nodes
// that are almost always up plus nFlaky nodes that churn heavily
// (≈33% availability). Availability-aware node selection — the
// paper's motivating applications — pays off exactly in this regime.
func NewMixedModel(nStable, nFlaky int) (ChurnModel, error) {
	return churn.NewMixed(churn.MixedConfig{NStable: nStable, NFlaky: nFlaky})
}

// NewHotspotModel returns a deliberately skewed population for
// scheduler experiments (the `skew` sweep): every stride-th node is
// "hot" (always up, carrying essentially all protocol traffic), the
// rest are "cold" (down ≈95% of the time). The model births nodes in
// index order, so node i owns lane i+1 and — under the round-robin
// lane partition with stride equal to the shard count — every hot node
// lands on shard 0: the adversarial assignment that lane rebalancing
// exists to fix.
func NewHotspotModel(n, stride int) (ChurnModel, error) {
	return churn.NewHotspot(churn.HotspotConfig{N: n, Stride: stride})
}

// ZoneOutage is one scheduled correlated fault of the zone-outage
// chaos model: zone Zone is down (failed or partitioned away) from
// Start to End of virtual time. See NewZoneOutageModel and
// ParseOutageSchedule.
type ZoneOutage = churn.ZoneOutage

// ParseOutageSchedule parses the textual zone-outage schedule format
// (comma-separated `zone@start+duration` entries, Go duration syntax;
// e.g. "1@30m+10m,2@1h+5m") used by avmon-bench and the chaos
// experiment.
func ParseOutageSchedule(s string) ([]ZoneOutage, error) {
	return churn.ParseOutageSchedule(s)
}

// NewZoneOutageModel returns the correlated zone-outage chaos model: n
// static nodes spread across zones zones (node index mod zones —
// exactly NewZoneLatency's node → zone mapping, so an outage takes out
// one latency-matrix row's worth of nodes), with whole zones killed
// and restored on the given schedule. Outage and heal are the
// partition-and-heal fault of the chaos experiment's zone-outage
// scenario.
func NewZoneOutageModel(n, zones int, schedule []ZoneOutage) (ChurnModel, error) {
	return churn.NewZoneOutage(churn.ZoneOutageConfig{N: n, Zones: zones, Schedule: schedule})
}

// StormConfig parameterizes the flash-crowd / mass-leave storm chaos
// model: a static ordered base population plus deterministic join and
// leave waves. See the chaos experiment's flash-crowd and mass-leave
// scenarios.
type StormConfig = churn.StormConfig

// NewStormModel returns the flash-crowd / mass-leave storm model.
// With both shocks zeroed it degenerates to an ordered static
// population — the storm scenarios' attack-off control arm.
func NewStormModel(cfg StormConfig) (ChurnModel, error) {
	return churn.NewStorm(cfg)
}

// NewPlanetLabModel returns a trace-driven model over a synthetic
// PlanetLab-like availability trace (N hosts, 1-second granularity,
// ≈91% availability; see DESIGN.md for the substitution rationale).
func NewPlanetLabModel(n int, duration time.Duration, seed int64) (ChurnModel, error) {
	return trace.NewModel(trace.GeneratePlanetLab(n, duration, seed))
}

// NewOvernetModel returns a trace-driven model over a synthetic
// Overnet-like churn trace (stable size n, 20-minute granularity,
// ≈20%/hour churn with ongoing births and deaths).
func NewOvernetModel(n int, duration time.Duration, seed int64) (ChurnModel, error) {
	return trace.NewModel(trace.GenerateOvernet(n, duration, seed))
}

// SchedulerConfig tunes the sharded engine's adaptive scheduler: lane
// rebalancing across shards, dynamic per-window lookahead horizons,
// and barrier batching. The zero value reproduces the original static
// scheduler (lockstep windows, a coordinator barrier per window, no
// migration). Every setting is a pure wall-clock knob: results are
// byte-identical to the serial engine under any configuration.
type SchedulerConfig = sim.SchedulerConfig

// SchedStats is a snapshot of the sharded engine's scheduler counters:
// windows and barriers executed, lane migrations, and per-shard
// steps/busy-time (see Cluster.SchedStats).
type SchedStats = sim.SchedStats

// ShardStats describes one shard's share of a sharded run (lanes
// owned, events executed, busy wall-clock time).
type ShardStats = sim.ShardStats

// DefaultSchedulerConfig returns the scheduler a sharded cluster runs
// with unless ClusterConfig.Scheduler says otherwise: dynamic
// lookahead, barrier batching, and lane rebalancing all enabled.
func DefaultSchedulerConfig() SchedulerConfig { return sim.DefaultSchedulerConfig() }

// StaticSchedulerConfig returns the all-off scheduler baseline:
// lockstep windows exactly one lookahead wide, a coordinator barrier
// after every window, round-robin lane assignment forever.
func StaticSchedulerConfig() SchedulerConfig { return sim.StaticSchedulerConfig() }

// ClusterConfig parameterizes a simulated AVMON deployment.
type ClusterConfig struct {
	// N is the protocol parameter N (expected stable system size).
	// Defaults to the churn model's StableN.
	N int
	// Seed makes the whole simulation deterministic.
	Seed int64
	// Shards is the number of parallel simulation shards for this one
	// run. 0 or 1 selects the serial engine; higher values partition
	// nodes across that many worker shards advancing in lockstep
	// lookahead windows (conservative parallel discrete-event
	// simulation). For one seed, results are byte-identical at any
	// value — see DESIGN.md, "Parallel simulation".
	Shards int
	// Scheduler tunes the sharded engine's per-barrier decisions (lane
	// rebalancing, dynamic lookahead, barrier batching — see DESIGN.md,
	// "Shard scheduler"). nil selects DefaultSchedulerConfig; an
	// explicit zero value selects the static baseline. Ignored when
	// Shards ≤ 1. Results are byte-identical under any setting.
	Scheduler *SchedulerConfig
	// Options are the per-node protocol knobs.
	Options NodeOptions
	// OverreportFraction makes this fraction of nodes report 100%
	// availability for everything they monitor (Figure 20's attack).
	OverreportFraction float64
	// Collusion, when non-nil, stages the collusion/eclipse attack: a
	// colluding ring of nodes that suppress or forge availability
	// reports for the victims they are assigned to monitor. nil — and
	// a config with Fraction 0 — leave every node honest and the run
	// byte-identical to one without the field (the chaos experiment's
	// control-arm gate).
	Collusion *CollusionConfig
	// Latency is the constant one-way message latency (default 50ms),
	// used when LatencyModel is nil.
	Latency time.Duration
	// LatencyModel, when non-nil, replaces the constant Latency with a
	// heterogeneous one-way latency distribution (lognormal, zone
	// matrix, …; see NewLognormalLatency and NewZoneLatency). Under
	// sharding the engine's lookahead window adapts to the model's
	// provable floor, MinLatency() — the adaptive-lookahead contract —
	// so the floor must be positive for Shards > 1. All draws come
	// from the sender's lane stream, so results stay byte-identical at
	// any shard count.
	LatencyModel LatencyModel
	// Loss is an independent per-message drop probability, for
	// failure-injection testing (default 0), used when LossModel is
	// nil.
	Loss float64
	// LossModel, when non-nil, replaces the independent Loss
	// probability with a stateful loss process (e.g. Gilbert-Elliott
	// burst loss; see NewGilbertElliottLoss). Per-sender channel state
	// is owned by the sender's lane, preserving determinism under
	// sharding.
	LossModel LossModel
}

// CollusionConfig parameterizes the collusion/eclipse attack of the
// chaos experiment (the adversary model of Section 4.3): a colluding
// ring that protects its own members while suppressing or forging the
// availability reports of everyone else it is assigned to monitor.
//
// Colluder membership is deterministic: the top ⌈Fraction·N⌉ indexes
// of the initial population collude, nodes born later (churn births,
// control enrollees) are honest. The attack therefore consumes no
// extra randomness, and a Fraction-0 (or nil) configuration is
// byte-identical to an attack-free run — the property the chaos
// experiment's control-arm gate enforces.
type CollusionConfig struct {
	// Fraction of the stable population N that colludes, in [0, 1].
	Fraction float64
	// SuppressPings makes colluders drop their monitoring duty toward
	// victims entirely: no MON pings, hence no availability history —
	// the eclipse half of the attack. A victim whose every alive
	// monitor colludes is fully eclipsed: nobody measures it.
	SuppressPings bool
	// ForgedAvail is the availability a colluder reports for every
	// victim it is asked about: 1 whitewashes (the overreporting
	// attack, mounted by a coordinated ring), 0 defames. A negative
	// value suppresses the report instead (the colluder claims not to
	// monitor the victim). Must be ≤ 1. Fellow colluders are always
	// reported honestly.
	ForgedAvail float64
}

// colluders returns how many nodes collude under this config at
// stable size n.
func (cc *CollusionConfig) colluders(n int) int {
	if cc == nil {
		return 0
	}
	return int(cc.Fraction*float64(n) + 0.5)
}

// Traffic is a snapshot of one node's network counters.
type Traffic struct {
	MsgsOut      uint64
	MsgsIn       uint64
	BytesOut     uint64
	BytesIn      uint64
	UselessMsgs  uint64 // messages that found their destination dead
	UselessBytes uint64
}

// MemberStats is a snapshot of one simulated node's protocol state.
type MemberStats struct {
	Alive           bool
	Dead            bool // left for good
	EverBorn        bool
	PSSize          int
	TSSize          int
	CVSize          int
	MemoryEntries   int
	HashChecks      uint64
	DiscoveryTimes  []time.Duration // birth → i-th monitor discovered
	Traffic         Traffic
	MonPingsSent    uint64
	MonAcks         uint64
	PingsSaved      uint64
	UselessMonPings uint64        // monitoring pings that found the target dead
	BornAtOffset    time.Duration // birth time relative to the simulation epoch
	UpTime          time.Duration // cumulative time alive
	LifeTime        time.Duration // birth → now (zero if never born)
}

// TrueAvailability is the node's actual fraction of lifetime spent
// alive (the ground truth for Figures 17 and 20).
func (s MemberStats) TrueAvailability() float64 {
	if s.LifeTime <= 0 {
		return 0
	}
	return float64(s.UpTime) / float64(s.LifeTime)
}

// member is one simulated node plus its harness state. Field ownership
// follows the engine's lane discipline: lifecycle bookkeeping (born,
// dead, uptime accounting) belongs to the control lane, protocol state
// (node, tickers) to the member's own lane, and uselessMonPings is
// updated atomically from arbitrary destination lanes. Stats reads
// everything while the engine is quiescent.
type member struct {
	node *core.Node
	ep   *simnet.Endpoint
	lane *sim.Lane

	// Owned by the member's lane:
	tick *sim.Ticker
	mon  *sim.Ticker

	// Owned by the control lane:
	everBorn bool
	dead     bool
	bornAt   time.Time
	upSince  time.Time // valid while alive
	upTotal  time.Duration

	// Updated atomically (see Cluster's undelivered callback):
	uselessMonPings uint64
}

// transport adapts a simnet endpoint to core.Transport. Monitoring
// pings that find their target dead (the "useless pings" of Figure 18)
// are counted by the cluster's undelivered callback at delivery time.
type transport struct {
	ep *simnet.Endpoint
}

func (t transport) Send(to ids.ID, m *core.Message) {
	t.ep.Send(to, m, m.WireSize())
}

// Cluster is a fully simulated AVMON deployment: a discrete-event
// engine (serial or sharded), a simulated network, a churn model, and
// one protocol node per simulated host. It is the substrate for every
// experiment in EXPERIMENTS.md and is deterministic for a given seed
// at any shard count.
type Cluster struct {
	cfg     ClusterConfig
	eng     sim.Sched
	net     *simnet.Network
	scheme  SelectionScheme
	model   ChurnModel
	members []*member
	k       int
	cvs     int
	// colludeFrom is the first colluding index: members with
	// idx ≥ colludeFrom (among the initial N) run the collusion
	// attack. Equal to cfg.N when nobody colludes.
	colludeFrom int
}

var _ churn.Driver = (*Cluster)(nil)

// NewCluster builds a cluster driven by the given churn model. The
// model must be freshly constructed (Install is called here).
func NewCluster(cfg ClusterConfig, model ChurnModel) (*Cluster, error) {
	if model == nil {
		return nil, fmt.Errorf("avmon: nil churn model")
	}
	if cfg.N <= 0 {
		cfg.N = model.StableN()
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("avmon: cannot determine system size N")
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 50 * time.Millisecond
	}
	if cfg.OverreportFraction < 0 || cfg.OverreportFraction > 1 {
		return nil, fmt.Errorf("avmon: OverreportFraction %v outside [0,1]", cfg.OverreportFraction)
	}
	if cc := cfg.Collusion; cc != nil {
		if cc.Fraction < 0 || cc.Fraction > 1 {
			return nil, fmt.Errorf("avmon: collusion Fraction %v outside [0,1]", cc.Fraction)
		}
		if cc.ForgedAvail > 1 {
			return nil, fmt.Errorf("avmon: ForgedAvail %v exceeds 1", cc.ForgedAvail)
		}
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	k := cfg.Options.kFor(cfg.N)
	scheme, err := cfg.Options.simScheme(k, cfg.N)
	if err != nil {
		return nil, err
	}
	latency := cfg.LatencyModel
	if latency == nil {
		if latency, err = simnet.NewConstantLatency(cfg.Latency); err != nil {
			return nil, fmt.Errorf("avmon: %w", err)
		}
	}
	loss := cfg.LossModel
	if loss == nil && cfg.Loss > 0 {
		if loss, err = simnet.NewBernoulliLoss(cfg.Loss); err != nil {
			return nil, fmt.Errorf("avmon: %w", err)
		}
	}
	var eng sim.Sched
	var sharded *sim.ShardedEngine
	if cfg.Shards > 1 {
		// Adaptive lookahead: the latency model's provable floor is the
		// minimum cross-node event distance, hence exactly the
		// conservative window width. A model without a positive floor
		// cannot run sharded.
		floor := latency.MinLatency()
		if floor <= 0 {
			return nil, fmt.Errorf(
				"avmon: latency model %T declares no positive MinLatency floor; cannot shard", latency)
		}
		sched := sim.DefaultSchedulerConfig()
		if cfg.Scheduler != nil {
			sched = *cfg.Scheduler
		}
		sharded, err = sim.NewShardedWithScheduler(cfg.Seed, cfg.Shards, floor, sched)
		if err != nil {
			return nil, fmt.Errorf("avmon: %w", err)
		}
		eng = sharded
	} else {
		eng = sim.New(cfg.Seed)
	}
	c := &Cluster{
		cfg:         cfg,
		eng:         eng,
		scheme:      scheme,
		model:       model,
		k:           k,
		cvs:         cfg.Options.cvsFor(cfg.N),
		colludeFrom: cfg.N - cfg.Collusion.colluders(cfg.N),
	}
	c.net, err = simnet.New(eng,
		simnet.WithLatencyModel(latency),
		simnet.WithLossModel(loss),
		simnet.WithUndelivered(c.undelivered))
	if err != nil {
		return nil, fmt.Errorf("avmon: %w", err)
	}
	if sharded != nil {
		// Dynamic-lookahead plumbing: the network exports the
		// conservative bound on its own cross-lane traffic, and the
		// scheduler widens per-shard horizons with it.
		sharded.SetCrossLaneBound(c.net.CrossLaneBound)
	}
	// One scratch instance per execution worker (the whole engine when
	// serial, one per shard when sharded) carries the sweep buffers and
	// the message freelist for every node that worker executes — per
	// worker, not per node, so a million-node run pays for a handful.
	eng.SetWorkerLocal(func() any { return &workerScratch{} })
	model.Install(eng, c)
	return c, nil
}

// workerScratch is the per-worker recycled state behind the cluster's
// allocation-free steady state: the protocol sweep buffers and a
// freelist of message envelopes. Messages migrate between workers with
// the traffic (acquired on the sender's worker, recycled on the
// receiver's), which stays balanced because steady-state traffic is
// dominated by request/response pairs.
type workerScratch struct {
	msgs  []*core.Message
	sweep core.SweepScratch
}

// scratchFor resolves the scratch of the worker currently executing
// lane l. Call only from l's own events (or while quiescent).
func (c *Cluster) scratchFor(l *sim.Lane) *workerScratch {
	ws, _ := c.eng.WorkerLocal(l).(*workerScratch)
	return ws
}

// undelivered runs on the destination's lane whenever a message finds
// its target dead; it attributes useless monitoring pings back to the
// sender (atomically — several destination shards may classify one
// sender's pings concurrently).
func (c *Cluster) undelivered(from *simnet.Endpoint, _ ids.ID, msg any, _ int) {
	cm, ok := msg.(*core.Message)
	if !ok || cm.Type != core.MsgMonPing {
		return
	}
	if m, ok := from.Tag().(*member); ok {
		atomic.AddUint64(&m.uselessMonPings, 1)
	}
}

// --- churn.Driver ----------------------------------------------------
//
// The driver methods run as control-lane events (or while the engine
// is quiescent). They mutate only control-owned state — the member
// table, the alive registry, uptime bookkeeping — and reach protocol
// state exclusively by posting events to the member's lane at the
// current virtual time. That split is what makes a sharded run
// byte-identical to a serial one: the bootstrap oracle and the churn
// randomness stay on one deterministic stream while node lanes
// progress in parallel.

// Birth implements churn.Driver.
func (c *Cluster) Birth(idx int) {
	for len(c.members) <= idx {
		c.members = append(c.members, nil)
	}
	if c.members[idx] != nil {
		return // model misuse; ignore
	}
	id := ids.Sim(idx)
	m := &member{}
	ep, err := c.net.Attach(id, func(from ids.ID, msg any, _ int, now time.Time) {
		cm, ok := msg.(*core.Message)
		if !ok {
			return
		}
		m.node.Handle(from, cm, now)
		// Receiver-side recycling: protocol envelopes are dead once
		// Handle returns (handlers copy whatever they keep). Query
		// messages are exempt — the response callback may retain them —
		// and are left to the garbage collector.
		if cm.Type <= core.MsgPR2 {
			if ws := c.scratchFor(m.lane); ws != nil {
				cm.Reset()
				ws.msgs = append(ws.msgs, cm)
			}
		}
	})
	if err != nil {
		return // duplicate identity; model misuse
	}
	ep.SetTag(m)
	m.ep = ep
	m.lane = ep.Lane()
	// One private random source per node: the compact 8-byte source
	// keeps 10^5-node populations from burning ~5 KB of generator
	// state each (≈ 500 MB at N = 100,000 with rand.NewSource).
	seed := c.cfg.Seed ^ (int64(idx)+1)*0x5851F42D4C957F2D
	rng := sim.CompactRand(seed)
	// The node draws envelopes and sweep scratch from whichever worker
	// is executing its lane; both calls happen only on that lane.
	acquireMsg := func() *core.Message {
		if ws := c.scratchFor(m.lane); ws != nil {
			if k := len(ws.msgs); k > 0 {
				msg := ws.msgs[k-1]
				ws.msgs = ws.msgs[:k-1]
				return msg
			}
		}
		return &core.Message{}
	}
	sweepScratch := func() *core.SweepScratch {
		if ws := c.scratchFor(m.lane); ws != nil {
			return &ws.sweep
		}
		return nil
	}
	nodeCfg := core.Config{
		ID:               id,
		Scheme:           c.scheme,
		Transport:        transport{ep: ep},
		Rand:             rng,
		CVS:              c.cvs,
		Period:           c.cfg.Options.Period,
		MonitorPeriod:    c.cfg.Options.MonitorPeriod,
		Forgetful:        c.cfg.Options.Forgetful,
		ForgetfulTau:     c.cfg.Options.ForgetfulTau,
		ForgetfulC:       c.cfg.Options.ForgetfulC,
		PR2:              c.cfg.Options.PR2,
		HistoryStyle:     c.cfg.Options.HistoryStyle,
		AcquireMessage:   acquireMsg,
		Scratch:          sweepScratch,
		Overreport:       rng.Float64() < c.cfg.OverreportFraction,
		DisableReshuffle: c.cfg.Options.DisableReshuffle,
		RejoinFullWeight: c.cfg.Options.RejoinFullWeight,
	}
	if cc := c.cfg.Collusion; cc != nil && c.IsColluder(idx) {
		// The colluder's hooks are pure functions of the target
		// identity (the ring roster is fixed at construction), so they
		// are safe to run on the member's lane under sharding. Fellow
		// colluders are treated honestly; everyone else is a victim.
		victim := func(target ids.ID) bool {
			ti, ok := ids.SimIndex(target)
			return ok && !c.IsColluder(ti)
		}
		if cc.SuppressPings {
			nodeCfg.SuppressMonPing = victim
		}
		forged := cc.ForgedAvail
		nodeCfg.ForgeReport = func(target ids.ID, est float64, known bool) (float64, bool) {
			if !victim(target) {
				return est, known
			}
			if forged < 0 {
				return 0, false
			}
			return forged, true
		}
	}
	node, err := core.NewNode(nodeCfg)
	if err != nil {
		return // config was validated at cluster construction
	}
	m.node = node
	c.members[idx] = m
	c.bringUp(m)
	m.everBorn = true
	m.bornAt = c.eng.Now()
}

// Rejoin implements churn.Driver.
func (c *Cluster) Rejoin(idx int) {
	m := c.memberAt(idx)
	if m == nil || m.dead || m.ep.Registered() {
		return
	}
	c.bringUp(m)
}

// Leave implements churn.Driver.
func (c *Cluster) Leave(idx int) {
	m := c.memberAt(idx)
	if m == nil || !m.ep.Registered() {
		return
	}
	c.takeDown(m)
}

// Death implements churn.Driver.
func (c *Cluster) Death(idx int) {
	m := c.memberAt(idx)
	if m == nil {
		return
	}
	if m.ep.Registered() {
		c.takeDown(m)
	}
	m.dead = true
}

// bringUp runs control-side: it registers the member alive, draws the
// bootstrap contact and ticker phases from the control stream, and
// posts the protocol-side join to the member's lane at the current
// virtual time.
func (c *Cluster) bringUp(m *member) {
	now := c.eng.Now()
	m.ep.SetAliveRegistry(true)
	m.upSince = now
	bootstrap := c.net.RandomAlive(m.node.ID())
	period := m.node.Config().Period
	monPeriod := m.node.Config().MonitorPeriod
	offTick := time.Duration(c.eng.Rand().Int63n(int64(period)))
	offMon := time.Duration(c.eng.Rand().Int63n(int64(monPeriod)))
	c.eng.Post(nil, m.lane, now, func(now time.Time) {
		m.ep.SetAliveFlag(true)
		m.node.Join(now, bootstrap)
		m.tick = c.eng.NewLaneTicker(m.lane, period, offTick, m.node.Tick)
		m.mon = c.eng.NewLaneTicker(m.lane, monPeriod, offMon, m.node.MonitorTick)
	})
}

// takeDown is bringUp's inverse: deregister and account uptime
// control-side, stop the protocol on the member's lane.
func (c *Cluster) takeDown(m *member) {
	now := c.eng.Now()
	m.ep.SetAliveRegistry(false)
	m.upTotal += now.Sub(m.upSince)
	c.eng.Post(nil, m.lane, now, func(now time.Time) {
		m.node.Leave(now)
		m.ep.SetAliveFlag(false)
		if m.tick != nil {
			m.tick.Stop()
		}
		if m.mon != nil {
			m.mon.Stop()
		}
	})
}

func (c *Cluster) memberAt(idx int) *member {
	if idx < 0 || idx >= len(c.members) {
		return nil
	}
	return c.members[idx]
}

// --- Public surface ---------------------------------------------------

// Run advances the simulation by d of virtual time.
func (c *Cluster) Run(d time.Duration) { c.eng.RunFor(d) }

// Elapsed returns the virtual time since the simulation epoch.
func (c *Cluster) Elapsed() time.Duration { return c.eng.Elapsed() }

// Steps returns the number of simulation events executed so far (a
// deterministic measure of how much work the run performed — under
// sharding, the per-shard counters reduced at the last barrier).
func (c *Cluster) Steps() uint64 { return c.eng.Steps() }

// Shards returns the configured shard count (1 = serial engine).
func (c *Cluster) Shards() int { return c.cfg.Shards }

// SchedStats returns the sharded engine's scheduler counters (windows,
// barriers, migrations, per-shard steps and busy time); ok is false
// for a serial cluster, which has no scheduler. Valid while the engine
// is quiescent. Windows/barriers/migrations are deterministic for a
// fixed (Seed, Shards, Scheduler); per-shard busy times are host
// measurements.
func (c *Cluster) SchedStats() (SchedStats, bool) {
	if e, ok := c.eng.(*sim.ShardedEngine); ok {
		return e.SchedStats(), true
	}
	return SchedStats{}, false
}

// Scheme returns the cluster's selection scheme.
func (c *Cluster) Scheme() SelectionScheme { return c.scheme }

// K returns the effective pinging-set parameter.
func (c *Cluster) K() int { return c.k }

// CVS returns the effective coarse-view size.
func (c *Cluster) CVS() int { return c.cvs }

// Size returns the number of nodes ever created.
func (c *Cluster) Size() int { return len(c.members) }

// AliveCount returns the number of currently alive nodes.
func (c *Cluster) AliveCount() int {
	return c.net.AliveCount()
}

// EnrollControl births count extra control-group nodes now, subject to
// the model's ongoing churn, and returns their indexes (the Figure 3
// methodology). Their protocol nodes join at the current virtual time
// when the simulation next runs.
func (c *Cluster) EnrollControl(count int) []int {
	out := make([]int, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, c.model.Enroll())
	}
	return out
}

// IsColluder reports whether node idx belongs to the colluding ring
// staged by ClusterConfig.Collusion: the top ⌈Fraction·N⌉ indexes of
// the initial population. Always false without a Collusion config.
func (c *Cluster) IsColluder(idx int) bool {
	return c.cfg.Collusion != nil && idx >= c.colludeFrom && idx < c.cfg.N
}

// IDOf returns the identity of node idx.
func (c *Cluster) IDOf(idx int) ID { return ids.Sim(idx) }

// IndexOf recovers a node's index from its identity; ok is false for
// identities that are not cluster members.
func (c *Cluster) IndexOf(id ID) (int, bool) {
	idx, ok := ids.SimIndex(id)
	if !ok || c.memberAt(idx) == nil {
		return 0, false
	}
	return idx, true
}

// MonitorsOf returns PS(idx) as currently discovered by node idx.
func (c *Cluster) MonitorsOf(idx int) []ID {
	m := c.memberAt(idx)
	if m == nil {
		return nil
	}
	return m.node.PS()
}

// CoarseViewOf returns node idx's current coarse view CV(idx).
func (c *Cluster) CoarseViewOf(idx int) []ID {
	m := c.memberAt(idx)
	if m == nil {
		return nil
	}
	return m.node.CV()
}

// TargetsOf returns TS(idx) as currently discovered by node idx.
func (c *Cluster) TargetsOf(idx int) []ID {
	m := c.memberAt(idx)
	if m == nil {
		return nil
	}
	return m.node.TS()
}

// ReportMonitors invokes the l-out-of-K reporting policy on node idx.
func (c *Cluster) ReportMonitors(idx, count int) []ID {
	m := c.memberAt(idx)
	if m == nil {
		return nil
	}
	return m.node.ReportMonitors(count)
}

// EstimateBy returns monitor idx's availability estimate of target.
func (c *Cluster) EstimateBy(idx int, target ID) (float64, bool) {
	m := c.memberAt(idx)
	if m == nil {
		return 0, false
	}
	return m.node.EstimateOf(target)
}

// Stats snapshots node idx's protocol and traffic state. Valid while
// the engine is quiescent (between Run calls).
func (c *Cluster) Stats(idx int) MemberStats {
	m := c.memberAt(idx)
	if m == nil {
		return MemberStats{}
	}
	counters := m.ep.Counters()
	mon := m.node.MonitoringStats()
	up := m.upTotal
	if m.ep.Registered() {
		up += c.eng.Now().Sub(m.upSince)
	}
	var life time.Duration
	if m.everBorn {
		life = c.eng.Now().Sub(m.bornAt)
	}
	return MemberStats{
		Alive:          m.ep.Registered(),
		Dead:           m.dead,
		EverBorn:       m.everBorn,
		PSSize:         len(m.node.PS()),
		TSSize:         len(m.node.TS()),
		CVSize:         len(m.node.CV()),
		MemoryEntries:  m.node.MemoryEntries(),
		HashChecks:     m.node.HashChecks(),
		DiscoveryTimes: m.node.DiscoveryTimes(),
		Traffic: Traffic{
			MsgsOut:      counters.MsgsOut,
			MsgsIn:       counters.MsgsIn,
			BytesOut:     counters.BytesOut,
			BytesIn:      counters.BytesIn,
			UselessMsgs:  counters.UselessMsgs,
			UselessBytes: counters.UselessBytes,
		},
		MonPingsSent:    mon.PingsSent,
		MonAcks:         mon.Acks,
		PingsSaved:      mon.PingsSaved,
		UselessMonPings: atomic.LoadUint64(&m.uselessMonPings),
		BornAtOffset:    m.bornAt.Sub(sim.Epoch),
		UpTime:          up,
		LifeTime:        life,
	}
}

// ResetTraffic zeroes every node's traffic counters (call at the end
// of an experiment's warm-up phase).
func (c *Cluster) ResetTraffic() {
	for _, m := range c.members {
		if m != nil {
			m.ep.ResetCounters()
		}
	}
}
