package avmon

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// newLocalServices spins up n AVMON services on loopback UDP with
// fast protocol periods, bootstrapped in a chain.
func newLocalServices(t *testing.T, n int, opts NodeOptions) []*Service {
	t.Helper()
	base := 30000 + rand.Intn(20000)
	services := make([]*Service, 0, n)
	for i := 0; i < n; i++ {
		cfg := ServiceConfig{
			Addr:    fmt.Sprintf("127.0.0.1:%d", base+i),
			N:       n,
			Options: opts,
			Seed:    int64(i + 1),
		}
		if i > 0 {
			cfg.Bootstrap = fmt.Sprintf("127.0.0.1:%d", base)
		}
		s, err := NewService(cfg)
		if err != nil {
			t.Fatalf("NewService %d: %v", i, err)
		}
		services = append(services, s)
		t.Cleanup(s.Stop)
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
	}
	return services
}

func TestServiceLoopbackDiscovery(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network test")
	}
	opts := NodeOptions{
		K:             3,
		CVS:           4,
		Period:        50 * time.Millisecond,
		MonitorPeriod: 50 * time.Millisecond,
		Hash:          HashMD5,
	}
	services := newLocalServices(t, 6, opts)

	deadline := time.After(15 * time.Second)
	for {
		discovered := 0
		for _, s := range services {
			if len(s.Monitors()) > 0 {
				discovered++
			}
		}
		if discovered >= 4 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("after 15s only %d of 6 services discovered monitors", discovered)
		case <-time.After(100 * time.Millisecond):
		}
	}
	// Every reported monitor must verify under the shared scheme.
	scheme, err := NewSelector(HashMD5, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range services {
		report := s.ReportMonitors(0)
		if len(report) == 0 {
			continue
		}
		if _, err := VerifyReport(scheme, s.ID(), report, 1); err != nil {
			t.Errorf("service %v report failed verification: %v", s.ID(), err)
		}
	}
}

func TestServiceMonitoringOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network test")
	}
	opts := NodeOptions{
		K:             4,
		CVS:           4,
		Period:        50 * time.Millisecond,
		MonitorPeriod: 50 * time.Millisecond,
	}
	services := newLocalServices(t, 5, opts)
	// Wait for at least one monitoring relationship to produce acks.
	deadline := time.After(15 * time.Second)
	for {
		ok := false
		for _, s := range services {
			for _, tgt := range s.Targets() {
				if est, known := s.EstimateOf(tgt); known && est > 0.5 {
					ok = true
				}
			}
		}
		if ok {
			return
		}
		select {
		case <-deadline:
			t.Fatal("no monitor produced a positive availability estimate over UDP")
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func TestServiceConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  ServiceConfig
	}{
		{"missing N", ServiceConfig{Addr: "127.0.0.1:19999"}},
		{"bad addr", ServiceConfig{Addr: "nonsense", N: 10}},
		{"bad bootstrap", ServiceConfig{Addr: "127.0.0.1:19998", Bootstrap: "xyz", N: 10}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewService(tt.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestServiceDoubleStart(t *testing.T) {
	s, err := NewService(ServiceConfig{
		Addr: fmt.Sprintf("127.0.0.1:%d", 28000+rand.Intn(1000)),
		N:    4,
		Options: NodeOptions{
			K: 2, CVS: 2, Period: time.Second, MonitorPeriod: time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Error("second Start succeeded")
	}
	if _, _, cv, _ := s.Stats(); cv < 0 {
		t.Error("stats unavailable")
	}
}

func TestServiceQueryAvailabilityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network test")
	}
	opts := NodeOptions{
		K:             4,
		CVS:           4,
		Period:        50 * time.Millisecond,
		MonitorPeriod: 50 * time.Millisecond,
	}
	services := newLocalServices(t, 6, opts)
	// Wait until some service has monitors with estimates.
	var subject *Service
	deadline := time.After(20 * time.Second)
	for subject == nil {
		for _, s := range services {
			if len(s.Monitors()) > 0 {
				subject = s
				break
			}
		}
		if subject == nil {
			select {
			case <-deadline:
				t.Fatal("no service discovered monitors")
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
	// Give monitors time to accumulate ping history.
	time.Sleep(500 * time.Millisecond)
	querier := services[0]
	if querier == subject {
		querier = services[1]
	}
	report, err := querier.QueryAvailability(subject.ID(), 2, 5*time.Second)
	if err != nil {
		t.Fatalf("QueryAvailability: %v", err)
	}
	if report.Subject != subject.ID() || len(report.Monitors) == 0 {
		t.Fatalf("report = %+v", report)
	}
	if report.Mean < 0.5 || report.Mean > 1 {
		t.Errorf("mean availability = %v, want near 1 for an up node", report.Mean)
	}
	if len(report.Estimates) != len(report.Monitors) {
		t.Error("estimates not aligned with monitors")
	}
}

func TestServiceQueryTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network test")
	}
	opts := NodeOptions{
		K: 2, CVS: 2,
		Period:        time.Hour, // protocol effectively frozen
		MonitorPeriod: time.Hour,
	}
	services := newLocalServices(t, 2, opts)
	// Query a node that does not exist: must time out, not hang.
	ghost := MustParseID(t, "127.0.0.1:1")
	_, err := services[0].QueryAvailability(ghost, 1, 300*time.Millisecond)
	if err == nil {
		t.Fatal("query to ghost node succeeded")
	}
}

// MustParseID is a test helper.
func MustParseID(t *testing.T, addr string) ID {
	t.Helper()
	id, err := ParseID(addr)
	if err != nil {
		t.Fatal(err)
	}
	return id
}
