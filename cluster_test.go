package avmon

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func statCluster(t *testing.T, n int, seed int64, opts NodeOptions) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{N: n, Seed: seed, Options: opts}, NewSTATModel(n))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterSTATDiscoversMonitors(t *testing.T) {
	c := statCluster(t, 100, 1, NodeOptions{})
	c.Run(20 * time.Minute)
	// E[D] ≈ N/cvs² < 1 period here, so 20 periods is generous: the
	// overwhelming majority of nodes must have found ≥1 monitor.
	found, nodes := 0, 0
	for i := 0; i < c.Size(); i++ {
		nodes++
		if len(c.MonitorsOf(i)) > 0 {
			found++
		}
	}
	if nodes != 100 {
		t.Fatalf("cluster has %d nodes, want 100", nodes)
	}
	if found < 95 {
		t.Errorf("%d of %d nodes discovered a monitor in 20 periods", found, nodes)
	}
}

func TestClusterDiscoveredMonitorsAreGenuine(t *testing.T) {
	// Verifiability in practice: every PS entry must satisfy the
	// consistency condition, and so must every TS entry.
	c := statCluster(t, 80, 2, NodeOptions{})
	c.Run(30 * time.Minute)
	scheme := c.Scheme()
	for i := 0; i < c.Size(); i++ {
		self := c.IDOf(i)
		for _, mon := range c.MonitorsOf(i) {
			if !scheme.Related(mon, self) {
				t.Fatalf("node %d has bogus monitor %v", i, mon)
			}
		}
		for _, tgt := range c.TargetsOf(i) {
			if !scheme.Related(self, tgt) {
				t.Fatalf("node %d has bogus target %v", i, tgt)
			}
		}
	}
}

func TestClusterDiscoveryTimeWithinBound(t *testing.T) {
	// Average first-monitor discovery time must be within a small
	// constant of the analytical bound E[D] (Section 4.1).
	c := statCluster(t, 150, 3, NodeOptions{})
	c.Run(10 * time.Minute) // warm up
	control := c.EnrollControl(15)
	c.Run(60 * time.Minute)
	period := time.Minute
	bound := ExpectedDiscoveryTime(c.CVS(), 150) // in periods
	var sum time.Duration
	count := 0
	for _, idx := range control {
		dts := c.Stats(idx).DiscoveryTimes
		if len(dts) == 0 {
			continue
		}
		sum += dts[0]
		count++
	}
	if count < 12 {
		t.Fatalf("only %d of 15 control nodes discovered a monitor", count)
	}
	avg := sum / time.Duration(count)
	limit := time.Duration(4*bound*float64(period)) + 2*period
	if avg > limit {
		t.Errorf("average discovery %v exceeds 4×E[D] = %v", avg, limit)
	}
}

func TestClusterEventualPSSize(t *testing.T) {
	// With K = log2(N) the expected PS size is ≈ K; after a long run,
	// the population average must be in that ballpark.
	c := statCluster(t, 60, 4, NodeOptions{})
	c.Run(3 * time.Hour)
	total := 0
	for i := 0; i < c.Size(); i++ {
		total += c.Stats(i).PSSize
	}
	avg := float64(total) / float64(c.Size())
	k := float64(c.K())
	if avg < k*0.5 || avg > k*1.6 {
		t.Errorf("average |PS| = %.2f, want ≈ K = %v", avg, k)
	}
}

func TestTheorem2DeadNodeLeavesAllCoarseViews(t *testing.T) {
	// A node that leaves for good is eventually deleted from every
	// coarse view (w.h.p. within cvs·log(N) periods).
	n := 60
	model, err := NewSYNTHBDModel(n, 0.001, 0.0001) // nearly static
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{N: n, Seed: 5}, model)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(30 * time.Minute)
	victim := 7
	c.Death(victim)
	dead := c.IDOf(victim)
	// cvs ≈ 11 for N=60 → cvs·log N ≈ 45 periods; run 120 to be safe.
	c.Run(120 * time.Minute)
	holders := 0
	for i := 0; i < c.Size(); i++ {
		if i == victim {
			continue
		}
		m := c.memberAt(i)
		if m == nil || !m.ep.Alive() {
			continue
		}
		for _, id := range m.node.CV() {
			if id == dead {
				holders++
			}
		}
	}
	if holders != 0 {
		t.Errorf("dead node still referenced by %d coarse views after 120 periods", holders)
	}
}

func TestClusterConsistencyUnderChurn(t *testing.T) {
	// The monitoring relation never changes under churn: a node's
	// discovered monitors remain valid monitors after arbitrary
	// join/leave activity (contrast with the DHT baseline's
	// ConsistencyDamage).
	model, err := NewSYNTHModel(80, 0.5) // heavy churn
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{N: 80, Seed: 6}, model)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(45 * time.Minute)
	before := make(map[int][]ID)
	for i := 0; i < c.Size(); i++ {
		before[i] = c.MonitorsOf(i)
	}
	c.Run(45 * time.Minute) // more churn
	for i, prev := range before {
		nowSet := make(map[ID]bool)
		for _, id := range c.MonitorsOf(i) {
			nowSet[id] = true
		}
		for _, id := range prev {
			if !nowSet[id] {
				t.Fatalf("node %d lost monitor %v due to churn (consistency violated)", i, id)
			}
		}
	}
}

func TestClusterSYNTHBDSmoke(t *testing.T) {
	model, err := NewSYNTHBDModel(100, 0.2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{N: 100, Seed: 7}, model)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(2 * time.Hour)
	if c.AliveCount() < 60 || c.AliveCount() > 140 {
		t.Errorf("alive = %d, want ≈ 100", c.AliveCount())
	}
	found := 0
	for i := 0; i < c.Size(); i++ {
		if c.Stats(i).PSSize > 0 {
			found++
		}
	}
	if found < c.Size()/2 {
		t.Errorf("only %d of %d nodes discovered monitors under SYNTH-BD", found, c.Size())
	}
}

func TestClusterTraceModels(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() (ChurnModel, error)
	}{
		{"PL", func() (ChurnModel, error) { return NewPlanetLabModel(40, 2*time.Hour, 8) }},
		{"OV", func() (ChurnModel, error) { return NewOvernetModel(40, 2*time.Hour, 9) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			model, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			c, err := NewCluster(ClusterConfig{Seed: 10}, model)
			if err != nil {
				t.Fatal(err)
			}
			c.Run(90 * time.Minute)
			if c.AliveCount() == 0 {
				t.Fatal("no nodes alive under trace model")
			}
			found := 0
			for i := 0; i < c.Size(); i++ {
				if c.Stats(i).PSSize > 0 {
					found++
				}
			}
			if found == 0 {
				t.Error("no monitors discovered under trace model")
			}
		})
	}
}

func TestClusterMemoryBounded(t *testing.T) {
	c := statCluster(t, 100, 11, NodeOptions{})
	c.Run(2 * time.Hour)
	limit := c.CVS() + 6*c.K() // generous: cvs + O(K log K) tail
	for i := 0; i < c.Size(); i++ {
		if got := c.Stats(i).MemoryEntries; got > limit {
			t.Errorf("node %d memory entries = %d, exceeds %d", i, got, limit)
		}
	}
}

func TestClusterDeterminism(t *testing.T) {
	run := func() (uint64, int) {
		c := statCluster(t, 50, 42, NodeOptions{})
		c.Run(30 * time.Minute)
		var checks uint64
		psTotal := 0
		for i := 0; i < c.Size(); i++ {
			s := c.Stats(i)
			checks += s.HashChecks
			psTotal += s.PSSize
		}
		return checks, psTotal
	}
	c1, p1 := run()
	c2, p2 := run()
	if c1 != c2 || p1 != p2 {
		t.Errorf("non-deterministic cluster: (%d,%d) vs (%d,%d)", c1, p1, c2, p2)
	}
}

// clusterFingerprint runs one simulation and captures everything an
// experiment could observe: per-node protocol sets, traffic counters,
// uptime accounting, and the engine step count. Two runs with equal
// fingerprints produce byte-identical experiment output.
func clusterFingerprint(t *testing.T, cfg ClusterConfig, mk func() (ChurnModel, error)) string {
	t.Helper()
	model, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(cfg, model)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(25 * time.Minute)
	control := c.EnrollControl(5)
	c.Run(20 * time.Minute)
	var sb strings.Builder
	fmt.Fprintf(&sb, "steps=%d alive=%d size=%d control=%v\n",
		c.Steps(), c.AliveCount(), c.Size(), control)
	for i := 0; i < c.Size(); i++ {
		s := c.Stats(i)
		fmt.Fprintf(&sb, "%d: alive=%t dead=%t born=%t ps=%v ts=%v cv=%v checks=%d disc=%v\n",
			i, s.Alive, s.Dead, s.EverBorn,
			c.MonitorsOf(i), c.TargetsOf(i), c.CoarseViewOf(i),
			s.HashChecks, s.DiscoveryTimes)
		fmt.Fprintf(&sb, "   traffic=%+v monpings=%d acks=%d saved=%d useless=%d up=%v life=%v\n",
			s.Traffic, s.MonPingsSent, s.MonAcks, s.PingsSaved,
			s.UselessMonPings, s.UpTime, s.LifeTime)
	}
	return sb.String()
}

// mustLatency unwraps a latency-model constructor in tests.
func mustLatency(t *testing.T, mk func() (LatencyModel, error)) LatencyModel {
	t.Helper()
	m, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// mustLoss unwraps a loss-model constructor in tests.
func mustLoss(t *testing.T, mk func() (LossModel, error)) LossModel {
	t.Helper()
	m, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// forcedScheduler is the aggressive adaptive-scheduler configuration
// the equivalence tests force on: rebalancing fires at the slightest
// imbalance over a 2-barrier window (so lanes actually migrate within
// these short runs), batching runs deep, dynamic horizons on.
func forcedScheduler() *SchedulerConfig {
	return &SchedulerConfig{
		DynamicLookahead:   true,
		BatchWindows:       8,
		RebalanceThreshold: 1.01,
		RebalanceWindow:    2,
	}
}

// TestShardedClusterMatchesSerial is the tentpole's acceptance
// contract at the cluster level: for one seed, a sharded run is
// byte-identical to the serial run at any shard count — including
// under churn, message loss, forgetful pinging, overreporters, and
// the heterogeneous WAN network models (lognormal and zone-matrix
// latency with adaptive lookahead, Gilbert-Elliott burst loss), which
// together exercise every random stream and lifecycle path. Each
// shard count runs twice: once with the default scheduler and once
// with rebalancing and batching forced on (aggressively enough that
// lanes migrate mid-run), re-proving that every scheduler decision is
// invisible to results.
func TestShardedClusterMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  ClusterConfig
		mk   func() (ChurnModel, error)
	}{
		{
			name: "STAT",
			cfg:  ClusterConfig{N: 100, Seed: 21},
			mk:   func() (ChurnModel, error) { return NewSTATModel(100), nil },
		},
		{
			name: "SYNTH-BD-loss-overreport",
			cfg: ClusterConfig{
				N: 90, Seed: 22, Loss: 0.05, OverreportFraction: 0.2,
				Options: NodeOptions{Forgetful: true, PR2: true},
			},
			mk: func() (ChurnModel, error) { return NewSYNTHBDModel(90, 0.3, 0.3) },
		},
		{
			name: "OV-trace",
			cfg:  ClusterConfig{Seed: 23},
			mk:   func() (ChurnModel, error) { return NewOvernetModel(60, 2*time.Hour, 23) },
		},
		{
			// Lognormal latency: the sharded lookahead adapts to the
			// 20ms floor (not the old constant 50ms), and every latency
			// draw comes from the sender's lane stream. Gilbert-Elliott
			// adds per-sender bursty loss state on the same lane.
			name: "WAN-lognormal-GE-burst",
			cfg: ClusterConfig{
				N: 90, Seed: 24,
				LatencyModel: mustLatency(t, func() (LatencyModel, error) {
					return NewLognormalLatency(20*time.Millisecond, 60*time.Millisecond, 0.7, 2*time.Second)
				}),
				LossModel: mustLoss(t, func() (LossModel, error) {
					return NewGilbertElliottLoss(0.02, 0.25, 0.001, 0.3)
				}),
				Options: NodeOptions{Forgetful: true},
			},
			mk: func() (ChurnModel, error) { return NewSYNTHBDModel(90, 0.3, 0.3) },
		},
		{
			// Zone-matrix latency: three zones with asymmetric one-way
			// base latencies and multiplicative jitter; the lookahead
			// adapts to the smallest matrix entry (10ms).
			name: "WAN-zones",
			cfg: ClusterConfig{
				N: 100, Seed: 25,
				LatencyModel: mustLatency(t, func() (LatencyModel, error) {
					return NewZoneLatency([][]time.Duration{
						{10 * time.Millisecond, 80 * time.Millisecond, 150 * time.Millisecond},
						{85 * time.Millisecond, 15 * time.Millisecond, 200 * time.Millisecond},
						{140 * time.Millisecond, 210 * time.Millisecond, 12 * time.Millisecond},
					}, 0.25)
				}),
				Loss: 0.02,
			},
			mk: func() (ChurnModel, error) { return NewSYNTHModel(100, 0.2) },
		},
		{
			// Collusion attack: a quarter of the population suppresses
			// pings and defames its victims. The hooks run on member
			// lanes, so this proves they are shard-safe pure functions.
			name: "chaos-collusion",
			cfg: ClusterConfig{
				N: 90, Seed: 26,
				Collusion: &CollusionConfig{Fraction: 0.25, SuppressPings: true, ForgedAvail: 0},
				Options:   NodeOptions{Forgetful: true},
			},
			mk: func() (ChurnModel, error) { return NewSYNTHBDModel(90, 0.3, 0.3) },
		},
		{
			// Correlated zone outages under the matching zone-matrix
			// latency: whole zones fail and heal mid-fingerprint, with
			// the second outage straddling the control-enroll boundary.
			name: "chaos-zone-outage",
			cfg: ClusterConfig{
				N: 90, Seed: 27,
				LatencyModel: mustLatency(t, func() (LatencyModel, error) {
					return NewZoneLatency([][]time.Duration{
						{10 * time.Millisecond, 80 * time.Millisecond, 150 * time.Millisecond},
						{85 * time.Millisecond, 15 * time.Millisecond, 200 * time.Millisecond},
						{140 * time.Millisecond, 210 * time.Millisecond, 12 * time.Millisecond},
					}, 0.25)
				}),
				Loss: 0.02,
			},
			mk: func() (ChurnModel, error) {
				schedule, err := ParseOutageSchedule("1@10m+10m,2@24m+5m")
				if err != nil {
					return nil, err
				}
				return NewZoneOutageModel(90, 3, schedule)
			},
		},
		{
			// Windowed history stores: the flat target arena's
			// non-inline branch (a Store per target instead of the raw
			// inline counters), under churn, loss, and forgetful
			// pinging — the layout the memory diet must not perturb.
			name: "SYNTH-windowed-history",
			cfg: ClusterConfig{
				N: 80, Seed: 29, Loss: 0.1,
				Options: NodeOptions{Forgetful: true, HistoryStyle: "recent:30m"},
			},
			mk: func() (ChurnModel, error) { return NewSYNTHBDModel(80, 0.3, 0.3) },
		},
		{
			// Flash crowd plus mass leave and heal, all inside the
			// fingerprint window: deterministic population shocks on
			// top of the ordered-join base.
			name: "chaos-flash-crowd",
			cfg:  ClusterConfig{N: 80, Seed: 28, Options: NodeOptions{Forgetful: true}},
			mk: func() (ChurnModel, error) {
				return NewStormModel(StormConfig{
					N: 80, SurgeNodes: 40, SurgeAt: 8 * time.Minute, SurgeWindow: 4 * time.Minute,
					LeaveNodes: 30, LeaveAt: 18 * time.Minute, LeaveWindow: 4 * time.Minute,
					HealAt: 30 * time.Minute,
				})
			},
		},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want := clusterFingerprint(t, tc.cfg, tc.mk)
			for _, shards := range []int{1, 2, 8} {
				for _, sched := range []*SchedulerConfig{nil, forcedScheduler()} {
					cfg := tc.cfg
					cfg.Shards = shards
					cfg.Scheduler = sched
					label := "default"
					if sched != nil {
						label = "forced"
					}
					got := clusterFingerprint(t, cfg, tc.mk)
					if got != want {
						t.Errorf("shards=%d sched=%s diverged from serial run (fingerprints differ)\n%s",
							shards, label, firstDiff(want, got))
					}
				}
			}
		})
	}
}

// TestShardedClusterRebalances pins that the forced scheduler really
// migrates lanes on a cluster workload (otherwise the forced-on
// equivalence runs above would prove nothing about rebalancing).
func TestShardedClusterRebalances(t *testing.T) {
	model, err := NewHotspotModel(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		N: 64, Seed: 31, Shards: 4, Scheduler: forcedScheduler(),
		Options: NodeOptions{Forgetful: true},
	}, model)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(30 * time.Minute)
	st, ok := c.SchedStats()
	if !ok {
		t.Fatal("sharded cluster reports no scheduler stats")
	}
	if st.Migrations == 0 || st.LanesMoved == 0 {
		t.Errorf("no lane migrations on a hot-shard population: %+v", st)
	}
	lanes := 0
	for _, sh := range st.PerShard {
		lanes += sh.Lanes
	}
	if lanes != c.Size() {
		t.Errorf("per-shard lanes sum to %d, want %d", lanes, c.Size())
	}
	if _, ok := statCluster(t, 10, 1, NodeOptions{}).SchedStats(); ok {
		t.Error("serial cluster claims scheduler stats")
	}
}

// TestWanDynamicLookaheadCutsBarriers is the wan-regime fix the
// scheduler layer was built for: under the 5 ms-floor lognormal
// latency model the static grid pays ~10× more barriers than the
// constant-50ms network, and the adaptive scheduler (dynamic horizons
// + barrier batching) must claw a large share of that back — on the
// same seed, with byte-identical results.
func TestWanDynamicLookaheadCutsBarriers(t *testing.T) {
	lognormal := mustLatency(t, func() (LatencyModel, error) {
		return NewLognormalLatency(5*time.Millisecond, 60*time.Millisecond, 0.6, 2*time.Second)
	})
	run := func(sched SchedulerConfig) (string, SchedStats) {
		model, err := NewSYNTHModel(80, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCluster(ClusterConfig{
			N: 80, Seed: 41, Shards: 2, Scheduler: &sched, LatencyModel: lognormal,
		}, model)
		if err != nil {
			t.Fatal(err)
		}
		c.Run(20 * time.Minute)
		var sb strings.Builder
		fmt.Fprintf(&sb, "steps=%d alive=%d\n", c.Steps(), c.AliveCount())
		for i := 0; i < c.Size(); i++ {
			s := c.Stats(i)
			fmt.Fprintf(&sb, "%d: ps=%v cv=%v traffic=%+v\n", i, c.MonitorsOf(i), c.CoarseViewOf(i), s.Traffic)
		}
		st, ok := c.SchedStats()
		if !ok {
			t.Fatal("no scheduler stats")
		}
		return sb.String(), st
	}
	staticFP, staticStats := run(StaticSchedulerConfig())
	dynCfg := StaticSchedulerConfig()
	dynCfg.DynamicLookahead = true
	dynFP, dynStats := run(dynCfg)
	adaptiveFP, adaptiveStats := run(DefaultSchedulerConfig())
	if staticFP != dynFP || staticFP != adaptiveFP {
		t.Fatal("scheduler configuration changed protocol results")
	}
	if dynStats.Barriers >= staticStats.Barriers {
		t.Errorf("dynamic lookahead did not cut barriers under the 5ms-floor model: static %d, dynamic %d",
			staticStats.Barriers, dynStats.Barriers)
	}
	if adaptiveStats.Barriers*2 > staticStats.Barriers {
		t.Errorf("adaptive scheduler cut barriers only from %d to %d; want ≥ 2×",
			staticStats.Barriers, adaptiveStats.Barriers)
	}
}

// firstDiff locates the first differing line of two fingerprints.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\nserial:  %s\nsharded: %s", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

func TestClusterOverreporters(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		N: 60, Seed: 12, OverreportFraction: 1.0,
	}, NewSTATModel(60))
	if err != nil {
		t.Fatal(err)
	}
	c.Run(time.Hour)
	// Every monitor overreports: all estimates are 1.0 even though
	// measured truth would also be 1.0 under STAT; so instead check
	// the flag plumbing via a node with a monitored target.
	checked := false
	for i := 0; i < c.Size() && !checked; i++ {
		for _, tgt := range c.TargetsOf(i) {
			est, known := c.EstimateBy(i, tgt)
			if known {
				if est != 1.0 {
					t.Errorf("overreporter estimate = %v, want 1.0", est)
				}
				checked = true
				break
			}
		}
	}
	if !checked {
		t.Fatal("no monitored target to check")
	}
}

func TestClusterSurvivesMessageLoss(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		N: 80, Seed: 13, Loss: 0.2,
	}, NewSTATModel(80))
	if err != nil {
		t.Fatal(err)
	}
	c.Run(time.Hour)
	found := 0
	for i := 0; i < c.Size(); i++ {
		if c.Stats(i).PSSize > 0 {
			found++
		}
	}
	if found < 60 {
		t.Errorf("only %d of 80 nodes discovered monitors under 20%% loss", found)
	}
}

func TestClusterStatsAccounting(t *testing.T) {
	c := statCluster(t, 50, 14, NodeOptions{})
	c.Run(30 * time.Minute)
	s := c.Stats(0)
	if !s.Alive || s.Dead || !s.EverBorn {
		t.Errorf("lifecycle flags = %+v", s)
	}
	if s.Traffic.BytesOut == 0 || s.Traffic.MsgsOut == 0 {
		t.Error("no traffic recorded")
	}
	if s.HashChecks == 0 {
		t.Error("no hash checks recorded")
	}
	if s.MemoryEntries != s.PSSize+s.TSSize+s.CVSize {
		t.Error("MemoryEntries mismatch")
	}
	if s.UpTime <= 0 || s.LifeTime <= 0 || s.TrueAvailability() != 1 {
		t.Errorf("uptime accounting: up=%v life=%v avail=%v", s.UpTime, s.LifeTime, s.TrueAvailability())
	}
	c.ResetTraffic()
	if got := c.Stats(0).Traffic.BytesOut; got != 0 {
		t.Errorf("traffic after reset = %d", got)
	}
	// Out-of-range stats are zero-valued, not a panic.
	if s := c.Stats(9999); s.EverBorn {
		t.Error("phantom stats for out-of-range index")
	}
}

func TestClusterVariantCVS(t *testing.T) {
	for _, tc := range []struct {
		variant Variant
		n       int
		want    int
	}{
		{VariantMDC, 1_000_000, 32},
		{VariantGeneric, 1024, 10},
	} {
		c, err := NewCluster(ClusterConfig{
			N: tc.n, Seed: 1, Options: NodeOptions{Variant: tc.variant},
		}, NewSTATModel(4)) // tiny population; N is the protocol parameter
		if err != nil {
			t.Fatal(err)
		}
		if got := c.CVS(); got != tc.want {
			t.Errorf("variant %v at N=%d: cvs = %d, want %d", tc.variant, tc.n, got, tc.want)
		}
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{}, nil); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewCluster(ClusterConfig{OverreportFraction: 2}, NewSTATModel(10)); err == nil {
		t.Error("bad overreport fraction accepted")
	}
}

func TestTheorem1EventualCompleteDiscovery(t *testing.T) {
	// Theorem 1: if (x, y) satisfy the consistency condition and both
	// stay alive long enough, y eventually lands in TS(x). PR 2 had to
	// exclude pairs whose endpoints had coalesced out of every coarse
	// view: under STAT nothing re-inserted a node into other nodes'
	// coarse views, so indegree 0 was an absorbing state. Nodes now
	// self-repair — an emptied or contact-starved coarse view triggers
	// a JOIN-style re-bootstrap walk (core.Node.rebootstrap) — so the
	// theorem holds unconditionally: EVERY related pair must be
	// discovered, on every seed, with no reachability carve-out.
	if testing.Short() {
		t.Skip("long simulation")
	}
	const n = 50
	for seed := int64(77); seed < 80; seed++ {
		c := statCluster(t, n, seed, NodeOptions{})
		c.Run(6 * time.Hour) // E[D] ≈ N/cvs² ≪ 1 period; 360 periods is ample
		scheme := c.Scheme()
		missing := 0
		total := 0
		for xi := 0; xi < n; xi++ {
			x := c.IDOf(xi)
			tsSet := make(map[ID]bool)
			for _, id := range c.TargetsOf(xi) {
				tsSet[id] = true
			}
			for yi := 0; yi < n; yi++ {
				y := c.IDOf(yi)
				if x == y || !scheme.Related(x, y) {
					continue
				}
				total++
				if !tsSet[y] {
					missing++
				}
			}
		}
		if total == 0 {
			t.Fatalf("seed %d: no related pairs in population", seed)
		}
		if missing != 0 {
			t.Errorf("seed %d: %d of %d related pairs undiscovered after 360 periods",
				seed, missing, total)
		}
	}
}

func TestDiscoveryFasterWithLargerCVS(t *testing.T) {
	// The cvs tradeoff (Section 4.2): quadrupling cvs must cut the
	// mean discovery time.
	if testing.Short() {
		t.Skip("long simulation")
	}
	mean := func(cvs int) time.Duration {
		c, err := NewCluster(ClusterConfig{
			N: 400, Seed: 5, Options: NodeOptions{CVS: cvs},
		}, NewSTATModel(400))
		if err != nil {
			t.Fatal(err)
		}
		c.Run(15 * time.Minute)
		control := c.EnrollControl(40)
		c.Run(90 * time.Minute)
		var sum time.Duration
		count := 0
		for _, idx := range control {
			if dts := c.Stats(idx).DiscoveryTimes; len(dts) > 0 {
				sum += dts[0]
				count++
			}
		}
		if count == 0 {
			t.Fatal("no discoveries")
		}
		return sum / time.Duration(count)
	}
	small := mean(6)
	large := mean(24)
	if large >= small {
		t.Errorf("cvs=24 discovery %v not faster than cvs=6 discovery %v", large, small)
	}
}
