// Benchmarks: one per table and figure of the paper's evaluation.
// Each benchmark executes the corresponding experiment generator at a
// reduced scale (so `go test -bench=.` completes on a laptop) and
// reports simulated-node-seconds of work. Full paper-scale runs:
//
//	go run ./cmd/avmon-bench -run all -scale 1.0
package avmon_test

import (
	"testing"

	"avmon/internal/experiments"
)

// benchOptions is the reduced scale used by the benchmark harness:
// the same code paths and workloads as the paper-scale runs, with a
// shrunken horizon and sweep. Parallelism is left at 0 so the worker
// count tracks GOMAXPROCS: `go test -bench=. -cpu 1,4` contrasts the
// serial and parallel engine on identical workloads (results are
// byte-identical either way; only wall time changes).
func benchOptions() experiments.Options {
	return experiments.Options{Scale: 0.02, Seed: 1, Ns: []int{100, 200}, Parallelism: 0}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner := experiments.Registry()[id]
	if runner == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	opts := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := runner(opts)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (Broadcast vs AVMON variants:
// memory/bandwidth, discovery time, computation).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkScale runs the large-N scale sweep at a reduced size (the
// benchOptions Ns override replaces the 10k/30k/100k default), so
// `-bench` covers the scale path like every table and figure. The
// real sweep: go run ./cmd/avmon-bench -run scale
func BenchmarkScale(b *testing.B) { benchExperiment(b, "scale") }

// BenchmarkWan runs the heterogeneous-WAN sweep (lognormal and
// zone-matrix latency × loss regimes) at a reduced size. The real
// sweep: go run ./cmd/avmon-bench -run wan
func BenchmarkWan(b *testing.B) { benchExperiment(b, "wan") }

// BenchmarkSkew runs the hot-shard scheduler A/B sweep (lane
// rebalancing off vs on over the HOTSPOT population) at a reduced
// size. The real sweep: go run ./cmd/avmon-bench -run skew
func BenchmarkSkew(b *testing.B) { benchExperiment(b, "skew") }

// BenchmarkChaos runs the adversarial/chaos suite (collusion, zone
// outage, flash crowd, mass leave — each a paired-seed A/B with a
// control-arm gate) at a reduced size. The real sweep:
// go run ./cmd/avmon-bench -run chaos
func BenchmarkChaos(b *testing.B) { benchExperiment(b, "chaos") }

// BenchmarkQuery runs the query-plane load test (cache × batch
// regimes over the real codec, verification, and answer cache) at a
// reduced size. The real sweep: go run ./cmd/avmon-bench -run query
func BenchmarkQuery(b *testing.B) { benchExperiment(b, "query") }

// BenchmarkRealnet boots the real-deployment harness (real Service
// nodes over memnet and 127.0.0.1 UDP, gated against the simulator's
// prediction) at a reduced size. Unlike the other benchmarks its
// timings are wall-clock deployments, not simulations, so it uses its
// own scale: benchOptions' 60ms-floor period at N=100 saturates a
// small host and trips the timing gate spuriously; the 60-node
// deployment here matches the CI smoke configuration. The real run:
// go run ./cmd/avmon-bench -run realnet
func BenchmarkRealnet(b *testing.B) {
	runner := experiments.Registry()["realnet"]
	opts := experiments.Options{Scale: 0.3, Seed: 1, Ns: []int{60}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := runner(opts)
		if err != nil {
			b.Fatalf("realnet: %v", err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3 (average discovery time of
// first monitors vs N, STAT/SYNTH/SYNTH-BD).
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "figure3") }

// BenchmarkFigure4 regenerates Figure 4 (CDF of STAT discovery times).
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "figure4") }

// BenchmarkFigure5 regenerates Figure 5 (CDF of SYNTH-BD discovery
// times).
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "figure5") }

// BenchmarkFigure6 regenerates Figure 6 (time to first L monitors).
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "figure6") }

// BenchmarkFigure7 regenerates Figure 7 (computations per second vs N).
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "figure7") }

// BenchmarkFigure8 regenerates Figure 8 (CDF of computations per
// second).
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "figure8") }

// BenchmarkFigure9 regenerates Figure 9 (memory entries vs N).
func BenchmarkFigure9(b *testing.B) { benchExperiment(b, "figure9") }

// BenchmarkFigure10 regenerates Figure 10 (CDF of memory entries).
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "figure10") }

// BenchmarkFigure11 regenerates Figure 11 (discovery time vs cvs).
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "figure11") }

// BenchmarkFigure12 regenerates Figure 12 (memory and computation vs
// cvs).
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "figure12") }

// BenchmarkFigure13 regenerates Figure 13 (CDF of discovery time under
// the PL and OV traces).
func BenchmarkFigure13(b *testing.B) { benchExperiment(b, "figure13") }

// BenchmarkFigure14 regenerates Figure 14 (CDF of memory entries under
// the PL and OV traces).
func BenchmarkFigure14(b *testing.B) { benchExperiment(b, "figure14") }

// BenchmarkFigure15 regenerates Figure 15 (discovery under doubled
// birth/death churn).
func BenchmarkFigure15(b *testing.B) { benchExperiment(b, "figure15") }

// BenchmarkFigure16 regenerates Figure 16 (memory under doubled
// birth/death churn).
func BenchmarkFigure16(b *testing.B) { benchExperiment(b, "figure16") }

// BenchmarkFigure17 regenerates Figure 17 (estimated vs actual
// availability with forgetful pinging).
func BenchmarkFigure17(b *testing.B) { benchExperiment(b, "figure17") }

// BenchmarkFigure18 regenerates Figure 18 (useless pings saved by
// forgetful pinging).
func BenchmarkFigure18(b *testing.B) { benchExperiment(b, "figure18") }

// BenchmarkFigure19 regenerates Figure 19 (CDF of outgoing bandwidth:
// STAT, STAT-PR2, OV).
func BenchmarkFigure19(b *testing.B) { benchExperiment(b, "figure19") }

// BenchmarkFigure20 regenerates Figure 20 (the overreporting attack).
func BenchmarkFigure20(b *testing.B) { benchExperiment(b, "figure20") }

// BenchmarkAblationReshuffle measures the value of the Figure 2
// coarse-view reshuffle (design-choice ablation).
func BenchmarkAblationReshuffle(b *testing.B) { benchExperiment(b, "ablation-reshuffle") }

// BenchmarkAblationRejoinWeight measures the Figure 1 rejoin-weight
// rule (design-choice ablation).
func BenchmarkAblationRejoinWeight(b *testing.B) { benchExperiment(b, "ablation-rejoin-weight") }

// BenchmarkAblationForgetful sweeps the forgetful-pinging parameters.
func BenchmarkAblationForgetful(b *testing.B) { benchExperiment(b, "ablation-forgetful") }

// BenchmarkAblationConsistency contrasts AVMON selection with the DHT
// replica-set baseline.
func BenchmarkAblationConsistency(b *testing.B) { benchExperiment(b, "ablation-consistency") }

// BenchmarkAblationHash compares the hash functions behind the
// consistency condition.
func BenchmarkAblationHash(b *testing.B) { benchExperiment(b, "ablation-hash") }
