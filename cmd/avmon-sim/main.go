// Command avmon-sim runs a single simulated AVMON deployment under a
// chosen availability model and prints summary metrics: discovery
// times, memory, computation, and bandwidth.
//
// Usage:
//
//	avmon-sim -model stat -n 500 -duration 2h
//	avmon-sim -model synth-bd -n 1000 -duration 4h -forgetful
//	avmon-sim -model ov -n 550 -duration 8h -seed 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"avmon"
	"avmon/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "avmon-sim:", err)
		os.Exit(1)
	}
}

// run executes one simulation and writes the summary to out (an
// io.Writer so tests can run it in-process, mirroring the example
// smoke-test pattern).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("avmon-sim", flag.ContinueOnError)
	var (
		modelName = fs.String("model", "stat", "availability model: stat, synth, synth-bd, synth-bd2, pl, ov")
		n         = fs.Int("n", 500, "stable system size N")
		duration  = fs.Duration("duration", 2*time.Hour, "simulated duration")
		warmup    = fs.Duration("warmup", time.Hour, "warm-up before measurement")
		seed      = fs.Int64("seed", 1, "simulation seed")
		cvs       = fs.Int("cvs", 0, "coarse view size override (0 = 4·N^(1/4))")
		k         = fs.Int("k", 0, "pinging-set parameter override (0 = log2 N)")
		forgetful = fs.Bool("forgetful", false, "enable forgetful pinging")
		pr2       = fs.Bool("pr2", false, "enable the PR2 indegree repair")
		control   = fs.Float64("control", 0.1, "control-group fraction enrolled after warm-up")
		shards    = fs.Int("shards", 0, "parallel engine shards for the run (0/1 = serial; results are identical at any setting)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	model, err := buildModel(*modelName, *n, *warmup+*duration+time.Hour, *seed)
	if err != nil {
		return err
	}
	cluster, err := avmon.NewCluster(avmon.ClusterConfig{
		N:      *n,
		Seed:   *seed,
		Shards: *shards,
		Options: avmon.NodeOptions{
			CVS:       *cvs,
			K:         *k,
			Forgetful: *forgetful,
			PR2:       *pr2,
		},
	}, model)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "model=%s N=%d K=%d cvs=%d warmup=%v duration=%v seed=%d shards=%d\n",
		*modelName, *n, cluster.K(), cluster.CVS(), *warmup, *duration, *seed, cluster.Shards())

	cluster.Run(*warmup)
	var group []int
	if *control > 0 {
		group = cluster.EnrollControl(int(float64(*n)**control + 0.5))
	}
	checksAt := make([]uint64, cluster.Size())
	for i := range checksAt {
		checksAt[i] = cluster.Stats(i).HashChecks
	}
	cluster.ResetTraffic()
	cluster.Run(*duration)

	fmt.Fprintf(out, "alive=%d of %d ever-born\n", cluster.AliveCount(), cluster.Size())

	if len(group) == 0 {
		for i := 0; i < cluster.Size(); i++ {
			group = append(group, i)
		}
	}
	var disc, mem, comps, bw stats.Welford
	discovered := 0
	secs := duration.Seconds()
	for _, idx := range group {
		st := cluster.Stats(idx)
		if len(st.DiscoveryTimes) > 0 {
			disc.Add(st.DiscoveryTimes[0].Seconds())
			discovered++
		}
	}
	for i := 0; i < cluster.Size(); i++ {
		st := cluster.Stats(i)
		if !st.Alive {
			continue
		}
		mem.Add(float64(st.MemoryEntries))
		if i < len(checksAt) {
			comps.Add(float64(st.HashChecks-checksAt[i]) / secs)
		}
		bw.Add(float64(st.Traffic.BytesOut) / secs)
	}
	fmt.Fprintf(out, "discovery: %d/%d found a monitor; mean=%.1fs stddev=%.1fs (bound E[D]=%.1f periods)\n",
		discovered, len(group), disc.Mean(), disc.Stddev(),
		avmon.ExpectedDiscoveryTime(cluster.CVS(), *n))
	fmt.Fprintf(out, "memory:    mean=%.1f entries (expected ≈ %d)\n", mem.Mean(), 2*cluster.K()+cluster.CVS())
	fmt.Fprintf(out, "compute:   mean=%.2f consistency checks/s per node\n", comps.Mean())
	fmt.Fprintf(out, "bandwidth: mean=%.2f Bps out per node\n", bw.Mean())
	return nil
}

func buildModel(name string, n int, horizon time.Duration, seed int64) (avmon.ChurnModel, error) {
	switch name {
	case "stat":
		return avmon.NewSTATModel(n), nil
	case "synth":
		return avmon.NewSYNTHModel(n, 0.2)
	case "synth-bd":
		return avmon.NewSYNTHBDModel(n, 0.2, 0.2)
	case "synth-bd2":
		return avmon.NewSYNTHBDModel(n, 0.2, 0.4)
	case "pl":
		return avmon.NewPlanetLabModel(n, horizon, seed)
	case "ov":
		return avmon.NewOvernetModel(n, horizon, seed)
	default:
		return nil, fmt.Errorf("unknown model %q", name)
	}
}
