package main

import (
	"io"
	"strings"
	"testing"
	"time"
)

func TestBuildModel(t *testing.T) {
	for _, name := range []string{"stat", "synth", "synth-bd", "synth-bd2", "pl", "ov"} {
		m, err := buildModel(name, 50, 2*time.Hour, 1)
		if err != nil {
			t.Errorf("buildModel(%q): %v", name, err)
			continue
		}
		if m.StableN() <= 0 {
			t.Errorf("model %q has StableN %d", name, m.StableN())
		}
	}
	if _, err := buildModel("bogus", 50, time.Hour, 1); err == nil {
		t.Error("unknown model accepted")
	}
}

// TestRunTinySimulation drives the full main path against a tiny
// in-process cluster and checks every summary section reaches the
// writer (the example smoke-test pattern).
func TestRunTinySimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	var sb strings.Builder
	err := run([]string{
		"-model", "stat", "-n", "60",
		"-duration", "10m", "-warmup", "10m",
	}, &sb)
	if err != nil {
		t.Fatalf("tiny simulation failed: %v\noutput so far:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		// 60 stable + 6 control enrollees (the default 10% fraction).
		"model=stat N=60", "shards=1", "alive=66 of 66",
		"discovery:", "memory:", "compute:", "bandwidth:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunShardedMatchesSerial runs the same tiny simulation serial and
// sharded; everything except the shards= header field must be
// byte-identical (the engine's determinism contract, exercised through
// the CLI path).
func TestRunShardedMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	render := func(shards string) string {
		var sb strings.Builder
		err := run([]string{
			"-model", "synth", "-n", "50", "-seed", "9",
			"-duration", "15m", "-warmup", "10m",
			"-shards", shards,
		}, &sb)
		if err != nil {
			t.Fatalf("run at shards=%s: %v", shards, err)
		}
		return strings.ReplaceAll(sb.String(), "shards="+shards, "shards=X")
	}
	serial := render("1")
	if sharded := render("4"); sharded != serial {
		t.Errorf("sharded output differs from serial:\n--- serial ---\n%s\n--- sharded ---\n%s",
			serial, sharded)
	}
}

// TestRunOutputDiscarded keeps the io.Writer plumbing honest.
func TestRunOutputDiscarded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	err := run([]string{
		"-model", "stat", "-n", "40", "-duration", "5m", "-warmup", "5m",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunBadModel(t *testing.T) {
	if err := run([]string{"-model", "bogus"}, io.Discard); err == nil {
		t.Error("bad model accepted")
	}
}
