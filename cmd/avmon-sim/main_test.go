package main

import (
	"testing"
	"time"
)

func TestBuildModel(t *testing.T) {
	for _, name := range []string{"stat", "synth", "synth-bd", "synth-bd2", "pl", "ov"} {
		m, err := buildModel(name, 50, 2*time.Hour, 1)
		if err != nil {
			t.Errorf("buildModel(%q): %v", name, err)
			continue
		}
		if m.StableN() <= 0 {
			t.Errorf("model %q has StableN %d", name, m.StableN())
		}
	}
	if _, err := buildModel("bogus", 50, time.Hour, 1); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunTinySimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	err := run([]string{
		"-model", "stat", "-n", "60",
		"-duration", "10m", "-warmup", "10m",
	})
	if err != nil {
		t.Fatalf("tiny simulation failed: %v", err)
	}
}

func TestRunBadModel(t *testing.T) {
	if err := run([]string{"-model", "bogus"}); err == nil {
		t.Error("bad model accepted")
	}
}
