// Command avmon-node runs one real AVMON node over UDP and
// periodically prints its discovered monitors and targets.
//
// Start a first node:
//
//	avmon-node -addr 127.0.0.1:7000 -n 10
//
// Join more nodes through it:
//
//	avmon-node -addr 127.0.0.1:7001 -bootstrap 127.0.0.1:7000 -n 10
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"avmon"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "avmon-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("avmon-node", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "", "bind address and identity, a.b.c.d:port (required)")
		bootstrap = fs.String("bootstrap", "", "existing node's address (empty = first node)")
		n         = fs.Int("n", 100, "expected stable system size N")
		period    = fs.Duration("period", 5*time.Second, "protocol period T")
		monPeriod = fs.Duration("monitor-period", 5*time.Second, "monitoring period TA")
		forgetful = fs.Bool("forgetful", true, "enable forgetful pinging")
		report    = fs.Duration("report", 10*time.Second, "status print interval")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		fs.Usage()
		return fmt.Errorf("missing -addr")
	}
	svc, err := avmon.NewService(avmon.ServiceConfig{
		Addr:      *addr,
		Bootstrap: *bootstrap,
		N:         *n,
		Options: avmon.NodeOptions{
			Period:        *period,
			MonitorPeriod: *monPeriod,
			Forgetful:     *forgetful,
			Hash:          avmon.HashMD5,
		},
	})
	if err != nil {
		return err
	}
	if err := svc.Start(); err != nil {
		return err
	}
	defer svc.Stop()
	fmt.Printf("avmon-node %v up (N=%d, T=%v)\n", svc.ID(), *n, *period)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*report)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			ps, ts, cv, checks := svc.Stats()
			fmt.Printf("monitors=%d targets=%d coarse-view=%d checks=%d\n", ps, ts, cv, checks)
			for _, tgt := range svc.Targets() {
				if est, ok := svc.EstimateOf(tgt); ok {
					fmt.Printf("  availability(%v) ≈ %.2f\n", tgt, est)
				}
			}
		case <-sig:
			fmt.Println("shutting down")
			return nil
		}
	}
}
