package main

import "testing"

func TestRunRequiresAddr(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -addr accepted")
	}
}

func TestRunBadAddr(t *testing.T) {
	if err := run([]string{"-addr", "not-an-address"}); err == nil {
		t.Error("bad -addr accepted")
	}
}

func TestRunBadBootstrap(t *testing.T) {
	if err := run([]string{"-addr", "127.0.0.1:29755", "-bootstrap", "zzz"}); err == nil {
		t.Error("bad -bootstrap accepted")
	}
}
