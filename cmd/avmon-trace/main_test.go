package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"avmon/internal/trace"
)

func TestRunRequiresMode(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Error("no mode accepted")
	}
}

func TestRunUnknownGenerator(t *testing.T) {
	if err := run([]string{"-gen", "bogus"}, io.Discard); err == nil {
		t.Error("unknown generator accepted")
	}
}

func TestInspectMissingFile(t *testing.T) {
	if err := run([]string{"-inspect", "/nonexistent/file"}, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
}

// TestGenerateRoundTrip drives the full generate path in-process: the
// trace written to the output writer must parse back and describe the
// requested population.
func TestGenerateRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-gen", "pl", "-n", "25", "-duration", "4h", "-seed", "3"}, &buf); err != nil {
		t.Fatalf("generate failed: %v", err)
	}
	tr, err := trace.Read(&buf)
	if err != nil {
		t.Fatalf("generated trace does not parse: %v", err)
	}
	if tr.StableN != 25 || tr.Duration != 4*time.Hour {
		t.Errorf("round-tripped trace: StableN=%d Duration=%v", tr.StableN, tr.Duration)
	}
}

func TestInspectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	tr := trace.GenerateOvernet(30, 6*time.Hour, 2)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-inspect", path}, &sb); err != nil {
		t.Fatalf("inspect failed: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"horizon", "stable N       30", "mean session", "mean downtime"} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect output missing %q:\n%s", want, out)
		}
	}
}

func TestSummarize(t *testing.T) {
	tr := trace.GeneratePlanetLab(10, 2*time.Hour, 1)
	var sb strings.Builder
	if err := summarize(tr, &sb); err != nil {
		t.Fatalf("summarize: %v", err)
	}
	if !strings.Contains(sb.String(), "mean avail") {
		t.Errorf("summary missing availability line:\n%s", sb.String())
	}
}
