package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"avmon/internal/trace"
)

func TestRunRequiresMode(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no mode accepted")
	}
}

func TestRunUnknownGenerator(t *testing.T) {
	if err := run([]string{"-gen", "bogus"}); err == nil {
		t.Error("unknown generator accepted")
	}
}

func TestInspectMissingFile(t *testing.T) {
	if err := run([]string{"-inspect", "/nonexistent/file"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestInspectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	tr := trace.GenerateOvernet(30, 6*time.Hour, 2)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-inspect", path}); err != nil {
		t.Fatalf("inspect failed: %v", err)
	}
}

func TestSummarize(t *testing.T) {
	tr := trace.GeneratePlanetLab(10, 2*time.Hour, 1)
	if err := summarize(tr); err != nil {
		t.Fatalf("summarize: %v", err)
	}
}
