// Command avmon-trace generates, inspects, and validates availability
// traces in the avmon-trace-v1 format.
//
// Usage:
//
//	avmon-trace -gen pl -n 239 -duration 48h -seed 1 > pl.trace
//	avmon-trace -gen ov -n 550 -duration 48h > ov.trace
//	avmon-trace -inspect ov.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"avmon/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "avmon-trace:", err)
		os.Exit(1)
	}
}

// run executes one subcommand, writing generated traces and summaries
// to out (an io.Writer so tests can run it in-process, mirroring the
// example smoke-test pattern).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("avmon-trace", flag.ContinueOnError)
	var (
		gen      = fs.String("gen", "", "generate a trace: pl or ov (writes to stdout)")
		n        = fs.Int("n", 239, "stable system size")
		duration = fs.Duration("duration", 48*time.Hour, "trace horizon")
		seed     = fs.Int64("seed", 1, "generator seed")
		inspect  = fs.String("inspect", "", "read a trace file and print summary statistics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *gen != "":
		var tr *trace.Trace
		switch *gen {
		case "pl":
			tr = trace.GeneratePlanetLab(*n, *duration, *seed)
		case "ov":
			tr = trace.GenerateOvernet(*n, *duration, *seed)
		default:
			return fmt.Errorf("unknown generator %q (want pl or ov)", *gen)
		}
		return trace.Write(out, tr)
	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			return err
		}
		return summarize(tr, out)
	default:
		fs.Usage()
		return fmt.Errorf("need -gen or -inspect")
	}
}

func summarize(tr *trace.Trace, out io.Writer) error {
	deaths := 0
	var availSum float64
	for i := range tr.Nodes {
		nt := &tr.Nodes[i]
		if nt.Dead() {
			deaths++
		}
		availSum += nt.Availability(tr.Duration)
	}
	ms, md := tr.SessionStats()
	fmt.Fprintf(out, "trace %q\n", tr.Name)
	fmt.Fprintf(out, "  horizon        %v (granularity %v)\n", tr.Duration, tr.Granularity)
	fmt.Fprintf(out, "  stable N       %d\n", tr.StableN)
	fmt.Fprintf(out, "  nodes ever     %d (deaths: %d)\n", len(tr.Nodes), deaths)
	fmt.Fprintf(out, "  mean alive     %.1f\n", tr.MeanAlive(tr.Duration/48))
	fmt.Fprintf(out, "  mean avail     %.3f\n", availSum/float64(len(tr.Nodes)))
	fmt.Fprintf(out, "  mean session   %v\n", ms.Round(time.Minute))
	fmt.Fprintf(out, "  mean downtime  %v\n", md.Round(time.Minute))
	return nil
}
