package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"avmon/internal/experiments"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list failed: %v", err)
	}
	// `-run list` is an alias for -list, not an unknown experiment.
	if err := run([]string{"-run", "list"}); err != nil {
		t.Fatalf("-run list failed: %v", err)
	}
}

func TestRunRequiresID(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -run accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "figure99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadNs(t *testing.T) {
	if err := run([]string{"-run", "figure3", "-ns", "abc"}); err == nil {
		t.Error("bad -ns accepted")
	}
	if err := run([]string{"-run", "figure3", "-ns", "0"}); err == nil {
		t.Error("non-positive -ns accepted")
	}
}

func TestParseSched(t *testing.T) {
	for _, arg := range []string{"", "default", "static", "none", "all",
		"rebalance", "dynamic", "batch", "rebalance,batch", "dynamic, batch"} {
		if _, err := parseSched(arg); err != nil {
			t.Errorf("parseSched(%q) failed: %v", arg, err)
		}
	}
	cfg, err := parseSched("rebalance,dynamic")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RebalanceThreshold <= 0 || !cfg.DynamicLookahead || cfg.BatchWindows > 1 {
		t.Errorf("composed -sched config wrong: %+v", cfg)
	}
	if cfg, _ := parseSched("default"); cfg != nil {
		t.Error("-sched default should leave the engine default (nil override)")
	}
}

func TestRunBadSched(t *testing.T) {
	err := run([]string{"-run", "figure3", "-sched", "turbo"})
	if err == nil {
		t.Fatal("unknown -sched mode accepted")
	}
	for _, mode := range schedModes {
		if !strings.Contains(err.Error(), mode) {
			t.Errorf("-sched error %q does not list valid mode %q", err, mode)
		}
	}
}

func TestParseChaos(t *testing.T) {
	names := experiments.ChaosScenarioNames()
	for _, arg := range []string{"", "  ", names[0], strings.Join(names, ","),
		" " + names[0] + " , " + names[len(names)-1]} {
		if _, err := parseChaos(arg); err != nil {
			t.Errorf("parseChaos(%q) failed: %v", arg, err)
		}
	}
	if got, _ := parseChaos(""); got != nil {
		t.Error("empty -chaos should select all scenarios (nil)")
	}
}

func TestRunBadChaos(t *testing.T) {
	err := run([]string{"-run", "chaos", "-chaos", "meteor-strike"})
	if err == nil {
		t.Fatal("unknown -chaos scenario accepted")
	}
	// The error is the discovery surface: it must name every valid
	// scenario.
	for _, name := range experiments.ChaosScenarioNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("-chaos error %q does not list valid scenario %q", err, name)
		}
	}
	if err := run([]string{"-run", "chaos", "-chaos", "collusion,,zone-outage"}); err == nil {
		t.Error("empty entry in -chaos list accepted")
	}
}

func TestRunTinyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	if err := run([]string{"-run", "figure9", "-scale", "0.01", "-ns", "50"}); err != nil {
		t.Fatalf("tiny figure9 run failed: %v", err)
	}
}

func TestRunParallelWithProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	args := []string{"-run", "figure3", "-scale", "0.01", "-ns", "50,60", "-parallel", "4", "-progress"}
	if err := run(args); err != nil {
		t.Fatalf("parallel figure3 run failed: %v", err)
	}
}

func TestRunShardedWithProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	args := []string{"-run", "figure9", "-scale", "0.01", "-ns", "50", "-shards", "2",
		"-cpuprofile", cpu, "-memprofile", mem, "-outdir", dir}
	if err := run(args); err != nil {
		t.Fatalf("sharded figure9 run failed: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunBadProfilePath(t *testing.T) {
	if err := run([]string{"-run", "figure9", "-cpuprofile", "/nonexistent/dir/cpu.pprof"}); err == nil {
		t.Error("unwritable -cpuprofile accepted")
	}
}
