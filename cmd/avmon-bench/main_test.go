package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list failed: %v", err)
	}
}

func TestRunRequiresID(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -run accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "figure99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadNs(t *testing.T) {
	if err := run([]string{"-run", "figure3", "-ns", "abc"}); err == nil {
		t.Error("bad -ns accepted")
	}
	if err := run([]string{"-run", "figure3", "-ns", "0"}); err == nil {
		t.Error("non-positive -ns accepted")
	}
}

func TestRunTinyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	if err := run([]string{"-run", "figure9", "-scale", "0.01", "-ns", "50"}); err != nil {
		t.Fatalf("tiny figure9 run failed: %v", err)
	}
}

func TestRunParallelWithProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	args := []string{"-run", "figure3", "-scale", "0.01", "-ns", "50,60", "-parallel", "4", "-progress"}
	if err := run(args); err != nil {
		t.Fatalf("parallel figure3 run failed: %v", err)
	}
}
