// Command avmon-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	avmon-bench -list               (or: -run list)
//	avmon-bench -run figure3 -scale 1.0 -seed 1
//	avmon-bench -run all -scale 0.1 > results.txt
//	avmon-bench -run all -scale 1.0 -progress -parallel 8
//	avmon-bench -run scale -shards 8 -cpuprofile scale.pprof
//	avmon-bench -run wan -shards 4 -sched static
//	avmon-bench -run skew -shards 4
//	avmon-bench -run chaos -chaos collusion,zone-outage
//
// Scale 1.0 approximates the paper's methodology (hour-scale warm-up
// and multi-hour measurement windows); smaller scales shrink the
// simulated horizon proportionally, with floors that keep results
// meaningful. Sweep points run concurrently (-parallel, default
// GOMAXPROCS); output is byte-identical at any parallelism because
// every point derives its own seed from -seed and its sweep position.
// Independently, -shards partitions each single simulation across P
// engine shards (conservative parallel discrete-event simulation);
// output is byte-identical at any shard count, so -shards is purely a
// wall-clock knob — the scale experiment additionally reruns each
// point sharded and records the measured speedup in BENCH_scale.json.
// -sched selects the sharded engine's scheduler modes (lane
// rebalancing, dynamic lookahead, barrier batching; also pure
// wall-clock knobs), and -run skew measures them against a hot-shard
// population.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"avmon"
	"avmon/internal/experiments"
)

// schedModes maps -sched tokens to their effect on a scheduler
// configuration. Individual tokens compose: `-sched rebalance,batch`
// starts from the static baseline and enables exactly those modes.
var schedModes = []string{"default", "static", "all", "rebalance", "dynamic", "batch"}

// parseSched resolves the -sched flag into a scheduler override (nil =
// engine default). See SchedulerConfig for what each mode does; every
// mode is a pure wall-clock knob — results are byte-identical at any
// setting.
func parseSched(arg string) (*avmon.SchedulerConfig, error) {
	if arg == "" || arg == "default" {
		return nil, nil
	}
	def := avmon.DefaultSchedulerConfig()
	cfg := avmon.StaticSchedulerConfig()
	for _, tok := range strings.Split(arg, ",") {
		switch strings.TrimSpace(tok) {
		case "static", "none":
			cfg = avmon.StaticSchedulerConfig()
		case "all", "default":
			cfg = def
		case "rebalance":
			cfg.RebalanceThreshold = def.RebalanceThreshold
			cfg.RebalanceWindow = def.RebalanceWindow
		case "dynamic":
			cfg.DynamicLookahead = true
		case "batch":
			cfg.BatchWindows = def.BatchWindows
		default:
			return nil, fmt.Errorf("unknown -sched mode %q (valid modes: %s; combine with commas, e.g. -sched rebalance,batch)",
				strings.TrimSpace(tok), strings.Join(schedModes, ", "))
		}
	}
	return &cfg, nil
}

// parseChaos resolves the -chaos flag into the scenario subset the
// chaos experiment should run (nil = all). Unknown names are rejected
// with the full valid list, mirroring parseSched.
func parseChaos(arg string) ([]string, error) {
	arg = strings.TrimSpace(arg)
	if arg == "" {
		return nil, nil
	}
	valid := make(map[string]bool)
	for _, name := range experiments.ChaosScenarioNames() {
		valid[name] = true
	}
	var out []string
	for _, tok := range strings.Split(arg, ",") {
		tok = strings.TrimSpace(tok)
		if !valid[tok] {
			return nil, fmt.Errorf("unknown -chaos scenario %q (valid scenarios: %s)",
				tok, strings.Join(experiments.ChaosScenarioNames(), ", "))
		}
		out = append(out, tok)
	}
	return out, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "avmon-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("avmon-bench", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list experiment IDs and exit")
		runID    = fs.String("run", "", "experiment ID to run, or 'all'")
		scale    = fs.Float64("scale", 1.0, "duration scale factor (1.0 = paper-scale)")
		seed     = fs.Int64("seed", 1, "simulation seed")
		ns       = fs.String("ns", "", "comma-separated N sweep override (e.g. 100,500,1000,2000)")
		parallel = fs.Int("parallel", 0, "concurrent sweep points per experiment (0 = GOMAXPROCS; results are identical at any setting)")
		shards   = fs.Int("shards", 0, "parallel engine shards within each single simulation (0/1 = serial; results are identical at any setting; 'scale' also reruns each point sharded and reports the speedup)")
		sched    = fs.String("sched", "default", "sharded-engine scheduler modes, comma-separated: default, static, all, rebalance, dynamic, batch (results are identical at any setting)")
		chaos    = fs.String("chaos", "", "comma-separated chaos scenario subset for -run chaos (empty = all; see -run list)")
		progress = fs.Bool("progress", false, "report sweep-point completion on stderr")
		outDir   = fs.String("outdir", ".", "directory for machine-readable artifacts (e.g. BENCH_scale.json)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "avmon-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the retained heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "avmon-bench: memprofile:", err)
			}
		}()
	}
	// `-run list` is the discoverable spelling of -list: users try it
	// before reading the source, so honor it instead of erroring.
	if *list || *runID == "list" {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		fmt.Println("\nchaos scenarios (select with -chaos name[,name...]):")
		for _, s := range experiments.ChaosScenarios() {
			fmt.Printf("  %-12s %s\n", s.Name, s.Summary)
		}
		return nil
	}
	if *runID == "" {
		fs.Usage()
		return fmt.Errorf("missing -run (or -list)")
	}
	// Fail on an unusable artifact directory now, not after a sweep
	// that can take many minutes.
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("outdir: %w", err)
	}
	schedCfg, err := parseSched(*sched)
	if err != nil {
		return err
	}
	chaosNames, err := parseChaos(*chaos)
	if err != nil {
		return err
	}
	opts := experiments.Options{
		Scale: *scale, Seed: *seed, Parallelism: *parallel,
		Shards: *shards, Scheduler: schedCfg, Chaos: chaosNames,
	}
	if *ns != "" {
		for _, part := range strings.Split(*ns, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n <= 0 {
				return fmt.Errorf("bad -ns entry %q", part)
			}
			opts.Ns = append(opts.Ns, n)
		}
	}
	registry := experiments.Registry()
	var toRun []string
	if *runID == "all" {
		// "all" is the paper-reproduction flow. The beyond-paper
		// sweeps are excluded: the large-N scale sweep because its N
		// is fixed at 10k/30k/100k regardless of -scale (a 100k point
		// costs minutes of wall time and gigabytes of RSS), and wan,
		// skew, chaos, query, and realnet because all six write
		// checked-in JSON artifacts that must only be regenerated by
		// explicit, deliberately-scaled runs (realnet additionally
		// boots hundreds of real wall-clock Service nodes, so its
		// results are machine-load dependent). Run them with
		// -run scale / -run wan / -run skew / -run chaos /
		// -run query / -run realnet.
		excluded := map[string]bool{
			"scale": true, "wan": true, "skew": true, "chaos": true,
			"query": true, "realnet": true,
		}
		for _, id := range experiments.IDs() {
			if !excluded[id] {
				toRun = append(toRun, id)
			}
		}
	} else {
		if registry[*runID] == nil {
			return fmt.Errorf("unknown experiment %q (use -list)", *runID)
		}
		toRun = []string{*runID}
	}
	for _, id := range toRun {
		start := time.Now()
		if *progress {
			id := id
			opts.Progress = func(done, total int, label string) {
				fmt.Fprintf(os.Stderr, "%s: %d/%d %s\n", id, done, total, label)
			}
		}
		res, err := registry[id](opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Print(res.String())
		for name, data := range res.Artifacts {
			path := filepath.Join(*outDir, name)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return fmt.Errorf("%s: write artifact %s: %w", id, path, err)
			}
			fmt.Fprintf(os.Stderr, "%s: wrote %s (%d bytes)\n", id, path, len(data))
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
