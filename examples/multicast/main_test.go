package main

import (
	"strings"
	"testing"
	"time"
)

// TestMulticastSmoke runs the example against a tiny churned cluster.
func TestMulticastSmoke(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 60, 45*time.Minute, 6); err != nil {
		t.Fatalf("multicast run failed: %v\noutput so far:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"built two", "availability-aware parents", "random parents"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
