// Multicast: availability-aware parent selection in an overlay tree.
//
// AVCast (Pongthawornkamol & Gupta, SRDS 2006) — the system AVMON's
// monitoring relation comes from — selects overlay multicast parents
// by availability so that receivers behind stable parents see higher
// delivery ratios. This example builds two multicast trees over a
// churned system, one picking parents with the highest
// monitor-estimated availability and one picking uniformly at random,
// then compares the fraction of alive nodes whose path to the root is
// fully alive.
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"avmon"
)

const degree = 6 // max children per parent

func main() {
	if err := run(os.Stdout, 250, 5*time.Hour, 48); err != nil {
		fmt.Fprintln(os.Stderr, "multicast:", err)
		os.Exit(1)
	}
}

// run warms an n-node heterogeneous system for warmup, builds the two
// trees, and samples connectivity every 10 minutes samples times.
func run(w io.Writer, n int, warmup time.Duration, samples int) error {
	// A heterogeneous population: stable hosts make good interior tree
	// nodes, flaky ones should be leaves.
	model, err := avmon.NewMixedModel(n/2, n/2)
	if err != nil {
		return err
	}
	cluster, err := avmon.NewCluster(avmon.ClusterConfig{N: n, Seed: 11}, model)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "warming up: %v of monitoring under churn...\n", warmup)
	cluster.Run(warmup)

	estimates := make(map[int]float64, cluster.Size())
	var members []int
	for i := 0; i < cluster.Size(); i++ {
		if !cluster.Stats(i).Alive {
			continue
		}
		members = append(members, i)
		if est, ok := estimateOf(cluster, i); ok {
			estimates[i] = est
		} else {
			estimates[i] = 0.5 // unmonitored newcomers get a neutral prior
		}
	}
	if len(members) < 20 {
		return fmt.Errorf("too few alive members (%d)", len(members))
	}
	root := members[0]
	// Availability-aware tree: members attach in decreasing estimated
	// availability, so stable nodes form the interior and flaky nodes
	// become leaves.
	byAvail := append([]int(nil), members...)
	sort.SliceStable(byAvail, func(i, j int) bool {
		return estimates[byAvail[i]] > estimates[byAvail[j]]
	})
	smart := buildTree(byAvail, root)
	// Availability-agnostic tree: attachment order is random, so flaky
	// nodes end up in the interior too.
	rng := rand.New(rand.NewSource(3))
	shuffled := append([]int(nil), members...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	random := buildTree(shuffled, root)

	fmt.Fprintf(w, "built two %d-member trees rooted at node %d (max degree %d)\n\n",
		len(members), root, degree)

	// Sample connectivity every 10 minutes.
	count, smartOK, randomOK := 0, 0.0, 0.0
	for t := 0; t < samples; t++ {
		cluster.Run(10 * time.Minute)
		count++
		smartOK += deliveryRatio(cluster, smart, root)
		randomOK += deliveryRatio(cluster, random, root)
	}
	fmt.Fprintf(w, "average delivery ratio over %d samples (%v simulated):\n",
		count, time.Duration(samples)*10*time.Minute)
	fmt.Fprintf(w, "  availability-aware parents: %.3f\n", smartOK/float64(count))
	fmt.Fprintf(w, "  random parents:             %.3f\n", randomOK/float64(count))
	return nil
}

// buildTree attaches members breadth-first in the given order: early
// members fill the tree's interior, late members become leaves.
func buildTree(order []int, root int) map[int]int {
	parent := map[int]int{root: -1}
	children := map[int]int{}
	frontier := []int{root}
	var rest []int
	for _, m := range order {
		if m != root {
			rest = append(rest, m)
		}
	}
	for len(rest) > 0 && len(frontier) > 0 {
		var nextFrontier []int
		for _, p := range frontier {
			for children[p] < degree && len(rest) > 0 {
				child := rest[0]
				rest = rest[1:]
				parent[child] = p
				children[p]++
				nextFrontier = append(nextFrontier, child)
			}
		}
		frontier = nextFrontier
	}
	return parent
}

// deliveryRatio is the fraction of currently-alive tree members whose
// entire ancestor path to the root is alive.
func deliveryRatio(c *avmon.Cluster, parent map[int]int, root int) float64 {
	if !c.Stats(root).Alive {
		return 0
	}
	reachable, aliveMembers := 0, 0
	for m := range parent {
		if !c.Stats(m).Alive {
			continue
		}
		aliveMembers++
		ok := true
		for p := m; p != root; {
			p = parent[p]
			if p < 0 || !c.Stats(p).Alive {
				ok = false
				break
			}
		}
		if ok {
			reachable++
		}
	}
	if aliveMembers == 0 {
		return 0
	}
	return float64(reachable) / float64(aliveMembers)
}

func estimateOf(c *avmon.Cluster, idx int) (float64, bool) {
	var sum float64
	count := 0
	for _, mon := range c.MonitorsOf(idx) {
		if monIdx, ok := c.IndexOf(mon); ok {
			if est, known := c.EstimateBy(monIdx, c.IDOf(idx)); known {
				sum += est
				count++
			}
		}
	}
	if count == 0 {
		return 0, false
	}
	return sum / float64(count), true
}
