package main

import (
	"io"
	"strings"
	"testing"
	"time"
)

// TestQuickstartSmoke runs the example end to end against a tiny
// in-process cluster, so `go test ./...` compiles and exercises it.
func TestQuickstartSmoke(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 80, 20*time.Minute); err != nil {
		t.Fatalf("quickstart run failed: %v\noutput so far:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"AVMON quickstart", "discovered", "forged report rejected"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestQuickstartOutputDiscarded keeps the io.Writer plumbing honest.
func TestQuickstartOutputDiscarded(t *testing.T) {
	if err := run(io.Discard, 80, 20*time.Minute); err != nil {
		t.Fatal(err)
	}
}
