// Quickstart: spin up a simulated AVMON deployment, let it discover
// its availability-monitoring overlay, and verify a node's reported
// monitors the way any third party would.
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"avmon"
)

func main() {
	if err := run(os.Stdout, 200, 30*time.Minute); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

// run simulates a static n-node system for the given horizon and
// walks through discovery, verified reporting, and a forged report.
// Output goes to w; tests drive it with a tiny cluster.
func run(w io.Writer, n int, horizon time.Duration) error {
	// A static system with the paper's default parameters:
	// K = log2(N) monitors per node, coarse views of 4·N^(1/4).
	cluster, err := avmon.NewCluster(avmon.ClusterConfig{
		N:    n,
		Seed: 42,
	}, avmon.NewSTATModel(n))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "AVMON quickstart: N=%d, K=%d, cvs=%d\n", n, cluster.K(), cluster.CVS())
	fmt.Fprintf(w, "analytical E[discovery] = %.1f protocol periods\n\n",
		avmon.ExpectedDiscoveryTime(cluster.CVS(), n))

	cluster.Run(horizon)

	// Who monitors node 0?
	subject := 0
	monitors := cluster.MonitorsOf(subject)
	fmt.Fprintf(w, "node %v discovered %d monitors:\n", cluster.IDOf(subject), len(monitors))
	for _, m := range monitors {
		fmt.Fprintf(w, "  %v\n", m)
	}

	// The "l out of K" reporting policy: ask node 0 for 3 monitors and
	// verify each against the consistency condition. A selfish node
	// could not slip a colluder into this list.
	report := cluster.ReportMonitors(subject, 3)
	verified, err := avmon.VerifyReport(cluster.Scheme(), cluster.IDOf(subject), report, 1)
	if err != nil {
		return fmt.Errorf("report failed verification: %w", err)
	}
	fmt.Fprintf(w, "\nreported %d monitors; all verified: %v\n", len(report), verified)

	// A forged report is rejected. Pick a node that provably fails the
	// consistency condition for the subject, so the forgery is never
	// coincidentally genuine.
	var colluder avmon.ID
	for i := 1; i < n; i++ {
		if id := cluster.IDOf(i); !cluster.Scheme().Related(id, cluster.IDOf(subject)) {
			colluder = id
			break
		}
	}
	forged := append([]avmon.ID{colluder}, report...)
	if _, err := avmon.VerifyReport(cluster.Scheme(), cluster.IDOf(subject), forged, 1); err != nil {
		fmt.Fprintf(w, "forged report rejected as expected: %v\n", err)
	} else {
		return fmt.Errorf("forged report with colluder %v was accepted", colluder)
	}

	// Ask a monitor for node 0's measured availability.
	if len(verified) > 0 {
		if monIdx, ok := cluster.IndexOf(verified[0]); ok {
			if est, known := cluster.EstimateBy(monIdx, cluster.IDOf(subject)); known {
				fmt.Fprintf(w, "\nmonitor %v estimates node %v availability at %.2f\n",
					verified[0], cluster.IDOf(subject), est)
			}
		}
	}
	return nil
}
