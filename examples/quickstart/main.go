// Quickstart: spin up a simulated AVMON deployment, let it discover
// its availability-monitoring overlay, and verify a node's reported
// monitors the way any third party would.
package main

import (
	"fmt"
	"os"
	"time"

	"avmon"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 200

	// A static 200-node system with the paper's default parameters:
	// K = log2(N) monitors per node, coarse views of 4·N^(1/4).
	cluster, err := avmon.NewCluster(avmon.ClusterConfig{
		N:    n,
		Seed: 42,
	}, avmon.NewSTATModel(n))
	if err != nil {
		return err
	}
	fmt.Printf("AVMON quickstart: N=%d, K=%d, cvs=%d\n", n, cluster.K(), cluster.CVS())
	fmt.Printf("analytical E[discovery] = %.1f protocol periods\n\n",
		avmon.ExpectedDiscoveryTime(cluster.CVS(), n))

	// Simulate half an hour of protocol time (30 protocol periods).
	cluster.Run(30 * time.Minute)

	// Who monitors node 0?
	subject := 0
	monitors := cluster.MonitorsOf(subject)
	fmt.Printf("node %v discovered %d monitors:\n", cluster.IDOf(subject), len(monitors))
	for _, m := range monitors {
		fmt.Printf("  %v\n", m)
	}

	// The "l out of K" reporting policy: ask node 0 for 3 monitors and
	// verify each against the consistency condition. A selfish node
	// could not slip a colluder into this list.
	report := cluster.ReportMonitors(subject, 3)
	verified, err := avmon.VerifyReport(cluster.Scheme(), cluster.IDOf(subject), report, 1)
	if err != nil {
		return fmt.Errorf("report failed verification: %w", err)
	}
	fmt.Printf("\nreported %d monitors; all verified: %v\n", len(report), verified)

	// A forged report is rejected.
	forged := append([]avmon.ID{cluster.IDOf(150)}, report...)
	if _, err := avmon.VerifyReport(cluster.Scheme(), cluster.IDOf(subject), forged, 1); err != nil {
		fmt.Printf("forged report rejected as expected: %v\n", err)
	} else {
		// Node 150 might coincidentally be a real monitor; note it.
		fmt.Println("note: the forged entry happened to be a genuine monitor")
	}

	// Ask a monitor for node 0's measured availability.
	if len(verified) > 0 {
		if monIdx, ok := cluster.IndexOf(verified[0]); ok {
			if est, known := cluster.EstimateBy(monIdx, cluster.IDOf(subject)); known {
				fmt.Printf("\nmonitor %v estimates node %v availability at %.2f\n",
					verified[0], cluster.IDOf(subject), est)
			}
		}
	}
	return nil
}
