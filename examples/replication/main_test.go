package main

import (
	"strings"
	"testing"
	"time"
)

// TestReplicationSmoke runs the example against a tiny churned cluster.
func TestReplicationSmoke(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 60, 45*time.Minute, 8); err != nil {
		t.Fatalf("replication run failed: %v\noutput so far:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"placed 5 replicas", "availability-aware", "random placement"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
