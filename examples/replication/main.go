// Replication: availability-aware replica placement on top of AVMON.
//
// Godfrey et al. (SIGCOMM 2006), cited in the paper's introduction,
// showed that replica selection informed by per-node availability
// history beats availability-agnostic selection. This example
// reproduces that effect: after AVMON has monitored a churned system
// for a while, we place file replicas on (a) the nodes with the
// highest monitor-estimated availability and (b) uniformly random
// nodes, then measure how often each replica set keeps the file
// available over the following hours.
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"avmon"
)

const replicas = 5

func main() {
	if err := run(os.Stdout, 300, 6*time.Hour, 72); err != nil {
		fmt.Fprintln(os.Stderr, "replication:", err)
		os.Exit(1)
	}
}

// run warms an n-node heterogeneous system for warmup, places the two
// replica sets, and samples their availability every 10 minutes
// samples times.
func run(w io.Writer, n int, warmup time.Duration, samples int) error {
	// Half the population is stable, half flaps between up and down —
	// the regime where availability history predicts the future.
	model, err := avmon.NewMixedModel(n/2, n/2)
	if err != nil {
		return err
	}
	cluster, err := avmon.NewCluster(avmon.ClusterConfig{N: n, Seed: 7}, model)
	if err != nil {
		return err
	}

	// Let AVMON discover the overlay and accumulate availability
	// history through several churn cycles.
	fmt.Fprintf(w, "warming up: %v of monitoring under churn...\n", warmup)
	cluster.Run(warmup)

	// Estimate each node's availability by averaging over its
	// discovered monitors (the application-level read path).
	type scored struct {
		idx int
		est float64
	}
	var candidates []scored
	for i := 0; i < cluster.Size(); i++ {
		est, ok := monitorAveragedEstimate(cluster, i)
		if ok {
			candidates = append(candidates, scored{i, est})
		}
	}
	if len(candidates) < replicas*2 {
		return fmt.Errorf("too few monitored nodes (%d)", len(candidates))
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].est > candidates[j].est })

	smart := make([]int, 0, replicas)
	for _, s := range candidates[:replicas] {
		smart = append(smart, s.idx)
	}
	rng := rand.New(rand.NewSource(1))
	random := make([]int, 0, replicas)
	for _, i := range rng.Perm(len(candidates))[:replicas] {
		random = append(random, candidates[i].idx)
	}

	fmt.Fprintf(w, "placed %d replicas by estimated availability: %v\n", replicas, smart)
	fmt.Fprintf(w, "placed %d replicas uniformly at random:       %v\n", replicas, random)

	// Sample both replica sets every 10 minutes.
	count, smartUp, randomUp, smartAvail, randomAvail := 0, 0, 0, 0, 0
	for t := 0; t < samples; t++ {
		cluster.Run(10 * time.Minute)
		count++
		if c := aliveCount(cluster, smart); c > 0 {
			smartAvail++
			smartUp += c
		}
		if c := aliveCount(cluster, random); c > 0 {
			randomAvail++
			randomUp += c
		}
	}
	fmt.Fprintf(w, "\nover %d samples spanning %v simulated:\n",
		count, time.Duration(samples)*10*time.Minute)
	fmt.Fprintf(w, "  availability-aware: file reachable %5.1f%% of the time, avg %.1f/%d replicas up\n",
		100*float64(smartAvail)/float64(count), float64(smartUp)/float64(count), replicas)
	fmt.Fprintf(w, "  random placement:   file reachable %5.1f%% of the time, avg %.1f/%d replicas up\n",
		100*float64(randomAvail)/float64(count), float64(randomUp)/float64(count), replicas)
	if smartUp <= randomUp {
		fmt.Fprintln(w, "\nnote: random won this seed; availability-aware placement wins on average")
	}
	return nil
}

// monitorAveragedEstimate averages the availability estimates held by
// a node's discovered monitors.
func monitorAveragedEstimate(c *avmon.Cluster, idx int) (float64, bool) {
	var sum float64
	count := 0
	for _, mon := range c.MonitorsOf(idx) {
		monIdx, ok := c.IndexOf(mon)
		if !ok {
			continue
		}
		if est, known := c.EstimateBy(monIdx, c.IDOf(idx)); known {
			sum += est
			count++
		}
	}
	if count == 0 {
		return 0, false
	}
	return sum / float64(count), true
}

func aliveCount(c *avmon.Cluster, set []int) int {
	up := 0
	for _, idx := range set {
		if c.Stats(idx).Alive {
			up++
		}
	}
	return up
}
