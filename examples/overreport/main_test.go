package main

import (
	"strings"
	"testing"
	"time"
)

// TestOverreportSmoke runs the attack sweep and the verifiability
// demonstration against tiny clusters.
func TestOverreportSmoke(t *testing.T) {
	var sb strings.Builder
	err := run(&sb, 60, []float64{0, 0.20}, time.Hour, 20*time.Minute)
	if err != nil {
		t.Fatalf("overreport run failed: %v\noutput so far:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"overreporting attack sweep", "verifiability check", "rejects the report"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
