// Overreport: the collusion attack of Section 5.4 and why AVMON
// bounds its damage.
//
// A fraction of nodes act as dishonest monitors, reporting 100%
// availability for everything they monitor. Because monitor selection
// is random and verifiable, a victim cannot choose its colluders as
// monitors, and a querier averaging over several verified monitors is
// rarely fooled. This example measures the fraction of nodes whose
// measured availability is off by more than 0.2 as the overreporting
// fraction grows, and shows a fabricated monitor list being rejected.
package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"avmon"
)

func main() {
	err := run(os.Stdout, 250, []float64{0, 0.10, 0.20}, 4*time.Hour, 30*time.Minute)
	if err != nil {
		fmt.Fprintln(os.Stderr, "overreport:", err)
		os.Exit(1)
	}
}

// run sweeps the given overreporting fractions over an n-node churned
// system (attackHorizon each), then demonstrates third-party
// verification on a static system run for verifyHorizon.
func run(w io.Writer, n int, fracs []float64, attackHorizon, verifyHorizon time.Duration) error {
	fmt.Fprintf(w, "overreporting attack sweep (SYNTH churn, %v each):\n", attackHorizon)
	for _, frac := range fracs {
		affected, measured, err := attackRun(n, frac, attackHorizon)
		if err != nil {
			return err
		}
		if measured == 0 {
			return fmt.Errorf("no measured nodes at fraction %.2f", frac)
		}
		fmt.Fprintf(w, "  %4.0f%% dishonest monitors → %d of %d nodes mis-measured by > 0.2 (%.1f%%)\n",
			frac*100, affected, measured, 100*float64(affected)/float64(measured))
	}

	// Verifiability: a node cannot claim its colluder is a monitor.
	cluster, err := avmon.NewCluster(avmon.ClusterConfig{N: n, Seed: 5}, avmon.NewSTATModel(n))
	if err != nil {
		return err
	}
	cluster.Run(verifyHorizon)
	subject := 0
	honest := cluster.ReportMonitors(subject, 3)
	// Find a node that is NOT a monitor of the subject — the colluder.
	var colluder avmon.ID
	for i := 1; i < n; i++ {
		id := cluster.IDOf(i)
		if !cluster.Scheme().Related(id, cluster.IDOf(subject)) {
			colluder = id
			break
		}
	}
	forged := append([]avmon.ID{colluder}, honest...)
	_, err = avmon.VerifyReport(cluster.Scheme(), cluster.IDOf(subject), forged, 1)
	fmt.Fprintf(w, "\nverifiability check: node %v claims colluder %v monitors it\n",
		cluster.IDOf(subject), colluder)
	if err == nil {
		return fmt.Errorf("forged report with colluder %v was accepted", colluder)
	}
	fmt.Fprintf(w, "  third-party verification rejects the report: %v\n", err)
	return nil
}

// attackRun simulates a churned system with the given fraction of
// overreporting monitors and counts mis-measured nodes.
func attackRun(n int, frac float64, horizon time.Duration) (affected, measured int, err error) {
	model, err := avmon.NewSYNTHModel(n, 0.3)
	if err != nil {
		return 0, 0, err
	}
	cluster, err := avmon.NewCluster(avmon.ClusterConfig{
		N:                  n,
		Seed:               9,
		OverreportFraction: frac,
	}, model)
	if err != nil {
		return 0, 0, err
	}
	cluster.Run(horizon)
	for i := 0; i < cluster.Size(); i++ {
		st := cluster.Stats(i)
		if !st.Alive || st.TrueAvailability() <= 0 {
			continue
		}
		var sum float64
		count := 0
		for _, mon := range cluster.MonitorsOf(i) {
			monIdx, ok := cluster.IndexOf(mon)
			if !ok {
				continue
			}
			if est, known := cluster.EstimateBy(monIdx, cluster.IDOf(i)); known {
				sum += est
				count++
			}
		}
		if count == 0 {
			continue
		}
		measured++
		if math.Abs(sum/float64(count)-st.TrueAvailability()) > 0.2 {
			affected++
		}
	}
	return affected, measured, nil
}
