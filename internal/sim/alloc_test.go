package sim

import (
	"testing"
	"time"
)

// countingHandler is a long-lived Handler as the PostEvent contract
// intends: the interface value wraps an existing pointer, so posting
// boxes nothing.
type countingHandler struct {
	fired int
	last  EventArg
}

func (h *countingHandler) Fire(now time.Time, arg EventArg) {
	h.fired++
	h.last = arg
}

// TestZeroAllocEventPostDeliver gates the by-value event path: at
// steady state (heap slice warm), posting a handler event and
// delivering it performs zero heap allocations.
func TestZeroAllocEventPostDeliver(t *testing.T) {
	eng := New(1)
	lane := eng.AddLane()
	h := &countingHandler{}
	// Warm the event heap's backing array.
	for i := 0; i < 64; i++ {
		eng.PostEvent(lane, lane, eng.Now().Add(time.Millisecond), h, EventArg{A: uint64(i)})
	}
	eng.Run()
	firedBefore := h.fired
	allocs := testing.AllocsPerRun(200, func() {
		eng.PostEvent(lane, lane, eng.Now().Add(time.Millisecond), h, EventArg{A: 7, B: 9})
		eng.RunFor(time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("post+deliver allocates %v objects per event, want 0", allocs)
	}
	if h.fired == firedBefore {
		t.Fatal("gate measured nothing: no events fired")
	}
	if h.last.A != 7 || h.last.B != 9 {
		t.Errorf("EventArg = %+v, want A=7 B=9", h.last)
	}
}

// TestZeroAllocTickerSteadyState gates the protocol-period driver:
// once a ticker is running, each firing (callback + self-reschedule)
// allocates nothing.
func TestZeroAllocTickerSteadyState(t *testing.T) {
	eng := New(2)
	lane := eng.AddLane()
	count := 0
	eng.NewLaneTicker(lane, time.Second, 0, func(time.Time) { count++ })
	eng.RunFor(5 * time.Second) // warm up past the first firings
	countBefore := count
	allocs := testing.AllocsPerRun(100, func() {
		eng.RunFor(time.Second)
	})
	if allocs != 0 {
		t.Errorf("ticker firing allocates %v objects, want 0", allocs)
	}
	if count == countBefore {
		t.Fatal("gate measured nothing: ticker did not fire")
	}
}
