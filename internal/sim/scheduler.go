package sim

// The shard scheduler: the per-barrier decisions of the sharded engine,
// factored out of the window loop. Three previously hardwired choices
// are made explicitly here, each independently configurable through
// SchedulerConfig:
//
//   - Dynamic lookahead (window sizing). The static engine advanced
//     every shard in lockstep to gmin+L, where gmin is the earliest
//     pending event anywhere and L the lookahead floor. The dynamic
//     scheduler gives each shard its own horizon: the earliest pending
//     event owned by any OTHER shard, plus the conservative cross-lane
//     bound (the latency floor) — the classic conservative-PDES safe
//     time. A shard whose peers are quiet runs far ahead in one window;
//     the hot shard of a skewed population is no longer throttled by
//     its own queue.
//
//   - Barrier batching. A full coordinator barrier (park workers, run
//     control events, merge outboxes, sample load) is only required
//     when there is cross-shard traffic to merge or a control event to
//     run. Between those points, workers advance through consecutive
//     windows on their own, synchronizing through a cheap worker-side
//     barrier, for up to BatchWindows windows per coordinator
//     round-trip.
//
//   - Lane rebalancing. Per-shard executed-event counts are sampled
//     into a sliding window of the last RebalanceWindow barriers; when
//     the busiest shard exceeds RebalanceThreshold × the mean, whole
//     lanes (heaviest first) migrate from the busiest to the idlest
//     shard, together with their queued events. The canonical event
//     order is shard-assignment-independent, so migration can never
//     change results — only wall-clock balance.
//
// Determinism. Every scheduling decision is a function of per-shard
// event counts, queue minima, and the configuration — never of wall
// time or goroutine interleaving — so for a fixed (seed, shard count,
// SchedulerConfig) the window grid, batch boundaries, and migrations
// are all reproducible. Per-shard busy wall-clock time is measured and
// reported (SchedStats) but deliberately never consulted for
// decisions. And by the canonical-order contract, results are
// byte-identical to the serial engine under every configuration.

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// SchedulerConfig tunes the sharded engine's per-barrier scheduling
// decisions. The zero value disables all three mechanisms and
// reproduces the original static scheduler (lockstep windows of
// exactly one lookahead, a coordinator barrier after every window, no
// migration); DefaultSchedulerConfig enables all three. Every setting
// is a pure wall-clock knob: results are byte-identical to the serial
// engine under any configuration.
type SchedulerConfig struct {
	// DynamicLookahead replaces the lockstep window end (earliest
	// pending event anywhere + lookahead) with a per-shard horizon:
	// the earliest pending event owned by any other shard, extended by
	// the conservative cross-lane bound (the lookahead floor, or the
	// bound registered with SetCrossLaneBound). Shards with quiet
	// peers run many windows' worth of events in one pass.
	DynamicLookahead bool
	// BatchWindows caps how many consecutive windows the shards run
	// between coordinator barriers, synchronizing through a cheap
	// worker-side barrier while no cross-shard post is pending and no
	// control event is due. Values ≤ 1 disable batching (one window
	// per coordinator barrier).
	BatchWindows int
	// RebalanceThreshold triggers lane migration when the busiest
	// shard's executed-event count over the sliding window exceeds
	// this multiple of the per-shard mean. Must be ≥ 1; values ≤ 0
	// disable rebalancing.
	RebalanceThreshold float64
	// RebalanceWindow is the number of coordinator barriers in the
	// sliding load window behind RebalanceThreshold (default 8 when
	// rebalancing is enabled).
	RebalanceWindow int
}

// DefaultSchedulerConfig returns the configuration a sharded engine
// runs with unless told otherwise: dynamic lookahead on, up to 8
// windows batched per coordinator barrier, and lane rebalancing at a
// 1.3× load-imbalance threshold over an 8-barrier sliding window.
func DefaultSchedulerConfig() SchedulerConfig {
	return SchedulerConfig{
		DynamicLookahead:   true,
		BatchWindows:       8,
		RebalanceThreshold: 1.3,
		RebalanceWindow:    8,
	}
}

// StaticSchedulerConfig returns the all-off configuration: lockstep
// windows exactly one lookahead wide, a coordinator barrier after
// every window, round-robin lane assignment forever. This is the
// scheduler the sharded engine shipped with before the adaptive
// layer; it remains available as the baseline the adaptive modes are
// benchmarked against.
func StaticSchedulerConfig() SchedulerConfig { return SchedulerConfig{} }

// normalize validates cfg and fills defaults, mirroring the rules in
// the field docs.
func (cfg SchedulerConfig) normalize() (SchedulerConfig, error) {
	if math.IsNaN(cfg.RebalanceThreshold) || math.IsInf(cfg.RebalanceThreshold, 0) {
		return cfg, fmt.Errorf("sim: rebalance threshold must be finite, got %v", cfg.RebalanceThreshold)
	}
	if cfg.RebalanceThreshold > 0 && cfg.RebalanceThreshold < 1 {
		return cfg, fmt.Errorf(
			"sim: rebalance threshold %v is meaningless (max/mean load is always ≥ 1); use ≥ 1 to enable or ≤ 0 to disable",
			cfg.RebalanceThreshold)
	}
	if cfg.BatchWindows < 1 {
		cfg.BatchWindows = 1
	}
	if cfg.RebalanceWindow < 1 {
		cfg.RebalanceWindow = 8
	}
	return cfg, nil
}

// ShardStats describes one shard's share of a sharded run.
type ShardStats struct {
	// Lanes is the number of node lanes currently assigned to the
	// shard (migration moves lanes between shards).
	Lanes int
	// Steps is the number of events the shard has executed.
	Steps uint64
	// BusyNS is the wall-clock nanoseconds the shard's worker spent
	// executing events (excluding barrier waits). It is a host
	// measurement: deterministic runs report nondeterministic BusyNS.
	BusyNS int64
}

// SchedStats is a snapshot of the sharded engine's scheduler counters,
// valid while the engine is quiescent. Windows, Barriers, and
// Migrations are deterministic for a fixed (seed, shard count,
// SchedulerConfig); PerShard busy times are host measurements.
type SchedStats struct {
	// Shards is the configured shard count.
	Shards int
	// Lookahead is the engine's conservative cross-lane floor.
	Lookahead time.Duration
	// Windows counts executed lookahead windows across the run,
	// including windows batched between coordinator barriers.
	Windows uint64
	// Barriers counts coordinator barriers: full stop-the-world
	// round-trips that run control events, merge cross-shard posts,
	// and sample load. Batching makes Barriers < Windows.
	Barriers uint64
	// Migrations counts rebalancing events (each may move several
	// lanes).
	Migrations uint64
	// LanesMoved counts lanes migrated across all rebalancing events.
	LanesMoved uint64
	// PerShard holds one entry per shard.
	PerShard []ShardStats
}

// SchedStats returns the engine's scheduler counters. Valid while
// quiescent.
func (e *ShardedEngine) SchedStats() SchedStats {
	st := SchedStats{
		Shards:     len(e.shards),
		Lookahead:  time.Duration(e.lookahead),
		Windows:    e.windows,
		Barriers:   e.barriers,
		Migrations: e.migrations,
		LanesMoved: e.lanesMoved,
		PerShard:   make([]ShardStats, len(e.shards)),
	}
	for i, s := range e.shards {
		st.PerShard[i] = ShardStats{Steps: s.steps, BusyNS: s.busyNS}
	}
	for _, l := range e.laneByID[1:] {
		st.PerShard[l.shard].Lanes++
	}
	return st
}

// Scheduler returns the engine's normalized scheduler configuration.
func (e *ShardedEngine) Scheduler() SchedulerConfig { return e.cfg }

// SetCrossLaneBound registers a conservative bound on cross-lane event
// generation: fn(t) must lower-bound the timestamp of every cross-lane
// post made by events executing at or after virtual time t (as an
// offset from Epoch). The dynamic scheduler extends each shard's
// horizon with this bound instead of the raw lookahead floor; layers
// that generate cross-lane traffic (the simulated network exports its
// bound as simnet.Network.CrossLaneBound) register it at construction.
// A bound that promises more distance than traffic actually keeps
// surfaces as the engine's deterministic lookahead panic. Call while
// quiescent only; nil restores the default (t + Lookahead).
func (e *ShardedEngine) SetCrossLaneBound(fn func(after time.Duration) time.Duration) {
	e.boundFn = fn
}

// crossLaneBound returns the earliest virtual time (nanos) at which
// events executing at ≥ after could generate a cross-lane post. The
// engine's own lookahead floor is authoritative — cross-lane posts
// closer than it panic regardless of the registered bound — so an
// under-promising bound function is clamped up to it rather than
// being allowed to stall horizon progress.
func (e *ShardedEngine) crossLaneBound(after int64) int64 {
	floor := after + e.lookahead
	if e.boundFn == nil {
		return floor
	}
	if b := int64(e.boundFn(time.Duration(after))); b > floor {
		return b
	}
	return floor
}

// --- window horizons --------------------------------------------------

// computeHorizons assigns every shard its execution horizon for the
// next window and returns whether any shard can make progress (owns an
// event below its horizon). qmins holds each shard's earliest queued
// timestamp (maxInt64 when empty); limitCtl caps every horizon at the
// next due control event and the run deadline.
//
// Static mode is the original lockstep grid: every horizon is
// bound(g1), g1 the global earliest pending event and bound the
// cross-lane floor. Dynamic mode widens the horizon of the shard that
// OWNS g1 using the conservative fixpoint over transitive refills: the
// earliest any other shard o can ever execute an event again is
// EA(o) = min(qmin(o), bound(g1)) — its own queue, or a delivery the
// g1 shard sends it — so nothing can reach the g1 shard before
// bound(min over others of EA(o)) = bound(min(g2, bound(g1))), g2 the
// earliest event owned by any other shard. With a quiet tail
// (g2 ≫ g1) that is two lookaheads of head start per window, and with
// a single shard — no cross-shard traffic at all — the horizon is
// limitCtl outright. Shards other than the g1 owner cannot be widened:
// a delivery from the g1 shard can reach them as early as bound(g1).
// Outboxes are empty whenever horizons are computed (a batch stops at
// the first window with a cross-shard post), so queue minima are a
// complete account of pending events.
func (e *ShardedEngine) computeHorizons(qmins []int64, limitCtl int64) bool {
	// g1/g2: the two earliest pending timestamps across shards, with
	// g1's owner. Ties leave g2 == g1, which correctly disables the
	// widened horizon (two shards at g1 can post to each other at
	// bound(g1)).
	g1, g2 := int64(math.MaxInt64), int64(math.MaxInt64)
	g1at := -1
	for i, m := range qmins {
		if m < g1 {
			g1, g2, g1at = m, g1, i
		} else if m < g2 {
			g2 = m
		}
	}
	if g1 == math.MaxInt64 {
		return false
	}
	base := e.crossLaneBound(g1)
	if base > limitCtl {
		base = limitCtl
	}
	progress := false
	for i, s := range e.shards {
		h := base
		if e.cfg.DynamicLookahead && i == g1at {
			h = limitCtl
			if len(e.shards) > 1 {
				ea := e.crossLaneBound(g1) // earliest refill of a quiet peer
				if g2 < ea {
					ea = g2
				}
				if b := e.crossLaneBound(ea); b < h {
					h = b
				}
			}
		}
		s.limit = h
		if h > s.frontier {
			s.frontier = h
		}
		if qmins[i] < h {
			progress = true
		}
	}
	return progress
}

// --- batched windows --------------------------------------------------

// windowBatch coordinates one coordinator dispatch: up to maxRounds
// consecutive windows executed by all shards, synchronized through a
// worker-side barrier instead of a coordinator round-trip. The batch
// ends at the first window that produced a cross-shard post (the next
// window's horizons would not account for the undelivered events), on
// a worker panic, when no shard can progress (all horizons capped by
// the next control event, the deadline, or empty queues), or when
// maxRounds windows have run.
type windowBatch struct {
	mu   sync.Mutex
	cond *sync.Cond

	n         int // participating shards
	arrived   int // shards parked at the barrier this round
	gen       uint64
	qmins     []int64 // per-shard queue head after the current round
	stop      bool    // a shard cross-posted or panicked this round
	done      bool    // batch over; workers return to the coordinator
	rounds    uint64  // windows completed this batch
	maxRounds int
	limitCtl  int64 // horizon cap: min(next control event, deadline+1)
}

func newWindowBatch(shards int) *windowBatch {
	b := &windowBatch{n: shards, qmins: make([]int64, shards)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// reset prepares the batch for one coordinator dispatch.
func (b *windowBatch) reset(maxRounds int, limitCtl int64) {
	b.arrived, b.stop, b.done, b.rounds = 0, false, false, 0
	b.maxRounds, b.limitCtl = maxRounds, limitCtl
}

// sync is the worker-side barrier: shard s reports its queue head and
// whether it cross-posted this round; the last arriver advances the
// batch (computing the next round's horizons or ending it). It returns
// false when the batch is over.
func (b *windowBatch) sync(e *ShardedEngine, s *shard) bool {
	qmin := int64(math.MaxInt64)
	if len(s.queue) > 0 {
		qmin = s.queue[0].at
	}
	posted := s.posted
	s.posted = false

	b.mu.Lock()
	defer b.mu.Unlock()
	b.qmins[s.idx] = qmin
	if posted || s.panicked != nil {
		b.stop = true
	}
	b.arrived++
	if b.arrived == b.n {
		b.advance(e)
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return !b.done
	}
	for g := b.gen; g == b.gen; {
		b.cond.Wait()
	}
	return !b.done
}

// advance runs under b.mu with every worker parked: count the finished
// round, then either end the batch or hand out the next round's
// horizons.
func (b *windowBatch) advance(e *ShardedEngine) {
	b.rounds++
	if b.stop || int(b.rounds) >= b.maxRounds {
		b.done = true
		return
	}
	if !e.computeHorizons(b.qmins, b.limitCtl) {
		b.done = true
	}
}

// --- lane rebalancing -------------------------------------------------

// sampleLoad records each shard's executed-event count since the last
// coordinator barrier into the sliding load window.
func (e *ShardedEngine) sampleLoad() {
	if e.cfg.RebalanceThreshold <= 0 || len(e.shards) < 2 {
		return
	}
	w := e.cfg.RebalanceWindow
	for i, s := range e.shards {
		e.loadRing[i][e.ringPos] = s.steps - s.sampleSteps
		s.sampleSteps = s.steps
	}
	e.ringPos = (e.ringPos + 1) % w
	if e.ringFill < w {
		e.ringFill++
	}
}

// maybeRebalance migrates whole lanes from the busiest shard to the
// idlest when the sliding-window load imbalance exceeds the threshold.
// It runs at coordinator barriers with every worker parked and the
// outboxes drained. Migration is invisible to results: the canonical
// event order is a pure function of per-lane histories, independent of
// which shard executes a lane, so only wall-clock balance changes.
func (e *ShardedEngine) maybeRebalance() {
	if e.cfg.RebalanceThreshold <= 0 || len(e.shards) < 2 || e.ringFill < e.cfg.RebalanceWindow {
		return
	}
	var total uint64
	maxAt, minAt := 0, 0
	sums := make([]uint64, len(e.shards))
	for i := range e.shards {
		for _, v := range e.loadRing[i] {
			sums[i] += v
		}
		total += sums[i]
		if sums[i] > sums[maxAt] {
			maxAt = i
		}
		if sums[i] < sums[minAt] {
			minAt = i
		}
	}
	mean := float64(total) / float64(len(e.shards))
	if mean == 0 || float64(sums[maxAt]) <= e.cfg.RebalanceThreshold*mean {
		return
	}
	// Cumulative per-lane event counts weight the migration: move the
	// heaviest lanes of the busiest shard until the (cumulative) gap to
	// the idlest shard closes. Greedy descending, moving a lane only
	// while its weight still reduces the gap.
	var srcLanes []*Lane
	var srcSum, dstSum int64
	for _, l := range e.laneByID[1:] {
		switch int(l.shard) {
		case maxAt:
			srcLanes = append(srcLanes, l)
			srcSum += int64(l.execs)
		case minAt:
			dstSum += int64(l.execs)
		}
	}
	gap := srcSum - dstSum
	if gap <= 0 || len(srcLanes) < 2 {
		e.ringFill = 0 // stale signal: re-fill the window before retrying
		return
	}
	// Deterministic order: weight descending, lane id ascending on ties.
	sort.Slice(srcLanes, func(i, j int) bool {
		a, b := srcLanes[i], srcLanes[j]
		if a.execs != b.execs {
			return a.execs > b.execs
		}
		return a.id < b.id
	})
	moved := 0
	for _, l := range srcLanes {
		if moved == len(srcLanes)-1 {
			break // leave the busiest shard at least one lane
		}
		w := int64(l.execs)
		if w == 0 || w > gap {
			continue // moving this lane would overshoot (or is pointless)
		}
		l.shard = int32(minAt)
		gap -= 2 * w
		moved++
		if gap <= 0 {
			break
		}
	}
	if moved == 0 {
		e.ringFill = 0
		return
	}
	e.migrations++
	e.lanesMoved += uint64(moved)
	e.repartitionQueue(e.shards[maxAt])
	// Past samples describe the old assignment; refill before the next
	// decision.
	e.ringFill = 0
}

// repartitionQueue moves the queued events of migrated lanes out of
// shard s into their lanes' new owners, re-heapifying what remains.
func (e *ShardedEngine) repartitionQueue(s *shard) {
	kept := s.queue[:0]
	var moved []event
	for _, ev := range s.queue {
		if int(e.laneByID[ev.lane].shard) == s.idx {
			kept = append(kept, ev)
		} else {
			moved = append(moved, ev)
		}
	}
	for i := len(kept); i < len(s.queue); i++ {
		s.queue[i] = event{} // release closures for GC
	}
	s.queue = kept
	s.queue.init()
	for _, ev := range moved {
		e.shards[e.laneByID[ev.lane].shard].queue.push(ev)
	}
}

// init restores the heap invariant over arbitrary contents (classic
// bottom-up heapify), used after repartitioning filters a queue in
// place.
func (q eventQueue) init() {
	for i := len(q)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
}

func (q eventQueue) siftDown(i int) {
	for {
		left := 2*i + 1
		if left >= len(q) {
			return
		}
		smallest := left
		if right := left + 1; right < len(q) && q[right].before(q[left]) {
			smallest = right
		}
		if !q[smallest].before(q[i]) {
			return
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
}
