package sim

import (
	"testing"
	"time"
)

func TestEventsFireInTimestampOrder(t *testing.T) {
	e := New(1)
	var order []int
	e.After(3*time.Second, func() { order = append(order, 3) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.After(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New(1)
	var order []int
	at := Epoch.Add(time.Minute)
	for i := 0; i < 10; i++ {
		i := i
		e.At(at, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := New(1)
	var sawNow time.Time
	e.After(90*time.Second, func() { sawNow = e.Now() })
	e.RunFor(2 * time.Minute)
	want := Epoch.Add(90 * time.Second)
	if !sawNow.Equal(want) {
		t.Errorf("callback saw now = %v, want %v", sawNow, want)
	}
	if !e.Now().Equal(Epoch.Add(2 * time.Minute)) {
		t.Errorf("clock after RunFor = %v, want %v", e.Now(), Epoch.Add(2*time.Minute))
	}
	if e.Elapsed() != 2*time.Minute {
		t.Errorf("Elapsed = %v, want 2m", e.Elapsed())
	}
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	e := New(1)
	fired := false
	e.After(time.Hour, func() { fired = true })
	e.RunFor(time.Minute)
	if fired {
		t.Error("future event fired early")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.RunFor(time.Hour)
	if !fired {
		t.Error("event never fired")
	}
}

func TestPastEventClampedToNow(t *testing.T) {
	e := New(1)
	e.RunFor(time.Minute) // advance the clock
	fired := false
	e.At(Epoch, func() { fired = true }) // in the past
	e.RunFor(time.Nanosecond)
	if !fired {
		t.Error("past-scheduled event did not fire immediately")
	}
}

func TestNegativeAfterClamped(t *testing.T) {
	e := New(1)
	fired := false
	e.After(-time.Hour, func() { fired = true })
	e.RunFor(0)
	if !fired {
		t.Error("negative-delay event did not fire at now")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New(1)
	var hits int
	var chain func()
	chain = func() {
		hits++
		if hits < 5 {
			e.After(time.Second, chain)
		}
	}
	e.After(time.Second, chain)
	e.Run()
	if hits != 5 {
		t.Errorf("chained events fired %d times, want 5", hits)
	}
	if e.Steps() != 5 {
		t.Errorf("Steps = %d, want 5", e.Steps())
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	e := New(1)
	var times []time.Duration
	tk := e.NewTicker(time.Minute, 30*time.Second, func(now time.Time) {
		times = append(times, now.Sub(Epoch))
	})
	e.RunFor(5 * time.Minute)
	tk.Stop()
	e.RunFor(5 * time.Minute)
	want := []time.Duration{
		30 * time.Second, 90 * time.Second, 150 * time.Second,
		210 * time.Second, 270 * time.Second,
	}
	if len(times) != len(want) {
		t.Fatalf("ticker fired %d times (%v), want %d", len(times), times, len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("firing %d at %v, want %v", i, times[i], want[i])
		}
	}
	if !tk.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := New(1)
	count := 0
	var tk *Ticker
	tk = e.NewTicker(time.Second, 0, func(time.Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Errorf("ticker fired %d times after in-callback Stop, want 3", count)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e := New(42)
		var out []int64
		for i := 0; i < 50; i++ {
			d := time.Duration(e.Rand().Intn(1000)) * time.Millisecond
			e.After(d, func() { out = append(out, e.Elapsed().Milliseconds()) })
		}
		e.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic event count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
