package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// laneTrace records one lane's execution sequence. Appends happen only
// while the lane's own events execute (single-threaded by the engine
// contract), so no locking is needed even under the sharded engine.
// The observable determinism contract is exactly per-lane: each lane
// (and the control lane) executes the same event sequence with the
// same timestamps and random draws in the serial and sharded engines.
// The global interleaving ACROSS lanes is intentionally unobservable.
type laneTrace struct {
	lane  *Lane
	lines []string
}

func (lt *laneTrace) add(now time.Time, tag string) {
	lt.lines = append(lt.lines, fmt.Sprintf("%d@%v:%s", lt.lane.ID(), now.Sub(Epoch), tag))
}

// traceWorkload builds a randomized but fully deterministic multi-lane
// workload on any Sched and returns its merged per-lane trace. Each
// lane event logs a lane-random draw, reschedules itself locally with
// a lane-random delay, and posts to a lane-random peer at ≥ lookahead
// — the shape of a simulated network — while a control ticker births
// late lanes and posts lifecycle events, exercising the control-lane
// rules.
func traceWorkload(t *testing.T, mk func() Sched, horizon time.Duration) []string {
	t.Helper()
	const lookahead = 50 * time.Millisecond
	eng := mk()
	var traces []*laneTrace
	control := &laneTrace{lane: eng.Control()}
	var laneEvent func(lt *laneTrace, depth int) func(time.Time)
	laneEvent = func(lt *laneTrace, depth int) func(time.Time) {
		return func(now time.Time) {
			l := lt.lane
			lt.add(now, fmt.Sprintf("d%d r%d", depth, l.Rand().Intn(1000)))
			if depth >= 3 {
				return
			}
			// Local reschedule at any delay, including zero.
			local := time.Duration(l.Rand().Int63n(int64(20 * time.Millisecond)))
			eng.Post(l, l, now.Add(local), laneEvent(lt, depth+1))
			// Cross-lane post at ≥ lookahead, like a message delivery.
			// The peer is drawn from the fixed initial roster: node
			// events must not read the control-owned growing roster
			// (that is the control-lane contract — the cluster keeps
			// its RandomAlive bootstrap oracle control-side for the
			// same reason).
			peer := traces[l.Rand().Intn(6)]
			d := lookahead + time.Duration(l.Rand().Int63n(int64(40*time.Millisecond)))
			eng.Post(l, peer.lane, now.Add(d), laneEvent(peer, depth+1))
		}
	}
	birth := func() {
		lt := &laneTrace{lane: eng.AddLane()}
		traces = append(traces, lt)
		control.add(eng.Now(), fmt.Sprintf("birth %d", lt.lane.ID()))
		// Control → node lifecycle post at the control event's time.
		off := time.Duration(eng.Rand().Int63n(int64(30 * time.Millisecond)))
		eng.Post(nil, lt.lane, eng.Now().Add(off), laneEvent(lt, 0))
		eng.NewLaneTicker(lt.lane, 35*time.Millisecond, off, func(now time.Time) {
			lt.add(now, "tick")
		})
	}
	for i := 0; i < 6; i++ {
		birth()
	}
	eng.NewTicker(40*time.Millisecond, 10*time.Millisecond, func(now time.Time) {
		control.add(now, "ctick")
		if len(traces) < 12 {
			birth()
		}
	})
	eng.RunFor(horizon)
	out := append([]string(nil), control.lines...)
	for _, lt := range traces {
		out = append(out, lt.lines...)
	}
	out = append(out, fmt.Sprintf("steps=%d elapsed=%v pending=%d",
		eng.Steps(), eng.Elapsed(), eng.Pending()))
	return out
}

// forcedSchedulerConfig is the aggressive configuration the
// equivalence tests use to make every scheduler mechanism actually
// fire on small workloads: rebalancing at the slightest imbalance over
// a 2-barrier window, deep batching, dynamic horizons.
func forcedSchedulerConfig() SchedulerConfig {
	return SchedulerConfig{
		DynamicLookahead:   true,
		BatchWindows:       4,
		RebalanceThreshold: 1.01,
		RebalanceWindow:    2,
	}
}

// TestShardedMatchesSerial is the engine-level determinism contract:
// for one seed, the sharded engine's per-lane execution traces are
// identical to the serial engine's at every shard count — under the
// default scheduler, the static baseline, and the forced-on adaptive
// scheduler (rebalancing and batching aggressive enough to fire
// constantly on this workload).
func TestShardedMatchesSerial(t *testing.T) {
	const seed = 42
	const horizon = 700 * time.Millisecond
	want := traceWorkload(t, func() Sched { return New(seed) }, horizon)
	if len(want) < 100 {
		t.Fatalf("workload too small to be meaningful: %d trace lines", len(want))
	}
	configs := []struct {
		name string
		cfg  SchedulerConfig
	}{
		{"default", DefaultSchedulerConfig()},
		{"static", StaticSchedulerConfig()},
		{"forced", forcedSchedulerConfig()},
	}
	for _, shards := range []int{1, 2, 3, 8} {
		for _, tc := range configs {
			shards, tc := shards, tc
			t.Run(fmt.Sprintf("shards=%d/%s", shards, tc.name), func(t *testing.T) {
				var eng *ShardedEngine
				got := traceWorkload(t, func() Sched {
					e, err := NewShardedWithScheduler(seed, shards, 50*time.Millisecond, tc.cfg)
					if err != nil {
						t.Fatal(err)
					}
					eng = e
					return e
				}, horizon)
				if len(got) != len(want) {
					t.Fatalf("trace length %d, serial %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trace diverges at line %d:\nserial:  %s\nsharded: %s",
							i, want[i], got[i])
					}
				}
				if st := eng.SchedStats(); tc.name == "forced" && shards > 1 && st.Migrations == 0 {
					t.Errorf("forced scheduler never migrated a lane (stats %+v); the rebalance path went untested", st)
				}
			})
		}
	}
}

// TestShardedSplitRuns checks that pausing and resuming (multiple
// RunFor calls, with quiescent scheduling in between) preserves the
// serial equivalence — the window grid is not required to align across
// calls.
func TestShardedSplitRuns(t *testing.T) {
	const seed = 7
	run := func(mk func() Sched) []string {
		eng := mk()
		lt1, lt2 := &laneTrace{lane: eng.AddLane()}, &laneTrace{lane: eng.AddLane()}
		var ping func(lt, peer *laneTrace) func(time.Time)
		ping = func(lt, peer *laneTrace) func(time.Time) {
			return func(now time.Time) {
				lt.add(now, fmt.Sprintf("r%d", lt.lane.Rand().Intn(100)))
				eng.Post(lt.lane, peer.lane, now.Add(60*time.Millisecond), ping(peer, lt))
			}
		}
		eng.Post(nil, lt1.lane, Epoch.Add(5*time.Millisecond), ping(lt1, lt2))
		// Uneven increments that do not divide the 50ms lookahead.
		for _, d := range []time.Duration{13, 77, 31, 200, 49} {
			eng.RunFor(d * time.Millisecond)
			// Quiescent cross-lane scheduling between runs.
			eng.Post(nil, lt2.lane, eng.Now(), func(now time.Time) {
				lt2.add(now, "q")
			})
		}
		eng.RunFor(300 * time.Millisecond)
		out := append(append([]string(nil), lt1.lines...), lt2.lines...)
		return append(out, fmt.Sprintf("steps=%d elapsed=%v", eng.Steps(), eng.Elapsed()))
	}
	want := run(func() Sched { return New(seed) })
	for _, shards := range []int{1, 2} {
		got := run(func() Sched {
			e, err := NewSharded(seed, shards, 50*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			return e
		})
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("shards=%d diverged:\nserial:  %v\nsharded: %v", shards, want, got)
		}
	}
}

// TestShardedLookaheadViolationPanics pins the deterministic guard: a
// cross-shard post inside the current window is a programming error,
// not a silent wrong answer. The panic originates on a worker and must
// surface on the goroutine that called RunFor.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	e, err := NewSharded(1, 2, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := e.AddLane(), e.AddLane() // round-robin: different shards
	defer func() {
		if recover() == nil {
			t.Error("lookahead violation did not panic")
		}
	}()
	e.Post(nil, l1, Epoch.Add(10*time.Millisecond), func(now time.Time) {
		e.Post(l1, l2, now.Add(time.Millisecond), func(time.Time) {}) // < lookahead
	})
	e.RunFor(time.Second)
}

// TestShardedNowPanicsInPhase pins the other guard: node-lane events
// must use their callback time, not engine Now().
func TestShardedNowPanicsInPhase(t *testing.T) {
	e, err := NewSharded(1, 2, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	l := e.AddLane()
	defer func() {
		if recover() == nil {
			t.Error("Now() during the parallel phase did not panic")
		}
	}()
	e.Post(nil, l, Epoch.Add(time.Millisecond), func(time.Time) { e.Now() })
	e.RunFor(time.Second)
}

// TestShardedQuiescentPastPostClamped mirrors the serial engine's
// clamp: a node-lane post into the past made between Run calls fires
// at the resting clock, not at the shard's stale local time.
func TestShardedQuiescentPastPostClamped(t *testing.T) {
	for _, mk := range []func() Sched{
		func() Sched { return New(1) },
		func() Sched { e, _ := NewSharded(1, 2, 50*time.Millisecond); return e },
	} {
		eng := mk()
		l := eng.AddLane()
		eng.RunFor(time.Hour) // the lane never executes; its local clock is stale
		var at time.Duration
		eng.Post(l, l, Epoch, func(now time.Time) { at = now.Sub(Epoch) })
		eng.RunFor(time.Second)
		if at != time.Hour {
			t.Errorf("%T: past-time quiescent post fired at %v, want 1h", eng, at)
		}
	}
}

// TestShardedControlPanicStopsWorkers pins the teardown path: a panic
// inside a control-lane event must unwind RunFor without leaking
// parked shard workers.
func TestShardedControlPanicStopsWorkers(t *testing.T) {
	e, err := NewSharded(1, 2, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		e, err = NewSharded(1, 2, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		e.After(time.Millisecond, func() { panic("boom") })
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("control-event panic not propagated")
				}
			}()
			e.RunFor(time.Second)
		}()
	}
	// Give exited workers a moment to unwind before counting.
	time.Sleep(50 * time.Millisecond)
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Errorf("goroutines grew from %d to %d: shard workers leaked", before, after)
	}
}

// TestShardedConfigValidation covers constructor errors.
func TestShardedConfigValidation(t *testing.T) {
	if _, err := NewSharded(1, 0, time.Millisecond); err == nil {
		t.Error("shard count 0 accepted")
	}
	if _, err := NewSharded(1, 2, 0); err == nil {
		t.Error("zero lookahead accepted")
	}
}

// TestShardedClockSemantics mirrors the serial engine's RunUntil clock
// behavior: the clock lands on the deadline even when the queue drains
// early, and quiescent After scheduling uses the resting clock.
func TestShardedClockSemantics(t *testing.T) {
	e, err := NewSharded(1, 2, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	e.After(time.Hour, func() { fired = true })
	e.RunFor(time.Minute)
	if fired {
		t.Error("future event fired early")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	if e.Elapsed() != time.Minute {
		t.Errorf("Elapsed = %v, want 1m", e.Elapsed())
	}
	e.RunFor(time.Hour)
	if !fired {
		t.Error("event never fired")
	}
	if e.Elapsed() != time.Minute+time.Hour {
		t.Errorf("Elapsed = %v, want 1h1m", e.Elapsed())
	}
}
