package sim

import "math/rand"

// compactSource is a 32-byte xoshiro256** rand.Source64. The standard
// library's rand.NewSource allocates a 607-word (≈ 5 KB) lagged
// Fibonacci table per source; with one private source per simulated
// node that alone costs ~500 MB at N = 100,000.
//
// xoshiro256** (Blackman & Vigna) keeps four words of state seeded
// through a splitmix64 scrambler, so every node starts at an
// effectively random position of one 2^256-period sequence and
// cross-node streams are uncorrelated. A plain per-node splitmix64
// counter is NOT good enough here: all counters share the same
// additive lattice, and the resulting cross-stream correlation showed
// up empirically as gossip partner choices aligning — rare related
// pairs stayed undiscovered forever in Theorem 1 checks.
type compactSource struct {
	s [4]uint64
}

func newCompactSource(seed int64) *compactSource {
	// Canonical seeding: expand the seed with splitmix64 so the four
	// state words are decorrelated even for adjacent seeds, and the
	// all-zero state is unreachable.
	src := &compactSource{}
	z := uint64(seed)
	for i := range src.s {
		z += 0x9E3779B97F4A7C15
		w := z
		w = (w ^ (w >> 30)) * 0xBF58476D1CE4E5B9
		w = (w ^ (w >> 27)) * 0x94D049BB133111EB
		src.s[i] = w ^ (w >> 31)
	}
	return src
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

func (s *compactSource) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

func (s *compactSource) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

func (s *compactSource) Seed(seed int64) {
	*s = *newCompactSource(seed)
}

// CompactRand returns a deterministic *rand.Rand backed by a 32-byte
// xoshiro256** source, for workloads that hold one private source per
// simulated node.
func CompactRand(seed int64) *rand.Rand {
	return rand.New(newCompactSource(seed))
}
