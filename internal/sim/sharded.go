package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// ShardedEngine is the conservative parallel scheduler: node lanes are
// partitioned across P worker shards (round-robin at creation, with
// optional load-driven migration at barriers — see scheduler.go), each
// owning a flat event heap. Shards advance through execution windows
// bounded by conservative horizons derived from the engine's lookahead
// (the minimum cross-lane message latency): an event executing at time
// t can only affect another shard at ≥ t plus the lookahead, so every
// cross-shard post lands at or after the destination's horizon and is
// merged at a barrier before the destination could need it. No
// rollback is ever required.
//
// Control-lane events run single-threaded at coordinator barriers,
// before the node-lane events of the windows that follow. Because
// control events touch only control-owned state (churn models, the
// alive registry, endpoint registration) and communicate with node
// lanes exclusively through posted events, this reordering is
// unobservable — see the package comment for the full contract.
//
// For one seed, a ShardedEngine run is byte-identical to a serial
// Engine run at any shard count and under any SchedulerConfig.
type ShardedEngine struct {
	now       time.Time
	nowNanos  int64
	lookahead int64
	seed      int64
	cfg       SchedulerConfig
	boundFn   func(after time.Duration) time.Duration

	control    *Lane
	controlQ   eventQueue
	controlNow int64
	laneByID   []*Lane // index 0 is the control lane
	steps      uint64  // control steps; Steps() adds shard steps

	shards  []*shard
	batch   *windowBatch
	inPhase bool
	done    chan struct{}
	localFn func() any

	// Scheduler counters (see SchedStats) and the sliding load window
	// behind rebalancing.
	windows    uint64
	barriers   uint64
	migrations uint64
	lanesMoved uint64
	loadRing   [][]uint64
	ringPos    int
	ringFill   int
}

type shard struct {
	idx         int
	queue       eventQueue
	nowNanos    int64 // timestamp of the executing event
	limit       int64 // current window horizon (exclusive)
	frontier    int64 // max horizon ever handed out; posts below it are violations
	steps       uint64
	sampleSteps uint64    // steps at the last load sample
	busyNS      int64     // wall-clock ns spent executing events
	posted      bool      // cross-shard post made in the current window
	outbox      [][]event // per destination shard, drained at barriers
	start       chan struct{}
	panicked    any // recovered panic value, re-raised by the coordinator
	local       any // worker-local scratch (see Sched.WorkerLocal)
}

var _ Sched = (*ShardedEngine)(nil)

// NewSharded returns a parallel engine with the given shard count and
// lookahead, running the default adaptive scheduler
// (DefaultSchedulerConfig: dynamic lookahead, barrier batching, lane
// rebalancing). The lookahead must be a positive lower bound on every
// cross-lane post distance — for a simulated network, the latency
// model's provable floor (simnet.LatencyModel.MinLatency; the cluster
// passes exactly that, which is what makes heterogeneous WAN latency
// models shardable). The engine panics deterministically when an
// event violates the bound, and simnet.New rejects a latency model
// whose floor is below the engine's Lookahead before a run can start.
// Seed semantics match New: the control random source and per-lane
// sources are derived exactly as the serial engine derives them, which
// is what makes the two engines interchangeable.
func NewSharded(seed int64, shards int, lookahead time.Duration) (*ShardedEngine, error) {
	return NewShardedWithScheduler(seed, shards, lookahead, DefaultSchedulerConfig())
}

// NewShardedWithScheduler is NewSharded with an explicit scheduler
// configuration (see SchedulerConfig; the zero value reproduces the
// original static scheduler). Results are byte-identical under every
// configuration — the scheduler only moves wall-clock time around.
func NewShardedWithScheduler(seed int64, shards int, lookahead time.Duration, cfg SchedulerConfig) (*ShardedEngine, error) {
	if shards < 1 {
		return nil, fmt.Errorf("sim: shard count must be ≥ 1, got %d", shards)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: lookahead must be positive, got %v", lookahead)
	}
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	e := &ShardedEngine{
		now:       Epoch,
		lookahead: int64(lookahead),
		seed:      seed,
		cfg:       cfg,
		control:   &Lane{id: 0, rng: rand.New(rand.NewSource(seed))},
		done:      make(chan struct{}),
		batch:     newWindowBatch(shards),
		loadRing:  make([][]uint64, shards),
	}
	e.laneByID = []*Lane{e.control}
	for i := 0; i < shards; i++ {
		e.shards = append(e.shards, &shard{
			idx:    i,
			outbox: make([][]event, shards),
			start:  make(chan struct{}),
		})
		e.loadRing[i] = make([]uint64, cfg.RebalanceWindow)
	}
	return e, nil
}

// Shards returns the shard count.
func (e *ShardedEngine) Shards() int { return len(e.shards) }

// Lookahead returns the engine's conservative cross-lane floor: the
// guaranteed minimum cross-lane post distance this engine was built
// with. Layers that generate cross-lane traffic (e.g. a simulated
// network's latency model) must prove a floor of at least this value —
// simnet.New rejects a latency model whose MinLatency is smaller.
func (e *ShardedEngine) Lookahead() time.Duration { return time.Duration(e.lookahead) }

// Now returns the current virtual time: the executing control event's
// timestamp during a barrier, the resting clock while quiescent. It
// panics during the parallel phase — node-lane events must use the
// time passed to their callback.
func (e *ShardedEngine) Now() time.Time {
	if e.inPhase {
		panic("sim: Now() called during the parallel phase; use the event callback's now")
	}
	return Epoch.Add(time.Duration(e.controlNow))
}

// Elapsed returns the virtual time elapsed since Epoch: Now() - Epoch,
// tracking the executing control event during a barrier and the
// resting clock while quiescent (matching the serial engine).
func (e *ShardedEngine) Elapsed() time.Duration { return time.Duration(e.controlNow) }

// Rand returns the control-lane random source.
func (e *ShardedEngine) Rand() *rand.Rand { return e.control.rng }

// Steps returns the number of events executed across all shards and
// the control lane. Valid while quiescent.
func (e *ShardedEngine) Steps() uint64 {
	total := e.steps
	for _, s := range e.shards {
		total += s.steps
	}
	return total
}

// Pending returns the number of queued events. Valid while quiescent.
func (e *ShardedEngine) Pending() int {
	n := len(e.controlQ)
	for _, s := range e.shards {
		n += len(s.queue)
	}
	return n
}

// Control returns the control lane.
func (e *ShardedEngine) Control() *Lane { return e.control }

// AddLane registers a new node lane, assigned round-robin to a shard
// (the scheduler may migrate it later). Call from control events or
// while quiescent only.
func (e *ShardedEngine) AddLane() *Lane {
	id := int32(len(e.laneByID))
	l := &Lane{
		id:    id,
		shard: (id - 1) % int32(len(e.shards)),
		rng:   CompactRand(laneSeed(e.seed, id)),
	}
	e.laneByID = append(e.laneByID, l)
	return l
}

// LaneNow returns the lane's current virtual time: the executing
// event's timestamp when called from the lane's own events during the
// parallel phase, and the control clock (the executing control event's
// time, or the resting clock) otherwise.
func (e *ShardedEngine) LaneNow(l *Lane) time.Time {
	if !e.inPhase {
		return Epoch.Add(time.Duration(e.controlNow))
	}
	return Epoch.Add(time.Duration(e.shards[l.shard].nowNanos))
}

// Post implements Sched. Posts attributed to the control lane (src nil
// or the control lane) go straight into the destination's heap — they
// happen at barriers or while quiescent, when every worker is parked.
// Posts from a node lane stay in the owning shard's heap when the
// destination shares the shard, and are routed through an outbox —
// after a deterministic check against the destination's execution
// frontier — otherwise.
func (e *ShardedEngine) Post(src, dst *Lane, at time.Time, fn func(now time.Time)) {
	e.PostEvent(src, dst, at, funcHandler{}, EventArg{P: fn})
}

// PostEvent implements Sched; see Post for the routing rules.
func (e *ShardedEngine) PostEvent(src, dst *Lane, at time.Time, h Handler, arg EventArg) {
	if src == nil {
		src = e.control
	}
	if dst == nil {
		dst = e.control
	}
	nanos := int64(at.Sub(Epoch))
	if src.id == 0 {
		if e.inPhase {
			panic("sim: control-lane post during the parallel phase")
		}
		if nanos < e.controlNow {
			nanos = e.controlNow
		}
		src.seq++
		ev := event{at: nanos, lane: dst.id, src: 0, seq: src.seq, h: h, arg: arg}
		if dst.id == 0 {
			e.controlQ.push(ev)
		} else {
			e.shards[dst.shard].queue.push(ev)
		}
		return
	}
	if dst.id == 0 {
		panic("sim: node-lane post to the control lane")
	}
	s := e.shards[src.shard]
	floor := s.nowNanos
	if !e.inPhase && e.controlNow > floor {
		// Quiescent post: the shard's last event may be far behind the
		// resting clock; clamp to the engine clock like the serial
		// engine does.
		floor = e.controlNow
	}
	if nanos < floor {
		nanos = floor
	}
	src.seq++
	ev := event{at: nanos, lane: dst.id, src: src.id, seq: src.seq, h: h, arg: arg}
	if dst.shard == src.shard || !e.inPhase {
		// Same shard, or a quiescent post (e.g. a test sending between
		// Run calls): the destination heap is safe to touch directly.
		e.shards[dst.shard].queue.push(ev)
		return
	}
	d := e.shards[dst.shard]
	if nanos < d.frontier {
		panic(fmt.Sprintf(
			"sim: cross-shard post at t=%v violates the %v lookahead (destination shard has executed to %v)",
			time.Duration(nanos), time.Duration(e.lookahead), time.Duration(d.frontier)))
	}
	s.posted = true
	s.outbox[dst.shard] = append(s.outbox[dst.shard], ev)
}

// SetWorkerLocal implements Sched: each shard worker gets its own
// instance, created lazily on the worker's first use.
func (e *ShardedEngine) SetWorkerLocal(factory func() any) { e.localFn = factory }

// WorkerLocal implements Sched. A lane's worker is its owning shard;
// the instance is created on the shard's own first access, so no
// cross-shard synchronization is needed. Lane migration at a barrier
// simply resolves to the new shard's instance — worker-local state
// never carries information between events, so the switch is
// unobservable.
func (e *ShardedEngine) WorkerLocal(l *Lane) any {
	s := e.shards[l.shard]
	if s.local == nil && e.localFn != nil {
		s.local = e.localFn()
	}
	return s.local
}

// At schedules fn on the control lane at virtual time t.
func (e *ShardedEngine) At(t time.Time, fn func()) {
	e.Post(e.control, e.control, t, func(time.Time) { fn() })
}

// After schedules fn on the control lane d from now (the executing
// control event's time, or the resting clock while quiescent).
func (e *ShardedEngine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(Epoch.Add(time.Duration(e.controlNow)+d), fn)
}

// NewTicker schedules fn on the control lane every period.
func (e *ShardedEngine) NewTicker(period, offset time.Duration, fn func(now time.Time)) *Ticker {
	return newTicker(e, e.control, period, offset, fn)
}

// NewLaneTicker schedules fn on lane l every period.
func (e *ShardedEngine) NewLaneTicker(l *Lane, period, offset time.Duration, fn func(now time.Time)) *Ticker {
	return newTicker(e, l, period, offset, fn)
}

// minPending returns the earliest queued timestamp, or false when every
// queue is empty. Outboxes are empty whenever this runs (they are
// drained at each barrier).
func (e *ShardedEngine) minPending() (int64, bool) {
	min, ok := int64(0), false
	consider := func(q eventQueue) {
		if len(q) == 0 {
			return
		}
		if !ok || q[0].at < min {
			min, ok = q[0].at, true
		}
	}
	consider(e.controlQ)
	for _, s := range e.shards {
		consider(s.queue)
	}
	return min, ok
}

// RunUntil executes events with timestamps ≤ deadline in canonical
// order. Each coordinator barrier runs the control events due within
// one lookahead of the frontier, hands every shard a conservative
// horizon (see computeHorizons), and dispatches a batch of up to
// BatchWindows windows that the workers pace among themselves; the
// barrier then merges cross-shard posts and lets the load balancer
// migrate lanes. The clock is left at deadline if that is later than
// the last executed event.
func (e *ShardedEngine) RunUntil(deadline time.Time) {
	limit := int64(deadline.Sub(Epoch))
	var wg sync.WaitGroup
	wg.Add(len(e.shards))
	for _, s := range e.shards {
		s := s
		go func() {
			defer wg.Done()
			e.work(s)
		}()
	}
	// stopWorkers is idempotent and also runs via defer when a
	// control-lane event panics, so workers never leak parked on their
	// start channels. It must only run between parallel phases.
	workersUp := true
	stopWorkers := func() {
		if !workersUp {
			return
		}
		workersUp = false
		for _, s := range e.shards {
			close(s.start)
		}
		wg.Wait()
		for _, s := range e.shards {
			s.start = make(chan struct{})
		}
	}
	defer stopWorkers()
	qmins := make([]int64, len(e.shards))
	for {
		next, ok := e.minPending()
		if !ok || next > limit {
			break
		}
		e.nowNanos = next
		// Barrier, part 1: the control events due within one lookahead
		// of the frontier, single-threaded. They may post into shard
		// heaps (workers are parked).
		ctlBound := next + e.lookahead
		if ctlBound > limit+1 {
			ctlBound = limit + 1
		}
		for len(e.controlQ) > 0 && e.controlQ[0].at < ctlBound {
			ev := e.controlQ.pop()
			e.controlNow = ev.at
			e.steps++
			ev.fire(Epoch.Add(time.Duration(ev.at)))
		}
		// Hand every shard its horizon: no window may reach the next
		// undrained control event or cross the deadline.
		limitCtl := limit + 1
		if len(e.controlQ) > 0 && e.controlQ[0].at < limitCtl {
			limitCtl = e.controlQ[0].at
		}
		for i, s := range e.shards {
			qmins[i] = math.MaxInt64
			if len(s.queue) > 0 {
				qmins[i] = s.queue[0].at
			}
		}
		if !e.computeHorizons(qmins, limitCtl) {
			if len(e.controlQ) == 0 {
				break // nothing can run before the deadline
			}
			continue // only control events are due; drain more next pass
		}
		// Parallel phase: a batch of windows, paced by the workers.
		e.batch.reset(e.cfg.BatchWindows, limitCtl)
		e.barriers++
		e.inPhase = true
		for _, s := range e.shards {
			s.start <- struct{}{}
		}
		for range e.shards {
			<-e.done
		}
		e.inPhase = false
		e.windows += e.batch.rounds
		for _, s := range e.shards {
			if s.panicked != nil {
				// Re-raise a worker panic on the calling goroutine so
				// callers (and tests) can observe it normally; the
				// deferred stopWorkers tears the workers down.
				panic(s.panicked)
			}
		}
		// Barrier, part 2: merge cross-shard posts into their heaps,
		// then let the balancer move lanes while everything is parked.
		for _, s := range e.shards {
			for d, out := range s.outbox {
				if len(out) == 0 {
					continue
				}
				for _, ev := range out {
					e.shards[d].queue.push(ev)
				}
				s.outbox[d] = s.outbox[d][:0]
			}
		}
		e.sampleLoad()
		e.maybeRebalance()
	}
	stopWorkers()
	if limit > e.nowNanos {
		e.nowNanos = limit
	}
	e.now = Epoch.Add(time.Duration(e.nowNanos))
	e.controlNow = e.nowNanos
}

// work is one shard's dispatch loop: each coordinator dispatch runs a
// batch of windows, paced through the worker-side barrier. A panic
// inside an event is captured and re-raised by the coordinator on the
// calling goroutine.
func (e *ShardedEngine) work(s *shard) {
	for range s.start {
		for {
			if s.panicked == nil {
				e.runShardWindow(s)
			}
			if !e.batch.sync(e, s) {
				break
			}
		}
		e.done <- struct{}{}
	}
}

// runShardWindow executes the shard's events below its current horizon
// in canonical order, accounting steps, per-lane event counts, and
// busy wall-clock time.
func (e *ShardedEngine) runShardWindow(s *shard) {
	defer func() {
		if r := recover(); r != nil {
			s.panicked = r
		}
	}()
	end := s.limit
	if len(s.queue) == 0 || s.queue[0].at >= end {
		return
	}
	lanes := e.laneByID
	t0 := time.Now()
	for len(s.queue) > 0 && s.queue[0].at < end {
		ev := s.queue.pop()
		s.nowNanos = ev.at
		s.steps++
		lanes[ev.lane].execs++
		ev.fire(Epoch.Add(time.Duration(ev.at)))
	}
	s.busyNS += int64(time.Since(t0))
}

// RunFor advances the simulation by d of virtual time.
func (e *ShardedEngine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }
