package sim

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// skewedWorkload drives a deliberately imbalanced multi-lane load on
// eng: every shards-th lane ticks constantly, the rest never do
// anything. Under round-robin assignment the stride pins all hot
// lanes onto shard 0 — the adversarial case rebalancing exists for.
func skewedWorkload(eng Sched, shards, hotPerShard int, horizon time.Duration) {
	for i := 0; i < hotPerShard*shards; i++ {
		l := eng.AddLane()
		if i%shards == 0 {
			l := l
			eng.NewLaneTicker(l, 3*time.Millisecond, 0, func(now time.Time) {
				l.Rand().Intn(10) // burn a draw so the lane does real work
			})
		}
	}
	eng.RunFor(horizon)
}

// TestSchedulerRebalanceMovesLanes: under a pinned hot shard, the
// forced scheduler must migrate lanes and improve the per-shard
// executed-event balance versus the static assignment.
func TestSchedulerRebalanceMovesLanes(t *testing.T) {
	const shards = 4
	imbalance := func(cfg SchedulerConfig) (float64, SchedStats) {
		e, err := NewShardedWithScheduler(7, shards, 50*time.Millisecond, cfg)
		if err != nil {
			t.Fatal(err)
		}
		skewedWorkload(e, shards, 6, 30*time.Second)
		st := e.SchedStats()
		var max, sum uint64
		for _, sh := range st.PerShard {
			sum += sh.Steps
			if sh.Steps > max {
				max = sh.Steps
			}
		}
		if sum == 0 {
			t.Fatal("workload executed nothing")
		}
		return float64(max) * shards / float64(sum), st
	}
	static, stStatic := imbalance(StaticSchedulerConfig())
	if stStatic.Migrations != 0 {
		t.Errorf("static scheduler migrated %d times", stStatic.Migrations)
	}
	if static < 3.5 {
		t.Fatalf("workload not skewed enough to test rebalancing: static imbalance %.2f", static)
	}
	balanced, stForced := imbalance(forcedSchedulerConfig())
	if stForced.Migrations == 0 {
		t.Fatal("forced scheduler never migrated a lane")
	}
	if stForced.LanesMoved == 0 {
		t.Error("migrations recorded but no lanes moved")
	}
	if balanced > static/2 {
		t.Errorf("rebalancing left imbalance at %.2f (static %.2f); expected at least a 2× improvement",
			balanced, static)
	}
	// Lane counts must reflect the migrations.
	moved := 0
	for i, sh := range stForced.PerShard {
		if i != 0 {
			moved += sh.Lanes
		}
	}
	if moved == 0 {
		t.Error("all lanes still on shard 0 after rebalancing")
	}
}

// TestSchedulerBatchingCutsBarriers: with batching enabled, the same
// workload needs strictly fewer coordinator barriers (and the same
// number of windows, give or take grid drift) than one-window
// dispatches.
func TestSchedulerBatchingCutsBarriers(t *testing.T) {
	run := func(batch int) SchedStats {
		cfg := StaticSchedulerConfig()
		cfg.BatchWindows = batch
		e, err := NewShardedWithScheduler(3, 2, 50*time.Millisecond, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Two lanes ticking locally, never posting across shards: the
		// ideal batching case.
		for i := 0; i < 2; i++ {
			l := e.AddLane()
			e.NewLaneTicker(l, 7*time.Millisecond, 0, func(time.Time) {})
		}
		e.RunFor(10 * time.Second)
		return e.SchedStats()
	}
	one := run(1)
	batched := run(8)
	if one.Barriers != one.Windows {
		t.Errorf("unbatched run: %d barriers != %d windows", one.Barriers, one.Windows)
	}
	if batched.Barriers >= one.Barriers/4 {
		t.Errorf("batching cut barriers only from %d to %d; want ≥ 4×", one.Barriers, batched.Barriers)
	}
}

// TestSchedulerDynamicLookaheadCutsWindows: a shard running dense
// lane-local work against a quiet peer gets a widened horizon — up to
// two lookaheads, the conservative fixpoint over transitive refills —
// so the run needs close to half the windows of the static grid, and
// composing dynamic horizons with batching multiplies the barrier
// savings further.
func TestSchedulerDynamicLookaheadCutsWindows(t *testing.T) {
	run := func(cfg SchedulerConfig) SchedStats {
		e, err := NewShardedWithScheduler(5, 2, 5*time.Millisecond, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Lane 1 (shard 0) ticks every millisecond — dense against the
		// 5ms floor, the shape of the wan lognormal regime — while
		// lane 2 (shard 1) wakes rarely. No cross-shard traffic.
		l1, l2 := e.AddLane(), e.AddLane()
		e.NewLaneTicker(l1, time.Millisecond, 0, func(time.Time) {})
		e.NewLaneTicker(l2, 97*time.Millisecond, 0, func(time.Time) {})
		e.RunFor(10 * time.Second)
		return e.SchedStats()
	}
	static := run(StaticSchedulerConfig())
	dynamic := StaticSchedulerConfig()
	dynamic.DynamicLookahead = true
	dyn := run(dynamic)
	if dyn.Windows*10 > static.Windows*6 {
		t.Errorf("dynamic lookahead cut windows only from %d to %d; want ≥ 1.67×",
			static.Windows, dyn.Windows)
	}
	if dyn.Barriers >= static.Barriers {
		t.Errorf("dynamic lookahead did not cut barriers: %d vs %d", dyn.Barriers, static.Barriers)
	}
	// The full adaptive scheduler (dynamic + batching) multiplies the
	// savings: worker-paced rounds replace coordinator barriers.
	full := run(DefaultSchedulerConfig())
	if full.Barriers*4 > static.Barriers {
		t.Errorf("adaptive scheduler cut barriers only from %d to %d; want ≥ 4×",
			static.Barriers, full.Barriers)
	}
}

// TestSchedulerConfigValidation pins the constructor's handling of
// nonsense configurations.
func TestSchedulerConfigValidation(t *testing.T) {
	if _, err := NewShardedWithScheduler(1, 2, time.Millisecond, SchedulerConfig{RebalanceThreshold: 0.5}); err == nil {
		t.Error("rebalance threshold in (0,1) accepted")
	}
	if _, err := NewShardedWithScheduler(1, 2, time.Millisecond, SchedulerConfig{RebalanceThreshold: math.Inf(1)}); err == nil {
		t.Error("infinite rebalance threshold accepted")
	}
	if _, err := NewShardedWithScheduler(1, 2, time.Millisecond, SchedulerConfig{RebalanceThreshold: math.NaN()}); err == nil {
		t.Error("NaN rebalance threshold accepted")
	}
	e, err := NewShardedWithScheduler(1, 2, time.Millisecond, SchedulerConfig{BatchWindows: -3, RebalanceWindow: -1})
	if err != nil {
		t.Fatalf("negative batch/window values should normalize, got %v", err)
	}
	if cfg := e.Scheduler(); cfg.BatchWindows != 1 || cfg.RebalanceWindow < 1 {
		t.Errorf("normalization wrong: %+v", cfg)
	}
}

// TestSchedulerStatsShape sanity-checks SchedStats bookkeeping on a
// default run.
func TestSchedulerStatsShape(t *testing.T) {
	e, err := NewSharded(9, 3, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		l := e.AddLane()
		e.NewLaneTicker(l, 11*time.Millisecond, 0, func(time.Time) {})
	}
	e.RunFor(5 * time.Second)
	st := e.SchedStats()
	if st.Shards != 3 || st.Lookahead != 50*time.Millisecond {
		t.Errorf("stats header wrong: %+v", st)
	}
	if st.Windows == 0 || st.Barriers == 0 || st.Windows < st.Barriers {
		t.Errorf("window/barrier counters wrong: windows=%d barriers=%d", st.Windows, st.Barriers)
	}
	lanes, steps := 0, uint64(0)
	for _, sh := range st.PerShard {
		lanes += sh.Lanes
		steps += sh.Steps
	}
	if lanes != 6 {
		t.Errorf("per-shard lane counts sum to %d, want 6", lanes)
	}
	if total := e.Steps(); steps > total {
		t.Errorf("shard steps %d exceed engine total %d", steps, total)
	}
}

// FuzzScheduler fuzzes the scheduler configuration space — threshold,
// batch depth, sliding window, dynamic flag, shard count — and asserts
// the per-lane execution traces stay byte-identical to the serial
// engine. This is the acceptance property of the whole scheduler
// layer: no configuration may ever change results.
func FuzzScheduler(f *testing.F) {
	f.Add(1.01, 4, 2, true, 2)
	f.Add(0.0, 1, 1, false, 3)
	f.Add(1.5, 16, 8, true, 8)
	f.Add(2.0, 2, 3, false, 1)
	serial := map[int64][]string{}
	f.Fuzz(func(t *testing.T, threshold float64, batch, window int, dynamic bool, shards int) {
		// Clamp into the constructor's valid space deterministically.
		if threshold < 0 || threshold != threshold { // negatives and NaN → disabled
			threshold = 0
		} else if threshold > 0 {
			threshold = 1 + float64(int(threshold*8)%32)/8 // quantize into [1, 5)
		}
		if batch < 1 {
			batch = 1
		}
		batch = 1 + batch%16
		if window < 1 {
			window = 1
		}
		window = 1 + window%8
		if shards < 1 {
			shards = 1
		}
		shards = 1 + shards%8
		cfg := SchedulerConfig{
			DynamicLookahead:   dynamic,
			BatchWindows:       batch,
			RebalanceThreshold: threshold,
			RebalanceWindow:    window,
		}
		const seed = 1234
		const horizon = 400 * time.Millisecond
		want := serial[seed]
		if want == nil {
			want = traceWorkload(t, func() Sched { return New(seed) }, horizon)
			serial[seed] = want
		}
		got := traceWorkload(t, func() Sched {
			e, err := NewShardedWithScheduler(seed, shards, 50*time.Millisecond, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return e
		}, horizon)
		if len(got) != len(want) {
			t.Fatalf("cfg %+v shards=%d: trace length %d, serial %d", cfg, shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cfg %+v shards=%d: trace diverges at line %d:\nserial:  %s\nsharded: %s",
					cfg, shards, i, want[i], got[i])
			}
		}
	})
}

// TestSchedulerFuzzSeeds runs the FuzzScheduler corpus as a plain test
// so the property is exercised by `go test` without -fuzz.
func TestSchedulerFuzzSeeds(t *testing.T) {
	serial := traceWorkload(t, func() Sched { return New(77) }, 500*time.Millisecond)
	for _, tc := range []struct {
		cfg    SchedulerConfig
		shards int
	}{
		{forcedSchedulerConfig(), 2},
		{forcedSchedulerConfig(), 8},
		{SchedulerConfig{DynamicLookahead: true}, 3},
		{SchedulerConfig{BatchWindows: 16}, 5},
		{SchedulerConfig{RebalanceThreshold: 1, RebalanceWindow: 1, BatchWindows: 2}, 4},
	} {
		got := traceWorkload(t, func() Sched {
			e, err := NewShardedWithScheduler(77, tc.shards, 50*time.Millisecond, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			return e
		}, 500*time.Millisecond)
		if fmt.Sprint(got) != fmt.Sprint(serial) {
			t.Errorf("cfg %+v shards=%d diverged from serial", tc.cfg, tc.shards)
		}
	}
}
