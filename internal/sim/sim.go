// Package sim provides the discrete-event simulation engines that
// drive AVMON's trace-driven evaluation (paper Section 5).
//
// Two engines share one canonical event order:
//
//   - Engine is the serial scheduler: a single flat binary heap of
//     by-value events, one goroutine, no synchronization.
//   - ShardedEngine (sharded.go) is a conservative parallel scheduler:
//     node lanes are partitioned across P worker shards that advance in
//     lockstep windows bounded by the engine's lookahead (the minimum
//     cross-lane message latency), classic conservative PDES with no
//     rollback.
//
// Determinism contract. Every event belongs to a lane — an execution
// stream owned by exactly one scheduler thread. Events are totally
// ordered by the canonical key
//
//	(time, lane, local-before-remote, source lane, source seq)
//
// where "source seq" is a counter the posting lane increments on every
// post. The key is a pure function of each lane's own execution
// history, never of scheduler interleaving, so the serial and sharded
// engines execute byte-identical runs for the same seed at any shard
// count. The rules that make this sound:
//
//   - A lane's events may post to the lane itself at any time ≥ now.
//   - A lane's events may post to another lane only at time ≥ the end
//     of the current window (guaranteed when every cross-lane post is
//     a message delivery with latency ≥ the lookahead). The sharded
//     engine panics on violations.
//   - Control-lane events (lane 0) run single-threaded at window
//     barriers, before the window's node-lane events. They must touch
//     only control-owned state and may post to any lane at any time
//     ≥ their own timestamp; they must not read node-lane state.
//   - Randomness is per-lane: draws made while a lane executes must
//     come from that lane's Rand (or, for control events, from the
//     engine Rand), never from another lane's.
package sim

import (
	"math/rand"
	"time"
)

// Epoch is the virtual time origin of every simulation.
var Epoch = time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC)

// Lane is one deterministic execution stream. Lane 0 is the control
// lane (owned by the scheduler's coordinator); AddLane creates node
// lanes. A Lane's seq counter and random source are owned by the
// scheduler thread that executes the lane's events.
type Lane struct {
	id    int32
	shard int32 // owning shard index (sharded engine only)
	seq   uint64
	execs uint64 // events executed (sharded engine only; feeds rebalancing)
	rng   *rand.Rand
}

// ID returns the lane's stable identifier (0 = control lane).
func (l *Lane) ID() int { return int(l.id) }

// Rand returns the lane's private deterministic random source. It must
// only be used while one of the lane's events is executing.
func (l *Lane) Rand() *rand.Rand { return l.rng }

// laneSeed derives a lane's random stream from the engine seed. The
// mixing constant differs from the one cluster code uses for per-node
// protocol streams, so lane streams (latency, loss) and node streams
// never collide; CompactRand scrambles the result through splitmix64.
func laneSeed(seed int64, id int32) int64 {
	return seed + (int64(id)+1)*-0x61C8864680B583EB // golden-ratio odd constant
}

// Sched is the scheduling surface shared by the serial Engine and the
// ShardedEngine. Clusters, the simulated network, and churn models are
// written against it so one simulation runs unchanged on either.
type Sched interface {
	// Now returns the current virtual time. It is valid while the
	// engine is quiescent (between Run calls) and inside control-lane
	// events; node-lane events must use the time passed to their
	// callback (the sharded engine panics otherwise).
	Now() time.Time
	// Elapsed returns Now() - Epoch.
	Elapsed() time.Duration
	// Steps returns the number of events executed so far, across all
	// lanes. Valid while quiescent.
	Steps() uint64
	// Pending returns the number of queued events. Valid while
	// quiescent.
	Pending() int
	// Rand returns the control-lane random source (valid from control
	// events and while quiescent).
	Rand() *rand.Rand
	// Control returns the control lane.
	Control() *Lane
	// AddLane registers a new node lane. Call from control events or
	// while quiescent only.
	AddLane() *Lane
	// LaneNow returns the lane's current virtual time: the timestamp
	// of the lane's executing event, or the engine time while
	// quiescent. Call only from the lane's own events or quiescent.
	LaneNow(l *Lane) time.Time
	// Post schedules fn on lane dst at time at, attributed to lane src
	// (nil src means the control lane). Times before the source lane's
	// current time are clamped to it. fn receives its own timestamp.
	Post(src, dst *Lane, at time.Time, fn func(now time.Time))
	// PostEvent is the allocation-free form of Post: instead of a
	// closure it schedules a long-lived Handler with a by-value
	// EventArg, both stored directly in the heap entry. Ordering and
	// clamping semantics are identical to Post.
	PostEvent(src, dst *Lane, at time.Time, h Handler, arg EventArg)
	// SetWorkerLocal registers a factory for per-worker scratch state:
	// one instance per execution worker (the whole engine when serial,
	// one per shard when sharded), created on first use. Worker-local
	// state must never carry information between events — it exists so
	// per-event scratch buffers need not be owned (and paid for) by
	// every lane.
	SetWorkerLocal(factory func() any)
	// WorkerLocal returns the scratch instance of the worker currently
	// executing lane l. Call only from l's own events (or while
	// quiescent). Returns nil when no factory is registered.
	WorkerLocal(l *Lane) any
	// After schedules fn on the control lane d from now.
	After(d time.Duration, fn func())
	// At schedules fn on the control lane at time t.
	At(t time.Time, fn func())
	// NewTicker schedules fn on the control lane every period, first
	// firing after offset.
	NewTicker(period, offset time.Duration, fn func(now time.Time)) *Ticker
	// NewLaneTicker is NewTicker on a node lane. Call from the lane's
	// own events (or quiescent).
	NewLaneTicker(l *Lane, period, offset time.Duration, fn func(now time.Time)) *Ticker
	// RunUntil executes events in canonical order until the queue is
	// exhausted or the next event is after deadline; the clock is left
	// at deadline if that is later.
	RunUntil(deadline time.Time)
	// RunFor advances the simulation by d of virtual time.
	RunFor(d time.Duration)
}

// EventArg is the by-value payload of a handler-based event (see
// PostEvent). A and B are free payload words; P carries a pointer-shaped
// value (a message, a buffer) without forcing the poster to allocate a
// closure around it.
type EventArg struct {
	A, B uint64
	P    any
}

// Handler executes handler-based events. Implementations are typically
// long-lived objects (a network, a ticker) so that posting an event
// allocates nothing: the event stores the handler interface and its
// by-value EventArg directly in the heap entry.
type Handler interface {
	Fire(now time.Time, arg EventArg)
}

// funcHandler adapts the closure-based Post API onto handler events: a
// zero-size type whose interface value costs no allocation, with the
// closure riding in EventArg.P.
type funcHandler struct{}

func (funcHandler) Fire(now time.Time, arg EventArg) {
	arg.P.(func(now time.Time))(now)
}

// event is one scheduled callback, stored by value in the heaps.
type event struct {
	at   int64 // nanoseconds since Epoch
	lane int32 // destination lane
	src  int32 // posting lane
	seq  uint64
	h    Handler
	arg  EventArg
}

// fire executes the event's handler.
func (ev *event) fire(now time.Time) { ev.h.Fire(now, ev.arg) }

// before is the canonical total order: time, then destination lane,
// then lane-local posts before cross-lane posts, then posting lane,
// then the poster's sequence counter. Every component is a pure
// function of deterministic per-lane execution, so serial and sharded
// runs sort identically.
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.lane != b.lane {
		return a.lane < b.lane
	}
	aLocal, bLocal := a.src == a.lane, b.src == b.lane
	if aLocal != bLocal {
		return aLocal
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// Engine is the single-threaded scheduler. It is not safe for
// concurrent use; all node logic runs inside event callbacks.
type Engine struct {
	now      time.Time
	nowNanos int64
	queue    eventQueue
	control  *Lane
	lanes    int32
	steps    uint64
	seed     int64

	localFn func() any
	local   any
}

var _ Sched = (*Engine)(nil)

// New returns a serial engine whose clock starts at Epoch, with a
// deterministic control random source derived from seed.
func New(seed int64) *Engine {
	return &Engine{
		now:     Epoch,
		seed:    seed,
		control: &Lane{id: 0, rng: rand.New(rand.NewSource(seed))},
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Elapsed returns the virtual time elapsed since Epoch.
func (e *Engine) Elapsed() time.Duration { return e.now.Sub(Epoch) }

// Rand returns the control-lane deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.control.rng }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Control returns the control lane.
func (e *Engine) Control() *Lane { return e.control }

// AddLane registers a new node lane.
func (e *Engine) AddLane() *Lane {
	e.lanes++
	return &Lane{id: e.lanes, rng: CompactRand(laneSeed(e.seed, e.lanes))}
}

// LaneNow returns the current virtual time (the serial engine has one
// clock for every lane).
func (e *Engine) LaneNow(*Lane) time.Time { return e.now }

// Post implements Sched.
func (e *Engine) Post(src, dst *Lane, at time.Time, fn func(now time.Time)) {
	e.PostEvent(src, dst, at, funcHandler{}, EventArg{P: fn})
}

// PostEvent implements Sched.
func (e *Engine) PostEvent(src, dst *Lane, at time.Time, h Handler, arg EventArg) {
	if src == nil {
		src = e.control
	}
	if dst == nil {
		dst = e.control
	}
	nanos := int64(at.Sub(Epoch))
	if nanos < e.nowNanos {
		nanos = e.nowNanos
	}
	src.seq++
	e.queue.push(event{at: nanos, lane: dst.id, src: src.id, seq: src.seq, h: h, arg: arg})
}

// SetWorkerLocal implements Sched. The serial engine has exactly one
// worker, so one instance serves every lane.
func (e *Engine) SetWorkerLocal(factory func() any) { e.localFn = factory }

// WorkerLocal implements Sched.
func (e *Engine) WorkerLocal(*Lane) any {
	if e.local == nil && e.localFn != nil {
		e.local = e.localFn()
	}
	return e.local
}

// At schedules fn on the control lane at virtual time t. Times in the
// past are clamped to "now".
func (e *Engine) At(t time.Time, fn func()) {
	e.Post(e.control, e.control, t, func(time.Time) { fn() })
}

// After schedules fn on the control lane d from now. Negative d is
// clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// setNow moves the clock to nanos past Epoch.
func (e *Engine) setNow(nanos int64) {
	e.nowNanos = nanos
	e.now = Epoch.Add(time.Duration(nanos))
}

// RunUntil executes events in canonical order until the queue is empty
// or the next event is after deadline. The clock is left at deadline
// (or at the last executed event if the queue drained earlier than
// deadline and deadline is in the past).
func (e *Engine) RunUntil(deadline time.Time) {
	limit := int64(deadline.Sub(Epoch))
	for len(e.queue) > 0 {
		if e.queue[0].at > limit {
			break
		}
		next := e.queue.pop()
		e.setNow(next.at)
		e.steps++
		next.fire(e.now)
	}
	if limit > e.nowNanos {
		e.setNow(limit)
	}
}

// RunFor advances the simulation by d of virtual time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for len(e.queue) > 0 {
		next := e.queue.pop()
		e.setNow(next.at)
		e.steps++
		next.fire(e.now)
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// eventQueue is a hand-rolled binary min-heap over by-value events
// (container/heap would box every event through interface{}).
type eventQueue []event

func (q *eventQueue) push(ev event) {
	h := *q
	h = append(h, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	*q = h
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = event{} // release the closure for GC
	h = h[:last]
	*q = h
	// Sift the moved element down.
	i := 0
	for {
		left := 2*i + 1
		if left >= last {
			break
		}
		smallest := left
		if right := left + 1; right < last && h[right].before(h[left]) {
			smallest = right
		}
		if !h[smallest].before(h[i]) {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// Ticker repeatedly schedules a callback with a fixed period until
// stopped. It is the simulation analogue of time.Ticker and is used to
// drive per-node protocol periods, which execute asynchronously across
// nodes via per-ticker phase offsets (paper Section 3.2). A ticker is
// bound to one lane; Stop must be called from that lane's events (or
// while the engine is quiescent).
type Ticker struct {
	s       Sched
	lane    *Lane
	period  time.Duration
	fn      func(now time.Time)
	stopped bool
}

// NewTicker schedules fn on the control lane every period, with the
// first firing after offset. Stop prevents all future firings.
func (e *Engine) NewTicker(period, offset time.Duration, fn func(now time.Time)) *Ticker {
	return newTicker(e, e.control, period, offset, fn)
}

// NewLaneTicker schedules fn on lane l every period, with the first
// firing after offset.
func (e *Engine) NewLaneTicker(l *Lane, period, offset time.Duration, fn func(now time.Time)) *Ticker {
	return newTicker(e, l, period, offset, fn)
}

func newTicker(s Sched, l *Lane, period, offset time.Duration, fn func(now time.Time)) *Ticker {
	if offset < 0 {
		offset = 0
	}
	t := &Ticker{s: s, lane: l, period: period, fn: fn}
	s.PostEvent(l, l, s.LaneNow(l).Add(offset), t, EventArg{})
	return t
}

// Fire implements Handler: the ticker itself is the event handler, so
// the steady-state reschedule of every simulated protocol period posts
// without allocating (no per-firing method-value closure).
func (t *Ticker) Fire(now time.Time, _ EventArg) {
	if t.stopped {
		return
	}
	t.fn(now)
	if t.stopped { // fn may have stopped the ticker
		return
	}
	t.s.PostEvent(t.lane, t.lane, now.Add(t.period), t, EventArg{})
}

// Stop cancels future firings. It is idempotent.
func (t *Ticker) Stop() { t.stopped = true }

// Stopped reports whether Stop has been called.
func (t *Ticker) Stopped() bool { return t.stopped }
