// Package sim provides the discrete-event simulation engine that
// drives AVMON's trace-driven evaluation (paper Section 5).
//
// The engine owns a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order,
// making runs fully deterministic for a given seed.
//
// The queue is a flat binary heap of by-value events keyed on
// nanoseconds since Epoch: one comparison per level, no per-event heap
// allocation, and no interface boxing. Large-N runs (10^5 nodes keep
// a few hundred thousand events in flight) stay within a few tens of
// megabytes of queue memory.
package sim

import (
	"math/rand"
	"time"
)

// Epoch is the virtual time origin of every simulation.
var Epoch = time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC)

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all node logic runs inside event callbacks.
type Engine struct {
	now      time.Time
	nowNanos int64 // now - Epoch, the queue's key space
	queue    eventQueue
	seq      uint64
	rng      *rand.Rand
	steps    uint64
}

// New returns an engine whose clock starts at Epoch, with a
// deterministic random source derived from seed.
func New(seed int64) *Engine {
	return &Engine{
		now: Epoch,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Elapsed returns the virtual time elapsed since Epoch.
func (e *Engine) Elapsed() time.Duration { return e.now.Sub(Epoch) }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// At schedules fn to run at virtual time t. Times in the past are
// clamped to "now" (the event runs before the clock advances further).
func (e *Engine) At(t time.Time, fn func()) {
	e.at(int64(t.Sub(Epoch)), fn)
}

func (e *Engine) at(nanos int64, fn func()) {
	if nanos < e.nowNanos {
		nanos = e.nowNanos
	}
	e.seq++
	e.queue.push(event{at: nanos, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.at(e.nowNanos+int64(d), fn)
}

// setNow moves the clock to nanos past Epoch.
func (e *Engine) setNow(nanos int64) {
	e.nowNanos = nanos
	e.now = Epoch.Add(time.Duration(nanos))
}

// RunUntil executes events in timestamp order until the queue is empty
// or the next event is after deadline. The clock is left at deadline
// (or at the last executed event if the queue drained earlier than
// deadline and deadline is in the past).
func (e *Engine) RunUntil(deadline time.Time) {
	limit := int64(deadline.Sub(Epoch))
	for len(e.queue) > 0 {
		if e.queue[0].at > limit {
			break
		}
		next := e.queue.pop()
		e.setNow(next.at)
		e.steps++
		next.fn()
	}
	if limit > e.nowNanos {
		e.setNow(limit)
	}
}

// RunFor advances the simulation by d of virtual time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for len(e.queue) > 0 {
		next := e.queue.pop()
		e.setNow(next.at)
		e.steps++
		next.fn()
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// event is one scheduled callback; at is nanoseconds since Epoch and
// seq breaks ties FIFO. Events are stored by value in the heap.
type event struct {
	at  int64
	seq uint64
	fn  func()
}

func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is a hand-rolled binary min-heap over by-value events
// (container/heap would box every event through interface{}).
type eventQueue []event

func (q *eventQueue) push(ev event) {
	h := *q
	h = append(h, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	*q = h
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = event{} // release the closure for GC
	h = h[:last]
	*q = h
	// Sift the moved element down.
	i := 0
	for {
		left := 2*i + 1
		if left >= last {
			break
		}
		smallest := left
		if right := left + 1; right < last && h[right].before(h[left]) {
			smallest = right
		}
		if !h[smallest].before(h[i]) {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// Ticker repeatedly schedules a callback with a fixed period until
// stopped. It is the simulation analogue of time.Ticker and is used to
// drive per-node protocol periods, which execute asynchronously across
// nodes via per-ticker phase offsets (paper Section 3.2).
type Ticker struct {
	eng     *Engine
	period  time.Duration
	fn      func(now time.Time)
	stopped bool
}

// NewTicker schedules fn every period, with the first firing after
// offset. Stop prevents all future firings.
func (e *Engine) NewTicker(period, offset time.Duration, fn func(now time.Time)) *Ticker {
	t := &Ticker{eng: e, period: period, fn: fn}
	e.After(offset, t.fire)
	return t
}

func (t *Ticker) fire() {
	if t.stopped {
		return
	}
	t.fn(t.eng.Now())
	if t.stopped { // fn may have stopped the ticker
		return
	}
	t.eng.After(t.period, t.fire)
}

// Stop cancels future firings. It is idempotent.
func (t *Ticker) Stop() { t.stopped = true }

// Stopped reports whether Stop has been called.
func (t *Ticker) Stopped() bool { return t.stopped }
