// Package sim provides the discrete-event simulation engine that
// drives AVMON's trace-driven evaluation (paper Section 5).
//
// The engine owns a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order,
// making runs fully deterministic for a given seed.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Epoch is the virtual time origin of every simulation.
var Epoch = time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC)

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all node logic runs inside event callbacks.
type Engine struct {
	now   time.Time
	queue eventQueue
	seq   uint64
	rng   *rand.Rand
	steps uint64
}

// New returns an engine whose clock starts at Epoch, with a
// deterministic random source derived from seed.
func New(seed int64) *Engine {
	return &Engine{
		now: Epoch,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Elapsed returns the virtual time elapsed since Epoch.
func (e *Engine) Elapsed() time.Duration { return e.now.Sub(Epoch) }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// At schedules fn to run at virtual time t. Times in the past are
// clamped to "now" (the event runs before the clock advances further).
func (e *Engine) At(t time.Time, fn func()) {
	if t.Before(e.now) {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// RunUntil executes events in timestamp order until the queue is empty
// or the next event is after deadline. The clock is left at deadline
// (or at the last executed event if the queue drained earlier than
// deadline and deadline is in the past).
func (e *Engine) RunUntil(deadline time.Time) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at.After(deadline) {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.steps++
		next.fn()
	}
	if deadline.After(e.now) {
		e.now = deadline
	}
}

// RunFor advances the simulation by d of virtual time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for len(e.queue) > 0 {
		next := heap.Pop(&e.queue).(*event)
		e.now = next.at
		e.steps++
		next.fn()
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Ticker repeatedly schedules a callback with a fixed period until
// stopped. It is the simulation analogue of time.Ticker and is used to
// drive per-node protocol periods, which execute asynchronously across
// nodes via per-ticker phase offsets (paper Section 3.2).
type Ticker struct {
	eng     *Engine
	period  time.Duration
	fn      func(now time.Time)
	stopped bool
}

// NewTicker schedules fn every period, with the first firing after
// offset. Stop prevents all future firings.
func (e *Engine) NewTicker(period, offset time.Duration, fn func(now time.Time)) *Ticker {
	t := &Ticker{eng: e, period: period, fn: fn}
	e.After(offset, t.fire)
	return t
}

func (t *Ticker) fire() {
	if t.stopped {
		return
	}
	t.fn(t.eng.Now())
	if t.stopped { // fn may have stopped the ticker
		return
	}
	t.eng.After(t.period, t.fire)
}

// Stop cancels future firings. It is idempotent.
func (t *Ticker) Stop() { t.stopped = true }

// Stopped reports whether Stop has been called.
func (t *Ticker) Stopped() bool { return t.stopped }
