// Package ids defines the node identity used throughout AVMON.
//
// Following the paper (Section 3.1), a node is identified by an
// <IPaddress, portnumber> pair. The identity is the unit that the
// hash-based consistency condition is computed over, so its byte
// encoding must be stable: we use the 6-byte big-endian concatenation
// of the IPv4 address and the port.
package ids

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// WireLen is the length of the canonical byte encoding of an ID:
// 4 bytes of IPv4 address followed by 2 bytes of port, big-endian.
const WireLen = 6

// ID is a compact node identity: the IPv4 address in the upper 32 bits
// of the low 48 bits, and the port in the low 16 bits. The zero value
// is None, which is not a valid node identity.
type ID uint64

// None is the zero ID, used to mean "no node".
const None ID = 0

var (
	// ErrBadAddr reports an unparseable host:port string.
	ErrBadAddr = errors.New("ids: bad address")
	// ErrShortBuffer reports a decode buffer smaller than WireLen.
	ErrShortBuffer = errors.New("ids: short buffer")
)

// New builds an ID from the four IPv4 octets and a port.
func New(a, b, c, d byte, port uint16) ID {
	return ID(uint64(a)<<40 | uint64(b)<<32 | uint64(c)<<24 | uint64(d)<<16 | uint64(port))
}

// Parse converts a dotted-quad "a.b.c.d:port" string into an ID.
func Parse(addr string) (ID, error) {
	host, portStr, ok := strings.Cut(addr, ":")
	if !ok {
		return None, fmt.Errorf("%w: %q (missing port)", ErrBadAddr, addr)
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return None, fmt.Errorf("%w: %q: %v", ErrBadAddr, addr, err)
	}
	parts := strings.Split(host, ".")
	if len(parts) != 4 {
		return None, fmt.Errorf("%w: %q (not IPv4)", ErrBadAddr, addr)
	}
	var oct [4]byte
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return None, fmt.Errorf("%w: %q: %v", ErrBadAddr, addr, err)
		}
		oct[i] = byte(v)
	}
	id := New(oct[0], oct[1], oct[2], oct[3], uint16(port))
	if id == None {
		return None, fmt.Errorf("%w: %q (all-zero identity)", ErrBadAddr, addr)
	}
	return id, nil
}

// MustParse is Parse that panics on error; intended for tests and
// compile-time-constant-like initialization.
func MustParse(addr string) ID {
	id, err := Parse(addr)
	if err != nil {
		panic(err)
	}
	return id
}

// Octets returns the four IPv4 octets of the ID.
func (id ID) Octets() (a, b, c, d byte) {
	return byte(id >> 40), byte(id >> 32), byte(id >> 24), byte(id >> 16)
}

// Port returns the port number of the ID.
func (id ID) Port() uint16 { return uint16(id) }

// IsNone reports whether the ID is the zero (invalid) identity.
func (id ID) IsNone() bool { return id == None }

// String renders the ID as "a.b.c.d:port".
func (id ID) String() string {
	a, b, c, d := id.Octets()
	var sb strings.Builder
	sb.Grow(21)
	sb.WriteString(strconv.Itoa(int(a)))
	sb.WriteByte('.')
	sb.WriteString(strconv.Itoa(int(b)))
	sb.WriteByte('.')
	sb.WriteString(strconv.Itoa(int(c)))
	sb.WriteByte('.')
	sb.WriteString(strconv.Itoa(int(d)))
	sb.WriteByte(':')
	sb.WriteString(strconv.Itoa(int(id.Port())))
	return sb.String()
}

// AppendWire appends the canonical 6-byte encoding of the ID to dst.
func (id ID) AppendWire(dst []byte) []byte {
	a, b, c, d := id.Octets()
	return append(dst, a, b, c, d, byte(id.Port()>>8), byte(id.Port()))
}

// Wire returns the canonical 6-byte encoding of the ID.
func (id ID) Wire() [WireLen]byte {
	a, b, c, d := id.Octets()
	return [WireLen]byte{a, b, c, d, byte(id.Port() >> 8), byte(id.Port())}
}

// FromWire decodes an ID from the first WireLen bytes of buf.
func FromWire(buf []byte) (ID, error) {
	if len(buf) < WireLen {
		return None, ErrShortBuffer
	}
	port := uint16(buf[4])<<8 | uint16(buf[5])
	return New(buf[0], buf[1], buf[2], buf[3], port), nil
}

// Sim returns a synthetic, unique ID for simulated node number i
// (i >= 0). Simulated nodes live in 10.0.0.0/8 with port 4000 so that
// up to 2^24 distinct nodes can be generated.
func Sim(i int) ID {
	return New(10, byte(i>>16), byte(i>>8), byte(i), 4000)
}

// SimIndex recovers the node number from an ID produced by Sim. It
// reports false for identities outside the simulated 10.0.0.0/8 range.
func SimIndex(id ID) (int, bool) {
	a, b, c, d := id.Octets()
	if a != 10 || id.Port() != 4000 {
		return 0, false
	}
	return int(b)<<16 | int(c)<<8 | int(d), true
}

// Sort orders a slice of IDs in ascending numeric order, in place.
func Sort(s []ID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
