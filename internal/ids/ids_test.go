package ids

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		addr string
	}{
		{"loopback", "127.0.0.1:8080"},
		{"low ports", "10.0.0.1:1"},
		{"high everything", "255.255.255.255:65535"},
		{"sim style", "10.1.2.3:4000"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			id, err := Parse(tt.addr)
			if err != nil {
				t.Fatalf("Parse(%q) error: %v", tt.addr, err)
			}
			if got := id.String(); got != tt.addr {
				t.Errorf("String() = %q, want %q", got, tt.addr)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		addr string
	}{
		{"missing port", "1.2.3.4"},
		{"bad port", "1.2.3.4:70000"},
		{"non-numeric port", "1.2.3.4:abc"},
		{"too few octets", "1.2.3:80"},
		{"too many octets", "1.2.3.4.5:80"},
		{"octet overflow", "1.2.3.300:80"},
		{"all zero", "0.0.0.0:0"},
		{"empty", ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.addr); !errors.Is(err, ErrBadAddr) {
				t.Errorf("Parse(%q) error = %v, want ErrBadAddr", tt.addr, err)
			}
		})
	}
}

func TestWireRoundTrip(t *testing.T) {
	id := New(192, 168, 1, 77, 9999)
	w := id.Wire()
	got, err := FromWire(w[:])
	if err != nil {
		t.Fatalf("FromWire error: %v", err)
	}
	if got != id {
		t.Errorf("FromWire(Wire()) = %v, want %v", got, id)
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	f := func(a, b, c, d byte, port uint16) bool {
		id := New(a, b, c, d, port)
		w := id.Wire()
		got, err := FromWire(w[:])
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAppendWireMatchesWire(t *testing.T) {
	f := func(a, b, c, d byte, port uint16) bool {
		id := New(a, b, c, d, port)
		w := id.Wire()
		app := id.AppendWire(nil)
		if len(app) != WireLen {
			return false
		}
		for i := range app {
			if app[i] != w[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromWireShort(t *testing.T) {
	if _, err := FromWire([]byte{1, 2, 3}); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("FromWire(short) error = %v, want ErrShortBuffer", err)
	}
}

func TestSimUnique(t *testing.T) {
	const n = 5000
	seen := make(map[ID]int, n)
	for i := 0; i < n; i++ {
		id := Sim(i)
		if id.IsNone() {
			t.Fatalf("Sim(%d) produced the None ID", i)
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("Sim(%d) == Sim(%d) == %v", i, prev, id)
		}
		seen[id] = i
	}
}

func TestSimOctets(t *testing.T) {
	id := Sim(0x010203)
	a, b, c, d := id.Octets()
	if a != 10 || b != 1 || c != 2 || d != 3 {
		t.Errorf("Sim octets = %d.%d.%d.%d, want 10.1.2.3", a, b, c, d)
	}
	if id.Port() != 4000 {
		t.Errorf("Sim port = %d, want 4000", id.Port())
	}
}

func TestSort(t *testing.T) {
	s := []ID{Sim(3), Sim(1), Sim(2)}
	Sort(s)
	if s[0] != Sim(1) || s[1] != Sim(2) || s[2] != Sim(3) {
		t.Errorf("Sort produced %v", s)
	}
}

func TestNoneIsInvalid(t *testing.T) {
	if !None.IsNone() {
		t.Error("None.IsNone() = false")
	}
	if Sim(7).IsNone() {
		t.Error("valid ID reported as None")
	}
}
