package ids

import (
	"math/rand"
	"testing"
)

func TestInternerAssignsDenseIndexes(t *testing.T) {
	var in Interner
	want := []ID{Sim(5), MustParse("192.168.1.9:7000"), Sim(0), Sim(1 << 20)}
	for i, id := range want {
		if got := in.Intern(id); got != uint32(i) {
			t.Fatalf("Intern(%v) = %d, want %d", id, got, i)
		}
	}
	if in.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", in.Len(), len(want))
	}
	// Idempotence and roundtrip.
	for i, id := range want {
		if got := in.Intern(id); got != uint32(i) {
			t.Errorf("re-Intern(%v) = %d, want %d", id, got, i)
		}
		if got, ok := in.Index(id); !ok || got != uint32(i) {
			t.Errorf("Index(%v) = %d, %v, want %d, true", id, got, ok, i)
		}
		if got := in.ID(uint32(i)); got != id {
			t.Errorf("ID(%d) = %v, want %v", i, got, id)
		}
	}
	if _, ok := in.Index(Sim(7)); ok {
		t.Error("Index of a never-interned Sim ID reported ok")
	}
	if _, ok := in.Index(MustParse("1.2.3.4:5")); ok {
		t.Error("Index of a never-interned non-Sim ID reported ok")
	}
}

func TestInternerNonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intern(None) did not panic")
		}
	}()
	var in Interner
	in.Intern(None)
}

// TestInternerMatchesMapOracle drives the fast-path (Sim) and fallback
// (arbitrary identity) branches with a random interleaving of fresh and
// repeated interns, against the obvious map implementation.
func TestInternerMatchesMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pool := make([]ID, 0, 128)
	for i := 0; i < 64; i++ {
		pool = append(pool, Sim(rng.Intn(1<<22)))
	}
	for i := 0; i < 64; i++ {
		id := New(byte(1+rng.Intn(255)), byte(rng.Intn(256)), byte(rng.Intn(256)),
			byte(rng.Intn(256)), uint16(rng.Intn(1<<16)))
		pool = append(pool, id)
	}

	var in Interner
	oracle := make(map[ID]uint32)
	var order []ID
	for op := 0; op < 4096; op++ {
		id := pool[rng.Intn(len(pool))]
		if id.IsNone() {
			continue
		}
		wantIdx, seen := oracle[id]
		if !seen {
			wantIdx = uint32(len(order))
			oracle[id] = wantIdx
			order = append(order, id)
		}
		if got := in.Intern(id); got != wantIdx {
			t.Fatalf("op %d: Intern(%v) = %d, oracle %d (seen=%v)", op, id, got, wantIdx, seen)
		}
	}
	if in.Len() != len(order) {
		t.Fatalf("Len = %d, oracle %d", in.Len(), len(order))
	}
	for idx, id := range order {
		if got := in.ID(uint32(idx)); got != id {
			t.Errorf("ID(%d) = %v, oracle %v", idx, got, id)
		}
		if got, ok := in.Index(id); !ok || got != uint32(idx) {
			t.Errorf("Index(%v) = %d, %v, oracle %d", id, got, ok, idx)
		}
	}
}
