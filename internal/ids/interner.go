package ids

// Interner assigns dense uint32 indexes to identities, so hot-path
// state for a simulated population can be keyed by small contiguous
// integers (slice indexes) instead of by the identities themselves.
//
// The common case — the simulator's synthetic 10.0.0.0/8 population
// (see Sim) — resolves through a flat slice indexed by the node
// number, with no hashing at all; identities outside that range fall
// back to a small map. Indexes are assigned in interning order,
// starting at 0, and are never reused or invalidated.
//
// The zero value is ready to use. An Interner is not safe for
// concurrent mutation; the owner serializes Intern calls (the
// simulated network interns only from control-lane events), while
// Index and ID are safe to call concurrently with each other once
// interning is quiescent.
type Interner struct {
	sim    []uint32      // Sim node number → interned index + 1 (0 = unassigned)
	others map[ID]uint32 // non-simulated identities (lazily built)
	byIdx  []ID          // interned index → identity
}

// Intern returns the dense index for id, assigning the next free index
// on first sight. Interning None is a programming error and panics.
func (in *Interner) Intern(id ID) uint32 {
	if id.IsNone() {
		panic("ids: cannot intern the None identity")
	}
	if idx, ok := in.Index(id); ok {
		return idx
	}
	idx := uint32(len(in.byIdx))
	in.byIdx = append(in.byIdx, id)
	if si, ok := SimIndex(id); ok {
		for len(in.sim) <= si {
			in.sim = append(in.sim, 0)
		}
		in.sim[si] = idx + 1
	} else {
		if in.others == nil {
			in.others = make(map[ID]uint32)
		}
		in.others[id] = idx
	}
	return idx
}

// Index returns the dense index previously assigned to id; ok is false
// when id has never been interned.
func (in *Interner) Index(id ID) (uint32, bool) {
	if si, ok := SimIndex(id); ok {
		if si < len(in.sim) && in.sim[si] != 0 {
			return in.sim[si] - 1, true
		}
		return 0, false
	}
	idx, ok := in.others[id]
	return idx, ok
}

// ID returns the identity interned at index idx. It panics when idx
// has never been assigned.
func (in *Interner) ID(idx uint32) ID { return in.byIdx[idx] }

// Len returns the number of interned identities; valid indexes are
// [0, Len).
func (in *Interner) Len() int { return len(in.byIdx) }
