package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"avmon/internal/ids"
)

// Defaults mirroring the paper's experimental settings (Section 5).
const (
	// DefaultPeriod is the coarse-membership protocol period T.
	DefaultPeriod = time.Minute
	// DefaultMonitorPeriod is the monitoring protocol period TA.
	DefaultMonitorPeriod = time.Minute
	// DefaultForgetfulTau is the unresponsiveness threshold τ of the
	// forgetful-pinging optimization.
	DefaultForgetfulTau = 2 * time.Minute
	// DefaultForgetfulC is the forgetful-pinging constant c.
	DefaultForgetfulC = 1.0
)

// ErrConfig reports an invalid node configuration.
var ErrConfig = errors.New("core: invalid config")

// Config parameterizes one AVMON node.
type Config struct {
	// ID is this node's identity. Required.
	ID ids.ID
	// Scheme is the consistent, verifiable monitor-selection relation.
	// Required.
	Scheme SelectionScheme
	// Transport sends protocol messages. Required.
	Transport Transport
	// Rand is the node's private random source. Required (inject a
	// seeded source for deterministic simulation).
	Rand *rand.Rand

	// CVS is the maximum coarse-view size cvs. Required, ≥ 2.
	CVS int
	// Period is the coarse-membership protocol period T (default 1m).
	Period time.Duration
	// MonitorPeriod is the monitoring period TA (default 1m). It may
	// differ from Period (Section 3.3).
	MonitorPeriod time.Duration

	// Forgetful enables the forgetful-pinging optimization.
	Forgetful bool
	// ForgetfulTau is the threshold τ after which a target is pinged
	// only probabilistically (default 2m).
	ForgetfulTau time.Duration
	// ForgetfulC is the constant c in c·ts/(ts+t) (default 1).
	ForgetfulC float64

	// PR2 enables the indegree-repair optimization of Section 5.4.
	PR2 bool

	// HistoryStyle selects the availability store: "raw" (default),
	// "recent:<dur>", or "aged:<alpha>" (Section 1, sub-problem II).
	HistoryStyle string

	// AcquireMessage, when non-nil, supplies outgoing message
	// envelopes — typically from a recycling pool owned by the thread
	// executing the node — instead of allocating one per send. Supplied
	// messages must be fully zeroed (Message.Reset); the node sets
	// every field it uses and relinquishes ownership on send. nil means
	// allocate.
	AcquireMessage func() *Message

	// Scratch, when non-nil, supplies the discovery-sweep scratch
	// buffers. The instance must be owned by the thread currently
	// executing the node (one per simulation worker, say); it carries
	// no information between calls. nil gives the node a private
	// scratch.
	Scratch func() *SweepScratch

	// Overreport makes this node a misbehaving monitor that reports
	// 100% availability for every node it monitors (the attack of
	// Section 5.4, Figure 20).
	Overreport bool

	// SuppressMonPing, when non-nil, makes this node a colluding
	// monitor that silently drops its monitoring duty towards selected
	// targets: MonitorTick skips every target for which the hook
	// returns true (counted in MonitoringStats.PingsSuppressed). The
	// hook must be a pure function of the target identity — it runs on
	// the node's lane and must not draw randomness or retain state, or
	// sharded runs lose determinism.
	SuppressMonPing func(target ids.ID) bool
	// ForgeReport, when non-nil, intercepts every availability
	// estimate this node is about to report for a target it monitors
	// (EstimateOf, and therefore AVAIL responses): it receives the
	// honest estimate and whether one exists, and returns what the
	// node actually reports. Colluders use it to whitewash or defame
	// the victims they monitor, or to suppress the report entirely
	// (return ok=false). Like SuppressMonPing it must be a pure
	// function of its inputs.
	ForgeReport func(target ids.ID, est float64, known bool) (float64, bool)

	// Ablation knobs (evaluation only — they disable parts of the
	// published protocol to measure their contribution):

	// DisableReshuffle keeps the coarse view fixed instead of
	// re-drawing it from CV(x) ∪ CV(w) ∪ {w} each round (ablates the
	// randomness-maintenance step of Figure 2).
	DisableReshuffle bool
	// RejoinFullWeight makes rejoining nodes use weight cvs instead
	// of min(cvs, downtime) (ablates the indegree-compensation rule
	// of Figure 1).
	RejoinFullWeight bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Period <= 0 {
		out.Period = DefaultPeriod
	}
	if out.MonitorPeriod <= 0 {
		out.MonitorPeriod = DefaultMonitorPeriod
	}
	if out.ForgetfulTau <= 0 {
		out.ForgetfulTau = DefaultForgetfulTau
	}
	if out.ForgetfulC <= 0 {
		out.ForgetfulC = DefaultForgetfulC
	}
	if out.HistoryStyle == "" {
		out.HistoryStyle = "raw"
	}
	return out
}

func (c *Config) validate() error {
	if c.ID.IsNone() {
		return fmt.Errorf("%w: missing ID", ErrConfig)
	}
	if c.Scheme == nil {
		return fmt.Errorf("%w: missing Scheme", ErrConfig)
	}
	if c.Transport == nil {
		return fmt.Errorf("%w: missing Transport", ErrConfig)
	}
	if c.Rand == nil {
		return fmt.Errorf("%w: missing Rand", ErrConfig)
	}
	if c.CVS < 2 {
		return fmt.Errorf("%w: CVS must be ≥ 2, got %d", ErrConfig, c.CVS)
	}
	return nil
}
