package core

import (
	"avmon/internal/ids"

	"time"

	"avmon/internal/availability"
)

// This file is the struct-of-arrays storage behind the node's PS and
// TS (see DESIGN.md, "Memory diet"): an open-addressing index table
// keyed by identity, and a flat by-value arena for target state. At
// N = 10^6 the previous map-of-pointers layout cost the garbage
// collector millions of per-entry heap objects; these tables keep the
// same information in a handful of contiguous slices per node.

// idTableMinCap is the smallest non-empty table size (a power of two).
const idTableMinCap = 8

// idTableHash scrambles an identity into a table probe start
// (splitmix64 finalizer — identities are dense packed IPv4:port words,
// so the low bits need the full avalanche).
func idTableHash(id ids.ID) uint64 {
	x := uint64(id)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// idTable maps identities to small payload indexes with open
// addressing and linear probing. The zero value is an empty table.
// ids.None marks empty slots and is not a valid key; deletion uses
// backward-shift compaction, so there are no tombstones and lookups
// stay O(1 + load) through any churn sequence. Not safe for concurrent
// use.
type idTable struct {
	keys []ids.ID // ids.None = empty slot; always a power-of-two length
	vals []uint32
	n    int
}

func (t *idTable) len() int { return t.n }

// get returns the payload stored under id.
func (t *idTable) get(id ids.ID) (uint32, bool) {
	if t.n == 0 {
		return 0, false
	}
	mask := uint64(len(t.keys) - 1)
	i := idTableHash(id) & mask
	for {
		switch t.keys[i] {
		case id:
			return t.vals[i], true
		case ids.None:
			return 0, false
		}
		i = (i + 1) & mask
	}
}

// put stores v under id, replacing any previous payload. Keys may not
// be None.
func (t *idTable) put(id ids.ID, v uint32) {
	if id.IsNone() {
		panic("core: idTable key cannot be None")
	}
	// Grow at 3/4 load so probe chains stay short.
	if len(t.keys) == 0 || (t.n+1)*4 > len(t.keys)*3 {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := idTableHash(id) & mask
	for {
		switch t.keys[i] {
		case ids.None:
			t.keys[i] = id
			t.vals[i] = v
			t.n++
			return
		case id:
			t.vals[i] = v
			return
		}
		i = (i + 1) & mask
	}
}

// del removes id, reporting whether it was present.
func (t *idTable) del(id ids.ID) bool {
	if t.n == 0 {
		return false
	}
	mask := uint64(len(t.keys) - 1)
	i := idTableHash(id) & mask
	for {
		switch t.keys[i] {
		case ids.None:
			return false
		case id:
			goto found
		}
		i = (i + 1) & mask
	}
found:
	// Backward-shift compaction: walk the rest of the probe chain and
	// pull back any entry whose home position lies cyclically at or
	// before the hole, so no probe path is ever broken.
	j := i
	for {
		j = (j + 1) & mask
		k := t.keys[j]
		if k == ids.None {
			break
		}
		home := idTableHash(k) & mask
		if (j-home)&mask >= (j-i)&mask {
			t.keys[i] = k
			t.vals[i] = t.vals[j]
			i = j
		}
	}
	t.keys[i] = ids.None
	t.n--
	return true
}

func (t *idTable) grow() {
	newCap := idTableMinCap
	if len(t.keys) > 0 {
		newCap = len(t.keys) * 2
	}
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]ids.ID, newCap)
	t.vals = make([]uint32, newCap)
	t.n = 0
	for i, k := range oldKeys {
		if k != ids.None {
			t.put(k, oldVals[i])
		}
	}
}

// targetArena stores target state by value in one flat slice, with a
// freelist of released slots. Slot indexes are stable for the life of
// the entry; pointers returned by at are NOT — alloc may move the
// backing array — so callers must re-resolve after any alloc and never
// retain a *target across events.
type targetArena struct {
	slots []target
	free  []uint32
}

// alloc returns the index of a zeroed slot.
func (a *targetArena) alloc() uint32 {
	if n := len(a.free); n > 0 {
		idx := a.free[n-1]
		a.free = a.free[:n-1]
		a.slots[idx] = target{}
		return idx
	}
	a.slots = appendChunked(a.slots, target{})
	return uint32(len(a.slots) - 1)
}

// appendChunked appends v, growing capacity by fixed chunks of 8
// instead of append's doubling. The per-node slices it backs (arena
// slots, discovery-order slices) plateau near K ≈ 13–21 entries, where
// doubling strands up to 11 slots per slice — ~1.3 KB/node of arena
// slack alone at N = 10⁶. Growth events are discovery events (a
// handful per node, ever), so the extra copies are free.
func appendChunked[T any](s []T, v T) []T {
	if len(s) == cap(s) {
		grown := make([]T, len(s), len(s)+8)
		copy(grown, s)
		s = grown
	}
	return append(s, v)
}

// release returns a slot to the freelist for reuse.
func (a *targetArena) release(idx uint32) {
	a.slots[idx] = target{}
	a.free = append(a.free, idx)
}

// at resolves a slot index to its entry (valid until the next alloc).
func (a *targetArena) at(idx uint32) *target { return &a.slots[idx] }

// init prepares a freshly allocated slot for monitored node id. The
// default "raw" history is inlined in the target (store stays nil);
// other styles allocate their Store. An unknown style falls back to
// raw rather than dropping the monitoring duty (config validation
// accepts any non-empty style string).
func (t *target) init(id ids.ID, historyStyle string, now time.Time) {
	t.id = id
	t.discovered = now.UnixNano()
	if historyStyle != "raw" {
		if store, err := availability.NewStore(historyStyle); err == nil {
			t.store = store
		}
	}
}
