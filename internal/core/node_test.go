package core

import (
	"errors"
	"math/rand"
	"testing"

	"avmon/internal/ids"
)

func TestNewNodeValidation(t *testing.T) {
	valid := func() Config {
		return Config{
			ID:        ids.Sim(1),
			Scheme:    allRelated{},
			Transport: &fakeTransport{net: newFakeNet(t), self: ids.Sim(1)},
			Rand:      rand.New(rand.NewSource(1)),
			CVS:       8,
		}
	}
	if _, err := NewNode(valid()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"missing ID", func(c *Config) { c.ID = ids.None }},
		{"missing scheme", func(c *Config) { c.Scheme = nil }},
		{"missing transport", func(c *Config) { c.Transport = nil }},
		{"missing rand", func(c *Config) { c.Rand = nil }},
		{"cvs too small", func(c *Config) { c.CVS = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := valid()
			tt.mut(&cfg)
			if _, err := NewNode(cfg); !errors.Is(err, ErrConfig) {
				t.Errorf("error = %v, want ErrConfig", err)
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	fn := newFakeNet(t)
	n := fn.addNode(1, allRelated{}, nil)
	cfg := n.Config()
	if cfg.Period != DefaultPeriod || cfg.MonitorPeriod != DefaultMonitorPeriod {
		t.Errorf("periods = %v/%v", cfg.Period, cfg.MonitorPeriod)
	}
	if cfg.ForgetfulTau != DefaultForgetfulTau || cfg.ForgetfulC != DefaultForgetfulC {
		t.Errorf("forgetful defaults = %v/%v", cfg.ForgetfulTau, cfg.ForgetfulC)
	}
	if cfg.HistoryStyle != "raw" {
		t.Errorf("history style = %q", cfg.HistoryStyle)
	}
}

// populate builds n alive nodes whose coarse views are pre-seeded with
// random peers, simulating a warmed-up overlay.
func populate(t *testing.T, fn *fakeNet, n int, scheme SelectionScheme, mutate func(*Config)) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = fn.addNode(i, scheme, mutate)
		nodes[i].Join(fn.now, ids.None)
	}
	rng := rand.New(rand.NewSource(77))
	for i, nd := range nodes {
		want := nd.cfg.CVS
		if want > n-1 {
			want = n - 1
		}
		for nd.cv.size() < want {
			j := rng.Intn(n)
			if j != i {
				nd.cv.add(ids.Sim(j))
			}
		}
	}
	fn.queue = nil // drop join traffic from pre-seeding
	return nodes
}

func TestJoinSpreadsToExpectedCVS(t *testing.T) {
	fn := newFakeNet(t)
	nodes := populate(t, fn, 60, noneRelated{}, nil)
	joiner := fn.addNode(100, noneRelated{}, nil)
	joiner.Join(fn.now, nodes[0].ID())
	fn.flush()
	holders := 0
	for _, nd := range nodes {
		if nd.cv.contains(joiner.ID()) {
			holders++
		}
	}
	cvs := joiner.cfg.CVS
	if holders < cvs/2 || holders > cvs {
		t.Errorf("joiner present in %d coarse views, want ≈ cvs = %d", holders, cvs)
	}
}

func TestJoinWeightBudgetNeverExceeded(t *testing.T) {
	// Total adds across the system must never exceed the JOIN weight.
	for seed := 0; seed < 5; seed++ {
		fn := newFakeNet(t)
		nodes := populate(t, fn, 40, noneRelated{}, nil)
		joiner := fn.addNode(200+seed, noneRelated{}, nil)
		joiner.Join(fn.now, nodes[seed].ID())
		fn.flush()
		holders := 0
		for _, nd := range nodes {
			if nd.cv.contains(joiner.ID()) {
				holders++
			}
		}
		if holders > joiner.cfg.CVS {
			t.Errorf("seed %d: %d holders exceeds weight %d", seed, holders, joiner.cfg.CVS)
		}
	}
}

func TestJoinTerminates(t *testing.T) {
	// Even in a tiny population where duplicates abound, the JOIN
	// cascade must terminate (weight strictly decreases on every add,
	// duplicates discard).
	fn := newFakeNet(t)
	nodes := populate(t, fn, 3, noneRelated{}, nil)
	joiner := fn.addNode(300, noneRelated{}, nil)
	joiner.Join(fn.now, nodes[0].ID())
	fn.flush() // would loop forever if the protocol did not terminate
	if got := fn.sent[MsgJoin]; got > 64 {
		t.Errorf("join cascade sent %d messages in a 3-node system", got)
	}
}

func TestRejoinWeightReflectsDowntime(t *testing.T) {
	fn := newFakeNet(t)
	nodes := populate(t, fn, 30, noneRelated{}, nil)
	j := fn.addNode(400, noneRelated{}, nil)
	j.Join(fn.now, nodes[0].ID())
	fn.flush()
	// Leave for 3 protocol periods, then rejoin: weight = min(cvs, 3).
	j.Leave(fn.now)
	fn.now = fn.now.Add(3 * DefaultPeriod)
	var joinMsg *Message
	for _, nd := range fn.nodes {
		_ = nd
	}
	// Capture the JOIN the node emits on rejoin.
	j.Join(fn.now, nodes[1].ID())
	for _, env := range fn.queue {
		if env.msg.Type == MsgJoin && env.from == j.ID() {
			joinMsg = env.msg
		}
	}
	if joinMsg == nil {
		t.Fatal("rejoin emitted no JOIN")
	}
	if joinMsg.Weight != 3 {
		t.Errorf("rejoin weight = %d, want 3 (downtime in periods)", joinMsg.Weight)
	}
}

func TestRejoinWeightCappedAtCVS(t *testing.T) {
	fn := newFakeNet(t)
	nodes := populate(t, fn, 30, noneRelated{}, nil)
	j := fn.addNode(500, noneRelated{}, nil)
	j.Join(fn.now, nodes[0].ID())
	fn.flush()
	j.Leave(fn.now)
	fn.now = fn.now.Add(1000 * DefaultPeriod)
	j.Join(fn.now, nodes[1].ID())
	for _, env := range fn.queue {
		if env.msg.Type == MsgJoin && env.from == j.ID() {
			if env.msg.Weight != j.cfg.CVS {
				t.Errorf("weight = %d, want cvs = %d", env.msg.Weight, j.cfg.CVS)
			}
		}
	}
}

func TestTickRemovesUnresponsiveFromCV(t *testing.T) {
	fn := newFakeNet(t)
	a := fn.addNode(1, noneRelated{}, nil)
	b := fn.addNode(2, noneRelated{}, nil)
	a.Join(fn.now, ids.None)
	b.Join(fn.now, ids.None)
	a.cv.add(b.ID())
	b.Leave(fn.now) // b is dead: pings go unanswered
	// First tick sends the probe; second tick notices no pong.
	fn.advance(2, DefaultPeriod)
	if a.cv.contains(b.ID()) {
		t.Error("dead node still in coarse view after unanswered ping")
	}
}

func TestTickKeepsResponsiveInCV(t *testing.T) {
	fn := newFakeNet(t)
	a := fn.addNode(1, noneRelated{}, nil)
	b := fn.addNode(2, noneRelated{}, nil)
	a.Join(fn.now, ids.None)
	b.Join(fn.now, ids.None)
	a.cv.add(b.ID())
	b.cv.add(a.ID())
	fn.advance(10, DefaultPeriod)
	if !a.cv.contains(b.ID()) {
		t.Error("responsive node evicted from coarse view")
	}
}

func TestDiscoveryThroughCVExchange(t *testing.T) {
	// With the allRelated scheme, two nodes that exchange coarse views
	// must discover each other: x and w are in both check sets.
	fn := newFakeNet(t)
	a := fn.addNode(1, allRelated{}, nil)
	b := fn.addNode(2, allRelated{}, nil)
	a.Join(fn.now, ids.None)
	b.Join(fn.now, ids.None)
	a.cv.add(b.ID())
	b.cv.add(a.ID())
	fn.advance(2, DefaultPeriod)
	if len(a.PS()) == 0 || len(a.TS()) == 0 {
		t.Errorf("a: PS=%v TS=%v, want both non-empty", a.PS(), a.TS())
	}
	if len(b.PS()) == 0 || len(b.TS()) == 0 {
		t.Errorf("b: PS=%v TS=%v, want both non-empty", b.PS(), b.TS())
	}
	if got := a.DiscoveryTimes(); len(got) == 0 {
		t.Error("no discovery times recorded")
	}
}

func TestForgedNotifyRejected(t *testing.T) {
	fn := newFakeNet(t)
	a := fn.addNode(1, noneRelated{}, nil)
	a.Join(fn.now, ids.None)
	evil := ids.Sim(66)
	// A forged NOTIFY claiming evil ∈ PS(a) and a ∈ PS(evil).
	a.Handle(evil, &Message{Type: MsgNotify, U: evil, V: a.ID()}, fn.now)
	a.Handle(evil, &Message{Type: MsgNotify, U: a.ID(), V: evil}, fn.now)
	if len(a.PS()) != 0 {
		t.Errorf("forged monitor accepted into PS: %v", a.PS())
	}
	if len(a.TS()) != 0 {
		t.Errorf("forged target accepted into TS: %v", a.TS())
	}
}

func TestValidNotifyAccepted(t *testing.T) {
	fn := newFakeNet(t)
	a := fn.addNode(1, allRelated{}, nil)
	a.Join(fn.now, ids.None)
	peer := ids.Sim(2)
	a.Handle(peer, &Message{Type: MsgNotify, U: peer, V: a.ID()}, fn.now)
	if got := a.PS(); len(got) != 1 || got[0] != peer {
		t.Errorf("PS = %v, want [%v]", got, peer)
	}
	a.Handle(peer, &Message{Type: MsgNotify, U: a.ID(), V: peer}, fn.now)
	if got := a.TS(); len(got) != 1 || got[0] != peer {
		t.Errorf("TS = %v, want [%v]", got, peer)
	}
	// Duplicate NOTIFY is idempotent.
	a.Handle(peer, &Message{Type: MsgNotify, U: peer, V: a.ID()}, fn.now)
	if len(a.PS()) != 1 || len(a.DiscoveryTimes()) != 1 {
		t.Error("duplicate NOTIFY re-recorded")
	}
}

func TestMonitoringRecordsAvailability(t *testing.T) {
	fn := newFakeNet(t)
	mon := fn.addNode(1, allRelated{}, nil)
	tgt := fn.addNode(2, allRelated{}, nil)
	mon.Join(fn.now, ids.None)
	tgt.Join(fn.now, ids.None)
	mon.Handle(tgt.ID(), &Message{Type: MsgNotify, U: mon.ID(), V: tgt.ID()}, fn.now)
	// 5 monitored rounds, target alive throughout.
	fn.advance(5, DefaultMonitorPeriod)
	est, known := mon.EstimateOf(tgt.ID())
	if !known || est != 1 {
		t.Fatalf("estimate = %v (known=%v), want 1", est, known)
	}
	// Target dies; unanswered probes drag the estimate down.
	tgt.Leave(fn.now)
	fn.advance(5, DefaultMonitorPeriod)
	est, known = mon.EstimateOf(tgt.ID())
	if !known || est >= 1 || est < 0.3 {
		t.Errorf("estimate after death = %v (known=%v), want in [0.3, 1)", est, known)
	}
	stats := mon.MonitoringStats()
	if stats.Targets != 1 || stats.PingsSent == 0 || stats.Acks == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestForgetfulPingingReducesPings(t *testing.T) {
	run := func(forgetful bool) uint64 {
		fn := newFakeNet(t)
		mon := fn.addNode(1, allRelated{}, func(c *Config) {
			c.Forgetful = forgetful
		})
		tgt := fn.addNode(2, allRelated{}, nil)
		mon.Join(fn.now, ids.None)
		tgt.Join(fn.now, ids.None)
		mon.Handle(tgt.ID(), &Message{Type: MsgNotify, U: mon.ID(), V: tgt.ID()}, fn.now)
		fn.advance(3, DefaultMonitorPeriod) // observe it up briefly
		tgt.Leave(fn.now)
		fn.advance(120, DefaultMonitorPeriod) // two hours dead
		return mon.MonitoringStats().PingsSent
	}
	withOpt := run(true)
	without := run(false)
	if withOpt >= without/2 {
		t.Errorf("forgetful sent %d pings vs %d without; want a large reduction", withOpt, without)
	}
	if withOpt < 3 {
		t.Errorf("forgetful sent only %d pings; target must still be probed occasionally", withOpt)
	}
}

func TestForgetfulTargetRediscoveredOnRejoin(t *testing.T) {
	fn := newFakeNet(t)
	mon := fn.addNode(1, allRelated{}, func(c *Config) { c.Forgetful = true })
	tgt := fn.addNode(2, allRelated{}, nil)
	mon.Join(fn.now, ids.None)
	tgt.Join(fn.now, ids.None)
	mon.Handle(tgt.ID(), &Message{Type: MsgNotify, U: mon.ID(), V: tgt.ID()}, fn.now)
	fn.advance(3, DefaultMonitorPeriod)
	tgt.Leave(fn.now)
	fn.advance(30, DefaultMonitorPeriod)
	tgt.Join(fn.now, mon.ID())
	fn.advance(30, DefaultMonitorPeriod)
	// Once the target answers again, the session bookkeeping resumes:
	// the monitor must have recorded new acks after the rejoin.
	st := mon.MonitoringStats()
	if st.Acks < 5 {
		t.Errorf("acks after rejoin = %d, want several", st.Acks)
	}
}

func TestPR2RepairsIndegree(t *testing.T) {
	fn := newFakeNet(t)
	x := fn.addNode(1, noneRelated{}, func(c *Config) { c.PR2 = true })
	peers := make([]*Node, 4)
	for i := range peers {
		peers[i] = fn.addNode(10+i, noneRelated{}, nil)
		peers[i].Join(fn.now, ids.None)
	}
	x.Join(fn.now, ids.None)
	for _, p := range peers {
		x.cv.add(p.ID())
	}
	// Nobody monitors x (noneRelated), so after 2 periods x forces
	// itself into its members' views.
	fn.advance(3, DefaultPeriod)
	holders := 0
	for _, p := range peers {
		if p.cv.contains(x.ID()) {
			holders++
		}
	}
	if holders == 0 {
		t.Error("PR2 did not insert the node into any member's coarse view")
	}
}

func TestPR2SuppressedByMonitoringPings(t *testing.T) {
	fn := newFakeNet(t)
	x := fn.addNode(1, noneRelated{}, func(c *Config) { c.PR2 = true })
	peer := fn.addNode(2, noneRelated{}, nil)
	x.Join(fn.now, ids.None)
	peer.Join(fn.now, ids.None)
	x.cv.add(peer.ID())
	// Deliver a monitoring ping each round: PR2 must stay quiet.
	for i := 0; i < 5; i++ {
		fn.now = fn.now.Add(DefaultPeriod)
		x.Handle(peer.ID(), &Message{Type: MsgMonPing, Seq: uint64(i + 1)}, fn.now)
		x.Tick(fn.now)
		fn.flush()
	}
	if got := fn.sent[MsgPR2]; got != 0 {
		t.Errorf("PR2 sent %d messages despite receiving monitoring pings", got)
	}
}

func TestHandleWhileDeadDropped(t *testing.T) {
	fn := newFakeNet(t)
	a := fn.addNode(1, allRelated{}, nil)
	// Never joined: all messages dropped.
	a.Handle(ids.Sim(2), &Message{Type: MsgNotify, U: ids.Sim(2), V: a.ID()}, fn.now)
	if len(a.PS()) != 0 {
		t.Error("dead node processed a message")
	}
}

func TestMemoryEntriesAccounting(t *testing.T) {
	fn := newFakeNet(t)
	a := fn.addNode(1, allRelated{}, nil)
	a.Join(fn.now, ids.None)
	a.cv.add(ids.Sim(5))
	a.cv.add(ids.Sim(6))
	a.Handle(ids.Sim(7), &Message{Type: MsgNotify, U: ids.Sim(7), V: a.ID()}, fn.now)
	a.Handle(ids.Sim(8), &Message{Type: MsgNotify, U: a.ID(), V: ids.Sim(8)}, fn.now)
	if got := a.MemoryEntries(); got != 4 {
		t.Errorf("MemoryEntries = %d, want 4 (2 CV + 1 PS + 1 TS)", got)
	}
}

func TestHashChecksCounted(t *testing.T) {
	fn := newFakeNet(t)
	a := fn.addNode(1, noneRelated{}, nil)
	a.Join(fn.now, ids.None)
	for i := 0; i < 4; i++ {
		a.cv.add(ids.Sim(10 + i))
	}
	view := []ids.ID{ids.Sim(20), ids.Sim(21), ids.Sim(22)}
	before := a.HashChecks()
	a.handleCVResp(ids.Sim(30), view, fn.now)
	checks := a.HashChecks() - before
	// |A| = 4+2 = 6, |B| = 3+2 = 5, distinct ordered cross pairs ≤ 2·6·5.
	if checks == 0 || checks > 60 {
		t.Errorf("hash checks = %d, want in (0, 60]", checks)
	}
}

func TestOverreportingMonitor(t *testing.T) {
	fn := newFakeNet(t)
	mon := fn.addNode(1, allRelated{}, func(c *Config) { c.Overreport = true })
	tgt := fn.addNode(2, allRelated{}, nil)
	mon.Join(fn.now, ids.None)
	tgt.Join(fn.now, ids.None)
	mon.Handle(tgt.ID(), &Message{Type: MsgNotify, U: mon.ID(), V: tgt.ID()}, fn.now)
	tgt.Leave(fn.now) // target is gone...
	fn.advance(10, DefaultMonitorPeriod)
	est, known := mon.EstimateOf(tgt.ID())
	if !known || est != 1 {
		t.Errorf("overreporting monitor estimate = %v, want 1.0", est)
	}
}

func TestCVRespReshufflesView(t *testing.T) {
	fn := newFakeNet(t)
	a := fn.addNode(1, noneRelated{}, nil)
	a.Join(fn.now, ids.None)
	w := ids.Sim(50)
	view := []ids.ID{ids.Sim(51), ids.Sim(52)}
	a.handleCVResp(w, view, fn.now)
	cv := a.CV()
	if len(cv) != 3 {
		t.Fatalf("CV after resp = %v, want the 2 fetched entries plus w", cv)
	}
	want := map[ids.ID]bool{w: true, ids.Sim(51): true, ids.Sim(52): true}
	for _, id := range cv {
		if !want[id] {
			t.Errorf("unexpected CV entry %v", id)
		}
	}
}

func TestWireSizes(t *testing.T) {
	tests := []struct {
		m    Message
		want int
	}{
		{Message{Type: MsgPing}, 8},
		{Message{Type: MsgJoin}, 18},
		{Message{Type: MsgNotify}, 24},
		{Message{Type: MsgCVResp, View: make([]ids.ID, 10)}, 88},
		{Message{Type: MsgReportResp, View: make([]ids.ID, 3)}, 32},
		{Message{Type: MsgAvailReq}, 16},
		{Message{Type: MsgAvailResp}, 24},
		{Message{Type: MsgMonPing}, 8},
	}
	for _, tt := range tests {
		if got := tt.m.WireSize(); got != tt.want {
			t.Errorf("WireSize(%v) = %d, want %d", tt.m.Type, got, tt.want)
		}
	}
}

func TestMsgTypeStrings(t *testing.T) {
	types := []MsgType{
		MsgJoin, MsgPing, MsgPong, MsgCVFetch, MsgCVResp, MsgNotify,
		MsgMonPing, MsgMonAck, MsgPR2, MsgReportReq, MsgReportResp,
		MsgAvailReq, MsgAvailResp,
	}
	seen := make(map[string]bool)
	for _, mt := range types {
		s := mt.String()
		if s == "UNKNOWN" || seen[s] {
			t.Errorf("MsgType %d stringifies to %q", mt, s)
		}
		seen[s] = true
	}
	if MsgType(200).String() != "UNKNOWN" {
		t.Error("unknown type not UNKNOWN")
	}
}
