package core

import (
	"math/rand"
	"testing"

	"avmon/internal/ids"
)

// discoveryOracle is the pre-flat-table PS/TS implementation — a
// membership map plus an append-only discovery-order slice — kept here
// as the reference the struct-of-arrays layout is diffed against. The
// documented contract (node.go) is that psOrder/tsOrder list members
// in exact discovery order; rebootstrap target choice and the
// DiscoveryTimes figure depend on it.
type discoveryOracle struct {
	self    ids.ID
	related func(u, v ids.ID) bool

	ps      map[ids.ID]struct{}
	psOrder []ids.ID
	ts      map[ids.ID]struct{}
	tsOrder []ids.ID
}

func newDiscoveryOracle(self ids.ID, related func(u, v ids.ID) bool) *discoveryOracle {
	return &discoveryOracle{
		self:    self,
		related: related,
		ps:      make(map[ids.ID]struct{}),
		ts:      make(map[ids.ID]struct{}),
	}
}

// notify mirrors Node.handleNotify's membership logic on the map
// implementation.
func (o *discoveryOracle) notify(u, v ids.ID) {
	if u.IsNone() || v.IsNone() {
		return
	}
	switch o.self {
	case v:
		if _, known := o.ps[u]; known || !o.related(u, v) {
			return
		}
		o.ps[u] = struct{}{}
		o.psOrder = append(o.psOrder, u)
	case u:
		if _, known := o.ts[v]; known || !o.related(u, v) {
			return
		}
		o.ts[v] = struct{}{}
		o.tsOrder = append(o.tsOrder, v)
	}
}

func sameIDSeq(a, b []ids.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDiscoveryOrderMatchesMapOracle drives a node with a long random
// NOTIFY stream — duplicates, self pairs, forged Nones, unrelated
// pairs — and asserts after every message that the flat-table psOrder
// and tsOrder equal the map+order-slice oracle element for element.
func TestDiscoveryOrderMatchesMapOracle(t *testing.T) {
	fn := newFakeNet(t)
	self := ids.Sim(0)
	// An even/odd scheme: exercises the re-check path (unrelated pairs
	// must be rejected) with a deterministic, symmetric-free predicate.
	related := func(u, v ids.ID) bool {
		if u == v || u.IsNone() || v.IsNone() {
			return false
		}
		return (uint64(u)+uint64(v))%3 != 0
	}
	n := fn.addNode(0, predicateScheme{related}, nil)
	n.Join(fn.now, ids.None)
	oracle := newDiscoveryOracle(self, related)

	rng := rand.New(rand.NewSource(71))
	pool := make([]ids.ID, 40)
	for i := range pool {
		pool[i] = ids.Sim(i) // includes self at index 0
	}
	pool = append(pool, ids.None)

	msg := &Message{Type: MsgNotify}
	for op := 0; op < 8000; op++ {
		u := pool[rng.Intn(len(pool))]
		v := pool[rng.Intn(len(pool))]
		// Bias half the traffic onto pairs involving self, else almost
		// every message is a no-op for this node.
		if rng.Intn(2) == 0 {
			if rng.Intn(2) == 0 {
				u = self
			} else {
				v = self
			}
		}
		msg.U, msg.V = u, v
		n.Handle(ids.Sim(1+rng.Intn(39)), msg, fn.now)
		oracle.notify(u, v)

		if !sameIDSeq(n.psOrder, oracle.psOrder) {
			t.Fatalf("op %d NOTIFY(%v,%v): psOrder %v, oracle %v", op, u, v, n.psOrder, oracle.psOrder)
		}
		if !sameIDSeq(n.tsOrder, oracle.tsOrder) {
			t.Fatalf("op %d NOTIFY(%v,%v): tsOrder %v, oracle %v", op, u, v, n.tsOrder, oracle.tsOrder)
		}
	}

	// The index tables agree with the order slices: psIdx positions are
	// the discovery ranks, tsIdx slots resolve to the right targets in
	// tsOrder sequence.
	for i, id := range n.psOrder {
		if pos, ok := n.psIdx.get(id); !ok || pos != uint32(i) {
			t.Errorf("psIdx[%v] = %d, %v; want rank %d", id, pos, ok, i)
		}
	}
	if n.psIdx.len() != len(n.psOrder) {
		t.Errorf("psIdx holds %d entries, psOrder %d", n.psIdx.len(), len(n.psOrder))
	}
	for i, id := range n.tsOrder {
		slot, ok := n.tsIdx.get(id)
		if !ok || slot != n.tsSlots[i] {
			t.Errorf("tsIdx[%v] = %d, %v; want slot %d", id, slot, ok, n.tsSlots[i])
		}
		if got := n.targets.at(slot).id; got != id {
			t.Errorf("arena slot %d holds %v, want %v", slot, got, id)
		}
	}
	if n.tsIdx.len() != len(n.tsOrder) {
		t.Errorf("tsIdx holds %d entries, tsOrder %d", n.tsIdx.len(), len(n.tsOrder))
	}
	if len(oracle.psOrder) == 0 || len(oracle.tsOrder) == 0 {
		t.Fatal("degenerate run: the stream discovered nothing")
	}
	// The sorted public views agree with the oracle membership too.
	wantPS := append([]ids.ID(nil), oracle.psOrder...)
	ids.Sort(wantPS)
	if !sameIDSeq(n.PS(), wantPS) {
		t.Errorf("PS() = %v, oracle %v", n.PS(), wantPS)
	}
	wantTS := append([]ids.ID(nil), oracle.tsOrder...)
	ids.Sort(wantTS)
	if !sameIDSeq(n.TS(), wantTS) {
		t.Errorf("TS() = %v, oracle %v", n.TS(), wantTS)
	}
}

// predicateScheme adapts a func to SelectionScheme for tests.
type predicateScheme struct {
	fn func(u, v ids.ID) bool
}

func (p predicateScheme) Related(y, x ids.ID) bool { return p.fn(y, x) }
func (p predicateScheme) K() int                   { return 1 }
