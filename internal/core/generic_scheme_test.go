package core

import (
	"testing"

	"avmon/internal/ids"
)

// parityScheme is a deliberately non-hash selection relation: y
// monitors x iff their indexes are congruent mod 7 and y ≠ x. It is
// consistent (pure function of identities) and verifiable (anyone can
// evaluate it), so per Section 3.2 the discovery protocol must work
// with it unchanged.
type parityScheme struct{}

func (parityScheme) Related(y, x ids.ID) bool {
	yi, ok1 := ids.SimIndex(y)
	xi, ok2 := ids.SimIndex(x)
	return ok1 && ok2 && y != x && yi%7 == xi%7
}

func (parityScheme) K() int { return 8 }

// TestDiscoveryWithArbitraryScheme exercises the paper's claim that
// the coarse-view discovery protocol works with ANY consistent and
// verifiable selection relation, not just the hash condition.
func TestDiscoveryWithArbitraryScheme(t *testing.T) {
	fn := newFakeNet(t)
	nodes := populate(t, fn, 56, parityScheme{}, nil) // 8 full classes mod 7
	fn.advance(25, DefaultPeriod)
	discovered, wrong := 0, 0
	for i, nd := range nodes {
		for _, mon := range nd.PS() {
			mi, _ := ids.SimIndex(mon)
			if mi%7 != i%7 {
				wrong++
			} else {
				discovered++
			}
		}
	}
	if wrong != 0 {
		t.Errorf("%d cross-class (invalid) monitors discovered", wrong)
	}
	if discovered < 56 {
		t.Errorf("only %d valid monitor relationships discovered across 56 nodes", discovered)
	}
	// Verification works for the same arbitrary scheme.
	for i, nd := range nodes {
		report := nd.ReportMonitors(2)
		if len(report) == 0 {
			continue
		}
		if _, err := VerifyReport(parityScheme{}, nd.ID(), report, 1); err != nil {
			t.Fatalf("node %d report failed verification: %v", i, err)
		}
	}
}

// TestStaleNotifyAfterRejoin injects a NOTIFY that was "in flight"
// while a node was down and arrives after it rejoins: it must still be
// verified before acceptance.
func TestStaleNotifyAfterRejoin(t *testing.T) {
	fn := newFakeNet(t)
	a := fn.addNode(1, noneRelated{}, nil)
	a.Join(fn.now, ids.None)
	a.Leave(fn.now)
	a.Join(fn.now, ids.None)
	a.Handle(ids.Sim(9), &Message{Type: MsgNotify, U: ids.Sim(9), V: a.ID()}, fn.now)
	if len(a.PS()) != 0 {
		t.Error("stale forged NOTIFY accepted after rejoin")
	}
}

// TestStatePersistsAcrossRejoin models the paper's persistent storage:
// PS, TS, and availability history survive a leave/rejoin cycle.
func TestStatePersistsAcrossRejoin(t *testing.T) {
	fn := newFakeNet(t)
	a := fn.addNode(1, allRelated{}, nil)
	tgt := fn.addNode(2, allRelated{}, nil)
	a.Join(fn.now, ids.None)
	tgt.Join(fn.now, ids.None)
	a.Handle(tgt.ID(), &Message{Type: MsgNotify, U: a.ID(), V: tgt.ID()}, fn.now)
	a.Handle(tgt.ID(), &Message{Type: MsgNotify, U: tgt.ID(), V: a.ID()}, fn.now)
	fn.advance(5, DefaultMonitorPeriod)
	before := a.MonitoringStats()
	a.Leave(fn.now)
	fn.advance(3, DefaultPeriod)
	a.Join(fn.now, tgt.ID())
	fn.flush()
	if len(a.TS()) != 1 || len(a.PS()) != 1 {
		t.Errorf("PS/TS lost across rejoin: %v / %v", a.PS(), a.TS())
	}
	fn.advance(5, DefaultMonitorPeriod)
	after := a.MonitoringStats()
	if after.Acks <= before.Acks {
		t.Error("monitoring did not resume after rejoin")
	}
	if est, known := a.EstimateOf(tgt.ID()); !known || est < 0.5 {
		t.Errorf("history lost: estimate = %v (known=%v)", est, known)
	}
}

// TestCrashMidJoin kills the bootstrap node between a joiner's JOIN
// and the corresponding fetch response: the joiner must survive and be
// able to join through another node later.
func TestCrashMidJoin(t *testing.T) {
	fn := newFakeNet(t)
	boot := fn.addNode(1, noneRelated{}, nil)
	alt := fn.addNode(2, noneRelated{}, nil)
	boot.Join(fn.now, ids.None)
	alt.Join(fn.now, ids.None)
	boot.cv.add(alt.ID())

	joiner := fn.addNode(3, noneRelated{}, nil)
	joiner.Join(fn.now, boot.ID())
	boot.Leave(fn.now) // crashes before handling anything
	fn.flush()         // JOIN and CV-FETCH silently dropped

	// The joiner still has the (dead) bootstrap in its CV; ticking
	// eventually cleans it and a rejoin through alt succeeds.
	fn.advance(3, DefaultPeriod)
	joiner.Leave(fn.now)
	fn.now = fn.now.Add(DefaultPeriod)
	joiner.Join(fn.now, alt.ID())
	fn.flush()
	if !alt.cv.contains(joiner.ID()) {
		t.Error("second join through the alternate bootstrap failed")
	}
}
