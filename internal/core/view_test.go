package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"avmon/internal/ids"
)

func TestViewAddRemoveContains(t *testing.T) {
	v := newView(3)
	a, b, c, d := ids.Sim(1), ids.Sim(2), ids.Sim(3), ids.Sim(4)
	if !v.add(a) || !v.add(b) || !v.add(c) {
		t.Fatal("adds below capacity failed")
	}
	if v.add(d) {
		t.Error("add above capacity succeeded")
	}
	if v.add(a) {
		t.Error("duplicate add succeeded")
	}
	if v.add(ids.None) {
		t.Error("None add succeeded")
	}
	if !v.contains(b) || v.contains(d) {
		t.Error("contains wrong")
	}
	if !v.remove(b) {
		t.Error("remove of member failed")
	}
	if v.remove(b) {
		t.Error("double remove succeeded")
	}
	if v.size() != 2 {
		t.Errorf("size = %d, want 2", v.size())
	}
	if !v.add(d) {
		t.Error("add after remove failed")
	}
}

func TestViewRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := newView(10)
	if !v.random(rng).IsNone() {
		t.Error("random on empty view not None")
	}
	for i := 0; i < 5; i++ {
		v.add(ids.Sim(i))
	}
	seen := make(map[ids.ID]bool)
	for i := 0; i < 200; i++ {
		id := v.random(rng)
		if !v.contains(id) {
			t.Fatal("random returned a non-member")
		}
		seen[id] = true
	}
	if len(seen) != 5 {
		t.Errorf("random covered %d of 5 members", len(seen))
	}
}

func TestViewAddEvict(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := newView(3)
	for i := 0; i < 3; i++ {
		v.add(ids.Sim(i))
	}
	newcomer := ids.Sim(99)
	if !v.addEvict(newcomer, rng) {
		t.Fatal("addEvict on full view failed")
	}
	if !v.contains(newcomer) {
		t.Error("evicting add did not insert the newcomer")
	}
	if v.size() != 3 {
		t.Errorf("size after evict = %d, want 3", v.size())
	}
	if v.addEvict(newcomer, rng) {
		t.Error("addEvict of existing member reported change")
	}
}

func TestViewReshuffleInvariants(t *testing.T) {
	f := func(seed int64, nCur, nFetched uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const max = 8
		self := ids.Sim(1000)
		w := ids.Sim(2000)
		v := newView(max)
		for i := 0; i < int(nCur%12); i++ {
			v.add(ids.Sim(i))
		}
		fetched := make([]ids.ID, 0, nFetched%12)
		for i := 0; i < int(nFetched%12); i++ {
			fetched = append(fetched, ids.Sim(100+rng.Intn(10)))
		}
		// Poison the fetched view with self: reshuffle must drop it.
		fetched = append(fetched, self)
		union := make(map[ids.ID]struct{})
		for _, id := range v.snapshot() {
			union[id] = struct{}{}
		}
		for _, id := range fetched {
			union[id] = struct{}{}
		}
		union[w] = struct{}{}
		delete(union, self)

		var scratch []ids.ID
		v.reshuffle(fetched, w, self, rng, &scratch)

		if v.size() > max {
			return false
		}
		if v.contains(self) {
			return false
		}
		seen := make(map[ids.ID]bool)
		for _, id := range v.snapshot() {
			if seen[id] {
				return false // duplicate
			}
			seen[id] = true
			if _, ok := union[id]; !ok {
				return false // invented an entry
			}
		}
		// If the union was small enough, everything must be kept.
		if len(union) <= max && v.size() != len(union) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestViewReshuffleUniform(t *testing.T) {
	// Over many reshuffles from a 20-element union into 5 slots, each
	// element should be retained ≈ 25% of the time.
	rng := rand.New(rand.NewSource(3))
	counts := make(map[ids.ID]int)
	const trials = 4000
	for trial := 0; trial < trials; trial++ {
		v := newView(5)
		var fetched []ids.ID
		for i := 0; i < 19; i++ {
			fetched = append(fetched, ids.Sim(i))
		}
		var scratch []ids.ID
		v.reshuffle(fetched, ids.Sim(19), ids.Sim(999), rng, &scratch)
		for _, id := range v.snapshot() {
			counts[id]++
		}
	}
	want := float64(trials) * 5 / 20
	for i := 0; i < 20; i++ {
		got := float64(counts[ids.Sim(i)])
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("element %d retained %v times, want ≈ %v", i, got, want)
		}
	}
}

func TestViewClear(t *testing.T) {
	v := newView(4)
	for i := 0; i < 4; i++ {
		v.add(ids.Sim(i))
	}
	v.clear()
	if v.size() != 0 || v.contains(ids.Sim(0)) {
		t.Error("clear left state behind")
	}
	if !v.add(ids.Sim(7)) {
		t.Error("add after clear failed")
	}
}
