package core

import (
	"math/rand"
	"testing"
	"time"

	"avmon/internal/ids"
)

// oracleOp applies one churn operation to both the open-addressing
// table and the map oracle, and checks that their answers agree.
func oracleOp(t *testing.T, tab *idTable, oracle map[ids.ID]uint32, op int, id ids.ID, val uint32) {
	t.Helper()
	switch op {
	case 0: // put (insert or overwrite)
		tab.put(id, val)
		oracle[id] = val
	case 1: // del
		_, inOracle := oracle[id]
		if got := tab.del(id); got != inOracle {
			t.Fatalf("del(%v) = %v, oracle %v", id, got, inOracle)
		}
		delete(oracle, id)
	}
	got, ok := tab.get(id)
	want, inOracle := oracle[id]
	if ok != inOracle || (ok && got != want) {
		t.Fatalf("get(%v) = %d, %v; oracle %d, %v", id, got, ok, want, inOracle)
	}
	if tab.len() != len(oracle) {
		t.Fatalf("len = %d, oracle %d", tab.len(), len(oracle))
	}
}

// oracleSweep cross-checks every key the oracle holds, plus a few the
// table must not hold.
func oracleSweep(t *testing.T, tab *idTable, oracle map[ids.ID]uint32, absent []ids.ID) {
	t.Helper()
	for id, want := range oracle {
		if got, ok := tab.get(id); !ok || got != want {
			t.Fatalf("get(%v) = %d, %v; oracle holds %d", id, got, ok, want)
		}
	}
	for _, id := range absent {
		if _, inOracle := oracle[id]; inOracle {
			continue
		}
		if _, ok := tab.get(id); ok {
			t.Fatalf("get(%v) found a deleted/never-inserted key", id)
		}
	}
}

// TestIDTableMatchesMapOracle churns the open-addressing table with a
// put/overwrite/delete mix over a small dense key space — Sim
// identities share high bits, so probe chains collide constantly and
// the backward-shift deletion path runs on most deletes.
func TestIDTableMatchesMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	pool := make([]ids.ID, 96)
	for i := range pool {
		pool[i] = ids.Sim(i)
	}
	var tab idTable
	oracle := make(map[ids.ID]uint32)
	for op := 0; op < 20000; op++ {
		id := pool[rng.Intn(len(pool))]
		// 60% puts so the table repeatedly fills, grows, and drains.
		kind := 0
		if rng.Intn(10) >= 6 {
			kind = 1
		}
		oracleOp(t, &tab, oracle, kind, id, uint32(rng.Intn(1<<16)))
		if op%500 == 0 {
			oracleSweep(t, &tab, oracle, pool)
		}
	}
	oracleSweep(t, &tab, oracle, pool)
}

func TestIDTableZeroValue(t *testing.T) {
	var tab idTable
	if _, ok := tab.get(ids.Sim(1)); ok {
		t.Error("get on empty table found a key")
	}
	if tab.del(ids.Sim(1)) {
		t.Error("del on empty table reported a removal")
	}
	if tab.len() != 0 {
		t.Errorf("len = %d, want 0", tab.len())
	}
}

func TestIDTableNoneKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("put(None) did not panic")
		}
	}()
	var tab idTable
	tab.put(ids.None, 1)
}

// FuzzIDTableChurn feeds arbitrary operation tapes through the table
// against the map oracle: each 2-byte step encodes (op, key), keys are
// drawn from a 48-identity dense pool to force collisions, and every
// step cross-checks get/len. The interesting space is deletion order —
// backward-shift compaction must never strand or duplicate an entry.
func FuzzIDTableChurn(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 1, 0, 3, 1, 2, 1, 3})
	f.Add([]byte{0, 0, 0, 16, 0, 32, 1, 0, 1, 16, 1, 32})
	tape := make([]byte, 0, 96)
	for i := 0; i < 48; i++ {
		tape = append(tape, 0, byte(i)) // fill…
	}
	for i := 0; i < 48; i += 2 {
		tape = append(tape, 1, byte(i)) // …then drain every other key
	}
	f.Add(tape)
	f.Fuzz(func(t *testing.T, data []byte) {
		var tab idTable
		oracle := make(map[ids.ID]uint32)
		for i := 0; i+1 < len(data); i += 2 {
			op := int(data[i]) % 2
			id := ids.Sim(int(data[i+1]) % 48)
			oracleOp(t, &tab, oracle, op, id, uint32(i))
		}
		pool := make([]ids.ID, 48)
		for i := range pool {
			pool[i] = ids.Sim(i)
		}
		oracleSweep(t, &tab, oracle, pool)
	})
}

func TestTargetArenaFreelistReuse(t *testing.T) {
	var a targetArena
	s0, s1, s2 := a.alloc(), a.alloc(), a.alloc()
	if s0 != 0 || s1 != 1 || s2 != 2 {
		t.Fatalf("fresh slots = %d,%d,%d, want 0,1,2", s0, s1, s2)
	}
	now := time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC)
	a.at(s1).init(ids.Sim(7), "raw", now)
	a.at(s1).pingsSent = 42
	a.release(s1)
	if got := a.at(s1).pingsSent; got != 0 {
		t.Errorf("released slot retains pingsSent = %d", got)
	}
	// The freelist must hand the released slot back, zeroed.
	s3 := a.alloc()
	if s3 != s1 {
		t.Errorf("alloc after release = %d, want reused slot %d", s3, s1)
	}
	if got := *a.at(s3); got != (target{}) {
		t.Errorf("reused slot not zeroed: %+v", got)
	}
	// Neighbors are untouched by release/reuse.
	if a.at(s0).id != ids.None || a.at(s2).id != ids.None {
		t.Error("release disturbed neighboring slots")
	}
	if s4 := a.alloc(); s4 != 3 {
		t.Errorf("alloc with empty freelist = %d, want 3", s4)
	}
}

// TestTargetInitStyles pins the inline-raw optimization: the default
// style must not allocate a Store, every other known style must.
func TestTargetInitStyles(t *testing.T) {
	now := time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC)
	var raw target
	raw.init(ids.Sim(1), "raw", now)
	if raw.store != nil {
		t.Error(`init("raw") allocated a Store`)
	}
	if raw.discovered != now.UnixNano() {
		t.Errorf("discovered = %d, want %d", raw.discovered, now.UnixNano())
	}
	raw.record(now, true)
	raw.record(now.Add(time.Minute), false)
	if got := raw.estimate(now.Add(time.Minute)); got != 0.5 {
		t.Errorf("raw estimate = %v, want 0.5", got)
	}
	var recent target
	recent.init(ids.Sim(2), "recent:1h", now)
	if recent.store == nil {
		t.Error(`init("recent:1h") left the Store nil`)
	}
}
