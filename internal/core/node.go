package core

import (
	"time"

	"avmon/internal/ids"
)

// Node is one AVMON participant. It is single-threaded by contract:
// the owner must serialize all calls (the simulator does this by
// construction; the real-network runner uses one event loop).
type Node struct {
	cfg Config
	id  ids.ID

	alive     bool
	everBorn  bool
	bornAt    time.Time
	joinedAt  time.Time
	lastLeave time.Time

	// PS and TS are struct-of-arrays (see DESIGN.md, "Memory diet"):
	// dense order slices hold the membership in discovery order — the
	// documented iteration order — with open-addressing index tables
	// for O(1) lookup and the target state by value in a flat arena.
	cv      *view
	psIdx   idTable     // monitor → index into psOrder
	tsIdx   idTable     // monitored node → arena slot
	targets targetArena // by-value target state
	tsSlots []uint32    // arena slot of the i-th discovered target
	tsOrder []ids.ID    // discovery order, for deterministic iteration
	psOrder []ids.ID    // discovery order, for deterministic iteration

	// lastCoarseContact is the last time a message arrived that proves
	// this node sits in some peer's coarse view (PING, CV-FETCH, a
	// forwarded JOIN, or a PR2 request). Going long without one means
	// the node's coarse-view indegree has likely dropped to zero — an
	// absorbing state under STAT — and triggers a re-bootstrap.
	lastCoarseContact time.Time

	// Discovery bookkeeping for the figures: times (since birth) at
	// which each successive PS member was discovered.
	psDiscoveries []time.Duration

	// Outstanding coarse-view liveness probe (Figure 2, first lines).
	cvPingTarget ids.ID
	cvPingSeq    uint64

	seq uint64 // message sequence numbers

	lastMonPingRecv time.Time // for PR2

	hashChecks uint64 // consistency-condition evaluations performed

	// ownScratch backs sweepScratch when the owner does not supply a
	// shared instance through Config.Scratch.
	ownScratch SweepScratch

	// onResponse, when set via SetResponseHandler, receives
	// REPORT-RESP and AVAIL-RESP messages for application queries.
	onResponse func(from ids.ID, m *Message)
}

// NewNode validates cfg, applies defaults, and returns a node in the
// "never joined" state. Call Join to enter the system.
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Node{
		cfg: cfg,
		id:  cfg.ID,
		cv:  newView(cfg.CVS),
	}, nil
}

// SweepScratch holds the reusable buffers of the discovery sweep
// (handleCVResp) and the coarse-view reshuffle. The buffers carry no
// information between calls, so one instance may serve every node
// executing on the same worker thread (Config.Scratch) — which is how
// million-node simulations avoid paying ~2 KB of scratch per node.
type SweepScratch struct {
	a, b       []ids.ID
	aInB, bInA []bool
	union      []ids.ID
}

// sweepScratch resolves the scratch instance for the current call:
// the owner-supplied shared one, or the node's own.
func (n *Node) sweepScratch() *SweepScratch {
	if n.cfg.Scratch != nil {
		if sc := n.cfg.Scratch(); sc != nil {
			return sc
		}
	}
	return &n.ownScratch
}

// newMsg returns a zeroed outgoing message envelope: pooled when the
// owner supplies Config.AcquireMessage, freshly allocated otherwise.
func (n *Node) newMsg() *Message {
	if n.cfg.AcquireMessage != nil {
		return n.cfg.AcquireMessage()
	}
	return &Message{}
}

// ID returns the node's identity.
func (n *Node) ID() ids.ID { return n.id }

// Alive reports whether the node is currently in the system.
func (n *Node) Alive() bool { return n.alive }

// Config returns the node's effective configuration.
func (n *Node) Config() Config { return n.cfg }

func (n *Node) nextSeq() uint64 {
	n.seq++
	return n.seq
}

func (n *Node) send(to ids.ID, m *Message) {
	m.From = n.id
	n.cfg.Transport.Send(to, m)
}

// --- Lifecycle -------------------------------------------------------

// Join (re-)enters the system at time now, bootstrapping through the
// given node (Figure 1). bootstrap may be None when this node is the
// very first in the system.
func (n *Node) Join(now time.Time, bootstrap ids.ID) {
	first := !n.everBorn
	if first {
		n.everBorn = true
		n.bornAt = now
	}
	n.alive = true
	n.joinedAt = now
	n.lastMonPingRecv = now
	n.lastCoarseContact = now
	n.cvPingTarget = ids.None
	// "Inherit view from this random node": discard the stale view and
	// fetch the bootstrap's.
	n.cv.clear()
	if bootstrap.IsNone() || bootstrap == n.id {
		return
	}
	weight := n.cfg.CVS
	if !first && !n.cfg.RejoinFullWeight {
		down := int(now.Sub(n.lastLeave) / n.cfg.Period)
		if down < weight {
			weight = down
		}
		if weight < 1 {
			weight = 1
		}
	}
	join := n.newMsg()
	join.Type, join.Subject, join.Weight = MsgJoin, n.id, weight
	n.send(bootstrap, join)
	fetch := n.newMsg()
	fetch.Type, fetch.Seq = MsgCVFetch, n.nextSeq()
	n.send(bootstrap, fetch)
	n.cv.add(bootstrap)
}

// Leave removes the node from the system at time now (voluntary leave
// and crash failure are indistinguishable, Section 3). State persists
// for a later rejoin, modeling the paper's persistent storage.
func (n *Node) Leave(now time.Time) {
	n.alive = false
	n.lastLeave = now
	n.cvPingTarget = ids.None
	// Outstanding monitoring probes die with us.
	for _, slot := range n.tsSlots {
		n.targets.at(slot).awaitingSeq = 0
	}
}

// --- Handle: message dispatch ---------------------------------------

// Handle processes one received message at virtual time now. Messages
// arriving while the node is down are dropped (the transport layer
// normally guarantees this; the check makes Handle safe regardless).
func (n *Node) Handle(from ids.ID, m *Message, now time.Time) {
	if !n.alive && from != n.id {
		return
	}
	switch m.Type {
	case MsgJoin:
		n.lastCoarseContact = now // a forward proves CV membership
		n.handleJoin(m)
	case MsgPing:
		n.lastCoarseContact = now
		pong := n.newMsg()
		pong.Type, pong.Seq = MsgPong, m.Seq
		n.send(from, pong)
	case MsgPong:
		if from == n.cvPingTarget && m.Seq == n.cvPingSeq {
			n.cvPingTarget = ids.None // liveness confirmed
		}
	case MsgCVFetch:
		n.lastCoarseContact = now
		resp := n.newMsg()
		resp.Type, resp.Seq = MsgCVResp, m.Seq
		resp.View = n.cv.appendTo(resp.View[:0])
		n.send(from, resp)
	case MsgCVResp:
		n.handleCVResp(from, m.View, now)
	case MsgNotify:
		n.handleNotify(m.U, m.V, now)
	case MsgMonPing:
		n.lastMonPingRecv = now
		ack := n.newMsg()
		ack.Type, ack.Seq = MsgMonAck, m.Seq
		n.send(from, ack)
	case MsgMonAck:
		n.handleMonAck(from, m.Seq, now)
	case MsgPR2:
		n.lastCoarseContact = now // the sender holds us in its CV
		n.cv.addEvict(from, n.cfg.Rand)
	case MsgReportReq:
		n.send(from, &Message{
			Type: MsgReportResp, Seq: m.Seq, Nonce: m.Nonce, View: n.ReportMonitors(m.Count),
		})
	case MsgAvailReq:
		est, known := n.EstimateOf(m.Subject)
		n.send(from, &Message{
			Type: MsgAvailResp, Seq: m.Seq, Nonce: m.Nonce,
			Subject: m.Subject, Avail: est, Known: known,
		})
	case MsgAvailBatchReq:
		n.send(from, n.answerBatch(m))
	case MsgReportResp, MsgAvailResp, MsgAvailBatchResp:
		// Responses to application-level queries; surfaced through
		// the Client helper, not consumed by the protocol node.
		if n.onResponse != nil {
			n.onResponse(from, m)
		}
	}
}

// SetResponseHandler registers a callback for REPORT-RESP,
// AVAIL-RESP, and AVAIL-BATCH-RESP messages, which answer
// application-level queries rather than protocol traffic (see
// VerifyReport for the verification step). The Service layer installs
// a single correlation-keyed dispatcher here; per-query arm/disarm is
// racy and unsupported.
func (n *Node) SetResponseHandler(fn func(from ids.ID, m *Message)) {
	n.onResponse = fn
}

// answerBatch builds the AVAIL-BATCH-RESP for one AVAIL-BATCH-REQ:
// the requested subjects echoed, with this node's estimate (and
// whether it tracks each subject) aligned per entry.
func (n *Node) answerBatch(m *Message) *Message {
	resp := &Message{
		Type: MsgAvailBatchResp, Seq: m.Seq, Nonce: m.Nonce,
		View:   append([]ids.ID(nil), m.View...),
		Avails: make([]float64, len(m.View)),
		Knowns: make([]bool, len(m.View)),
	}
	for i, subject := range m.View {
		resp.Avails[i], resp.Knowns[i] = n.EstimateOf(subject)
	}
	return resp
}

// --- Join sub-protocol (Figure 1, receiver side) ---------------------

func (n *Node) handleJoin(m *Message) {
	c := m.Weight
	if c <= 0 || m.Subject == n.id {
		return
	}
	if !n.cv.contains(m.Subject) {
		if n.cv.size() >= n.cfg.CVS {
			// Make room: the joining node's entry replaces a random
			// one, keeping the expected indegree at cvs.
			n.cv.addEvict(m.Subject, n.cfg.Rand)
		} else {
			n.cv.add(m.Subject)
		}
		c--
		left := c / 2
		right := c - left
		for _, w := range []int{left, right} {
			if w <= 0 {
				continue
			}
			// Forward to a random coarse-view member other than the
			// joiner itself, so the spread budget is not wasted on a
			// self-delivery.
			dst := n.cv.randomExcluding(n.cfg.Rand, m.Subject)
			if dst.IsNone() {
				continue
			}
			fwd := n.newMsg()
			fwd.Type, fwd.Subject, fwd.Weight = MsgJoin, m.Subject, w
			n.send(dst, fwd)
		}
	}
}

// --- Coarse-view maintenance and discovery (Figure 2) ----------------

// rebootstrapStarvation is the number of coarse-protocol periods a
// node waits without any incoming coarse-view contact before
// re-bootstrapping. A node with indegree d receives an expected
// 2·d/cvs probes or fetches per period, so a healthy node (d ≈ cvs)
// goes 8 periods silent with probability ≈ (1 - 1/cvs)^(2·cvs·8)
// ≈ e^-16; a node that HAS coalesced out of every coarse view stays
// silent forever. False positives are harmless — the walk is the
// join protocol, which the receiving side already dedupes.
const rebootstrapStarvation = 8

// Tick runs one protocol period of the coarse-membership and
// monitor-discovery sub-protocol. The owner invokes it once every
// Period while the node is alive.
func (n *Node) Tick(now time.Time) {
	if !n.alive {
		return
	}
	// 0. Self-repair (not in the paper; see DESIGN.md): under STAT
	// nothing ever re-inserts a node into other nodes' coarse views,
	// so an emptied coarse view (outdegree 0) or a starved indegree is
	// an absorbing state that excludes the node from all future
	// discovery sweeps. Re-enter the overlay with a JOIN-style random
	// walk through any contact we still know.
	if n.cv.size() == 0 || now.Sub(n.lastCoarseContact) >= rebootstrapStarvation*n.cfg.Period {
		n.rebootstrap(now)
	}
	// 1. Resolve last round's liveness probe: an unresponsive node is
	// removed from the coarse view.
	if !n.cvPingTarget.IsNone() {
		n.cv.remove(n.cvPingTarget)
		n.cvPingTarget = ids.None
	}
	// 2. Probe one random coarse-view member.
	if z := n.cv.random(n.cfg.Rand); !z.IsNone() {
		n.cvPingTarget = z
		n.cvPingSeq = n.nextSeq()
		ping := n.newMsg()
		ping.Type, ping.Seq = MsgPing, n.cvPingSeq
		n.send(z, ping)
	}
	// 3. Fetch the coarse view of one random member; discovery and
	// reshuffle happen when the response arrives.
	if w := n.cv.random(n.cfg.Rand); !w.IsNone() {
		fetch := n.newMsg()
		fetch.Type, fetch.Seq = MsgCVFetch, n.nextSeq()
		n.send(w, fetch)
	}
	// 4. PR2: if nobody has monitoring-pinged us for two protocol
	// periods, force ourselves back into our members' coarse views.
	// The membership is copied into sweep scratch first — sends must
	// not iterate the live view, and the sweep buffers are free here.
	if n.cfg.PR2 && now.Sub(n.lastMonPingRecv) >= 2*n.cfg.Period {
		sc := n.sweepScratch()
		sc.a = n.cv.appendTo(sc.a[:0])
		for _, member := range sc.a {
			pr2 := n.newMsg()
			pr2.Type = MsgPR2
			n.send(member, pr2)
		}
		n.lastMonPingRecv = now // back off until the next 2 periods
	}
}

// rebootstrap re-enters the coarse overlay: a JOIN-style random walk
// with full weight plus a view fetch, through a random coarse-view
// member if any remain, else through a random known monitoring
// contact (TS then PS, in discovery order — map iteration would break
// determinism). A node that knows absolutely nobody stays quiet; it
// can only be recovered by the cluster-level bootstrap on rejoin.
func (n *Node) rebootstrap(now time.Time) {
	target := n.cv.random(n.cfg.Rand)
	if target.IsNone() {
		total := len(n.tsOrder) + len(n.psOrder)
		if total == 0 {
			return
		}
		if i := n.cfg.Rand.Intn(total); i < len(n.tsOrder) {
			target = n.tsOrder[i]
		} else {
			target = n.psOrder[i-len(n.tsOrder)]
		}
	}
	// Back off for another starvation window whether or not the walk
	// succeeds; its CV-RESP and the renewed indegree reset the clock
	// for real.
	n.lastCoarseContact = now
	join := n.newMsg()
	join.Type, join.Subject, join.Weight = MsgJoin, n.id, n.cfg.CVS
	n.send(target, join)
	fetch := n.newMsg()
	fetch.Type, fetch.Seq = MsgCVFetch, n.nextSeq()
	n.send(target, fetch)
	n.cv.add(target)
}

// resizeFalse returns s resized to n elements, all false, reusing its
// capacity when possible.
func resizeFalse(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// appendUniqueID appends id to dst unless it is None or already
// present (linear scan; sweep lists stay below ~100 entries).
func appendUniqueID(dst []ids.ID, id ids.ID) []ids.ID {
	if id.IsNone() {
		return dst
	}
	for _, e := range dst {
		if e == id {
			return dst
		}
	}
	return append(dst, id)
}

// handleCVResp performs the consistency-condition sweep over
// ({CV(x) ∪ {x,w}} × {CV(w) ∪ {x,w}}) in both orders, notifies
// matched pairs, and reshuffles the coarse view (Figure 2).
//
// The sweep is the simulation's hottest loop — Θ(cvs²) hash checks
// per node per period — so it runs over node-owned scratch buffers
// with precomputed cross-membership flags instead of allocating pair
// sets: an ordered pair whose mirror iteration will emit it is skipped
// by the flags, which dedupes exactly the a∩b overlap the previous
// per-pair map caught, at zero allocation.
func (n *Node) handleCVResp(w ids.ID, fetched []ids.ID, now time.Time) {
	// The sweep and the linear dedup below are quadratic in the list
	// length, and the wire layer accepts views up to 4096 entries —
	// a cheap CPU-amplification vector for forged CV-RESPs. Cap what
	// a peer can make us chew on at a bound no honest configuration
	// reaches: cvs = 4·N^(1/4) stays under 1024 until N ≈ 4·10^9,
	// even for peers running far larger N estimates than ours.
	const maxSweepFetched = 1024
	if len(fetched) > maxSweepFetched {
		fetched = fetched[:maxSweepFetched]
	}
	// Build the two deduplicated sweep lists in reusable scratch.
	sc := n.sweepScratch()
	a := n.cv.appendTo(sc.a[:0])
	a = appendUniqueID(a, n.id)
	a = appendUniqueID(a, w)
	b := sc.b[:0]
	for _, id := range fetched {
		b = appendUniqueID(b, id)
	}
	b = appendUniqueID(b, n.id)
	b = appendUniqueID(b, w)
	sc.a, sc.b = a, b

	// Cross-membership flags: aInB[i] ⇔ a[i] ∈ b, bInA[j] ⇔ b[j] ∈ a.
	aInB := resizeFalse(sc.aInB, len(a))
	bInA := resizeFalse(sc.bInA, len(b))
	for i, u := range a {
		for j, v := range b {
			if u == v {
				aInB[i] = true
				bInA[j] = true
			}
		}
	}
	sc.aInB, sc.bInA = aInB, bInA

	// The pair loop calls Related directly (no per-pair closure): at
	// Θ(cvs²) pairs per response this is the simulation's hot loop.
	scheme := n.cfg.Scheme
	checks := uint64(0)
	for i, u := range a {
		for j, v := range b {
			if u == v {
				continue
			}
			checks++
			if scheme.Related(u, v) {
				n.notifyMatch(u, v, now)
			}
			// The reverse pair (v, u) is also generated — as a forward
			// pair — by the mirrored iteration (v from a, u from b)
			// exactly when v ∈ a and u ∈ b; emit it here only when
			// that iteration does not exist.
			if !(bInA[j] && aInB[i]) {
				checks++
				if scheme.Related(v, u) {
					n.notifyMatch(v, u, now)
				}
			}
		}
	}
	n.hashChecks += checks
	if n.cfg.DisableReshuffle {
		n.cv.add(w) // only grow into free space; never re-randomize
		return
	}
	n.cv.reshuffle(fetched, w, n.id, n.cfg.Rand, &sc.union)
}

// notifyMatch handles a sweep hit: u ∈ PS(v). Tell u (it gains a
// target) and v (a monitor); when the discoverer is one of the pair,
// the paper's "inform both" is a local operation.
func (n *Node) notifyMatch(u, v ids.ID, now time.Time) {
	for _, dst := range [2]ids.ID{u, v} {
		if dst == n.id {
			n.handleNotify(u, v, now)
		} else {
			notify := n.newMsg()
			notify.Type, notify.U, notify.V = MsgNotify, u, v
			n.send(dst, notify)
		}
	}
}

// handleNotify verifies and applies a NOTIFY(u, v) at this node
// (Section 3.3): the consistency condition is re-checked, so forged
// notifications are harmless.
func (n *Node) handleNotify(u, v ids.ID, now time.Time) {
	if u.IsNone() || v.IsNone() {
		return // a forged pair naming nobody is meaningless
	}
	switch n.id {
	case v:
		if _, known := n.psIdx.get(u); known {
			return
		}
		n.hashChecks++
		if !n.cfg.Scheme.Related(u, v) {
			return
		}
		n.psIdx.put(u, uint32(len(n.psOrder)))
		n.psOrder = appendChunked(n.psOrder, u)
		since := now.Sub(n.bornAt)
		n.psDiscoveries = appendChunked(n.psDiscoveries, since)
	case u:
		if _, known := n.tsIdx.get(v); known {
			return
		}
		n.hashChecks++
		if !n.cfg.Scheme.Related(u, v) {
			return
		}
		slot := n.targets.alloc()
		n.targets.at(slot).init(v, n.cfg.HistoryStyle, now)
		n.tsIdx.put(v, slot)
		n.tsOrder = appendChunked(n.tsOrder, v)
		n.tsSlots = appendChunked(n.tsSlots, slot)
	}
}

// --- Introspection ---------------------------------------------------

// PS returns the node's current pinging set (its monitors).
func (n *Node) PS() []ids.ID {
	out := make([]ids.ID, len(n.psOrder))
	copy(out, n.psOrder)
	ids.Sort(out)
	return out
}

// TS returns the node's current target set (the nodes it monitors).
func (n *Node) TS() []ids.ID {
	out := make([]ids.ID, len(n.tsOrder))
	copy(out, n.tsOrder)
	ids.Sort(out)
	return out
}

// CV returns the node's current coarse view.
func (n *Node) CV() []ids.ID { return n.cv.snapshot() }

// MemoryEntries is the paper's memory metric |CV|+|PS|+|TS|.
func (n *Node) MemoryEntries() int { return n.cv.size() + len(n.psOrder) + len(n.tsOrder) }

// HashChecks returns how many consistency-condition evaluations the
// node has performed (the computation metric C).
func (n *Node) HashChecks() uint64 { return n.hashChecks }

// DiscoveryTimes returns, for each PS member in discovery order, the
// elapsed time from the node's birth to that discovery.
func (n *Node) DiscoveryTimes() []time.Duration {
	out := make([]time.Duration, len(n.psDiscoveries))
	copy(out, n.psDiscoveries)
	return out
}

// BornAt returns the node's birth time (zero if never joined).
func (n *Node) BornAt() time.Time { return n.bornAt }
