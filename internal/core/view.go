package core

import (
	"math/rand"

	"avmon/internal/ids"
)

// view is the coarse view CV(x): a bounded random subset of other
// nodes with uniform random pick. Membership is a flat slice with
// linear search: cvs = 4·N^(1/4) stays below ~100 even at N = 10^6,
// where a scan of a contiguous ID array beats a map lookup — and
// dropping the map halves the per-node footprint that dominated
// large-N runs (a 71-entry map costs ~3 KB/node ≈ 300 MB at 10^5).
type view struct {
	max   int
	items []ids.ID
}

func newView(max int) *view {
	return &view{max: max}
}

func (v *view) size() int { return len(v.items) }

// indexOf returns id's position, or -1.
func (v *view) indexOf(id ids.ID) int {
	for i, e := range v.items {
		if e == id {
			return i
		}
	}
	return -1
}

func (v *view) contains(id ids.ID) bool { return v.indexOf(id) >= 0 }

// add inserts id if absent and below capacity; it reports whether the
// view changed.
func (v *view) add(id ids.ID) bool {
	if id.IsNone() || len(v.items) >= v.max || v.contains(id) {
		return false
	}
	v.items = append(v.items, id)
	return true
}

// addEvict inserts id, evicting a uniformly random entry if the view
// is full (used by PR2). It reports whether id is now present.
func (v *view) addEvict(id ids.ID, rng *rand.Rand) bool {
	if id.IsNone() || v.contains(id) {
		return false
	}
	if len(v.items) >= v.max && len(v.items) > 0 {
		v.removeAt(rng.Intn(len(v.items)))
	}
	return v.add(id)
}

func (v *view) remove(id ids.ID) bool {
	i := v.indexOf(id)
	if i < 0 {
		return false
	}
	v.removeAt(i)
	return true
}

func (v *view) removeAt(i int) {
	last := len(v.items) - 1
	v.items[i] = v.items[last]
	v.items = v.items[:last]
}

// random returns a uniformly random member, or None if empty.
func (v *view) random(rng *rand.Rand) ids.ID {
	if len(v.items) == 0 {
		return ids.None
	}
	return v.items[rng.Intn(len(v.items))]
}

// randomExcluding returns a uniformly random member other than
// exclude, or None if no such member exists.
func (v *view) randomExcluding(rng *rand.Rand, exclude ids.ID) ids.ID {
	n := len(v.items)
	if n == 0 {
		return ids.None
	}
	if i := v.indexOf(exclude); i >= 0 {
		if n == 1 {
			return ids.None
		}
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		return v.items[j]
	}
	return v.items[rng.Intn(n)]
}

// snapshot returns a copy of the membership.
func (v *view) snapshot() []ids.ID {
	out := make([]ids.ID, len(v.items))
	copy(out, v.items)
	return out
}

// appendTo appends the membership to dst and returns it; an
// allocation-free snapshot for hot paths that own a scratch buffer.
func (v *view) appendTo(dst []ids.ID) []ids.ID {
	return append(dst, v.items...)
}

func (v *view) clear() { v.items = v.items[:0] }

// appendUniqueNonSelf appends id to dst unless it is None, self, or
// already present (linear scan; union lists stay below ~2·cvs).
func appendUniqueNonSelf(dst []ids.ID, id, self ids.ID) []ids.ID {
	if id.IsNone() || id == self {
		return dst
	}
	for _, e := range dst {
		if e == id {
			return dst
		}
	}
	return append(dst, id)
}

// reshuffle replaces the view with up to max random entries drawn from
// the union of the current view, the fetched view, and {w}, excluding
// self (Figure 2, last two lines). The union is deduplicated with
// linear scans — both inputs are small and (by invariant) internally
// unique, so only cross-membership needs checking. It is built in
// *scratch (grown as needed, capacity retained across calls) so the
// per-period reshuffle allocates nothing at steady state.
func (v *view) reshuffle(fetched []ids.ID, w, self ids.ID, rng *rand.Rand, scratch *[]ids.ID) {
	union := (*scratch)[:0]
	for _, id := range v.items {
		union = appendUniqueNonSelf(union, id, self)
	}
	for _, id := range fetched {
		union = appendUniqueNonSelf(union, id, self)
	}
	union = appendUniqueNonSelf(union, w, self)
	*scratch = union
	// Partial Fisher-Yates: choose max entries uniformly at random.
	k := v.max
	if k > len(union) {
		k = len(union)
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(union)-i)
		union[i], union[j] = union[j], union[i]
	}
	v.clear()
	for _, id := range union[:k] {
		v.add(id)
	}
}
