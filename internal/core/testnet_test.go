package core

import (
	"math/rand"
	"testing"
	"time"

	"avmon/internal/hashing"
	"avmon/internal/ids"
)

// fakeNet is a zero-latency in-memory transport for unit tests. Sends
// enqueue; flush delivers (including cascades) in FIFO order. Only
// alive destinations receive.
type fakeNet struct {
	t     *testing.T
	nodes map[ids.ID]*Node
	queue []envelope
	now   time.Time
	sent  map[MsgType]int
}

type envelope struct {
	from, to ids.ID
	msg      *Message
}

func newFakeNet(t *testing.T) *fakeNet {
	return &fakeNet{
		t:     t,
		nodes: make(map[ids.ID]*Node),
		now:   time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC),
		sent:  make(map[MsgType]int),
	}
}

type fakeTransport struct {
	net  *fakeNet
	self ids.ID
}

func (f *fakeTransport) Send(to ids.ID, m *Message) {
	f.net.sent[m.Type]++
	f.net.queue = append(f.net.queue, envelope{from: f.self, to: to, msg: m})
}

// addNode creates a node wired to the fake network.
func (fn *fakeNet) addNode(i int, scheme SelectionScheme, mutate func(*Config)) *Node {
	id := ids.Sim(i)
	cfg := Config{
		ID:     id,
		Scheme: scheme,
		Rand:   rand.New(rand.NewSource(int64(i) + 1)),
		CVS:    8,
	}
	cfg.Transport = &fakeTransport{net: fn, self: id}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := NewNode(cfg)
	if err != nil {
		fn.t.Fatalf("NewNode: %v", err)
	}
	fn.nodes[id] = n
	return n
}

// flush delivers queued messages (and any cascades) until quiescent.
func (fn *fakeNet) flush() {
	for len(fn.queue) > 0 {
		env := fn.queue[0]
		fn.queue = fn.queue[1:]
		dst, ok := fn.nodes[env.to]
		if !ok || !dst.Alive() {
			continue
		}
		dst.Handle(env.from, env.msg, fn.now)
	}
}

// advance moves fake time forward and ticks every alive node once per
// elapsed period, flushing between rounds.
func (fn *fakeNet) advance(periods int, period time.Duration) {
	for i := 0; i < periods; i++ {
		fn.now = fn.now.Add(period)
		for _, n := range fn.nodes {
			n.Tick(fn.now)
		}
		fn.flush()
		for _, n := range fn.nodes {
			n.MonitorTick(fn.now)
		}
		fn.flush()
	}
}

func testScheme(t *testing.T, k, n int) SelectionScheme {
	t.Helper()
	sel, err := hashing.NewSelector(hashing.FastHasher{}, k, n)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

// allRelated is a degenerate scheme where everyone monitors everyone;
// handy for making discovery deterministic in unit tests.
type allRelated struct{}

func (allRelated) Related(y, x ids.ID) bool { return y != x }
func (allRelated) K() int                   { return 1 << 20 }

// noneRelated is the opposite degenerate scheme.
type noneRelated struct{}

func (noneRelated) Related(y, x ids.ID) bool { return false }
func (noneRelated) K() int                   { return 0 }
