// Package core implements the AVMON protocol: the joining
// sub-protocol (paper Figure 1), the coarse-view maintenance and
// monitor-discovery sub-protocol (Figure 2), the monitoring layer with
// the forgetful-pinging and PR2 optimizations (Sections 3.3 and 5.4),
// and verifiable monitor reporting ("l out of K", Section 3.3).
//
// A Node is transport- and clock-agnostic: it reacts to Handle,
// Tick, and MonitorTick calls and emits messages through a Transport.
// The same implementation runs in the discrete-event simulator and on
// a real UDP network.
package core

import (
	"avmon/internal/ids"
)

// MsgType enumerates AVMON wire messages.
type MsgType uint8

const (
	// MsgJoin carries a (re-)joining node's spanning-tree JOIN
	// (Figure 1): Subject is the joiner, Weight the remaining spread
	// budget.
	MsgJoin MsgType = iota + 1
	// MsgPing is the coarse-view liveness probe of Figure 2.
	MsgPing
	// MsgPong answers MsgPing (echoes Seq).
	MsgPong
	// MsgCVFetch asks a peer for its coarse view.
	MsgCVFetch
	// MsgCVResp returns the peer's coarse view in View.
	MsgCVResp
	// MsgNotify informs nodes U and V that the pair (U, V) satisfies
	// the consistency condition, i.e. U ∈ PS(V).
	MsgNotify
	// MsgMonPing is an availability monitoring ping (Section 3.3);
	// distinct from MsgPing.
	MsgMonPing
	// MsgMonAck answers MsgMonPing (echoes Seq).
	MsgMonAck
	// MsgPR2 is the indegree-repair message of the STAT-PR2 variant
	// (Section 5.4): the sender asks the receiver to (re-)add it to
	// the receiver's coarse view.
	MsgPR2
	// MsgReportReq asks a node to report Count of its own monitors.
	MsgReportReq
	// MsgReportResp carries the reported monitors in View.
	MsgReportResp
	// MsgAvailReq asks a monitor for its availability estimate of
	// Subject.
	MsgAvailReq
	// MsgAvailResp carries the estimate in Avail (Known reports
	// whether the monitor actually tracks Subject).
	MsgAvailResp
	// MsgAvailBatchReq asks a monitor for its availability estimates
	// of every node in View — one socket round-trip for many subjects
	// (the batched query frontend).
	MsgAvailBatchReq
	// MsgAvailBatchResp answers MsgAvailBatchReq: View echoes the
	// requested subjects, Avails and Knowns are aligned with it.
	MsgAvailBatchResp
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgJoin:
		return "JOIN"
	case MsgPing:
		return "PING"
	case MsgPong:
		return "PONG"
	case MsgCVFetch:
		return "CV-FETCH"
	case MsgCVResp:
		return "CV-RESP"
	case MsgNotify:
		return "NOTIFY"
	case MsgMonPing:
		return "MON-PING"
	case MsgMonAck:
		return "MON-ACK"
	case MsgPR2:
		return "PR2"
	case MsgReportReq:
		return "REPORT-REQ"
	case MsgReportResp:
		return "REPORT-RESP"
	case MsgAvailReq:
		return "AVAIL-REQ"
	case MsgAvailResp:
		return "AVAIL-RESP"
	case MsgAvailBatchReq:
		return "AVAIL-BATCH-REQ"
	case MsgAvailBatchResp:
		return "AVAIL-BATCH-RESP"
	default:
		return "UNKNOWN"
	}
}

// Message is the single wire envelope for all AVMON traffic. Fields
// are populated per type; unused fields are zero.
type Message struct {
	Type    MsgType
	From    ids.ID   // sender (set by the sending node)
	Subject ids.ID   // JOIN joiner / AVAIL-REQ target
	Weight  int      // JOIN spread budget
	U, V    ids.ID   // NOTIFY pair: U ∈ PS(V)
	View    []ids.ID // CV-RESP, REPORT-RESP, and AVAIL-BATCH payloads
	Seq     uint64   // request/response matching
	Count   int      // REPORT-REQ: number of monitors requested
	Avail   float64  // AVAIL-RESP estimate
	Known   bool     // AVAIL-RESP: whether the responder monitors Subject

	// Nonce is the query-correlation nonce: REPORT-REQ, AVAIL-REQ, and
	// AVAIL-BATCH-REQ carry a caller-chosen nonce that the responder
	// echoes verbatim, so a querier can reject stale or forged
	// responses that do not match an in-flight request. Protocol
	// (non-query) messages leave it zero.
	Nonce uint64

	// Avails and Knowns are the AVAIL-BATCH-RESP payload: per-subject
	// estimates and tracking flags, aligned with View. They must have
	// equal length (the codec enforces this).
	Avails []float64
	Knowns []bool
}

// Reset zeroes the message for reuse, retaining the payload slices'
// capacity. Pools recycling envelopes (see Config.AcquireMessage) must
// call it before handing a message back out.
func (m *Message) Reset() {
	view, avails, knowns := m.View[:0], m.Avails[:0], m.Knowns[:0]
	*m = Message{}
	m.View, m.Avails, m.Knowns = view, avails, knowns
}

// Byte-size model used for bandwidth accounting. The paper charges
// 8 bytes per coarse-view entry and per monitoring ping (Section 5.1).
const (
	headerBytes = 8 // type + seq + sender, the paper's per-message floor
	entryBytes  = 8 // per ids.ID carried in a payload
)

// WireSize returns the number of bytes this message occupies on the
// wire under the paper's accounting model.
func (m *Message) WireSize() int {
	switch m.Type {
	case MsgJoin:
		return headerBytes + entryBytes + 2 // subject + 2-byte weight
	case MsgNotify:
		return headerBytes + 2*entryBytes
	case MsgCVResp, MsgReportResp:
		return headerBytes + entryBytes*len(m.View)
	case MsgAvailReq:
		return headerBytes + entryBytes
	case MsgAvailResp:
		return headerBytes + entryBytes + 8 // subject + float64 estimate
	case MsgAvailBatchReq:
		return headerBytes + entryBytes*len(m.View)
	case MsgAvailBatchResp:
		// Subjects plus an 8-byte estimate (and flag) per entry.
		return headerBytes + (entryBytes+8)*len(m.View)
	default:
		// PING, PONG, CV-FETCH, MON-PING, MON-ACK, PR2, REPORT-REQ.
		return headerBytes
	}
}

// Transport delivers messages to peers. Implementations must not
// block; delivery is best-effort (the system model only guarantees
// delivery between currently-alive nodes).
type Transport interface {
	Send(to ids.ID, m *Message)
}

// SelectionScheme is the pluggable, consistent, verifiable monitor
// selection relation of Section 3.2. Related(y, x) reports y ∈ PS(x).
// K is the expected pinging-set size, used only for sizing decisions.
//
// AVMON's discovery protocol works with any implementation; the
// paper's hash-based scheme is hashing.Selector.
type SelectionScheme interface {
	Related(y, x ids.ID) bool
	K() int
}
