package core

import (
	"fmt"

	"avmon/internal/ids"
)

// ReportMonitors returns up to count of this node's monitors, for the
// "l out of K" reporting policy (Section 3.3): when another node asks
// x for its monitors, x must report at least l of its PS(x), and
// cannot lie because the requester verifies each one against the
// consistency condition (see VerifyReport).
//
// count ≤ 0 means "all known monitors". Selection among more than
// count monitors is random, spreading query load over PS(x).
func (n *Node) ReportMonitors(count int) []ids.ID {
	all := n.PS()
	if count <= 0 || count >= len(all) {
		return all
	}
	n.cfg.Rand.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:count]
}

// ReportError explains why a reported monitor list failed
// verification.
type ReportError struct {
	// Subject is the node whose monitors were being verified.
	Subject ids.ID
	// Bogus lists reported monitors that fail the consistency
	// condition (fabricated, e.g. colluders), including duplicate
	// entries used to pad the report toward the l minimum.
	Bogus []ids.ID
	// Short is set when fewer than the required minimum verified.
	Short bool
	// Verified counts the reported monitors that passed.
	Verified int
	// Required is the minimum l demanded by the caller.
	Required int
}

// Error implements the error interface.
func (e *ReportError) Error() string {
	if len(e.Bogus) > 0 {
		return fmt.Sprintf("core: report for %v contains %d unverifiable monitor(s): %v",
			e.Subject, len(e.Bogus), e.Bogus)
	}
	return fmt.Sprintf("core: report for %v verified only %d of required %d monitors",
		e.Subject, e.Verified, e.Required)
}

// VerifyReport checks a monitor list reported by (or on behalf of)
// subject against the selection scheme. It returns the verified
// monitors, or a *ReportError if any reported monitor is bogus or
// fewer than minimum verify. This is the verifiability property in
// action: a selfish node cannot advertise colluders as its monitors
// because every third party can recompute the condition. A duplicated
// monitor is bogus too — repeating one real monitor must not count
// toward the l minimum.
func VerifyReport(scheme SelectionScheme, subject ids.ID, reported []ids.ID, minimum int) ([]ids.ID, error) {
	verified := make([]ids.ID, 0, len(reported))
	var bogus []ids.ID
	for i, m := range reported {
		dup := false
		for _, prev := range reported[:i] {
			if prev == m {
				dup = true
				break
			}
		}
		if dup || m == subject || m.IsNone() || !scheme.Related(m, subject) {
			bogus = append(bogus, m)
			continue
		}
		verified = append(verified, m)
	}
	if len(bogus) > 0 || len(verified) < minimum {
		return verified, &ReportError{
			Subject:  subject,
			Bogus:    bogus,
			Short:    len(verified) < minimum,
			Verified: len(verified),
			Required: minimum,
		}
	}
	return verified, nil
}

// QueryReport sends a REPORT-REQ for count monitors to the subject
// node, correlated by nonce (echoed in the REPORT-RESP). The response
// arrives via the handler registered with SetResponseHandler; the
// caller then runs VerifyReport on it.
func (n *Node) QueryReport(subject ids.ID, count int, nonce uint64) uint64 {
	seq := n.nextSeq()
	n.send(subject, &Message{Type: MsgReportReq, Seq: seq, Nonce: nonce, Count: count})
	return seq
}

// QueryAvailability asks a (verified) monitor for its availability
// estimate of subject, correlated by nonce. The AVAIL-RESP arrives
// via the response handler.
func (n *Node) QueryAvailability(monitor, subject ids.ID, nonce uint64) uint64 {
	seq := n.nextSeq()
	n.send(monitor, &Message{Type: MsgAvailReq, Seq: seq, Nonce: nonce, Subject: subject})
	return seq
}

// QueryAvailabilityBatch asks a (verified) monitor for its estimates
// of every subject in subjects with a single AVAIL-BATCH-REQ,
// correlated by nonce. The AVAIL-BATCH-RESP arrives via the response
// handler with Avails/Knowns aligned to the echoed subject list.
func (n *Node) QueryAvailabilityBatch(monitor ids.ID, subjects []ids.ID, nonce uint64) uint64 {
	seq := n.nextSeq()
	n.send(monitor, &Message{
		Type: MsgAvailBatchReq, Seq: seq, Nonce: nonce,
		View: append([]ids.ID(nil), subjects...),
	})
	return seq
}
