package core

import (
	"time"

	"avmon/internal/availability"
	"avmon/internal/ids"
)

// target tracks one monitored node u ∈ TS(x): its availability
// history, outstanding probe, and the session bookkeeping that drives
// forgetful pinging (Section 3.3). Targets live by value in the node's
// targetArena (table.go); timestamps are UnixNano integers rather than
// time.Time so an entry is pointer-free under the default raw history
// (every simulated and real instant is far past 1970, so the zero
// value still means "never").
type target struct {
	id ids.ID

	// Availability history. The default "raw" style is inlined (store
	// stays nil) so the common configuration carries no per-target heap
	// object; windowed/aged styles hold their Store here.
	raw   availability.Raw
	store availability.Store

	discovered int64 // UnixNano

	awaitingSeq uint64 // outstanding MON-PING sequence (0 = none)
	awaitingAt  int64  // UnixNano

	lastAck      int64         // UnixNano
	sessionStart int64         // UnixNano: start of the currently observed session
	downSince    int64         // UnixNano
	lastSession  time.Duration // most recent completed observed session ts(u)

	// Activity counters are uint32 — a target accrues at most one ping
	// per period, so 2³² covers millennia of simulated time — and sit
	// with the flags at the tail of the struct so the whole entry packs
	// into 112 bytes (the arena holds ~K ≈ 21 of these per node at
	// N = 10⁶; every 8 bytes here is 160 MB there).
	pingsSent       uint32
	acks            uint32
	pingsSaved      uint32 // pings skipped by the forgetful optimization
	pingsSuppressed uint32 // pings withheld by a colluding monitor

	everAcked bool
	down      bool
}

// record folds one ping outcome into the target's history.
func (t *target) record(at time.Time, up bool) {
	if t.store != nil {
		t.store.Record(at, up)
		return
	}
	t.raw.Record(at, up)
}

// estimate returns the target's current availability estimate.
func (t *target) estimate(now time.Time) float64 {
	if t.store != nil {
		return t.store.Estimate(now)
	}
	return t.raw.Estimate(now)
}

// samples returns the number of recorded (retained) outcomes.
func (t *target) samples() int {
	if t.store != nil {
		return t.store.Samples()
	}
	return t.raw.Samples()
}

// MonitorTick runs one monitoring period TA: it resolves last round's
// outstanding probes as losses, then sends this round's monitoring
// pings, applying forgetful pinging when enabled. The owner invokes it
// once every MonitorPeriod while the node is alive.
func (n *Node) MonitorTick(now time.Time) {
	if !n.alive {
		return
	}
	nowNanos := now.UnixNano()
	for i := range n.tsOrder {
		t := n.targets.at(n.tsSlots[i])
		// 1. An unanswered probe from a previous round is a "down"
		// observation.
		if t.awaitingSeq != 0 {
			t.awaitingSeq = 0
			t.record(now, false)
			if !t.down {
				t.down = true
				t.downSince = t.awaitingAt
				if t.everAcked {
					t.lastSession = time.Duration(t.lastAck - t.sessionStart)
				}
			}
		}
		// 2. A colluding monitor drops its duty towards victims
		// entirely (the eclipse half of the collusion attack): no
		// probe, so no observation and no availability history.
		if n.cfg.SuppressMonPing != nil && n.cfg.SuppressMonPing(t.id) {
			t.pingsSuppressed++
			continue
		}
		// 3. Decide whether to probe this round.
		if n.cfg.Forgetful && t.down {
			downFor := time.Duration(nowNanos - t.downSince)
			if downFor > n.cfg.ForgetfulTau {
				ts := t.lastSession
				if ts <= 0 {
					// Never observed a full session: use one
					// monitoring period as the session floor.
					ts = n.cfg.MonitorPeriod
				}
				p := n.cfg.ForgetfulC * float64(ts) / float64(ts+downFor)
				if p > 1 {
					p = 1
				}
				if n.cfg.Rand.Float64() >= p {
					t.pingsSaved++
					continue
				}
			}
		}
		// 4. Probe.
		t.awaitingSeq = n.nextSeq()
		t.awaitingAt = nowNanos
		t.pingsSent++
		msg := n.newMsg()
		msg.Type = MsgMonPing
		msg.Seq = t.awaitingSeq
		n.send(t.id, msg)
	}
}

// handleMonAck folds a monitoring acknowledgment into the target's
// history.
func (n *Node) handleMonAck(from ids.ID, seq uint64, now time.Time) {
	slot, ok := n.tsIdx.get(from)
	if !ok {
		return
	}
	t := n.targets.at(slot)
	if seq != t.awaitingSeq {
		return
	}
	t.awaitingSeq = 0
	t.acks++
	t.record(now, true)
	if t.down || !t.everAcked {
		t.sessionStart = now.UnixNano()
		t.down = false
	}
	t.everAcked = true
	t.lastAck = now.UnixNano()
}

// EstimateOf returns this node's availability estimate for a node it
// monitors, and whether it monitors it at all. An overreporting
// monitor (Section 5.4) returns 100% for every target; a colluding
// monitor's ForgeReport hook gets the final word on what leaves the
// node.
func (n *Node) EstimateOf(u ids.ID) (float64, bool) {
	slot, ok := n.tsIdx.get(u)
	if !ok {
		return 0, false
	}
	t := n.targets.at(slot)
	est, known := 0.0, false
	switch {
	case n.cfg.Overreport:
		est, known = 1.0, true
	case t.samples() > 0:
		est, known = t.estimate(n.lastTickTime()), true
	}
	if n.cfg.ForgeReport != nil {
		return n.cfg.ForgeReport(u, est, known)
	}
	return est, known
}

// lastTickTime approximates "now" for estimate queries; windowed
// stores age relative to the most recent observation, for which the
// last ack or probe time is the best proxy the node has.
func (n *Node) lastTickTime() time.Time {
	var latest int64
	for _, slot := range n.tsSlots {
		t := n.targets.at(slot)
		if t.awaitingAt > latest {
			latest = t.awaitingAt
		}
		if t.lastAck > latest {
			latest = t.lastAck
		}
	}
	if latest == 0 {
		return time.Time{}
	}
	return time.Unix(0, latest)
}

// MonitoringStats summarizes the node's monitoring activity.
type MonitoringStats struct {
	Targets         int
	PingsSent       uint64
	Acks            uint64
	PingsSaved      uint64
	PingsSuppressed uint64
}

// MonitoringStats returns a snapshot of monitoring activity counters.
func (n *Node) MonitoringStats() MonitoringStats {
	var s MonitoringStats
	s.Targets = len(n.tsOrder)
	for _, slot := range n.tsSlots {
		t := n.targets.at(slot)
		s.PingsSent += uint64(t.pingsSent)
		s.Acks += uint64(t.acks)
		s.PingsSaved += uint64(t.pingsSaved)
		s.PingsSuppressed += uint64(t.pingsSuppressed)
	}
	return s
}
