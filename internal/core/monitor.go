package core

import (
	"time"

	"avmon/internal/availability"
	"avmon/internal/ids"
)

// target tracks one monitored node u ∈ TS(x): its availability
// history, outstanding probe, and the session bookkeeping that drives
// forgetful pinging (Section 3.3).
type target struct {
	id    ids.ID
	store availability.Store

	discovered time.Time

	awaitingSeq uint64 // outstanding MON-PING sequence (0 = none)
	awaitingAt  time.Time

	everAcked    bool
	lastAck      time.Time
	sessionStart time.Time     // start of the currently observed session
	lastSession  time.Duration // most recent completed observed session ts(u)
	down         bool
	downSince    time.Time

	pingsSent       uint64
	acks            uint64
	pingsSaved      uint64 // pings skipped by the forgetful optimization
	pingsSuppressed uint64 // pings withheld by a colluding monitor
}

func newTarget(id ids.ID, historyStyle string, now time.Time) *target {
	store, err := availability.NewStore(historyStyle)
	if err != nil {
		// Config validation accepts any non-empty style string;
		// fall back to the paper's estimator rather than dropping
		// the monitoring duty.
		store = availability.NewRaw()
	}
	return &target{id: id, store: store, discovered: now}
}

// MonitorTick runs one monitoring period TA: it resolves last round's
// outstanding probes as losses, then sends this round's monitoring
// pings, applying forgetful pinging when enabled. The owner invokes it
// once every MonitorPeriod while the node is alive.
func (n *Node) MonitorTick(now time.Time) {
	if !n.alive {
		return
	}
	for _, id := range n.tsOrder {
		t := n.ts[id]
		// 1. An unanswered probe from a previous round is a "down"
		// observation.
		if t.awaitingSeq != 0 {
			t.awaitingSeq = 0
			t.store.Record(now, false)
			if !t.down {
				t.down = true
				t.downSince = t.awaitingAt
				if t.everAcked {
					t.lastSession = t.lastAck.Sub(t.sessionStart)
				}
			}
		}
		// 2. A colluding monitor drops its duty towards victims
		// entirely (the eclipse half of the collusion attack): no
		// probe, so no observation and no availability history.
		if n.cfg.SuppressMonPing != nil && n.cfg.SuppressMonPing(t.id) {
			t.pingsSuppressed++
			continue
		}
		// 3. Decide whether to probe this round.
		if n.cfg.Forgetful && t.down {
			downFor := now.Sub(t.downSince)
			if downFor > n.cfg.ForgetfulTau {
				ts := t.lastSession
				if ts <= 0 {
					// Never observed a full session: use one
					// monitoring period as the session floor.
					ts = n.cfg.MonitorPeriod
				}
				p := n.cfg.ForgetfulC * float64(ts) / float64(ts+downFor)
				if p > 1 {
					p = 1
				}
				if n.cfg.Rand.Float64() >= p {
					t.pingsSaved++
					continue
				}
			}
		}
		// 4. Probe.
		t.awaitingSeq = n.nextSeq()
		t.awaitingAt = now
		t.pingsSent++
		n.send(t.id, &Message{Type: MsgMonPing, Seq: t.awaitingSeq})
	}
}

// handleMonAck folds a monitoring acknowledgment into the target's
// history.
func (n *Node) handleMonAck(from ids.ID, seq uint64, now time.Time) {
	t, ok := n.ts[from]
	if !ok || seq != t.awaitingSeq {
		return
	}
	t.awaitingSeq = 0
	t.acks++
	t.store.Record(now, true)
	if t.down || !t.everAcked {
		t.sessionStart = now
		t.down = false
	}
	t.everAcked = true
	t.lastAck = now
}

// EstimateOf returns this node's availability estimate for a node it
// monitors, and whether it monitors it at all. An overreporting
// monitor (Section 5.4) returns 100% for every target; a colluding
// monitor's ForgeReport hook gets the final word on what leaves the
// node.
func (n *Node) EstimateOf(u ids.ID) (float64, bool) {
	t, ok := n.ts[u]
	if !ok {
		return 0, false
	}
	est, known := 0.0, false
	switch {
	case n.cfg.Overreport:
		est, known = 1.0, true
	case t.store.Samples() > 0:
		est, known = t.store.Estimate(n.lastTickTime()), true
	}
	if n.cfg.ForgeReport != nil {
		return n.cfg.ForgeReport(u, est, known)
	}
	return est, known
}

// lastTickTime approximates "now" for estimate queries; windowed
// stores age relative to the most recent observation, for which the
// last ack or probe time is the best proxy the node has.
func (n *Node) lastTickTime() time.Time {
	var latest time.Time
	for _, t := range n.ts {
		if t.awaitingAt.After(latest) {
			latest = t.awaitingAt
		}
		if t.lastAck.After(latest) {
			latest = t.lastAck
		}
	}
	return latest
}

// MonitoringStats summarizes the node's monitoring activity.
type MonitoringStats struct {
	Targets         int
	PingsSent       uint64
	Acks            uint64
	PingsSaved      uint64
	PingsSuppressed uint64
}

// MonitoringStats returns a snapshot of monitoring activity counters.
func (n *Node) MonitoringStats() MonitoringStats {
	var s MonitoringStats
	s.Targets = len(n.ts)
	for _, t := range n.ts {
		s.PingsSent += t.pingsSent
		s.Acks += t.acks
		s.PingsSaved += t.pingsSaved
		s.PingsSuppressed += t.pingsSuppressed
	}
	return s
}
