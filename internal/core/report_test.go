package core

import (
	"errors"
	"testing"

	"avmon/internal/ids"
)

func TestReportMonitors(t *testing.T) {
	fn := newFakeNet(t)
	a := fn.addNode(1, allRelated{}, nil)
	a.Join(fn.now, ids.None)
	for i := 0; i < 6; i++ {
		peer := ids.Sim(10 + i)
		a.Handle(peer, &Message{Type: MsgNotify, U: peer, V: a.ID()}, fn.now)
	}
	if got := a.ReportMonitors(0); len(got) != 6 {
		t.Errorf("ReportMonitors(0) returned %d, want all 6", len(got))
	}
	if got := a.ReportMonitors(100); len(got) != 6 {
		t.Errorf("ReportMonitors(100) returned %d, want 6", len(got))
	}
	got := a.ReportMonitors(3)
	if len(got) != 3 {
		t.Fatalf("ReportMonitors(3) returned %d", len(got))
	}
	ps := make(map[ids.ID]bool)
	for _, id := range a.PS() {
		ps[id] = true
	}
	for _, id := range got {
		if !ps[id] {
			t.Errorf("reported non-monitor %v", id)
		}
	}
}

func TestVerifyReportAcceptsHonest(t *testing.T) {
	scheme := testScheme(t, 50, 200)
	subject := ids.Sim(999)
	var honest []ids.ID
	for i := 0; i < 200 && len(honest) < 5; i++ {
		if scheme.Related(ids.Sim(i), subject) {
			honest = append(honest, ids.Sim(i))
		}
	}
	if len(honest) < 3 {
		t.Fatal("test setup: not enough related nodes")
	}
	verified, err := VerifyReport(scheme, subject, honest, len(honest))
	if err != nil {
		t.Fatalf("honest report rejected: %v", err)
	}
	if len(verified) != len(honest) {
		t.Errorf("verified %d of %d", len(verified), len(honest))
	}
}

func TestVerifyReportRejectsColluders(t *testing.T) {
	scheme := testScheme(t, 5, 500)
	subject := ids.Sim(999)
	// Find one honest monitor and one definite non-monitor (colluder).
	var honest, colluder ids.ID
	for i := 0; i < 500; i++ {
		if scheme.Related(ids.Sim(i), subject) {
			if honest.IsNone() {
				honest = ids.Sim(i)
			}
		} else if colluder.IsNone() {
			colluder = ids.Sim(i)
		}
	}
	if honest.IsNone() || colluder.IsNone() {
		t.Fatal("test setup failed")
	}
	verified, err := VerifyReport(scheme, subject, []ids.ID{honest, colluder}, 1)
	var re *ReportError
	if !errors.As(err, &re) {
		t.Fatalf("colluder-containing report accepted (err=%v)", err)
	}
	if len(re.Bogus) != 1 || re.Bogus[0] != colluder {
		t.Errorf("Bogus = %v, want [%v]", re.Bogus, colluder)
	}
	if len(verified) != 1 || verified[0] != honest {
		t.Errorf("verified = %v, want the honest monitor only", verified)
	}
	if re.Error() == "" {
		t.Error("empty error string")
	}
}

func TestVerifyReportRejectsSelfAndNone(t *testing.T) {
	subject := ids.Sim(1)
	_, err := VerifyReport(allRelated{}, subject, []ids.ID{subject}, 0)
	if err == nil {
		t.Error("self-report accepted")
	}
	_, err = VerifyReport(allRelated{}, subject, []ids.ID{ids.None}, 0)
	if err == nil {
		t.Error("None monitor accepted")
	}
}

func TestVerifyReportShort(t *testing.T) {
	scheme := noneRelated{}
	_, err := VerifyReport(scheme, ids.Sim(1), nil, 2)
	var re *ReportError
	if !errors.As(err, &re) {
		t.Fatalf("short report accepted (err=%v)", err)
	}
	if !re.Short || re.Required != 2 || re.Verified != 0 {
		t.Errorf("ReportError = %+v", re)
	}
	if re.Error() == "" {
		t.Error("empty error string")
	}
}

func TestReportRequestRoundTrip(t *testing.T) {
	fn := newFakeNet(t)
	subject := fn.addNode(1, allRelated{}, nil)
	asker := fn.addNode(2, allRelated{}, nil)
	subject.Join(fn.now, ids.None)
	asker.Join(fn.now, ids.None)
	// Give the subject three monitors.
	for i := 0; i < 3; i++ {
		peer := ids.Sim(10 + i)
		subject.Handle(peer, &Message{Type: MsgNotify, U: peer, V: subject.ID()}, fn.now)
	}
	var gotReport []ids.ID
	var gotNonce uint64
	asker.SetResponseHandler(func(from ids.ID, m *Message) {
		if m.Type == MsgReportResp && from == subject.ID() {
			gotReport = m.View
			gotNonce = m.Nonce
		}
	})
	asker.QueryReport(subject.ID(), 2, 0xDEADBEEF)
	fn.flush()
	if len(gotReport) != 2 {
		t.Fatalf("received report of %d monitors, want 2", len(gotReport))
	}
	if gotNonce != 0xDEADBEEF {
		t.Errorf("REPORT-RESP nonce = %#x, want the request nonce echoed", gotNonce)
	}
	if _, err := VerifyReport(allRelated{}, subject.ID(), gotReport, 2); err != nil {
		t.Errorf("round-trip report failed verification: %v", err)
	}
}

func TestAvailabilityQueryRoundTrip(t *testing.T) {
	fn := newFakeNet(t)
	mon := fn.addNode(1, allRelated{}, nil)
	tgt := fn.addNode(2, allRelated{}, nil)
	asker := fn.addNode(3, allRelated{}, nil)
	for _, n := range []*Node{mon, tgt, asker} {
		n.Join(fn.now, ids.None)
	}
	mon.Handle(tgt.ID(), &Message{Type: MsgNotify, U: mon.ID(), V: tgt.ID()}, fn.now)
	fn.advance(4, DefaultMonitorPeriod)
	var resp *Message
	asker.SetResponseHandler(func(from ids.ID, m *Message) {
		if m.Type == MsgAvailResp {
			resp = m
		}
	})
	asker.QueryAvailability(mon.ID(), tgt.ID(), 42)
	fn.flush()
	if resp == nil {
		t.Fatal("no AVAIL-RESP received")
	}
	if !resp.Known || resp.Avail != 1 || resp.Subject != tgt.ID() {
		t.Errorf("resp = %+v, want known estimate 1.0 for target", resp)
	}
	if resp.Nonce != 42 {
		t.Errorf("AVAIL-RESP nonce = %d, want the request nonce echoed", resp.Nonce)
	}
	// Query about an unmonitored node.
	resp = nil
	asker.QueryAvailability(mon.ID(), ids.Sim(77), 43)
	fn.flush()
	if resp == nil || resp.Known {
		t.Errorf("unmonitored query resp = %+v, want Known=false", resp)
	}
}

func TestAvailabilityBatchQueryRoundTrip(t *testing.T) {
	fn := newFakeNet(t)
	mon := fn.addNode(1, allRelated{}, nil)
	tracked := fn.addNode(2, allRelated{}, nil)
	asker := fn.addNode(3, allRelated{}, nil)
	for _, n := range []*Node{mon, tracked, asker} {
		n.Join(fn.now, ids.None)
	}
	mon.Handle(tracked.ID(), &Message{Type: MsgNotify, U: mon.ID(), V: tracked.ID()}, fn.now)
	fn.advance(4, DefaultMonitorPeriod)
	var resp *Message
	asker.SetResponseHandler(func(from ids.ID, m *Message) {
		if m.Type == MsgAvailBatchResp {
			resp = m
		}
	})
	subjects := []ids.ID{tracked.ID(), ids.Sim(77)}
	asker.QueryAvailabilityBatch(mon.ID(), subjects, 7)
	fn.flush()
	if resp == nil {
		t.Fatal("no AVAIL-BATCH-RESP received")
	}
	if resp.Nonce != 7 {
		t.Errorf("batch resp nonce = %d, want 7", resp.Nonce)
	}
	if len(resp.View) != 2 || len(resp.Avails) != 2 || len(resp.Knowns) != 2 {
		t.Fatalf("batch resp shape = %d/%d/%d entries, want 2/2/2",
			len(resp.View), len(resp.Avails), len(resp.Knowns))
	}
	if resp.View[0] != tracked.ID() || !resp.Knowns[0] || resp.Avails[0] != 1 {
		t.Errorf("tracked entry = (%v, %v, %v), want known estimate 1.0",
			resp.View[0], resp.Avails[0], resp.Knowns[0])
	}
	if resp.Knowns[1] {
		t.Error("untracked subject reported as known")
	}
}

func TestVerifyReportRejectsDuplicates(t *testing.T) {
	subject := ids.Sim(1)
	honest := ids.Sim(2)
	// A selfish subject repeats one real monitor to fake l=3 coverage.
	verified, err := VerifyReport(allRelated{}, subject, []ids.ID{honest, honest, honest}, 3)
	var re *ReportError
	if !errors.As(err, &re) {
		t.Fatalf("duplicate-padded report accepted (err=%v)", err)
	}
	if len(verified) != 1 || verified[0] != honest {
		t.Errorf("verified = %v, want the single honest monitor", verified)
	}
	if len(re.Bogus) != 2 {
		t.Errorf("Bogus = %v, want the two duplicate entries", re.Bogus)
	}
}
