package core

import (
	"errors"
	"testing"

	"avmon/internal/ids"
)

func TestReportMonitors(t *testing.T) {
	fn := newFakeNet(t)
	a := fn.addNode(1, allRelated{}, nil)
	a.Join(fn.now, ids.None)
	for i := 0; i < 6; i++ {
		peer := ids.Sim(10 + i)
		a.Handle(peer, &Message{Type: MsgNotify, U: peer, V: a.ID()}, fn.now)
	}
	if got := a.ReportMonitors(0); len(got) != 6 {
		t.Errorf("ReportMonitors(0) returned %d, want all 6", len(got))
	}
	if got := a.ReportMonitors(100); len(got) != 6 {
		t.Errorf("ReportMonitors(100) returned %d, want 6", len(got))
	}
	got := a.ReportMonitors(3)
	if len(got) != 3 {
		t.Fatalf("ReportMonitors(3) returned %d", len(got))
	}
	ps := make(map[ids.ID]bool)
	for _, id := range a.PS() {
		ps[id] = true
	}
	for _, id := range got {
		if !ps[id] {
			t.Errorf("reported non-monitor %v", id)
		}
	}
}

func TestVerifyReportAcceptsHonest(t *testing.T) {
	scheme := testScheme(t, 50, 200)
	subject := ids.Sim(999)
	var honest []ids.ID
	for i := 0; i < 200 && len(honest) < 5; i++ {
		if scheme.Related(ids.Sim(i), subject) {
			honest = append(honest, ids.Sim(i))
		}
	}
	if len(honest) < 3 {
		t.Fatal("test setup: not enough related nodes")
	}
	verified, err := VerifyReport(scheme, subject, honest, len(honest))
	if err != nil {
		t.Fatalf("honest report rejected: %v", err)
	}
	if len(verified) != len(honest) {
		t.Errorf("verified %d of %d", len(verified), len(honest))
	}
}

func TestVerifyReportRejectsColluders(t *testing.T) {
	scheme := testScheme(t, 5, 500)
	subject := ids.Sim(999)
	// Find one honest monitor and one definite non-monitor (colluder).
	var honest, colluder ids.ID
	for i := 0; i < 500; i++ {
		if scheme.Related(ids.Sim(i), subject) {
			if honest.IsNone() {
				honest = ids.Sim(i)
			}
		} else if colluder.IsNone() {
			colluder = ids.Sim(i)
		}
	}
	if honest.IsNone() || colluder.IsNone() {
		t.Fatal("test setup failed")
	}
	verified, err := VerifyReport(scheme, subject, []ids.ID{honest, colluder}, 1)
	var re *ReportError
	if !errors.As(err, &re) {
		t.Fatalf("colluder-containing report accepted (err=%v)", err)
	}
	if len(re.Bogus) != 1 || re.Bogus[0] != colluder {
		t.Errorf("Bogus = %v, want [%v]", re.Bogus, colluder)
	}
	if len(verified) != 1 || verified[0] != honest {
		t.Errorf("verified = %v, want the honest monitor only", verified)
	}
	if re.Error() == "" {
		t.Error("empty error string")
	}
}

func TestVerifyReportRejectsSelfAndNone(t *testing.T) {
	subject := ids.Sim(1)
	_, err := VerifyReport(allRelated{}, subject, []ids.ID{subject}, 0)
	if err == nil {
		t.Error("self-report accepted")
	}
	_, err = VerifyReport(allRelated{}, subject, []ids.ID{ids.None}, 0)
	if err == nil {
		t.Error("None monitor accepted")
	}
}

func TestVerifyReportShort(t *testing.T) {
	scheme := noneRelated{}
	_, err := VerifyReport(scheme, ids.Sim(1), nil, 2)
	var re *ReportError
	if !errors.As(err, &re) {
		t.Fatalf("short report accepted (err=%v)", err)
	}
	if !re.Short || re.Required != 2 || re.Verified != 0 {
		t.Errorf("ReportError = %+v", re)
	}
	if re.Error() == "" {
		t.Error("empty error string")
	}
}

func TestReportRequestRoundTrip(t *testing.T) {
	fn := newFakeNet(t)
	subject := fn.addNode(1, allRelated{}, nil)
	asker := fn.addNode(2, allRelated{}, nil)
	subject.Join(fn.now, ids.None)
	asker.Join(fn.now, ids.None)
	// Give the subject three monitors.
	for i := 0; i < 3; i++ {
		peer := ids.Sim(10 + i)
		subject.Handle(peer, &Message{Type: MsgNotify, U: peer, V: subject.ID()}, fn.now)
	}
	var gotReport []ids.ID
	asker.SetResponseHandler(func(from ids.ID, m *Message) {
		if m.Type == MsgReportResp && from == subject.ID() {
			gotReport = m.View
		}
	})
	asker.QueryReport(subject.ID(), 2)
	fn.flush()
	if len(gotReport) != 2 {
		t.Fatalf("received report of %d monitors, want 2", len(gotReport))
	}
	if _, err := VerifyReport(allRelated{}, subject.ID(), gotReport, 2); err != nil {
		t.Errorf("round-trip report failed verification: %v", err)
	}
}

func TestAvailabilityQueryRoundTrip(t *testing.T) {
	fn := newFakeNet(t)
	mon := fn.addNode(1, allRelated{}, nil)
	tgt := fn.addNode(2, allRelated{}, nil)
	asker := fn.addNode(3, allRelated{}, nil)
	for _, n := range []*Node{mon, tgt, asker} {
		n.Join(fn.now, ids.None)
	}
	mon.Handle(tgt.ID(), &Message{Type: MsgNotify, U: mon.ID(), V: tgt.ID()}, fn.now)
	fn.advance(4, DefaultMonitorPeriod)
	var resp *Message
	asker.SetResponseHandler(func(from ids.ID, m *Message) {
		if m.Type == MsgAvailResp {
			resp = m
		}
	})
	asker.QueryAvailability(mon.ID(), tgt.ID())
	fn.flush()
	if resp == nil {
		t.Fatal("no AVAIL-RESP received")
	}
	if !resp.Known || resp.Avail != 1 || resp.Subject != tgt.ID() {
		t.Errorf("resp = %+v, want known estimate 1.0 for target", resp)
	}
	// Query about an unmonitored node.
	resp = nil
	asker.QueryAvailability(mon.ID(), ids.Sim(77))
	fn.flush()
	if resp == nil || resp.Known {
		t.Errorf("unmonitored query resp = %+v, want Known=false", resp)
	}
}
