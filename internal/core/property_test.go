package core

import (
	"testing"
	"testing/quick"

	"avmon/internal/ids"
)

// TestJoinWeightSplitProperty checks the Figure 1 weight arithmetic:
// after decrementing, the two forwarded halves ⌊c/2⌋ and ⌈c/2⌉ always
// sum to c, so the total spread budget is conserved.
func TestJoinWeightSplitProperty(t *testing.T) {
	f := func(w uint8) bool {
		c := int(w)
		if c <= 0 {
			return true
		}
		c--
		left := c / 2
		right := c - left
		return left+right == c && left >= 0 && right >= 0 && right-left <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestViewRandomExcludingProperty: randomExcluding never returns the
// excluded member, never invents members, and is None only when the
// view has no other member.
func TestViewRandomExcludingProperty(t *testing.T) {
	fn := newFakeNet(t)
	nd := fn.addNode(0, noneRelated{}, nil)
	f := func(size, exclIdx uint8, draws uint8) bool {
		v := newView(16)
		n := int(size % 17)
		for i := 0; i < n; i++ {
			v.add(ids.Sim(i + 1))
		}
		var excl ids.ID
		if n > 0 && int(exclIdx)%2 == 0 {
			excl = ids.Sim(int(exclIdx)%n + 1) // a member
		} else {
			excl = ids.Sim(999) // not a member
		}
		for d := 0; d < int(draws%8)+1; d++ {
			got := v.randomExcluding(nd.cfg.Rand, excl)
			if got == excl {
				return false
			}
			if got.IsNone() {
				// Legal only if the view is empty or contains only excl.
				if n > 1 || (n == 1 && !v.contains(excl)) {
					return false
				}
				continue
			}
			if !v.contains(got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestNotifyIdempotenceProperty: delivering the same valid NOTIFY any
// number of times yields exactly one PS entry and one discovery record.
func TestNotifyIdempotenceProperty(t *testing.T) {
	f := func(repeats uint8, peerIdx uint16) bool {
		fn := newFakeNet(t)
		a := fn.addNode(1, allRelated{}, nil)
		a.Join(fn.now, ids.None)
		peer := ids.Sim(int(peerIdx) + 2)
		for r := 0; r < int(repeats%16)+1; r++ {
			a.Handle(peer, &Message{Type: MsgNotify, U: peer, V: a.ID()}, fn.now)
		}
		return len(a.PS()) == 1 && len(a.DiscoveryTimes()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestMemoryAccountingProperty: MemoryEntries always equals
// |CV| + |PS| + |TS| no matter what mix of events the node has seen.
func TestMemoryAccountingProperty(t *testing.T) {
	f := func(events []uint16) bool {
		fn := newFakeNet(t)
		a := fn.addNode(1, allRelated{}, nil)
		a.Join(fn.now, ids.None)
		for _, e := range events {
			peer := ids.Sim(int(e%64) + 2)
			switch e % 3 {
			case 0:
				a.cv.add(peer)
			case 1:
				a.Handle(peer, &Message{Type: MsgNotify, U: peer, V: a.ID()}, fn.now)
			case 2:
				a.Handle(peer, &Message{Type: MsgNotify, U: a.ID(), V: peer}, fn.now)
			}
		}
		return a.MemoryEntries() == len(a.CV())+len(a.PS())+len(a.TS())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
