package core

import (
	"math/rand"
	"testing"
	"time"

	"avmon/internal/ids"
)

// recyclingTransport models the cluster's steady-state message flow
// for allocation gates: every sent envelope is immediately reset and
// returned to the pool the node acquires from, exactly like the
// simulator's receiver-side recycling.
type recyclingTransport struct {
	pool []*Message
	sent int
}

func (r *recyclingTransport) Send(to ids.ID, m *Message) {
	r.sent++
	m.Reset()
	r.pool = append(r.pool, m)
}

func (r *recyclingTransport) acquire() *Message {
	if n := len(r.pool); n > 0 {
		m := r.pool[n-1]
		r.pool = r.pool[:n-1]
		return m
	}
	return &Message{}
}

// allocNode builds a node wired for pooled, steady-state operation.
func allocNode(t *testing.T, scheme SelectionScheme) (*Node, *recyclingTransport, time.Time) {
	t.Helper()
	rt := &recyclingTransport{}
	n, err := NewNode(Config{
		ID:             ids.Sim(0),
		Scheme:         scheme,
		Transport:      rt,
		Rand:           rand.New(rand.NewSource(9)),
		CVS:            8,
		HistoryStyle:   "raw",
		AcquireMessage: rt.acquire,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC)
	n.Join(now, ids.None)
	return n, rt, now
}

// TestZeroAllocMonitorTick gates the memory diet's core claim: a
// monitoring round over an established target set — probe resolution,
// raw history recording, pooled MON-PING sends — performs zero heap
// allocations per tick.
func TestZeroAllocMonitorTick(t *testing.T) {
	n, rt, now := allocNode(t, allRelated{})
	for i := 1; i <= 24; i++ {
		n.handleNotify(n.id, ids.Sim(i), now) // u = self: target added
	}
	if got := len(n.tsOrder); got != 24 {
		t.Fatalf("targets = %d, want 24", got)
	}
	// Warm up: grow the pool and let targets reach the down/re-probe
	// steady state (no acks ever arrive here).
	for i := 0; i < 3; i++ {
		now = now.Add(time.Minute)
		n.MonitorTick(now)
	}
	sentBefore := rt.sent
	allocs := testing.AllocsPerRun(100, func() {
		now = now.Add(time.Minute)
		n.MonitorTick(now)
	})
	if allocs != 0 {
		t.Errorf("MonitorTick allocates %v objects per tick, want 0", allocs)
	}
	if rt.sent == sentBefore {
		t.Fatal("gate measured nothing: no probes were sent")
	}
}

// TestZeroAllocMonitorAck extends the gate over the ack path: a full
// probe/ack round trip (MON-PING out, MON-ACK folded into the raw
// history) stays allocation-free.
func TestZeroAllocMonitorAck(t *testing.T) {
	n, _, now := allocNode(t, allRelated{})
	for i := 1; i <= 8; i++ {
		n.handleNotify(n.id, ids.Sim(i), now)
	}
	ack := &Message{Type: MsgMonAck}
	round := func() {
		now = now.Add(time.Minute)
		n.MonitorTick(now)
		for i := 1; i <= 8; i++ {
			id := ids.Sim(i)
			slot, ok := n.tsIdx.get(id)
			if !ok {
				t.Fatal("target vanished")
			}
			ack.Seq = n.targets.at(slot).awaitingSeq
			n.Handle(id, ack, now)
		}
	}
	round() // warm up
	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Errorf("probe/ack round allocates %v objects, want 0", allocs)
	}
}

// TestZeroAllocCVRespSweep gates the simulation's hottest loop: the
// Θ(cvs²) consistency-condition sweep plus the coarse-view reshuffle
// run entirely in scratch at steady state.
func TestZeroAllocCVRespSweep(t *testing.T) {
	n, _, now := allocNode(t, noneRelated{})
	for i := 1; i <= 8; i++ {
		n.cv.add(ids.Sim(i))
	}
	w := ids.Sim(50)
	msg := &Message{Type: MsgCVResp}
	for i := 60; i < 70; i++ {
		msg.View = append(msg.View, ids.Sim(i))
	}
	n.Handle(w, msg, now) // warm up: grow the sweep scratch
	checksBefore := n.hashChecks
	allocs := testing.AllocsPerRun(100, func() {
		n.Handle(w, msg, now)
	})
	if allocs != 0 {
		t.Errorf("CV-RESP sweep allocates %v objects per response, want 0", allocs)
	}
	if n.hashChecks == checksBefore {
		t.Fatal("gate measured nothing: no hash checks ran")
	}
}
