package observer

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"avmon/internal/ids"
)

// fakeNode is a scriptable scrape surface.
type fakeNode struct {
	id ids.ID

	mu     sync.Mutex
	ps     int
	checks uint64
}

func (f *fakeNode) ID() ids.ID { return f.id }

func (f *fakeNode) Stats() (int, int, int, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ps, 2, 3, f.checks
}

func (f *fakeNode) setPS(n int) {
	f.mu.Lock()
	f.ps = n
	f.mu.Unlock()
}

type fakeTraffic struct{ datagrams, bytes uint64 }

func (f *fakeTraffic) DatagramsSent() uint64 { return atomic.LoadUint64(&f.datagrams) }
func (f *fakeTraffic) WireBytesSent() uint64 { return atomic.LoadUint64(&f.bytes) }

func TestObserverScrapeAndDiscovery(t *testing.T) {
	n := &fakeNode{id: ids.Sim(1), checks: 42}
	tr := &fakeTraffic{datagrams: 5, bytes: 120}
	o := New(time.Hour) // loop never fires; drive scrapes by hand
	i := o.Add(Target{Node: n, Traffic: tr})
	if o.Size() != 1 {
		t.Fatalf("Size = %d, want 1", o.Size())
	}

	o.ScrapeOnce()
	s := o.Last(i)
	if s.PSSize != 0 || s.TSSize != 2 || s.CVSize != 3 || s.HashChecks != 42 {
		t.Errorf("sample = %+v", s)
	}
	if s.Datagrams != 5 || s.WireBytes != 120 {
		t.Errorf("traffic sample = %+v", s)
	}
	if _, ok := o.DiscoveryTime(i); ok {
		t.Error("discovery reported before any monitor appeared")
	}

	n.setPS(3)
	o.ScrapeOnce()
	d, ok := o.DiscoveryTime(i)
	if !ok || d < 0 {
		t.Errorf("DiscoveryTime = (%v, %v), want a non-negative duration", d, ok)
	}
	// Discovery time is latched at the first positive scrape.
	time.Sleep(5 * time.Millisecond)
	o.ScrapeOnce()
	if d2, _ := o.DiscoveryTime(i); d2 != d {
		t.Errorf("DiscoveryTime moved from %v to %v", d, d2)
	}
	if o.Scrapes() != 3 {
		t.Errorf("Scrapes = %d, want 3", o.Scrapes())
	}
}

func TestObserverNilTraffic(t *testing.T) {
	o := New(time.Hour)
	i := o.Add(Target{Node: &fakeNode{id: ids.Sim(1)}})
	o.ScrapeOnce()
	if s := o.Last(i); s.Datagrams != 0 || s.WireBytes != 0 {
		t.Errorf("sample with nil Traffic = %+v", s)
	}
}

func TestObserverLoopAndConcurrentAdd(t *testing.T) {
	o := New(2 * time.Millisecond)
	o.Add(Target{Node: &fakeNode{id: ids.Sim(1), ps: 1}})
	o.Start()
	o.Start() // idempotent
	defer o.Stop()

	// Add targets while the loop scrapes.
	for i := 2; i <= 20; i++ {
		o.Add(Target{Node: &fakeNode{id: ids.Sim(i), ps: 1}})
	}
	deadline := time.Now().Add(2 * time.Second)
	for o.Scrapes() < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if o.Scrapes() < 3 {
		t.Fatalf("loop completed %d scrapes in 2s", o.Scrapes())
	}
	o.Stop()
	o.Stop() // idempotent
	if o.Size() != 20 {
		t.Errorf("Size = %d, want 20", o.Size())
	}
	for i := 0; i < 20; i++ {
		if s := o.Last(i); s.At.IsZero() || s.PSSize != 1 {
			// Late adds may miss the final sweep; only targets scraped
			// at least once must carry data.
			if !s.At.IsZero() {
				t.Errorf("target %d sample = %+v", i, s)
			}
		}
	}
}
