// Package observer scrapes per-node metrics from running AVMON
// services over a side channel — direct method calls serialized by
// each service's own lock — never protocol messages. Observation is
// therefore invisible on the wire: it adds no traffic, consumes no
// protocol randomness, and mutates no protocol state (the realnet
// test suite proves state invariance under concurrent scraping with a
// fingerprint check).
//
// The observer is the realnet counterpart of the simulator's
// quiescent Stats() sweep: where the simulator can stop virtual time
// and read every node, a real deployment is scraped periodically
// while the protocol runs, so each sample carries its wall-clock
// timestamp and per-node discovery is detected by polling.
package observer

import (
	"sync"
	"sync/atomic"
	"time"

	"avmon/internal/ids"
)

// Node is the protocol scrape surface of one service.
// *avmon.Service satisfies it.
type Node interface {
	// ID returns the node's identity.
	ID() ids.ID
	// Stats returns a coarse protocol snapshot: pinging-set,
	// target-set, and coarse-view sizes, plus the cumulative hash
	// checks spent on the consistency condition.
	Stats() (psSize, tsSize, cvSize int, hashChecks uint64)
}

// Traffic is the optional transport scrape surface of one service.
// Both netstack.UDPTransport and memnet.Transport satisfy it.
type Traffic interface {
	// DatagramsSent counts outgoing datagrams.
	DatagramsSent() uint64
	// WireBytesSent counts outgoing bytes under the paper's
	// accounting model (core.Message.WireSize).
	WireBytesSent() uint64
}

// Target couples one node's protocol surface with its transport
// counters (Traffic may be nil when no transport handle is available).
type Target struct {
	Node    Node
	Traffic Traffic
}

// Sample is one scrape of one target.
type Sample struct {
	// At is the scrape's wall-clock time.
	At time.Time
	// PSSize, TSSize, and CVSize are the pinging-set, target-set, and
	// coarse-view sizes at the scrape.
	PSSize, TSSize, CVSize int
	// HashChecks is the node's cumulative consistency-condition count.
	HashChecks uint64
	// WireBytes and Datagrams are the transport's cumulative outgoing
	// counters (zero when the target has no Traffic surface).
	WireBytes, Datagrams uint64
}

// Observer periodically scrapes a set of targets. Targets may be
// added while the observer runs (late joiners); each addition starts
// that target's discovery stopwatch.
type Observer struct {
	interval time.Duration

	mu      sync.Mutex
	targets []Target
	last    []Sample
	watched []time.Time // per-target watch start (discovery stopwatch)
	found   []time.Time // zero until the first scrape with PSSize > 0

	scrapes uint64 // atomic

	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
	started  bool
}

// New builds an observer scraping every interval once Start is called.
func New(interval time.Duration) *Observer {
	return &Observer{interval: interval, stop: make(chan struct{})}
}

// Add registers a target and starts its discovery stopwatch, returning
// its index. Safe to call while the observer runs.
func (o *Observer) Add(tg Target) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.targets = append(o.targets, tg)
	o.last = append(o.last, Sample{})
	o.watched = append(o.watched, time.Now())
	o.found = append(o.found, time.Time{})
	return len(o.targets) - 1
}

// Start launches the scrape loop. Starting twice is a no-op.
func (o *Observer) Start() {
	o.mu.Lock()
	if o.started {
		o.mu.Unlock()
		return
	}
	o.started = true
	o.mu.Unlock()
	o.done.Add(1)
	go func() {
		defer o.done.Done()
		t := time.NewTicker(o.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				o.ScrapeOnce()
			case <-o.stop:
				return
			}
		}
	}()
}

// Stop terminates the scrape loop. Idempotent.
func (o *Observer) Stop() {
	o.stopOnce.Do(func() { close(o.stop) })
	o.done.Wait()
}

// ScrapeOnce scrapes every target immediately (also used by the loop).
// Each target is read under its own service lock only for the duration
// of its Stats call, so scraping never blocks the whole deployment.
func (o *Observer) ScrapeOnce() {
	o.mu.Lock()
	targets := make([]Target, len(o.targets))
	copy(targets, o.targets)
	o.mu.Unlock()

	now := time.Now()
	samples := make([]Sample, len(targets))
	for i, tg := range targets {
		ps, ts, cv, checks := tg.Node.Stats()
		s := Sample{At: now, PSSize: ps, TSSize: ts, CVSize: cv, HashChecks: checks}
		if tg.Traffic != nil {
			s.WireBytes = tg.Traffic.WireBytesSent()
			s.Datagrams = tg.Traffic.DatagramsSent()
		}
		samples[i] = s
	}
	atomic.AddUint64(&o.scrapes, 1)

	o.mu.Lock()
	defer o.mu.Unlock()
	for i, s := range samples {
		o.last[i] = s
		if o.found[i].IsZero() && s.PSSize > 0 {
			o.found[i] = now
		}
	}
}

// Last returns the most recent sample of target i (the zero Sample
// before the first scrape).
func (o *Observer) Last(i int) Sample {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.last[i]
}

// DiscoveryTime returns how long after Add the target was first
// observed with a non-empty pinging set. ok is false while the target
// has not yet been seen with a monitor. The resolution is the scrape
// interval.
func (o *Observer) DiscoveryTime(i int) (time.Duration, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.found[i].IsZero() {
		return 0, false
	}
	return o.found[i].Sub(o.watched[i]), true
}

// Scrapes returns how many scrape sweeps have completed.
func (o *Observer) Scrapes() uint64 { return atomic.LoadUint64(&o.scrapes) }

// Size returns the number of registered targets.
func (o *Observer) Size() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.targets)
}
