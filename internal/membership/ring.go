// Package membership implements the competing availability-monitoring
// overlay schemes that the paper positions AVMON against (Section 1):
// self-reporting, central monitoring, the DHT/replica-set approach,
// and the Broadcast discovery of AVCast [11] (Table 1's baseline).
//
// These exist so the evaluation can measure, not just assert, the
// failures the paper attributes to each: broadcast's O(N) join
// bandwidth, the DHT approach's consistency violations under churn and
// its correlated (non-random) monitor sets, and central monitoring's
// load imbalance.
package membership

import (
	"sort"

	"avmon/internal/hashing"
	"avmon/internal/ids"
)

// Ring is a Chord-like consistent-hashing ring (cf. [13, 15]): each
// node owns the point H(id) on a 64-bit circle, and the monitor set of
// a key is the K successor nodes of the key's point — the classic
// "replica set around a hashed value" that DHT-based availability
// monitoring uses.
type Ring struct {
	hasher hashing.Hasher
	k      int
	points []ringEntry // sorted by point
	index  map[ids.ID]uint64
}

type ringEntry struct {
	point uint64
	id    ids.ID
}

// NewRing builds an empty ring whose monitor sets have size k.
func NewRing(h hashing.Hasher, k int) *Ring {
	return &Ring{hasher: h, k: k, index: make(map[ids.ID]uint64)}
}

// point hashes an identity onto the ring. The pair hash is reused with
// a fixed second argument so the ring position is a pure function of
// the identity.
func (r *Ring) point(id ids.ID) uint64 {
	return r.hasher.Hash64(id, id)
}

// Len returns the current ring population.
func (r *Ring) Len() int { return len(r.points) }

// K returns the monitor-set size.
func (r *Ring) K() int { return r.k }

// Contains reports whether id is on the ring.
func (r *Ring) Contains(id ids.ID) bool {
	_, ok := r.index[id]
	return ok
}

// Add inserts a node. Adding an existing node is a no-op.
func (r *Ring) Add(id ids.ID) {
	if r.Contains(id) {
		return
	}
	p := r.point(id)
	r.index[id] = p
	i := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].point >= p ||
			(r.points[i].point == p && r.points[i].id >= id)
	})
	r.points = append(r.points, ringEntry{})
	copy(r.points[i+1:], r.points[i:])
	r.points[i] = ringEntry{point: p, id: id}
}

// Remove deletes a node. Removing an absent node is a no-op.
func (r *Ring) Remove(id ids.ID) {
	p, ok := r.index[id]
	if !ok {
		return
	}
	delete(r.index, id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].point >= p })
	for i < len(r.points) && r.points[i].id != id {
		i++
	}
	if i < len(r.points) {
		r.points = append(r.points[:i], r.points[i+1:]...)
	}
}

// MonitorsOf returns the DHT monitor set of x: the k nodes whose ring
// points follow H(x) (wrapping around), excluding x itself.
func (r *Ring) MonitorsOf(x ids.ID) []ids.ID {
	if len(r.points) == 0 {
		return nil
	}
	p := r.point(x)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].point >= p })
	out := make([]ids.ID, 0, r.k)
	for i := 0; i < len(r.points) && len(out) < r.k; i++ {
		e := r.points[(start+i)%len(r.points)]
		if e.id == x {
			continue
		}
		out = append(out, e.id)
	}
	return out
}

// ConsistencyDamage reports how many nodes' monitor sets change when
// the given node joins or leaves the ring: exactly the availability-
// history transfers the paper says DHT-based selection forces under
// churn. The ring must reflect the state BEFORE the change; apply is
// either (*Ring).Add or (*Ring).Remove.
func (r *Ring) ConsistencyDamage(id ids.ID, apply func(ids.ID), population []ids.ID) int {
	before := make(map[ids.ID][]ids.ID, len(population))
	for _, x := range population {
		if x == id {
			continue
		}
		before[x] = r.MonitorsOf(x)
	}
	apply(id)
	changed := 0
	for _, x := range population {
		if x == id {
			continue
		}
		if !equalIDs(before[x], r.MonitorsOf(x)) {
			changed++
		}
	}
	return changed
}

func equalIDs(a, b []ids.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PairCorrelation quantifies the randomness violation of condition
// 3(b): for all pairs (y, z) that co-occur in some monitor set, it
// returns the average number of DISTINCT targets whose monitor sets
// contain both. Under an uncorrelated scheme this is ≈ 1 + K²/N; on a
// DHT ring adjacent nodes co-occur in many sets, giving a much larger
// value.
func PairCorrelation(monitorSets map[ids.ID][]ids.ID) float64 {
	pairCount := make(map[[2]ids.ID]int)
	for _, set := range monitorSets {
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				a, b := set[i], set[j]
				if b < a {
					a, b = b, a
				}
				pairCount[[2]ids.ID{a, b}]++
			}
		}
	}
	if len(pairCount) == 0 {
		return 0
	}
	total := 0
	for _, c := range pairCount {
		total += c
	}
	return float64(total) / float64(len(pairCount))
}
