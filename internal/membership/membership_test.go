package membership

import (
	"math/rand"
	"testing"
	"testing/quick"

	"avmon/internal/hashing"
	"avmon/internal/ids"
)

func newTestRing(t *testing.T, k, n int) (*Ring, []ids.ID) {
	t.Helper()
	r := NewRing(hashing.FastHasher{}, k)
	pop := make([]ids.ID, n)
	for i := range pop {
		pop[i] = ids.Sim(i)
		r.Add(pop[i])
	}
	return r, pop
}

func TestRingAddRemove(t *testing.T) {
	r, pop := newTestRing(t, 3, 10)
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r.Len())
	}
	r.Add(pop[0]) // duplicate
	if r.Len() != 10 {
		t.Error("duplicate Add changed the ring")
	}
	r.Remove(pop[3])
	if r.Len() != 9 || r.Contains(pop[3]) {
		t.Error("Remove failed")
	}
	r.Remove(pop[3]) // absent
	if r.Len() != 9 {
		t.Error("absent Remove changed the ring")
	}
}

func TestRingMonitorsProperties(t *testing.T) {
	r, pop := newTestRing(t, 4, 50)
	for _, x := range pop {
		mons := r.MonitorsOf(x)
		if len(mons) != 4 {
			t.Fatalf("MonitorsOf(%v) has %d entries, want 4", x, len(mons))
		}
		seen := make(map[ids.ID]bool)
		for _, m := range mons {
			if m == x {
				t.Fatalf("node %v monitors itself", x)
			}
			if seen[m] {
				t.Fatalf("duplicate monitor for %v", x)
			}
			seen[m] = true
			if !r.Contains(m) {
				t.Fatalf("monitor %v not on ring", m)
			}
		}
	}
}

func TestRingMonitorsDeterministic(t *testing.T) {
	r1, pop := newTestRing(t, 3, 30)
	r2, _ := newTestRing(t, 3, 30)
	for _, x := range pop {
		if !equalIDs(r1.MonitorsOf(x), r2.MonitorsOf(x)) {
			t.Fatalf("monitor sets differ between identical rings for %v", x)
		}
	}
}

func TestRingSuccessorOrderIsSorted(t *testing.T) {
	// Property: after any add/remove interleaving, the internal point
	// slice stays sorted (checked via successor queries succeeding).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRing(hashing.FastHasher{}, 2)
		present := make(map[ids.ID]bool)
		for op := 0; op < 100; op++ {
			id := ids.Sim(rng.Intn(30))
			if rng.Intn(2) == 0 {
				r.Add(id)
				present[id] = true
			} else {
				r.Remove(id)
				delete(present, id)
			}
		}
		want := 0
		for range present {
			want++
		}
		if r.Len() != want {
			return false
		}
		for i := 1; i < len(r.points); i++ {
			if r.points[i].point < r.points[i-1].point {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRingSmallPopulation(t *testing.T) {
	r := NewRing(hashing.FastHasher{}, 5)
	if got := r.MonitorsOf(ids.Sim(1)); got != nil {
		t.Errorf("empty ring MonitorsOf = %v, want nil", got)
	}
	r.Add(ids.Sim(1))
	if got := r.MonitorsOf(ids.Sim(1)); len(got) != 0 {
		t.Errorf("self-only ring MonitorsOf = %v, want empty", got)
	}
	r.Add(ids.Sim(2))
	if got := r.MonitorsOf(ids.Sim(1)); len(got) != 1 || got[0] != ids.Sim(2) {
		t.Errorf("two-node ring MonitorsOf = %v", got)
	}
}

func TestDHTConsistencyViolatedUnderChurn(t *testing.T) {
	// The paper's core criticism: a single join/leave changes other
	// nodes' monitor sets. Measure it.
	r, pop := newTestRing(t, 4, 100)
	newcomer := ids.Sim(1000)
	damage := r.ConsistencyDamage(newcomer, r.Add, pop)
	if damage == 0 {
		t.Error("join caused zero monitor-set changes; DHT consistency violation not reproduced")
	}
	// A leave also damages consistency.
	damage = r.ConsistencyDamage(pop[10], r.Remove, pop)
	if damage == 0 {
		t.Error("leave caused zero monitor-set changes")
	}
}

func TestDHTCorrelationExceedsRandom(t *testing.T) {
	// Randomness condition 3(b): DHT monitor sets are correlated —
	// ring-adjacent nodes co-occur across many targets. Compare the
	// pair-correlation statistic against AVMON's hash selection on the
	// same population.
	const (
		n = 300
		k = 5
	)
	r, pop := newTestRing(t, k, n)
	dhtSets := make(map[ids.ID][]ids.ID, n)
	for _, x := range pop {
		dhtSets[x] = r.MonitorsOf(x)
	}
	sel, err := hashing.NewSelector(hashing.FastHasher{}, k, n)
	if err != nil {
		t.Fatal(err)
	}
	avmonSets := make(map[ids.ID][]ids.ID, n)
	for _, x := range pop {
		var set []ids.ID
		for _, y := range pop {
			if sel.Related(y, x) {
				set = append(set, y)
			}
		}
		avmonSets[x] = set
	}
	dht := PairCorrelation(dhtSets)
	avmon := PairCorrelation(avmonSets)
	if dht < 2*avmon {
		t.Errorf("DHT pair correlation %.2f not clearly above AVMON's %.2f", dht, avmon)
	}
	if avmon > 1.5 {
		t.Errorf("AVMON pair correlation %.2f too high; selection not uncorrelated", avmon)
	}
}

func TestBroadcastDiscovery(t *testing.T) {
	sel, err := hashing.NewSelector(hashing.FastHasher{}, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroadcastDiscovery(sel)
	for i := 0; i < 100; i++ {
		b.Join(ids.Sim(i))
	}
	if b.Alive() != 100 {
		t.Errorf("Alive = %d, want 100", b.Alive())
	}
	// Join i broadcasts to i existing nodes: total = 0+1+...+99.
	if want := uint64(99 * 100 / 2); b.MessagesSent != want {
		t.Errorf("MessagesSent = %d, want %d (O(N) per join)", b.MessagesSent, want)
	}
	if b.HashChecks != 2*b.MessagesSent {
		t.Errorf("HashChecks = %d, want %d", b.HashChecks, 2*b.MessagesSent)
	}
	// Discovery is complete and immediate: every related pair among
	// the population is known.
	missing := 0
	for i := 0; i < 100; i++ {
		x := ids.Sim(i)
		got := make(map[ids.ID]bool)
		for _, m := range b.MonitorsOf(x) {
			got[m] = true
		}
		for j := 0; j < 100; j++ {
			y := ids.Sim(j)
			if y != x && sel.Related(y, x) && !got[y] {
				missing++
			}
		}
	}
	if missing != 0 {
		t.Errorf("broadcast discovery missed %d relationships", missing)
	}
	b.Leave(ids.Sim(0))
	if b.Alive() != 99 {
		t.Error("Leave did not shrink population")
	}
}

func TestCentralMonitor(t *testing.T) {
	server := ids.Sim(0)
	c := NewCentralMonitor(server)
	for i := 1; i <= 50; i++ {
		c.Join(ids.Sim(i))
	}
	c.Join(server) // server never registers itself
	if c.ServerPingsPerPeriod != 50 {
		t.Errorf("server load = %d pings/period, want 50", c.ServerPingsPerPeriod)
	}
	if got := c.MonitorsOf(ids.Sim(7)); len(got) != 1 || got[0] != server {
		t.Errorf("MonitorsOf = %v, want [server]", got)
	}
	if c.MonitorsOf(server) != nil {
		t.Error("server has a monitor")
	}
	if c.LoadShare(server) != 1 || c.LoadShare(ids.Sim(3)) != 0 {
		t.Error("LoadShare distribution wrong: all load must fall on the server")
	}
	c.Leave(ids.Sim(1))
	if c.ServerPingsPerPeriod != 49 {
		t.Error("Leave did not reduce server load")
	}
}

func TestSelfReport(t *testing.T) {
	s := &SelfReport{}
	x := ids.Sim(9)
	if got := s.MonitorsOf(x); len(got) != 1 || got[0] != x {
		t.Errorf("MonitorsOf = %v, want [self]", got)
	}
	if got := s.ReportedAvailability(x, 0.4); got != 0.4 {
		t.Errorf("honest self-report = %v, want 0.4", got)
	}
	s.Lie = 1.0
	if got := s.ReportedAvailability(x, 0.4); got != 1.0 {
		t.Errorf("selfish self-report = %v; the lie is unverifiable by design", got)
	}
}

func TestDHTSchemeAdapter(t *testing.T) {
	r, pop := newTestRing(t, 3, 40)
	scheme := NewDHTScheme(r)
	if scheme.K() != 3 {
		t.Errorf("K = %d, want 3", scheme.K())
	}
	x := pop[5]
	mons := r.MonitorsOf(x)
	for _, m := range mons {
		if !scheme.Related(m, x) {
			t.Errorf("monitor %v not Related to %v", m, x)
		}
	}
	// A non-monitor is not related.
	for _, y := range pop {
		isMon := false
		for _, m := range mons {
			if m == y {
				isMon = true
			}
		}
		if !isMon && scheme.Related(y, x) {
			t.Errorf("non-monitor %v reported Related to %v", y, x)
		}
	}
}
