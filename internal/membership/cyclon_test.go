package membership

import (
	"math"
	"math/rand"
	"testing"

	"avmon/internal/ids"
)

func newCyclonOverlay(t *testing.T, n, viewSize, shuffleLen int, seed int64) *Cyclon {
	t.Helper()
	c := NewCyclon(viewSize, shuffleLen, rand.New(rand.NewSource(seed)))
	for i := 0; i < n; i++ {
		c.AddNode(ids.Sim(i))
	}
	return c
}

func TestCyclonViewInvariants(t *testing.T) {
	c := newCyclonOverlay(t, 100, 8, 4, 1)
	for step := 0; step < 50; step++ {
		c.Step()
	}
	for i := 0; i < 100; i++ {
		id := ids.Sim(i)
		view := c.View(id)
		if len(view) > 8 {
			t.Fatalf("node %d view size %d exceeds 8", i, len(view))
		}
		seen := make(map[ids.ID]bool)
		for _, v := range view {
			if v == id {
				t.Fatalf("node %d has itself in its view", i)
			}
			if seen[v] {
				t.Fatalf("node %d has duplicate view entry %v", i, v)
			}
			seen[v] = true
		}
	}
}

func TestCyclonViewsFillUp(t *testing.T) {
	// Early nodes start with tiny views (bootstrap chain); shuffling
	// must grow everyone to a full view.
	c := newCyclonOverlay(t, 80, 6, 3, 2)
	for step := 0; step < 100; step++ {
		c.Step()
	}
	full := 0
	for i := 0; i < 80; i++ {
		if len(c.View(ids.Sim(i))) == 6 {
			full++
		}
	}
	if full < 70 {
		t.Errorf("only %d of 80 nodes reached a full view", full)
	}
}

func TestCyclonIndegreeConcentrates(t *testing.T) {
	// The property AVMON's coarse view also needs: indegree stays
	// close to the view size for everyone (load balance).
	c := newCyclonOverlay(t, 150, 8, 4, 3)
	for step := 0; step < 150; step++ {
		c.Step()
	}
	deg := c.IndegreeDistribution()
	var sum, sumSq float64
	for _, d := range deg {
		sum += float64(d)
		sumSq += float64(d) * float64(d)
	}
	n := float64(len(deg))
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if mean < 6 || mean > 8.5 {
		t.Errorf("mean indegree = %.2f, want ≈ 8", mean)
	}
	// CYCLON's signature: a tight indegree distribution.
	if std > mean {
		t.Errorf("indegree stddev %.2f too wide (mean %.2f)", std, mean)
	}
	// Nobody starves.
	for id, d := range deg {
		if d == 0 {
			t.Errorf("node %v has indegree 0 after convergence", id)
		}
	}
}

func TestCyclonDepartedNeighborDropped(t *testing.T) {
	c := newCyclonOverlay(t, 30, 5, 3, 4)
	for step := 0; step < 20; step++ {
		c.Step()
	}
	// Remove a node behind the overlay's back (silent death).
	dead := ids.Sim(7)
	delete(c.nodes, dead)
	for i, id := range c.order {
		if id == dead {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	for step := 0; step < 60; step++ {
		c.Step()
	}
	for i := 0; i < 30; i++ {
		id := ids.Sim(i)
		if id == dead {
			continue
		}
		for _, v := range c.View(id) {
			if v == dead {
				t.Fatalf("node %d still references the departed node", i)
			}
		}
	}
}

func TestCyclonShuffleLenClamped(t *testing.T) {
	c := NewCyclon(4, 10, rand.New(rand.NewSource(5)))
	if c.shuffleLen != 4 {
		t.Errorf("shuffleLen = %d, want clamped to 4", c.shuffleLen)
	}
}

func TestCyclonDeterministic(t *testing.T) {
	run := func() int {
		c := newCyclonOverlay(t, 60, 6, 3, 9)
		for step := 0; step < 40; step++ {
			c.Step()
		}
		total := 0
		for _, d := range c.IndegreeDistribution() {
			total += d
		}
		return total
	}
	if run() != run() {
		t.Error("CYCLON runs diverged for the same seed")
	}
}
