package membership

import (
	"math/rand"

	"avmon/internal/ids"
)

// Cyclon is a self-contained implementation of the CYCLON shuffling
// protocol (Voulgaris, Gavidia & van Steen, JNSM 2005) — the related
// membership system the paper credits for inspiring AVMON's
// coarse-view exchange (Section 2). It exists as a comparison
// baseline: CYCLON maintains a random membership graph but provides
// neither consistency nor verifiability of monitoring relationships.
//
// The implementation is round-synchronous and in-process (no
// transport): Step advances every node by one shuffle, which is all
// the randomness comparison needs.
type Cyclon struct {
	viewSize   int
	shuffleLen int
	rng        *rand.Rand
	nodes      map[ids.ID]*cyclonNode
	order      []ids.ID // deterministic iteration
}

type cyclonNode struct {
	id   ids.ID
	view []cyclonEntry
}

type cyclonEntry struct {
	id  ids.ID
	age int
}

// NewCyclon builds a CYCLON overlay with the given view size and
// shuffle length (entries exchanged per gossip).
func NewCyclon(viewSize, shuffleLen int, rng *rand.Rand) *Cyclon {
	if shuffleLen > viewSize {
		shuffleLen = viewSize
	}
	return &Cyclon{
		viewSize:   viewSize,
		shuffleLen: shuffleLen,
		rng:        rng,
		nodes:      make(map[ids.ID]*cyclonNode),
	}
}

// AddNode inserts a node whose initial view is drawn from the nodes
// already present (bootstrap chain).
func (c *Cyclon) AddNode(id ids.ID) {
	n := &cyclonNode{id: id}
	// Seed the view with up to viewSize random existing nodes.
	for _, other := range c.order {
		if len(n.view) >= c.viewSize {
			break
		}
		n.view = append(n.view, cyclonEntry{id: other})
	}
	c.rng.Shuffle(len(n.view), func(i, j int) { n.view[i], n.view[j] = n.view[j], n.view[i] })
	c.nodes[id] = n
	c.order = append(c.order, id)
}

// Len returns the population size.
func (c *Cyclon) Len() int { return len(c.order) }

// View returns a copy of a node's current neighbor list.
func (c *Cyclon) View(id ids.ID) []ids.ID {
	n, ok := c.nodes[id]
	if !ok {
		return nil
	}
	out := make([]ids.ID, 0, len(n.view))
	for _, e := range n.view {
		out = append(out, e.id)
	}
	return out
}

// Step advances every node by one CYCLON shuffle: increase ages, pick
// the oldest neighbor q, send a subset (with self, age 0), receive a
// subset back, and merge with replacement.
func (c *Cyclon) Step() {
	for _, id := range c.order {
		p := c.nodes[id]
		if len(p.view) == 0 {
			continue
		}
		for i := range p.view {
			p.view[i].age++
		}
		// Oldest neighbor q.
		oldest := 0
		for i := range p.view {
			if p.view[i].age > p.view[oldest].age {
				oldest = i
			}
		}
		qid := p.view[oldest].id
		q, ok := c.nodes[qid]
		if !ok {
			// Departed node: drop it.
			p.view = append(p.view[:oldest], p.view[oldest+1:]...)
			continue
		}
		// p's outgoing subset: q's entry replaced by self with age 0,
		// plus shuffleLen-1 random others.
		p.view = append(p.view[:oldest], p.view[oldest+1:]...)
		outgoing := []cyclonEntry{{id: p.id, age: 0}}
		c.rng.Shuffle(len(p.view), func(i, j int) { p.view[i], p.view[j] = p.view[j], p.view[i] })
		for i := 0; i < len(p.view) && len(outgoing) < c.shuffleLen; i++ {
			outgoing = append(outgoing, p.view[i])
		}
		// q's reply subset.
		c.rng.Shuffle(len(q.view), func(i, j int) { q.view[i], q.view[j] = q.view[j], q.view[i] })
		replyLen := c.shuffleLen
		if replyLen > len(q.view) {
			replyLen = len(q.view)
		}
		reply := append([]cyclonEntry(nil), q.view[:replyLen]...)
		// Merge at q: incoming entries fill empty slots, then replace
		// the entries q just sent.
		c.merge(q, outgoing, reply)
		// Merge at p symmetric.
		c.merge(p, reply, outgoing)
	}
}

// merge folds incoming entries into n's view, preferring to replace
// the entries in sent, never duplicating, never pointing at self.
func (c *Cyclon) merge(n *cyclonNode, incoming, sent []cyclonEntry) {
	present := make(map[ids.ID]bool, len(n.view))
	for _, e := range n.view {
		present[e.id] = true
	}
	sentSet := make(map[ids.ID]bool, len(sent))
	for _, e := range sent {
		sentSet[e.id] = true
	}
	for _, e := range incoming {
		if e.id == n.id || present[e.id] {
			continue
		}
		if len(n.view) < c.viewSize {
			n.view = append(n.view, e)
			present[e.id] = true
			continue
		}
		// Replace one of the entries we just shipped out.
		replaced := false
		for i := range n.view {
			if sentSet[n.view[i].id] {
				delete(sentSet, n.view[i].id)
				present[n.view[i].id] = false
				n.view[i] = e
				present[e.id] = true
				replaced = true
				break
			}
		}
		if !replaced {
			break // view full and nothing replaceable
		}
	}
}

// IndegreeDistribution returns, for every node, how many views point
// at it. CYCLON's claim (and AVMON's requirement for its coarse view)
// is that this distribution concentrates around viewSize.
func (c *Cyclon) IndegreeDistribution() map[ids.ID]int {
	deg := make(map[ids.ID]int, len(c.order))
	for _, id := range c.order {
		deg[id] = 0
	}
	for _, id := range c.order {
		for _, e := range c.nodes[id].view {
			deg[e.id]++
		}
	}
	return deg
}
