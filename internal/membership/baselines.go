package membership

import (
	"avmon/internal/core"
	"avmon/internal/ids"
)

// Scheme names for experiment output.
const (
	NameBroadcast = "Broadcast"
	NameCentral   = "Central"
	NameSelf      = "Self-report"
	NameDHT       = "DHT"
)

// BroadcastDiscovery models the AVCast [11] approach the paper labels
// "Broadcast" (Table 1): the selection scheme is the same consistent
// hash condition as AVMON's, but discovery floods every join to all
// alive nodes, which then each check the condition against the joiner.
// Discovery is immediate (O(log N) dissemination, one-time), at O(N)
// join bandwidth.
type BroadcastDiscovery struct {
	scheme core.SelectionScheme
	alive  map[ids.ID]struct{}

	// Counters for the Table 1 comparison.
	MessagesSent uint64 // broadcast messages emitted
	BytesSent    uint64 // at 8B per message, the paper's accounting
	HashChecks   uint64 // condition evaluations

	// Discovered monitoring relationships: ps[x] = set of monitors.
	ps map[ids.ID]map[ids.ID]struct{}
}

// NewBroadcastDiscovery builds an empty broadcast-discovery system
// over the given selection scheme.
func NewBroadcastDiscovery(scheme core.SelectionScheme) *BroadcastDiscovery {
	return &BroadcastDiscovery{
		scheme: scheme,
		alive:  make(map[ids.ID]struct{}),
		ps:     make(map[ids.ID]map[ids.ID]struct{}),
	}
}

// Join floods x's arrival to every alive node; each receiver evaluates
// the consistency condition in both directions and both sides learn
// any relationship instantly.
func (b *BroadcastDiscovery) Join(x ids.ID) {
	for y := range b.alive {
		b.MessagesSent++
		b.BytesSent += 8
		b.HashChecks += 2
		if b.scheme.Related(y, x) {
			b.record(y, x)
		}
		if b.scheme.Related(x, y) {
			b.record(x, y)
		}
	}
	b.alive[x] = struct{}{}
}

// Leave removes x from the alive set (relationships persist, as in
// AVMON).
func (b *BroadcastDiscovery) Leave(x ids.ID) { delete(b.alive, x) }

func (b *BroadcastDiscovery) record(monitor, target ids.ID) {
	set, ok := b.ps[target]
	if !ok {
		set = make(map[ids.ID]struct{})
		b.ps[target] = set
	}
	set[monitor] = struct{}{}
}

// MonitorsOf returns the discovered PS(x).
func (b *BroadcastDiscovery) MonitorsOf(x ids.ID) []ids.ID {
	out := make([]ids.ID, 0, len(b.ps[x]))
	for id := range b.ps[x] {
		out = append(out, id)
	}
	ids.Sort(out)
	return out
}

// Alive returns the current population size.
func (b *BroadcastDiscovery) Alive() int { return len(b.alive) }

// CentralMonitor models the central-server approach: PS(x) = {server}
// for every x. The scheme is consistent and verifiable but places the
// entire monitoring load on one node — the load-imbalance failure of
// Section 1.
type CentralMonitor struct {
	server  ids.ID
	members map[ids.ID]struct{}
	// ServerPingsPerPeriod counts monitoring pings the server must
	// send each period (= population size).
	ServerPingsPerPeriod uint64
}

// NewCentralMonitor builds a central monitoring scheme around server.
func NewCentralMonitor(server ids.ID) *CentralMonitor {
	return &CentralMonitor{server: server, members: make(map[ids.ID]struct{})}
}

// Join registers a node with the server.
func (c *CentralMonitor) Join(x ids.ID) {
	if x == c.server {
		return
	}
	c.members[x] = struct{}{}
	c.ServerPingsPerPeriod = uint64(len(c.members))
}

// Leave deregisters a node.
func (c *CentralMonitor) Leave(x ids.ID) {
	delete(c.members, x)
	c.ServerPingsPerPeriod = uint64(len(c.members))
}

// MonitorsOf implements the PS(x) = {server} rule.
func (c *CentralMonitor) MonitorsOf(x ids.ID) []ids.ID {
	if x == c.server {
		return nil
	}
	return []ids.ID{c.server}
}

// LoadShare returns the fraction of system-wide monitoring load borne
// by the given node: 1 for the server, 0 for everyone else. AVMON's
// analogue is ≈ 1/N per node.
func (c *CentralMonitor) LoadShare(x ids.ID) float64 {
	if x == c.server {
		return 1
	}
	return 0
}

// SelfReport models PS(x) = {x}: every node is its own monitor. It
// trivially violates randomness, and a selfish node's reported
// availability is whatever it chooses — ReportedAvailability
// demonstrates the unbounded lie.
type SelfReport struct {
	// Lie is the availability a selfish node claims regardless of
	// truth (paper: "arbitrarily high values").
	Lie float64
}

// MonitorsOf implements the PS(x) = {x} rule.
func (s *SelfReport) MonitorsOf(x ids.ID) []ids.ID { return []ids.ID{x} }

// ReportedAvailability returns the node's claim, which no third party
// can refute under self-reporting.
func (s *SelfReport) ReportedAvailability(_ ids.ID, truth float64) float64 {
	if s.Lie > 0 {
		return s.Lie
	}
	return truth
}

// DHTScheme adapts a Ring to core.SelectionScheme so the AVMON
// discovery machinery (or the verifier) can be pointed at DHT-style
// selection. Note the relation depends on current ring membership —
// precisely why it is NOT consistent under churn, which
// Ring.ConsistencyDamage measures.
type DHTScheme struct {
	ring *Ring
}

var _ core.SelectionScheme = (*DHTScheme)(nil)

// NewDHTScheme wraps a ring.
func NewDHTScheme(r *Ring) *DHTScheme { return &DHTScheme{ring: r} }

// Related reports whether y is currently in the replica set of x.
func (d *DHTScheme) Related(y, x ids.ID) bool {
	for _, m := range d.ring.MonitorsOf(x) {
		if m == y {
			return true
		}
	}
	return false
}

// K returns the replica-set size.
func (d *DHTScheme) K() int { return d.ring.K() }
