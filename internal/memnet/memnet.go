// Package memnet is an in-process loopback network for running many
// real avmon.Service instances in one process: every endpoint is a
// full Transport (Send / Serve / Close) whose datagrams pass through
// the real netstack codec, but delivery happens over channels instead
// of UDP sockets. The network reuses the simulator's latency and loss
// models (internal/simnet: constant, lognormal, zone-matrix latency;
// Bernoulli and Gilbert-Elliott loss) and replays their draws in wall
// clock — a message drawn at 30 ms latency is delivered ~30 ms later
// by a single delivery-wheel goroutine.
//
// This is the mocknet half of the mocknet→realnet test progression:
// the same Service code, the same assertions, a swappable transport.
// Compared to 127.0.0.1 UDP sockets, memnet removes the file-
// descriptor ceiling (thousands of nodes per process), adds fault
// injection, and counts every datagram — sent, lost, unroutable,
// overflowed, malformed — so an observer can account for traffic
// without packet capture.
package memnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"avmon/internal/core"
	"avmon/internal/ids"
	"avmon/internal/netstack"
	"avmon/internal/simnet"
)

// DefaultInboxDepth is the per-endpoint receive queue length when
// Config.InboxDepth is zero. A full inbox drops the datagram (counted
// in InboxOverflows), mirroring a UDP socket buffer overflow.
const DefaultInboxDepth = 1024

// Config parameterizes a Network.
type Config struct {
	// Latency draws per-message delivery delays in wall clock; nil
	// delivers immediately (still asynchronously, through the
	// destination inbox). The simnet models plug in directly.
	Latency simnet.LatencyModel
	// Loss decides per-message drops; nil is lossless. Gilbert-Elliott
	// burst state is kept per sending endpoint, as in the simulator.
	Loss simnet.LossModel
	// Seed seeds the network's latency/loss randomness; 0 uses the
	// clock. (Wall-clock delivery makes runs non-deterministic either
	// way; the seed fixes only the draw sequence.)
	Seed int64
	// InboxDepth bounds each endpoint's receive queue
	// (0 = DefaultInboxDepth).
	InboxDepth int
}

// Stats are the network-wide drop counters (per-endpoint counters live
// on each Transport).
type Stats struct {
	// LossDrops counts messages dropped by the loss model.
	LossDrops uint64
	// UnroutableDrops counts messages sent to identities with no
	// registered (or an already-closed) endpoint.
	UnroutableDrops uint64
	// InboxOverflows counts messages dropped because the destination
	// inbox was full, summed over all endpoints.
	InboxOverflows uint64
}

// delivery is one in-flight datagram waiting on the delivery wheel.
type delivery struct {
	at  time.Time
	seq uint64 // FIFO tie-break for equal deadlines
	dst *Transport
	buf []byte
}

// wheel is the pending-delivery min-heap, ordered by (at, seq).
type wheel []delivery

func (w wheel) Len() int { return len(w) }
func (w wheel) Less(i, j int) bool {
	if !w[i].at.Equal(w[j].at) {
		return w[i].at.Before(w[j].at)
	}
	return w[i].seq < w[j].seq
}
func (w wheel) Swap(i, j int) { w[i], w[j] = w[j], w[i] }
func (w *wheel) Push(x any)   { *w = append(*w, x.(delivery)) }
func (w *wheel) Pop() any     { old := *w; n := len(old); d := old[n-1]; *w = old[:n-1]; return d }

// Network is the in-process loopback hub. Create with New, mint
// endpoints with Listen, and Close when done. All methods are safe for
// concurrent use.
type Network struct {
	cfg   Config
	depth int

	mu     sync.Mutex
	rng    *rand.Rand // latency/loss draws, guarded by mu
	eps    map[ids.ID]*Transport
	queue  wheel
	seq    uint64
	closed bool

	wake chan struct{}
	quit chan struct{}
	done sync.WaitGroup

	lossDrops       uint64 // atomics
	unroutableDrops uint64
	inboxOverflows  uint64
}

// New builds a Network and starts its delivery wheel.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	depth := cfg.InboxDepth
	if depth <= 0 {
		depth = DefaultInboxDepth
	}
	n := &Network{
		cfg:   cfg,
		depth: depth,
		rng:   rand.New(rand.NewSource(seed)),
		eps:   make(map[ids.ID]*Transport),
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
	}
	n.done.Add(1)
	go n.dispatch()
	return n
}

// Listen registers a new endpoint for id. Each identity may be bound
// at most once at a time; closing the endpoint frees it.
func (n *Network) Listen(id ids.ID) (*Transport, error) {
	if id.IsNone() {
		return nil, fmt.Errorf("memnet: cannot listen on the None identity")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("memnet: network is closed")
	}
	if _, dup := n.eps[id]; dup {
		return nil, fmt.Errorf("memnet: %v is already bound", id)
	}
	t := &Transport{
		id:    id,
		net:   n,
		inbox: make(chan []byte, n.depth),
		quit:  make(chan struct{}),
	}
	n.eps[id] = t
	return t, nil
}

// Stats returns the network-wide drop counters.
func (n *Network) Stats() Stats {
	return Stats{
		LossDrops:       atomic.LoadUint64(&n.lossDrops),
		UnroutableDrops: atomic.LoadUint64(&n.unroutableDrops),
		InboxOverflows:  atomic.LoadUint64(&n.inboxOverflows),
	}
}

// Close shuts down the delivery wheel and every endpoint still open.
// In-flight datagrams are discarded.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*Transport, 0, len(n.eps))
	for _, t := range n.eps {
		eps = append(eps, t)
	}
	n.queue = nil
	n.mu.Unlock()
	close(n.quit)
	n.done.Wait()
	for _, t := range eps {
		_ = t.Close()
	}
}

// send routes one encoded datagram: loss and latency draws under the
// network lock (from the shared stream, with per-sender loss state),
// then either immediate handoff or the delivery wheel.
func (n *Network) send(src *Transport, to ids.ID, buf []byte) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	if n.cfg.Loss != nil && n.cfg.Loss.Drop(&src.lossSt, n.rng) {
		n.mu.Unlock()
		atomic.AddUint64(&n.lossDrops, 1)
		return
	}
	var delay time.Duration
	if n.cfg.Latency != nil {
		delay = n.cfg.Latency.Latency(src.id, to, n.rng)
	}
	if delay <= 0 {
		dst := n.eps[to]
		n.mu.Unlock()
		n.handoff(dst, buf)
		return
	}
	dst := n.eps[to]
	if dst == nil {
		n.mu.Unlock()
		atomic.AddUint64(&n.unroutableDrops, 1)
		return
	}
	n.seq++
	d := delivery{at: time.Now().Add(delay), seq: n.seq, dst: dst, buf: buf}
	heap.Push(&n.queue, d)
	isHead := n.queue[0].seq == d.seq
	n.mu.Unlock()
	if isHead {
		// The wheel may be sleeping past the new earliest deadline.
		select {
		case n.wake <- struct{}{}:
		default:
		}
	}
}

// handoff enqueues a datagram on the destination inbox, dropping it if
// the destination is gone or its inbox is full.
func (n *Network) handoff(dst *Transport, buf []byte) {
	if dst == nil {
		atomic.AddUint64(&n.unroutableDrops, 1)
		return
	}
	select {
	case dst.inbox <- buf:
	default:
		atomic.AddUint64(&n.inboxOverflows, 1)
		atomic.AddUint64(&dst.inboxDrops, 1)
	}
}

// dispatch is the delivery wheel: a single goroutine that sleeps until
// the earliest pending deadline and hands due datagrams to their
// destination inboxes.
func (n *Network) dispatch() {
	defer n.done.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		n.mu.Lock()
		now := time.Now()
		var due []delivery
		for len(n.queue) > 0 && !n.queue[0].at.After(now) {
			due = append(due, heap.Pop(&n.queue).(delivery))
		}
		wait := time.Hour
		if len(n.queue) > 0 {
			wait = n.queue[0].at.Sub(now)
		}
		n.mu.Unlock()
		for _, d := range due {
			n.handoff(d.dst, d.buf)
		}
		// A spurious stale tick after Reset only causes one extra loop
		// iteration, which is harmless here.
		timer.Reset(wait)
		select {
		case <-n.wake:
		case <-timer.C:
		case <-n.quit:
			return
		}
	}
}

// unregister removes a closing endpoint from the routing table.
func (n *Network) unregister(id ids.ID) {
	n.mu.Lock()
	delete(n.eps, id)
	n.mu.Unlock()
}

// Transport is one memnet endpoint. It satisfies the same contract as
// netstack.UDPTransport (avmon.Transport): best-effort Send, a
// blocking Serve loop, idempotent Close, and scrapeable traffic
// counters.
type Transport struct {
	id    ids.ID
	net   *Network
	inbox chan []byte
	quit  chan struct{}

	closeOnce sync.Once

	lossSt simnet.LossState // guarded by net.mu

	datagramsSent uint64 // atomics
	wireBytes     uint64
	rawBytes      uint64
	dropped       uint64
	inboxDrops    uint64
}

var _ core.Transport = (*Transport)(nil)

// ID returns the bound identity.
func (t *Transport) ID() ids.ID { return t.id }

// Send implements core.Transport: the message is serialized through
// the real wire codec, subjected to the network's loss and latency
// models, and delivered to the destination inbox. Errors are dropped
// by design, exactly as over UDP.
func (t *Transport) Send(to ids.ID, m *core.Message) {
	buf, err := netstack.Encode(m)
	if err != nil {
		return
	}
	select {
	case <-t.quit:
		return
	default:
	}
	atomic.AddUint64(&t.datagramsSent, 1)
	atomic.AddUint64(&t.wireBytes, uint64(m.WireSize()))
	atomic.AddUint64(&t.rawBytes, uint64(len(buf)))
	t.net.send(t, to, buf)
}

// Serve reads datagrams and invokes handle for each valid message
// until Close is called. Malformed datagrams are counted and dropped,
// mirroring the UDP transport.
func (t *Transport) Serve(handle func(from ids.ID, m *core.Message)) error {
	for {
		select {
		case buf := <-t.inbox:
			m, err := netstack.Decode(buf)
			if err != nil {
				atomic.AddUint64(&t.dropped, 1)
				continue
			}
			handle(m.From, m)
		case <-t.quit:
			return nil
		}
	}
}

// Close unregisters the endpoint and unblocks Serve. It is idempotent
// and does not wait for Serve to return: the owner of the Serve
// goroutine joins it, exactly as with the UDP transport.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		t.net.unregister(t.id)
		close(t.quit)
	})
	return nil
}

// DatagramsSent returns how many datagrams this endpoint sent
// (pre-loss: drawn losses still count as sent, as they would on UDP).
func (t *Transport) DatagramsSent() uint64 { return atomic.LoadUint64(&t.datagramsSent) }

// WireBytesSent returns cumulative outgoing traffic under the paper's
// byte-accounting model (Message.WireSize), directly comparable to the
// simulator's per-node BytesOut.
func (t *Transport) WireBytesSent() uint64 { return atomic.LoadUint64(&t.wireBytes) }

// RawBytesSent returns cumulative outgoing traffic in encoded-codec
// bytes (the datagram sizes a real socket would carry).
func (t *Transport) RawBytesSent() uint64 { return atomic.LoadUint64(&t.rawBytes) }

// DroppedDatagrams returns how many received datagrams failed to
// decode and were dropped by Serve.
func (t *Transport) DroppedDatagrams() uint64 { return atomic.LoadUint64(&t.dropped) }

// InboxOverflows returns how many datagrams addressed to this endpoint
// were dropped because its inbox was full.
func (t *Transport) InboxOverflows() uint64 { return atomic.LoadUint64(&t.inboxDrops) }
