package memnet

import (
	"sync"
	"testing"
	"time"

	"avmon/internal/core"
	"avmon/internal/ids"
	"avmon/internal/simnet"
)

// collect starts a Serve loop appending every delivered message.
func collect(t *testing.T, tr *Transport) (func() []*core.Message, chan struct{}) {
	t.Helper()
	var mu sync.Mutex
	var got []*core.Message
	notify := make(chan struct{}, 64)
	go func() {
		_ = tr.Serve(func(from ids.ID, m *core.Message) {
			mu.Lock()
			got = append(got, m)
			mu.Unlock()
			select {
			case notify <- struct{}{}:
			default:
			}
		})
	}()
	return func() []*core.Message {
		mu.Lock()
		defer mu.Unlock()
		return append([]*core.Message(nil), got...)
	}, notify
}

func TestMemnetDelivery(t *testing.T) {
	n := New(Config{Seed: 1})
	defer n.Close()
	a, err := n.Listen(ids.MustParse("127.0.0.1:9001"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Listen(ids.MustParse("127.0.0.1:9002"))
	if err != nil {
		t.Fatal(err)
	}
	got, notify := collect(t, b)

	a.Send(b.ID(), &core.Message{Type: core.MsgPing, From: a.ID(), Seq: 7})
	select {
	case <-notify:
	case <-time.After(3 * time.Second):
		t.Fatal("datagram not delivered within 3s")
	}
	msgs := got()
	if len(msgs) != 1 || msgs[0].Type != core.MsgPing || msgs[0].Seq != 7 || msgs[0].From != a.ID() {
		t.Errorf("received %+v", msgs)
	}
	if a.DatagramsSent() != 1 || a.WireBytesSent() == 0 || a.RawBytesSent() == 0 {
		t.Errorf("sender counters = (%d, %d, %d), want non-zero traffic",
			a.DatagramsSent(), a.WireBytesSent(), a.RawBytesSent())
	}
	// Wire accounting follows the paper's model exactly.
	if want := (&core.Message{Type: core.MsgPing}).WireSize(); a.WireBytesSent() != uint64(want) {
		t.Errorf("WireBytesSent = %d, want %d", a.WireBytesSent(), want)
	}
}

func TestMemnetLatencyDelaysDelivery(t *testing.T) {
	lat, err := simnet.NewConstantLatency(60 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	n := New(Config{Latency: lat, Seed: 1})
	defer n.Close()
	a, _ := n.Listen(ids.Sim(1))
	b, _ := n.Listen(ids.Sim(2))
	_, notify := collect(t, b)

	start := time.Now()
	a.Send(b.ID(), &core.Message{Type: core.MsgPing, From: a.ID()})
	select {
	case <-notify:
	case <-time.After(3 * time.Second):
		t.Fatal("datagram not delivered within 3s")
	}
	// Allow generous slack below the drawn latency for coarse timers,
	// but delivery must not be (near-)immediate.
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("delivered after %v, want ≥ ~60ms (modeled latency)", elapsed)
	}
}

func TestMemnetGilbertElliottLossDrops(t *testing.T) {
	// lossGood = lossBad = 1: every message is dropped regardless of
	// the chain state, so the assertion is deterministic.
	loss, err := simnet.NewGilbertElliottLoss(0.5, 0.5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := New(Config{Loss: loss, Seed: 1})
	defer n.Close()
	a, _ := n.Listen(ids.Sim(1))
	b, _ := n.Listen(ids.Sim(2))
	got, _ := collect(t, b)

	for i := 0; i < 10; i++ {
		a.Send(b.ID(), &core.Message{Type: core.MsgPing, From: a.ID(), Seq: uint64(i)})
	}
	time.Sleep(100 * time.Millisecond)
	if msgs := got(); len(msgs) != 0 {
		t.Errorf("received %d messages through an always-lossy channel", len(msgs))
	}
	if st := n.Stats(); st.LossDrops != 10 {
		t.Errorf("LossDrops = %d, want 10", st.LossDrops)
	}
	// Losses still count as sent on the sender, as they would on UDP.
	if a.DatagramsSent() != 10 {
		t.Errorf("DatagramsSent = %d, want 10", a.DatagramsSent())
	}
}

func TestMemnetMalformedDatagramCounted(t *testing.T) {
	n := New(Config{Seed: 1})
	defer n.Close()
	b, _ := n.Listen(ids.Sim(2))
	got, _ := collect(t, b)

	b.inbox <- []byte{1, 2, 3} // raw garbage straight into the inbox
	time.Sleep(50 * time.Millisecond)
	if msgs := got(); len(msgs) != 0 {
		t.Errorf("garbage decoded into %d messages", len(msgs))
	}
	if b.DroppedDatagrams() != 1 {
		t.Errorf("DroppedDatagrams = %d, want 1", b.DroppedDatagrams())
	}
}

func TestMemnetUnroutableAndDuplicate(t *testing.T) {
	n := New(Config{Seed: 1})
	defer n.Close()
	a, err := n.Listen(ids.Sim(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen(ids.Sim(1)); err == nil {
		t.Error("duplicate Listen succeeded")
	}
	if _, err := n.Listen(ids.None); err == nil {
		t.Error("Listen on None succeeded")
	}
	a.Send(ids.Sim(99), &core.Message{Type: core.MsgPing, From: a.ID()})
	deadline := time.Now().Add(2 * time.Second)
	for n.Stats().UnroutableDrops == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := n.Stats(); st.UnroutableDrops != 1 {
		t.Errorf("UnroutableDrops = %d, want 1", st.UnroutableDrops)
	}
}

func TestMemnetCloseUnblocksServe(t *testing.T) {
	n := New(Config{Seed: 1})
	defer n.Close()
	a, _ := n.Listen(ids.Sim(1))
	served := make(chan error, 1)
	go func() { served <- a.Serve(func(ids.ID, *core.Message) {}) }()
	time.Sleep(20 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("Serve returned %v after Close, want nil", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	// Double Close is safe; Send after Close is a no-op; the identity
	// is immediately rebindable.
	if err := a.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	a.Send(ids.Sim(1), &core.Message{Type: core.MsgPing})
	if _, err := n.Listen(ids.Sim(1)); err != nil {
		t.Errorf("rebind after Close: %v", err)
	}
}

func TestMemnetNetworkCloseIdempotent(t *testing.T) {
	n := New(Config{Seed: 1})
	if _, err := n.Listen(ids.Sim(1)); err != nil {
		t.Fatal(err)
	}
	n.Close()
	n.Close()
	if _, err := n.Listen(ids.Sim(2)); err == nil {
		t.Error("Listen on a closed network succeeded")
	}
}
