package experiments

import (
	"fmt"
	"math"
	"time"

	"avmon/internal/stats"
)

// cvsMultipliers are the coarse-view sizes swept by Section 5.2:
// 4, 6, 8, 10 × N^(1/4).
var cvsMultipliers = []int{4, 6, 8, 10}

func cvsFor(mult, n int) int {
	return int(math.Round(float64(mult) * math.Pow(float64(n), 0.25)))
}

// cvsSweepNs picks the system sizes for the cvs sweep (paper: 500,
// 1000, 2000).
func cvsSweepNs(o Options) []int {
	ns := o.ns()
	if len(ns) > 3 {
		ns = ns[len(ns)-3:]
	}
	return ns
}

// Figure11 reproduces "Average discovery time vs cvs" on the STAT
// model.
func Figure11(o Options) (*Result, error) {
	o = o.withDefaults()
	table := &Table{
		Title:  "Average discovery time vs cvs (STAT)",
		Header: []string{"N", "cvs", "mean discovery (s)", "stddev (s)"},
	}
	var scens []scenario
	var cvsVals []int
	for _, n := range cvsSweepNs(o) {
		for _, mult := range cvsMultipliers {
			s := synthScenario(o, modelSTAT, n, 45*time.Minute)
			s.opts.CVS = cvsFor(mult, n)
			scens = append(scens, s)
			cvsVals = append(cvsVals, s.opts.CVS)
		}
	}
	// Points differ only in cvs within each N; pairing seeds per N
	// isolates the coarse-view size.
	outs, err := runAllPaired(o, scens, func(i int) int { return i / len(cvsMultipliers) })
	if err != nil {
		return nil, err
	}
	i := 0
	for _, n := range cvsSweepNs(o) {
		for range cvsMultipliers {
			out := outs[i]
			times, _ := out.firstDiscoveries(out.controlOrLateBorn())
			var w stats.Welford
			for _, d := range times {
				w.Add(d.Seconds())
			}
			table.AddRow(itoa(n), itoa(cvsVals[i]), f2(w.Mean()), f2(w.Stddev()))
			i++
		}
	}
	return &Result{
		ID:     "figure11",
		Title:  "Discovery time vs coarse-view size",
		Tables: []*Table{table},
	}, nil
}

// Figure12 reproduces "Memory entries vs cvs, and computations per
// second vs cvs" on the STAT model.
func Figure12(o Options) (*Result, error) {
	o = o.withDefaults()
	table := &Table{
		Title:  "Memory and computations vs cvs (STAT)",
		Header: []string{"N", "cvs", "mean memory entries", "mean computations/s"},
	}
	ns := cvsSweepNs(o)
	// The paper plots N = 500 and N = 2000 to show N has no influence
	// at fixed cvs; keep the first and last sizes.
	edge := []int{ns[0], ns[len(ns)-1]}
	var scens []scenario
	var cvsVals []int
	for _, n := range edge {
		for _, mult := range cvsMultipliers {
			s := synthScenario(o, modelSTAT, n, 60*time.Minute)
			s.opts.CVS = cvsFor(mult, n)
			scens = append(scens, s)
			cvsVals = append(cvsVals, s.opts.CVS)
		}
	}
	outs, err := runAllPaired(o, scens, func(i int) int { return i / len(cvsMultipliers) })
	if err != nil {
		return nil, err
	}
	i := 0
	for _, n := range edge {
		for range cvsMultipliers {
			out := outs[i]
			alive := out.aliveIndexes()
			var mem, comps stats.Welford
			for _, v := range out.memoryEntries(alive) {
				mem.Add(v)
			}
			for _, v := range out.compsPerSecond(alive) {
				comps.Add(v)
			}
			table.AddRow(itoa(n), itoa(cvsVals[i]), f2(mem.Mean()), f2(comps.Mean()))
			i++
		}
	}
	note := &Table{
		Title:  "Reference points (Section 5.2)",
		Header: []string{"quantity", "value"},
	}
	note.AddRow("paper: memory varies linearly with cvs", "yes")
	note.AddRow("paper: N has no influence at fixed cvs", "compare rows above")
	note.AddRow("knee of discovery curve", fmt.Sprintf("cvs = 8·N^(1/4) (see %s)", "figure11"))
	return &Result{
		ID:     "figure12",
		Title:  "Memory and computation vs coarse-view size",
		Tables: []*Table{table, note},
	}, nil
}
