package experiments

// The WAN experiment (beyond the paper): the paper validates AVMON on
// real wide-area deployments where link latencies are heterogeneous
// and heavy-tailed and loss is bursty — nothing like the constant-50ms
// lossless network the other generators assume. This sweep crosses
// the heterogeneous latency models (lognormal, zone matrix) with the
// loss regimes (independent, Gilbert-Elliott burst) and measures what
// the paper cares about: discovery time of new joiners and the
// coverage/cost of steady-state monitoring. All nine regimes run
// against one derived seed (common random numbers), so every reported
// delta isolates the network model, not seed noise — and each run is
// byte-identical serial or sharded, because the sharded engine's
// lookahead adapts to each latency model's MinLatency floor.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"avmon"
	"avmon/internal/stats"
)

// WanArtifactName is the machine-readable output of the wan experiment
// (written next to the tables by avmon-bench, checked into the repo
// like BENCH_scale.json).
const WanArtifactName = "BENCH_wan.json"

// wanDefaultN is the system size when Options.Ns is not set: large
// enough that zone structure and loss regimes separate, small enough
// that the 9-regime sweep stays minutes, not hours.
const wanDefaultN = 300

// WanPoint is one (latency model × loss regime) cell of the wan sweep
// as serialized into BENCH_wan.json. All fields except WallSeconds
// are deterministic functions of (Options, regime).
type WanPoint struct {
	Latency      string  `json:"latency"`
	Loss         string  `json:"loss"`
	MinLatencyMS float64 `json:"min_latency_ms"` // the model's floor = sharded lookahead

	N int `json:"n"`
	K int `json:"k"`

	ControlSize      int     `json:"control_size"`
	Discovered       int     `json:"discovered"`
	MeanDiscoveryMin float64 `json:"mean_discovery_minutes"`
	P93DiscoverySec  float64 `json:"p93_discovery_seconds"`

	PSFill            float64 `json:"ps_fill"`   // mean |PS|/K over alive nodes
	AckRatio          float64 `json:"ack_ratio"` // monitoring acks / pings
	BytesPerNodeSec   float64 `json:"bytes_out_per_node_per_second"`
	UselessPerNodeMin float64 `json:"useless_pings_per_node_per_minute"`
	Events            uint64  `json:"events"`

	WallSeconds float64 `json:"wall_seconds"`

	// Scheduler counters, present only when the sweep ran sharded
	// (avmon-bench -shards): coordinator barriers and executed windows
	// per regime (deterministic — these are what dynamic lookahead and
	// barrier batching shrink, most visibly under the 5 ms-floor
	// lognormal regime), and per-shard busy wall-clock (host metric).
	// They live in the artifact only, so the rendered tables stay
	// byte-identical at any shard count.
	Barriers    uint64  `json:"barriers,omitempty"`
	Windows     uint64  `json:"windows,omitempty"`
	ShardBusyNS []int64 `json:"shard_busy_ns,omitempty"`
}

// wanArtifact is the BENCH_wan.json envelope.
type wanArtifact struct {
	Experiment string     `json:"experiment"`
	Seed       int64      `json:"seed"`
	Scale      float64    `json:"scale"`
	N          int        `json:"n"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	HostCores  int        `json:"host_cores,omitempty"`
	Host       HostStats  `json:"host"`
	Points     []WanPoint `json:"points"`
}

// wanRegime names one cell of the latency × loss cross product.
type wanRegime struct {
	latName  string
	latency  avmon.LatencyModel
	lossName string
	loss     avmon.LossModel
}

// wanRegimes builds the sweep: three latency models (the constant
// baseline, a heavy-tailed lognormal, a 3-zone matrix) crossed with
// three loss regimes (lossless, 1% independent, Gilbert-Elliott
// burst). Models are immutable, so sharing them across concurrently
// running sweep points is safe.
func wanRegimes() ([]wanRegime, error) {
	ms := time.Millisecond
	constant, err := avmon.NewConstantLatency(50 * ms)
	if err != nil {
		return nil, err
	}
	// Floor 5ms (continental propagation), median 5+60ms, heavy tail
	// capped at 2s: the shape of measured WAN RTT distributions. The
	// sharded lookahead shrinks from 50ms to the 5ms floor.
	lognormal, err := avmon.NewLognormalLatency(5*ms, 60*ms, 0.6, 2*time.Second)
	if err != nil {
		return nil, err
	}
	// Three zones (think continents): cheap intra-zone links, 80–220ms
	// inter-zone base latency, 20% jitter. Lookahead = 10ms.
	zones, err := avmon.NewZoneLatency([][]time.Duration{
		{10 * ms, 90 * ms, 160 * ms},
		{95 * ms, 15 * ms, 210 * ms},
		{150 * ms, 220 * ms, 12 * ms},
	}, 0.2)
	if err != nil {
		return nil, err
	}
	bernoulli, err := avmon.NewBernoulliLoss(0.01)
	if err != nil {
		return nil, err
	}
	// Bursts average 4 messages (exit 0.25) at 30% in-burst loss, with
	// a near-lossless good state: the same mean rate territory as the
	// 1% Bernoulli regime, but correlated.
	burst, err := avmon.NewGilbertElliottLoss(0.02, 0.25, 0.001, 0.3)
	if err != nil {
		return nil, err
	}
	lats := []struct {
		name string
		m    avmon.LatencyModel
	}{
		{"const-50ms", constant},
		{"lognormal", lognormal},
		{"zones-3", zones},
	}
	losses := []struct {
		name string
		m    avmon.LossModel
	}{
		{"lossless", nil},
		{"bernoulli-1%", bernoulli},
		{"ge-burst", burst},
	}
	var out []wanRegime
	for _, l := range lats {
		for _, p := range losses {
			out = append(out, wanRegime{latName: l.name, latency: l.m, lossName: p.name, loss: p.m})
		}
	}
	return out, nil
}

// Wan sweeps heterogeneous WAN latency models against loss regimes on
// a static system and reports discovery time and monitoring coverage
// per regime, plus the BENCH_wan.json artifact. Every regime runs the
// same workload with the same derived seed (common random numbers);
// Options.Shards applies per run and never changes the results.
func Wan(o Options) (*Result, error) {
	o = o.withDefaults()
	n := wanDefaultN
	if len(o.Ns) > 0 {
		n = o.Ns[0]
	}
	regimes, err := wanRegimes()
	if err != nil {
		return nil, fmt.Errorf("wan: %w", err)
	}
	scens := make([]scenario, len(regimes))
	for i, r := range regimes {
		scens[i] = scenario{
			kind:        modelSTAT,
			n:           n,
			warmup:      o.scaled(20*time.Minute, 5*time.Minute),
			measure:     o.scaled(2*time.Hour, 10*time.Minute),
			controlFrac: 0.1,
			latModel:    r.latency,
			lossModel:   r.loss,
		}
	}
	pts := make([]WanPoint, len(scens))
	err = forEachPoint(o, len(scens),
		func(i int) string { return fmt.Sprintf("wan %s/%s", regimes[i].latName, regimes[i].lossName) },
		func(i int) error {
			s := scens[i]
			// One shared seed group: every regime faces the identical
			// population and control-group draw, so regime deltas are
			// paired comparisons.
			s.seed = deriveSeed(o.Seed, 0)
			s.shards = o.Shards
			s.sched = o.Scheduler
			start := time.Now()
			out, err := run(s)
			if err != nil {
				return err
			}
			pts[i] = wanPointMetrics(regimes[i], s.n, out, time.Since(start))
			return nil
		})
	if err != nil {
		return nil, err
	}

	disc := &Table{
		Title: "WAN regimes: discovery of new joiners (paired seeds)",
		Header: []string{"latency", "loss", "floor (ms)", "control", "discovered",
			"mean disc (min)", "p93 disc (s)"},
	}
	mon := &Table{
		Title: "WAN regimes: monitoring coverage and cost",
		Header: []string{"latency", "loss", "|PS|/K", "ack ratio", "B/s/node",
			"useless/node/min", "events"},
	}
	for _, p := range pts {
		disc.AddRow(p.Latency, p.Loss, f2(p.MinLatencyMS), itoa(p.ControlSize),
			itoa(p.Discovered), f2(p.MeanDiscoveryMin), f2(p.P93DiscoverySec))
		mon.AddRow(p.Latency, p.Loss, f2(p.PSFill), f4(p.AckRatio),
			f2(p.BytesPerNodeSec), f4(p.UselessPerNodeMin), fmt.Sprintf("%d", p.Events))
	}

	artifact, err := json.MarshalIndent(wanArtifact{
		Experiment: "wan",
		Seed:       o.Seed,
		Scale:      o.Scale,
		N:          n,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		HostCores:  runtime.NumCPU(),
		Host:       collectHostStats(),
		Points:     pts,
	}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("wan: marshal artifact: %w", err)
	}
	artifact = append(artifact, '\n')

	return &Result{
		ID:        "wan",
		Title:     "Heterogeneous WAN latency and loss vs discovery and monitoring coverage",
		Tables:    []*Table{disc, mon},
		Artifacts: map[string][]byte{WanArtifactName: artifact},
	}, nil
}

// wanPointMetrics extracts one regime's metrics from a finished run.
func wanPointMetrics(r wanRegime, n int, out *outcome, wall time.Duration) WanPoint {
	c := out.c
	p := WanPoint{
		Latency:      r.latName,
		Loss:         r.lossName,
		MinLatencyMS: float64(r.latency.MinLatency()) / float64(time.Millisecond),
		N:            n,
		K:            c.K(),
		Events:       c.Steps(),
		WallSeconds:  wall.Seconds(),
	}
	if st, ok := c.SchedStats(); ok {
		p.Barriers = st.Barriers
		p.Windows = st.Windows
		for _, sh := range st.PerShard {
			p.ShardBusyNS = append(p.ShardBusyNS, sh.BusyNS)
		}
	}

	control := out.controlOrLateBorn()
	p.ControlSize = len(control)
	times, missed := out.firstDiscoveries(control)
	p.Discovered = len(control) - missed
	var cdf stats.CDF
	for _, d := range times {
		cdf.Add(d.Seconds())
	}
	p.P93DiscoverySec = cdf.Percentile(93)
	p.MeanDiscoveryMin = meanDiscoveryMinutes(times)

	secs := out.measure.Seconds()
	mins := out.measure.Minutes()
	var fill, bw, useless stats.Welford
	var pings, acks uint64
	for _, idx := range out.aliveIndexes() {
		st := c.Stats(idx)
		fill.Add(float64(st.PSSize) / float64(c.K()))
		bw.Add(float64(st.Traffic.BytesOut) / secs)
		useless.Add(float64(st.UselessMonPings-out.uselessAtW[idx]) / mins)
		pings += st.MonPingsSent
		acks += st.MonAcks
	}
	p.PSFill = fill.Mean()
	p.BytesPerNodeSec = bw.Mean()
	p.UselessPerNodeMin = useless.Mean()
	if pings > 0 {
		p.AckRatio = float64(acks) / float64(pings)
	}
	return p
}
