package experiments

// The skew experiment (beyond the paper): the sharded engine's
// round-robin lane partition assumes load is spread evenly across
// lanes. A skewed population — here the HOTSPOT churn model, which
// pins every hot, always-up node onto shard 0 while the other shards
// own near-idle cold lanes — makes that assumption maximally wrong:
// one shard does essentially all the work and the barrier-synchronized
// peers idle through every window. This sweep runs the identical
// workload (same derived seed) with lane rebalancing off and on and
// reports what the scheduler layer is for: per-shard executed-event
// and busy-time balance, barrier/window counts, and migrations. The
// canonical event order is shard-assignment-independent, so the sweep
// also *asserts* that every protocol-visible metric is identical
// between the two runs — rebalancing is proven to change only the
// load distribution.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"avmon"
	"avmon/internal/stats"
)

// SkewArtifactName is the machine-readable output of the skew
// experiment (written next to the tables by avmon-bench, checked into
// the repo like BENCH_scale.json).
const SkewArtifactName = "BENCH_skew.json"

// skewDefaultN is the population when Options.Ns is not set.
const skewDefaultN = 400

// skewDefaultShards is the shard count when Options.Shards is not set
// (the sweep is meaningless on the serial engine).
const skewDefaultShards = 4

// SkewPoint is one (rebalance off/on) cell of the skew sweep as
// serialized into BENCH_skew.json. The scheduler counters (Barriers,
// Windows, Migrations, ShardSteps, StepsImbalance) and the protocol
// metrics are deterministic functions of (Options, Rebalance);
// ShardBusyNS and WallSeconds describe the host.
type SkewPoint struct {
	Rebalance bool `json:"rebalance"`

	N      int `json:"n"`
	Shards int `json:"shards"`
	Stride int `json:"stride"`

	Barriers   uint64 `json:"barriers"`
	Windows    uint64 `json:"windows"`
	Migrations uint64 `json:"migrations"`
	LanesMoved uint64 `json:"lanes_moved"`

	ShardSteps  []uint64 `json:"shard_steps"`
	ShardBusyNS []int64  `json:"shard_busy_ns"`
	// StepsImbalance is max/mean over per-shard executed events — 1.0
	// is perfect balance, the shard count is the worst case
	// (deterministic). BusyImbalance is the same ratio over measured
	// busy time (host-dependent).
	StepsImbalance float64 `json:"steps_imbalance"`
	BusyImbalance  float64 `json:"busy_imbalance"`

	// Protocol metrics, asserted identical between the off and on
	// points (the determinism contract under lane migration).
	Events          uint64  `json:"events"`
	AliveCount      int     `json:"alive"`
	PSFill          float64 `json:"ps_fill"`
	BytesPerNodeSec float64 `json:"bytes_out_per_node_per_second"`

	WallSeconds float64 `json:"wall_seconds"`
}

// skewArtifact is the BENCH_skew.json envelope.
type skewArtifact struct {
	Experiment string      `json:"experiment"`
	Seed       int64       `json:"seed"`
	Scale      float64     `json:"scale"`
	N          int         `json:"n"`
	Shards     int         `json:"shards"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	HostCores  int         `json:"host_cores,omitempty"`
	Host       HostStats   `json:"host"`
	Points     []SkewPoint `json:"points"`
}

// Skew runs the hot-shard population with lane rebalancing off and on
// (same derived seed, same shard count — Options.Shards, default 4)
// and reports per-shard load balance, scheduler counters, and the
// wall-clock cost, plus the BENCH_skew.json artifact. It returns an
// error if any protocol metric differs between the two runs: lane
// migration must be invisible to results.
func Skew(o Options) (*Result, error) {
	o = o.withDefaults()
	n := skewDefaultN
	if len(o.Ns) > 0 {
		n = o.Ns[0]
	}
	shards := o.Shards
	if shards <= 1 {
		shards = skewDefaultShards
	}
	if n < 2*shards {
		return nil, fmt.Errorf("skew: N=%d too small for stride %d (need ≥ %d)", n, shards, 2*shards)
	}
	// Both points run the full adaptive scheduler except for the knob
	// under test, so the reported delta isolates rebalancing. The
	// aggressive window/threshold make migration respond within a tiny
	// smoke run as well as a full one.
	off := avmon.DefaultSchedulerConfig()
	off.RebalanceThreshold = 0
	on := avmon.DefaultSchedulerConfig()
	on.RebalanceThreshold = 1.2
	on.RebalanceWindow = 4
	scheds := []*avmon.SchedulerConfig{&off, &on}
	scens := make([]scenario, len(scheds))
	for i, sched := range scheds {
		scens[i] = scenario{
			kind: modelHotspot,
			n:    n,
			// Forgetful pinging lets monitoring back off from the
			// long-dead cold nodes; without it their lanes keep
			// receiving useless-ping deliveries forever and the skew
			// the model is built to produce washes out.
			opts:    avmon.NodeOptions{Forgetful: true},
			stride:  shards,
			warmup:  o.scaled(10*time.Minute, 4*time.Minute),
			measure: o.scaled(30*time.Minute, 8*time.Minute),
			shards:  shards,
			sched:   sched,
		}
	}
	pts := make([]SkewPoint, len(scens))
	err := forEachPoint(o, len(scens),
		func(i int) string { return fmt.Sprintf("skew rebalance=%t", i == 1) },
		func(i int) error {
			s := scens[i]
			// One shared seed: both points face the identical workload,
			// so the off/on delta is a paired comparison.
			s.seed = deriveSeed(o.Seed, 0)
			start := time.Now()
			out, err := run(s)
			if err != nil {
				return err
			}
			pts[i], err = skewPointMetrics(i == 1, s, out, time.Since(start))
			return err
		})
	if err != nil {
		return nil, err
	}
	if err := sameSkewProtocolMetrics(pts[0], pts[1]); err != nil {
		return nil, fmt.Errorf("skew: rebalancing changed protocol results: %w", err)
	}

	sched := &Table{
		Title: "Hot-shard population: scheduler response (paired seeds)",
		Header: []string{"rebalance", "barriers", "windows", "migrations", "lanes moved",
			"steps max/mean", "busy max/mean", "wall (s)"},
	}
	balance := &Table{
		Title:  "Hot-shard population: per-shard load",
		Header: []string{"rebalance", "shard", "steps", "busy (ms)"},
	}
	for _, p := range pts {
		sched.AddRow(fmt.Sprintf("%t", p.Rebalance), u64(p.Barriers), u64(p.Windows),
			u64(p.Migrations), u64(p.LanesMoved),
			f2(p.StepsImbalance), f2(p.BusyImbalance), f2(p.WallSeconds))
		for si := range p.ShardSteps {
			balance.AddRow(fmt.Sprintf("%t", p.Rebalance), itoa(si),
				u64(p.ShardSteps[si]), f2(float64(p.ShardBusyNS[si])/1e6))
		}
	}

	artifact, err := json.MarshalIndent(skewArtifact{
		Experiment: "skew",
		Seed:       o.Seed,
		Scale:      o.Scale,
		N:          n,
		Shards:     shards,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		HostCores:  runtime.NumCPU(),
		Host:       collectHostStats(),
		Points:     pts,
	}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("skew: marshal artifact: %w", err)
	}
	artifact = append(artifact, '\n')

	return &Result{
		ID:        "skew",
		Title:     "Lane rebalancing vs a hot-shard population (scheduler A/B, same seed)",
		Tables:    []*Table{sched, balance},
		Artifacts: map[string][]byte{SkewArtifactName: artifact},
	}, nil
}

// skewPointMetrics extracts one run's scheduler and protocol metrics.
func skewPointMetrics(rebalance bool, s scenario, out *outcome, wall time.Duration) (SkewPoint, error) {
	c := out.c
	st, ok := c.SchedStats()
	if !ok {
		return SkewPoint{}, fmt.Errorf("skew: run was not sharded")
	}
	p := SkewPoint{
		Rebalance:   rebalance,
		N:           s.n,
		Shards:      st.Shards,
		Stride:      s.stride,
		Barriers:    st.Barriers,
		Windows:     st.Windows,
		Migrations:  st.Migrations,
		LanesMoved:  st.LanesMoved,
		Events:      c.Steps(),
		AliveCount:  c.AliveCount(),
		WallSeconds: wall.Seconds(),
	}
	var stepsMax, stepsSum uint64
	var busyMax, busySum int64
	for _, sh := range st.PerShard {
		p.ShardSteps = append(p.ShardSteps, sh.Steps)
		p.ShardBusyNS = append(p.ShardBusyNS, sh.BusyNS)
		stepsSum += sh.Steps
		busySum += sh.BusyNS
		if sh.Steps > stepsMax {
			stepsMax = sh.Steps
		}
		if sh.BusyNS > busyMax {
			busyMax = sh.BusyNS
		}
	}
	if stepsSum > 0 {
		p.StepsImbalance = float64(stepsMax) * float64(st.Shards) / float64(stepsSum)
	}
	if busySum > 0 {
		p.BusyImbalance = float64(busyMax) * float64(st.Shards) / float64(busySum)
	}
	secs := out.measure.Seconds()
	var fill, bw stats.Welford
	for _, idx := range out.aliveIndexes() {
		nst := c.Stats(idx)
		fill.Add(float64(nst.PSSize) / float64(c.K()))
		bw.Add(float64(nst.Traffic.BytesOut) / secs)
	}
	p.PSFill = fill.Mean()
	p.BytesPerNodeSec = bw.Mean()
	return p, nil
}

// sameSkewProtocolMetrics asserts the protocol-visible fields of the
// off and on points match: migration may move lanes, never results.
func sameSkewProtocolMetrics(a, b SkewPoint) error {
	type pair struct {
		name string
		a, b any
	}
	for _, p := range []pair{
		{"events", a.Events, b.Events},
		{"alive", a.AliveCount, b.AliveCount},
		{"ps_fill", a.PSFill, b.PSFill},
		{"bytes_out_per_node_per_second", a.BytesPerNodeSec, b.BytesPerNodeSec},
	} {
		if p.a != p.b {
			return fmt.Errorf("%s: off %v vs on %v", p.name, p.a, p.b)
		}
	}
	return nil
}

func u64(v uint64) string { return fmt.Sprintf("%d", v) }
