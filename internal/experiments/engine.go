package experiments

// The parallel experiment engine. Every generator decomposes its
// sweep into independent points — one isolated simulation per
// N × scheme × seed combination — and hands the whole list to runAll,
// which fans the points across a bounded worker pool. Determinism is
// preserved by construction: point i always runs with the seed
// deriveSeed(o.Seed, i), and outcomes are returned in input order, so
// serial (Parallelism: 1) and parallel runs produce byte-identical
// tables and figures.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ProgressFunc receives a completion update each time a sweep point
// finishes: done points so far, the total for the current experiment
// sweep, and a short label naming the finished point. Calls are
// serialized and done increases by one per call; it reaches total
// only on success (a failing sweep aborts without running its
// remaining points).
type ProgressFunc func(done, total int, label string)

// deriveSeed maps (base seed, sweep-point index) to the point's
// simulation seed with a splitmix64 finalizer. Every point gets an
// independent, well-mixed stream, and the mapping depends only on the
// base seed and the point's position in the sweep — never on worker
// count or completion order.
func deriveSeed(base int64, idx int) int64 {
	z := uint64(base) + uint64(idx+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// parallelism resolves the worker count: Options.Parallelism if set,
// otherwise GOMAXPROCS.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// forEachPoint runs fn(0) .. fn(total-1) across the option-configured
// worker pool and blocks until every dispatched point has finished.
// Once any point fails, no further points are dispatched or started
// (at paper scale a point is hours of simulated time; finishing the
// sweep just to report an error would be hostile). The returned error
// is the lowest-index recorded failure; when several points fail
// near-simultaneously, which of the in-flight points still ran can
// vary, but an error return is guaranteed and the whole sweep is
// discarded either way. label names a point for progress reporting.
func forEachPoint(o Options, total int, label func(int) string, fn func(int) error) error {
	if total == 0 {
		return nil
	}
	workers := o.parallelism()
	if workers > total {
		workers = total
	}
	errs := make([]error, total)
	idxCh := make(chan int)
	var (
		wg       sync.WaitGroup
		failed   atomic.Bool
		progMu   sync.Mutex
		progDone int
	)
	report := func(i int) {
		if o.Progress == nil {
			return
		}
		progMu.Lock()
		progDone++
		o.Progress(progDone, total, label(i))
		progMu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if failed.Load() {
					continue // sweep already failed; skip pending points
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
					continue // a failed point is not a completion
				}
				report(i)
			}
		}()
	}
	for i := 0; i < total && !failed.Load(); i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// pointLabel names one scenario for progress output.
func pointLabel(s scenario) string {
	return fmt.Sprintf("%v N=%d", s.kind, s.n)
}

// runAll executes the scenarios as independent sweep points and
// returns their outcomes in input order. Point i runs with seed
// deriveSeed(o.Seed, i), overriding whatever seed the scenario
// carried, so each point is an independent replication and the full
// sweep is reproducible from Options.Seed alone.
//
// All outcomes are held until the sweep completes (tables are
// assembled serially in sweep order afterwards); peak memory is
// therefore proportional to the sweep size rather than Parallelism.
// Sweeps top out at ~24 points, which keeps this bounded; a generator
// that needed more should reduce points to rows inside the worker, as
// AblationRejoinWeight does with forEachPoint directly.
func runAll(o Options, scens []scenario) ([]*outcome, error) {
	return runAllPaired(o, scens, nil)
}

// runAllPaired is runAll for A/B comparison sweeps: groupOf maps a
// point to its workload group, and points in the same group share a
// derived seed. Variants of one workload then run against the same
// churn realization (common random numbers), so their reported delta
// isolates the variant rather than seed-to-seed noise. nil groupOf
// gives every point its own seed.
func runAllPaired(o Options, scens []scenario, groupOf func(int) int) ([]*outcome, error) {
	seedIdx := func(i int) int {
		if groupOf != nil {
			return groupOf(i)
		}
		return i
	}
	outs := make([]*outcome, len(scens))
	err := forEachPoint(o, len(scens),
		func(i int) string { return pointLabel(scens[i]) },
		func(i int) error {
			s := scens[i]
			s.seed = deriveSeed(o.Seed, seedIdx(i))
			s.shards = o.Shards // byte-identical at any value
			if s.sched == nil {
				s.sched = o.Scheduler // likewise
			}
			out, err := run(s)
			if err != nil {
				return err
			}
			outs[i] = out
			return nil
		})
	if err != nil {
		return nil, err
	}
	return outs, nil
}
