package experiments

import (
	"fmt"
	"time"

	"avmon/internal/stats"
)

// synthetic model kinds swept by Figures 3-10.
var syntheticKinds = []modelKind{modelSTAT, modelSYNTH, modelSYNTHBD}

// synthScenario builds the standard Section 5.1 scenario: default
// parameters (T = 1 min, cvs = 4·N^(1/4), K = log2 N), one hour of
// warm-up, then a 10% control group joining simultaneously (explicit
// for STAT and SYNTH, implicit late-born nodes for SYNTH-BD).
func synthScenario(o Options, kind modelKind, n int, measure time.Duration) scenario {
	s := scenario{
		kind:    kind,
		n:       n,
		warmup:  o.scaled(time.Hour, 10*time.Minute),
		measure: o.scaled(measure, 10*time.Minute),
		seed:    o.Seed,
	}
	if kind == modelSTAT || kind == modelSYNTH {
		s.controlFrac = 0.10
	}
	return s
}

// Figure3 reproduces "Average discovery times of first monitors for
// the control group nodes" across STAT, SYNTH, and SYNTH-BD for N in
// 100..2000.
func Figure3(o Options) (*Result, error) {
	o = o.withDefaults()
	table := &Table{
		Title:  "Average discovery time of first monitor (minutes)",
		Header: []string{"N", "STAT", "SYNTH", "SYNTH-BD"},
	}
	var scens []scenario
	for _, n := range o.ns() {
		for _, kind := range syntheticKinds {
			scens = append(scens, synthScenario(o, kind, n, 45*time.Minute))
		}
	}
	outs, err := runAll(o, scens)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, n := range o.ns() {
		row := []string{itoa(n)}
		for range syntheticKinds {
			times, _ := outs[i].firstDiscoveries(outs[i].controlOrLateBorn())
			row = append(row, f2(meanDiscoveryMinutes(times)))
			i++
		}
		table.AddRow(row...)
	}
	return &Result{
		ID:     "figure3",
		Title:  "Discovery time of first monitors vs N (synthetic models)",
		Tables: []*Table{table},
	}, nil
}

// discoveryCDF extracts the CDF of first-monitor discovery times in
// seconds from one finished run.
func discoveryCDF(out *outcome) (*stats.CDF, int) {
	times, missed := out.firstDiscoveries(out.controlOrLateBorn())
	var c stats.CDF
	for _, d := range times {
		c.Add(d.Seconds())
	}
	return &c, missed
}

// Figure4 reproduces the CDF of STAT discovery times (N = 100, 2000).
func Figure4(o Options) (*Result, error) {
	return discoveryCDFResult(o, "figure4", modelSTAT)
}

// Figure5 reproduces the CDF of SYNTH-BD discovery times.
func Figure5(o Options) (*Result, error) {
	return discoveryCDFResult(o, "figure5", modelSYNTHBD)
}

func discoveryCDFResult(o Options, id string, kind modelKind) (*Result, error) {
	o = o.withDefaults()
	ns := o.ns()
	edge := []int{ns[0], ns[len(ns)-1]}
	res := &Result{
		ID:    id,
		Title: fmt.Sprintf("CDF of first-monitor discovery time, %v", kind),
	}
	scens := make([]scenario, len(edge))
	for i, n := range edge {
		scens[i] = synthScenario(o, kind, n, 45*time.Minute)
	}
	outs, err := runAll(o, scens)
	if err != nil {
		return nil, err
	}
	for i, n := range edge {
		cdf, missed := discoveryCDF(outs[i])
		t := cdfTable(
			fmt.Sprintf("%v, N = %d (%d samples, %d undiscovered)", kind, n, cdf.N(), missed),
			"discovery time (s)", cdf, 13)
		t.AddRow("p93 (s)", f2(cdf.Percentile(93)))
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}

// Figure6 reproduces "Average discovery times of first L monitors",
// L = 1..3, for the largest swept N across the three models.
func Figure6(o Options) (*Result, error) {
	o = o.withDefaults()
	ns := o.ns()
	n := ns[len(ns)-1]
	table := &Table{
		Title:  fmt.Sprintf("Average time to discover first L monitors, N = %d (minutes)", n),
		Header: []string{"L", "STAT", "SYNTH", "SYNTH-BD"},
	}
	scens := make([]scenario, len(syntheticKinds))
	for i, kind := range syntheticKinds {
		scens[i] = synthScenario(o, kind, n, 60*time.Minute)
	}
	outs, err := runAll(o, scens)
	if err != nil {
		return nil, err
	}
	perKind := make(map[modelKind][]float64)
	for i, kind := range syntheticKinds {
		out := outs[i]
		group := out.controlOrLateBorn()
		for l := 1; l <= 3; l++ {
			var w stats.Welford
			for _, idx := range group {
				dts := out.c.Stats(idx).DiscoveryTimes
				if len(dts) >= l {
					w.Add(dts[l-1].Minutes())
				}
			}
			perKind[kind] = append(perKind[kind], w.Mean())
		}
	}
	for l := 1; l <= 3; l++ {
		table.AddRow(itoa(l),
			f2(perKind[modelSTAT][l-1]),
			f2(perKind[modelSYNTH][l-1]),
			f2(perKind[modelSYNTHBD][l-1]))
	}
	return &Result{
		ID:     "figure6",
		Title:  "Time to discovery of first L monitors",
		Tables: []*Table{table},
	}, nil
}

// compsPerSecond returns each group node's consistency-condition
// evaluations per second over the measurement window. Nodes born
// during the window are rated over their own lifetime, not the whole
// window, so late-born nodes are not under-counted.
func (o *outcome) compsPerSecond(group []int) []float64 {
	windowEnd := o.warmupEnd + o.measure
	out := make([]float64, 0, len(group))
	for _, idx := range group {
		st := o.c.Stats(idx)
		secs := o.measure.Seconds()
		if st.BornAtOffset > o.warmupEnd {
			secs = (windowEnd - st.BornAtOffset).Seconds()
		}
		if secs <= 0 {
			continue
		}
		delta := st.HashChecks - o.checksAtW[idx]
		out = append(out, float64(delta)/secs)
	}
	return out
}

// Figure7 reproduces "Average computations per second per node" vs N.
func Figure7(o Options) (*Result, error) {
	o = o.withDefaults()
	table := &Table{
		Title:  "Average consistency-condition computations per second per node",
		Header: []string{"N", "STAT", "STAT stddev", "SYNTH", "SYNTH stddev", "SYNTH-BD", "SYNTH-BD stddev"},
	}
	var scens []scenario
	for _, n := range o.ns() {
		for _, kind := range syntheticKinds {
			scens = append(scens, synthScenario(o, kind, n, 60*time.Minute))
		}
	}
	outs, err := runAll(o, scens)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, n := range o.ns() {
		row := []string{itoa(n)}
		for range syntheticKinds {
			out := outs[i]
			i++
			group := out.controlOrLateBorn()
			if len(group) == 0 {
				group = out.aliveIndexes()
			}
			var w stats.Welford
			for _, v := range out.compsPerSecond(group) {
				w.Add(v)
			}
			row = append(row, f2(w.Mean()), f2(w.Stddev()))
		}
		table.AddRow(row...)
	}
	return &Result{
		ID:     "figure7",
		Title:  "Computational overhead vs N (synthetic models)",
		Tables: []*Table{table},
	}, nil
}

// Figure8 reproduces the CDF of per-node computations per second.
func Figure8(o Options) (*Result, error) {
	o = o.withDefaults()
	ns := o.ns()
	edge := []int{ns[0], ns[len(ns)-1]}
	res := &Result{ID: "figure8", Title: "CDF of per-node computations per second"}
	var scens []scenario
	for _, kind := range syntheticKinds {
		for _, n := range edge {
			scens = append(scens, synthScenario(o, kind, n, 60*time.Minute))
		}
	}
	outs, err := runAll(o, scens)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, kind := range syntheticKinds {
		for _, n := range edge {
			out := outs[i]
			i++
			var c stats.CDF
			c.AddAll(out.compsPerSecond(out.aliveIndexes()))
			res.Tables = append(res.Tables,
				cdfTable(fmt.Sprintf("%v, N = %d", kind, n), "computations/s", &c, 9))
		}
	}
	return res, nil
}

// memoryEntries returns |PS|+|TS|+|CV| for each node in group.
func (o *outcome) memoryEntries(group []int) []float64 {
	out := make([]float64, 0, len(group))
	for _, idx := range group {
		out = append(out, float64(o.c.Stats(idx).MemoryEntries))
	}
	return out
}

// Figure9 reproduces "Average number of memory entries per node" vs N.
func Figure9(o Options) (*Result, error) {
	o = o.withDefaults()
	table := &Table{
		Title:  "Average memory entries per node (|PS|+|TS|+|CV|)",
		Header: []string{"N", "expected (2K+cvs)", "STAT", "SYNTH", "SYNTH-BD"},
	}
	var scens []scenario
	for _, n := range o.ns() {
		for _, kind := range syntheticKinds {
			scens = append(scens, synthScenario(o, kind, n, 60*time.Minute))
		}
	}
	outs, err := runAll(o, scens)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, n := range o.ns() {
		var row []string
		for range syntheticKinds {
			out := outs[i]
			i++
			if row == nil {
				expected := 2*out.c.K() + out.c.CVS()
				row = []string{itoa(n), itoa(expected)}
			}
			var w stats.Welford
			for _, v := range out.memoryEntries(out.aliveIndexes()) {
				w.Add(v)
			}
			row = append(row, f2(w.Mean()))
		}
		table.AddRow(row...)
	}
	return &Result{
		ID:     "figure9",
		Title:  "Memory overhead vs N (synthetic models)",
		Tables: []*Table{table},
	}, nil
}

// Figure10 reproduces the CDF of per-node memory entries.
func Figure10(o Options) (*Result, error) {
	o = o.withDefaults()
	ns := o.ns()
	edge := []int{ns[0], ns[len(ns)-1]}
	res := &Result{ID: "figure10", Title: "CDF of per-node memory entries"}
	var scens []scenario
	for _, kind := range syntheticKinds {
		for _, n := range edge {
			scens = append(scens, synthScenario(o, kind, n, 60*time.Minute))
		}
	}
	outs, err := runAll(o, scens)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, kind := range syntheticKinds {
		for _, n := range edge {
			out := outs[i]
			i++
			var c stats.CDF
			c.AddAll(out.memoryEntries(out.aliveIndexes()))
			res.Tables = append(res.Tables,
				cdfTable(fmt.Sprintf("%v, N = %d", kind, n), "|PS|+|TS|+|CV|", &c, 9))
		}
	}
	return res, nil
}
