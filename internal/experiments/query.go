package experiments

// The query experiment (beyond the paper): a load test of the
// production query plane — the report-verify-estimate flow that
// Service.QueryAvailability and Service.QueryBatch run over UDP —
// driven to millions of answers per second against a frozen simulated
// cluster. The cluster is warmed up under churn, then snapshotted:
// every monitor list and every (monitor, subject) estimate becomes a
// read-only serving table. The load generator then executes the real
// client pipeline against that table:
//
//   - every request and response passes through netstack.Encode and
//     netstack.Decode, so the wire codec is load-bearing;
//   - every monitor report is checked with avmon.VerifyReport, so the
//     paper's consistency verification is on the hot path;
//   - the cache-on arm runs the real avmon.AnswerCache.
//
// Two arms (cache-off, cache-on) are built from the SAME derived seed
// and warmed up independently; the experiment FAILS unless their
// protocol fingerprints are byte-identical (the paired-seed gate: the
// query plane is a pure reader and cluster construction is
// deterministic). Within each arm, batch regimes {1, 16, 64} resolve
// the identical query workload; the experiment also FAILS unless all
// six (arm, batch) regimes produce the identical answer fingerprint —
// proving the cache and the batching are result-invariant within one
// TTL window. Latency percentiles and answers/sec/core are the
// measured (non-gated) outputs, written to BENCH_query.json.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"time"

	"avmon"
	"avmon/internal/core"
	"avmon/internal/ids"
	"avmon/internal/netstack"
	"avmon/internal/stats"
)

// QueryArtifactName is the machine-readable output of the query
// experiment (written next to the tables by avmon-bench, checked into
// the repo like BENCH_chaos.json).
const QueryArtifactName = "BENCH_query.json"

// queryDefaultN is the cluster population when Options.Ns is not set.
const queryDefaultN = 240

// queryBatchSizes are the batched-frontend regimes swept per arm:
// one-subject round trips versus amortized AVAIL-BATCH payloads.
var queryBatchSizes = []int{1, 16, 64}

// queryBaseCount is the per-regime query volume at Scale 1.0;
// queryMinCount floors it so smoke runs still exercise every regime
// past the cold-cache transient.
const (
	queryBaseCount = 2_000_000
	queryMinCount  = 20_000
)

// queryEstimate is one serving-table cell: what a monitor would answer
// about a subject.
type queryEstimate struct {
	avail float64
	known bool
}

// querySnapshot is the frozen cluster's read-only serving table plus
// the shared verification scheme. It stands in for the network: serve
// answers a client datagram exactly as the addressed node would, with
// the codec round trip included.
type querySnapshot struct {
	scheme   avmon.SelectionScheme
	subjects []ids.ID                            // all member IDs, by index
	monitors map[ids.ID][]ids.ID                 // subject → its monitor report
	ests     map[ids.ID]map[ids.ID]queryEstimate // monitor → subject → estimate
}

// snapshotCluster freezes c into a serving table.
func snapshotCluster(c *avmon.Cluster) *querySnapshot {
	s := &querySnapshot{
		scheme:   c.Scheme(),
		subjects: make([]ids.ID, c.Size()),
		monitors: make(map[ids.ID][]ids.ID, c.Size()),
		ests:     make(map[ids.ID]map[ids.ID]queryEstimate),
	}
	for i := 0; i < c.Size(); i++ {
		subject := c.IDOf(i)
		s.subjects[i] = subject
		mons := c.MonitorsOf(i)
		s.monitors[subject] = mons
		for _, mon := range mons {
			mi, ok := c.IndexOf(mon)
			if !ok {
				continue
			}
			byMon := s.ests[mon]
			if byMon == nil {
				byMon = make(map[ids.ID]queryEstimate)
				s.ests[mon] = byMon
			}
			av, known := c.EstimateBy(mi, subject)
			byMon[subject] = queryEstimate{avail: av, known: known}
		}
	}
	return s
}

// serve plays the addressed node: it decodes the client's datagram,
// computes the answer from the frozen tables, and encodes the
// response — the same codec path a UDP deployment pays.
func (s *querySnapshot) serve(to ids.ID, datagram []byte) ([]byte, error) {
	req, err := netstack.Decode(datagram)
	if err != nil {
		return nil, fmt.Errorf("query: server decode: %w", err)
	}
	var resp *core.Message
	switch req.Type {
	case core.MsgReportReq:
		// Count ≤ 0 semantics: report every monitor (deterministic; the
		// live node randomizes subsets, which a load test must not).
		resp = &core.Message{
			Type: core.MsgReportResp, From: to, Seq: req.Seq, Nonce: req.Nonce,
			View: s.monitors[to],
		}
	case core.MsgAvailBatchReq:
		resp = &core.Message{
			Type: core.MsgAvailBatchResp, From: to, Seq: req.Seq, Nonce: req.Nonce,
			View:   req.View,
			Avails: make([]float64, len(req.View)),
			Knowns: make([]bool, len(req.View)),
		}
		byMon := s.ests[to]
		for i, subject := range req.View {
			e := byMon[subject]
			resp.Avails[i], resp.Knowns[i] = e.avail, e.known
		}
	default:
		return nil, fmt.Errorf("query: server got unexpected %v", req.Type)
	}
	out, err := netstack.Encode(resp)
	if err != nil {
		return nil, fmt.Errorf("query: server encode: %w", err)
	}
	return out, nil
}

// roundTrip encodes req, serves it at to, and decodes the response,
// checking nonce correlation — the full client-side wire cost.
func (s *querySnapshot) roundTrip(to ids.ID, req *core.Message) (*core.Message, error) {
	wire, err := netstack.Encode(req)
	if err != nil {
		return nil, fmt.Errorf("query: client encode: %w", err)
	}
	respWire, err := s.serve(to, wire)
	if err != nil {
		return nil, err
	}
	resp, err := netstack.Decode(respWire)
	if err != nil {
		return nil, fmt.Errorf("query: client decode: %w", err)
	}
	if resp.Nonce != req.Nonce {
		return nil, fmt.Errorf("query: response nonce %d does not correlate with request %d",
			resp.Nonce, req.Nonce)
	}
	return resp, nil
}

// queryAnswer is one resolved lookup. known is false when the subject
// has no monitors to vouch for it.
type queryAnswer struct {
	mean  float64
	known bool
}

// queryClient resolves batches against a snapshot, mirroring
// Service.QueryBatch: per-subject report fetch and verification, then
// one AVAIL-BATCH-REQ per distinct monitor. Each worker owns one
// client (the nonce counter is not shared).
type queryClient struct {
	snap  *querySnapshot
	from  ids.ID
	cache *avmon.AnswerCache // nil in the cache-off arm
	nonce uint64
}

// lookup resolves one batch of subject indexes, returning answers
// aligned with the batch.
func (q *queryClient) lookup(batch []int, now time.Time) ([]queryAnswer, error) {
	out := make([]queryAnswer, len(batch))
	type miss struct {
		pos     int
		subject ids.ID
		mons    []ids.ID
	}
	var misses []miss
	for pos, idx := range batch {
		subject := q.snap.subjects[idx]
		if q.cache != nil {
			if r, ok := q.cache.Get(subject, now); ok {
				out[pos] = queryAnswer{mean: r.Mean, known: true}
				continue
			}
		}
		misses = append(misses, miss{pos: pos, subject: subject})
	}

	// Phase 1: fetch and verify each missing subject's monitor report.
	for mi := range misses {
		m := &misses[mi]
		q.nonce++
		resp, err := q.roundTripReport(m.subject)
		if err != nil {
			return nil, err
		}
		if len(resp.View) == 0 {
			continue // unmonitored subject: answer stays unknown
		}
		verified, err := avmon.VerifyReport(q.snap.scheme, m.subject, resp.View, len(resp.View))
		if err != nil {
			return nil, fmt.Errorf("query: frozen cluster produced an unverifiable report: %w", err)
		}
		m.mons = verified
	}

	// Phase 2: one batched availability request per distinct monitor,
	// in first-seen order (determinism of the serving sequence).
	perMonitor := make(map[ids.ID][]int) // monitor → miss indexes
	var monOrder []ids.ID
	for mi := range misses {
		for _, mon := range misses[mi].mons {
			if _, seen := perMonitor[mon]; !seen {
				monOrder = append(monOrder, mon)
			}
			perMonitor[mon] = append(perMonitor[mon], mi)
		}
	}
	type estKey struct {
		mi  int
		mon ids.ID
	}
	ests := make(map[estKey]float64)
	for _, mon := range monOrder {
		idxs := perMonitor[mon]
		subjects := make([]ids.ID, len(idxs))
		for j, mi := range idxs {
			subjects[j] = misses[mi].subject
		}
		q.nonce++
		resp, err := q.snap.roundTrip(mon, &core.Message{
			Type: core.MsgAvailBatchReq, From: q.from, Nonce: q.nonce, View: subjects,
		})
		if err != nil {
			return nil, err
		}
		if len(resp.View) != len(subjects) || len(resp.Avails) != len(subjects) {
			return nil, fmt.Errorf("query: batch response shape %d/%d, want %d",
				len(resp.View), len(resp.Avails), len(subjects))
		}
		for j, mi := range idxs {
			if resp.Knowns[j] {
				ests[estKey{mi: mi, mon: mon}] = resp.Avails[j]
			}
		}
	}

	// Phase 3: aggregate per subject in verified-monitor order and
	// populate the cache with the assembled reports.
	for mi := range misses {
		m := &misses[mi]
		report := &avmon.AvailabilityReport{Subject: m.subject}
		var sum float64
		for _, mon := range m.mons {
			est, ok := ests[estKey{mi: mi, mon: mon}]
			if !ok {
				continue
			}
			report.Monitors = append(report.Monitors, mon)
			report.Estimates = append(report.Estimates, est)
			sum += est
		}
		if len(report.Monitors) == 0 {
			continue
		}
		report.Mean = sum / float64(len(report.Monitors))
		out[m.pos] = queryAnswer{mean: report.Mean, known: true}
		if q.cache != nil {
			q.cache.Put(report, now)
		}
	}
	return out, nil
}

// roundTripReport fetches one subject's monitor report over the wire.
func (q *queryClient) roundTripReport(subject ids.ID) (*core.Message, error) {
	return q.snap.roundTrip(subject, &core.Message{
		Type: core.MsgReportReq, From: q.from, Nonce: q.nonce,
	})
}

// QueryPoint is one (arm, batch) regime as serialized into
// BENCH_query.json. Latency and throughput are wall-clock measurements
// (they vary run to run); Fingerprint is the deterministic FNV-64a of
// every answer in workload order, identical across all regimes by the
// experiment's gate.
type QueryPoint struct {
	Arm     string `json:"arm"`
	Batch   int    `json:"batch"`
	Queries int    `json:"queries"`
	Workers int    `json:"workers"`

	P50Micros            float64 `json:"p50_micros"`
	P99Micros            float64 `json:"p99_micros"`
	AnswersPerSec        float64 `json:"answers_per_sec"`
	AnswersPerSecPerCore float64 `json:"answers_per_sec_per_core"`
	// CacheHitRate is hits/(hits+misses) over the regime; zero in the
	// cache-off arm.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Fingerprint hashes (subject, mean, known) for every query in
	// workload order.
	Fingerprint string `json:"answer_fingerprint"`
}

// queryRunRegime drives one (arm, batch) regime: the full workload,
// split into contiguous chunks across workers, each resolving
// batch-sized lookups against the snapshot.
func queryRunRegime(snap *querySnapshot, arm string, batchSize, queryCount, workers int, seed int64) (*QueryPoint, error) {
	var cache *avmon.AnswerCache
	if arm == "cache-on" {
		// One TTL window covers the whole regime: the monitoring period
		// of a frozen cluster is effectively infinite, so answers must
		// be byte-identical with the cache on.
		cache = avmon.NewAnswerCache(time.Hour, 0)
	}
	n := len(snap.subjects)
	subjectOf := func(qi int) int {
		return int(uint64(deriveSeed(seed, qi)) % uint64(n))
	}
	answers := make([]queryAnswer, queryCount)
	latencies := make([][]float64, workers)
	errs := make([]error, workers)
	chunk := (queryCount + workers - 1) / workers
	clientBase := ids.Sim(n) // an identity outside the cluster

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := w*chunk, (w+1)*chunk
			if hi > queryCount {
				hi = queryCount
			}
			if lo >= hi {
				return
			}
			client := &queryClient{snap: snap, from: clientBase, cache: cache,
				nonce: uint64(w) << 32}
			lats := make([]float64, 0, (hi-lo+batchSize-1)/batchSize)
			batch := make([]int, 0, batchSize)
			for qi := lo; qi < hi; qi += batchSize {
				batch = batch[:0]
				for j := qi; j < qi+batchSize && j < hi; j++ {
					batch = append(batch, subjectOf(j))
				}
				t0 := time.Now()
				got, err := client.lookup(batch, t0)
				if err != nil {
					errs[w] = err
					return
				}
				dt := float64(time.Since(t0).Nanoseconds()) / 1e3 // µs
				lats = append(lats, dt)
				copy(answers[qi:], got)
			}
			latencies[w] = lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Latency CDF over batch completions: every query in a batch
	// completes when its batch does, and all batches in a regime share
	// one size, so batch percentiles are query percentiles.
	cdf := &stats.CDF{}
	for _, lats := range latencies {
		cdf.AddAll(lats)
	}
	fp := fnv.New64a()
	var buf [8]byte
	for qi, a := range answers {
		binary.BigEndian.PutUint64(buf[:], uint64(subjectOf(qi)))
		_, _ = fp.Write(buf[:])
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(a.mean))
		_, _ = fp.Write(buf[:])
		k := byte(0)
		if a.known {
			k = 1
		}
		_, _ = fp.Write([]byte{k})
	}
	pt := &QueryPoint{
		Arm:                  arm,
		Batch:                batchSize,
		Queries:              queryCount,
		Workers:              workers,
		P50Micros:            cdf.Percentile(0.50),
		P99Micros:            cdf.Percentile(0.99),
		AnswersPerSec:        float64(queryCount) / elapsed.Seconds(),
		AnswersPerSecPerCore: float64(queryCount) / elapsed.Seconds() / float64(workers),
		Fingerprint:          fmt.Sprintf("%016x", fp.Sum64()),
	}
	if cache != nil {
		st := cache.Stats()
		if total := st.Hits + st.Misses; total > 0 {
			pt.CacheHitRate = float64(st.Hits) / float64(total)
		}
	}
	return pt, nil
}

// queryArtifact is the BENCH_query.json envelope.
type queryArtifact struct {
	Experiment    string       `json:"experiment"`
	Seed          int64        `json:"seed"`
	Scale         float64      `json:"scale"`
	N             int          `json:"n"`
	WarmupSeconds float64      `json:"warmup_seconds"`
	Batches       []int        `json:"batches"`
	Proto         chaosProto   `json:"proto"`
	Host          HostStats    `json:"host"`
	Points        []QueryPoint `json:"points"`
}

// Query load-tests the production query plane against a frozen
// simulated cluster: two paired-seed arms (cache-off, cache-on) × the
// batch regimes {1, 16, 64}, all resolving the identical workload
// through the real wire codec, the real report verification, and (arm
// two) the real answer cache. The experiment fails unless the two
// arms' cluster protocol fingerprints are byte-identical and all six
// regimes produce the identical answer fingerprint. Options.Ns[0]
// overrides the population (default 240); query volume scales with
// Options.Scale.
func Query(o Options) (*Result, error) {
	o = o.withDefaults()
	n := queryDefaultN
	if len(o.Ns) > 0 {
		n = o.Ns[0]
	}
	if n < 20 {
		return nil, fmt.Errorf("query: N=%d too small (need ≥ 20 for meaningful monitor sets)", n)
	}
	warmup := o.scaled(4*time.Hour, 48*time.Minute)
	queryCount := int(queryBaseCount * o.Scale)
	if queryCount < queryMinCount {
		queryCount = queryMinCount
	}
	workers := o.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Warm up one cluster per arm from the SAME derived seed; the gate
	// below demands byte-identical protocol state.
	arms := []string{"cache-off", "cache-on"}
	snaps := make([]*querySnapshot, len(arms))
	protos := make([]chaosProto, len(arms))
	err := forEachPoint(o, len(arms),
		func(i int) string { return fmt.Sprintf("query warmup %s", arms[i]) },
		func(i int) error {
			model, err := avmon.NewSYNTHModel(n, 0.2)
			if err != nil {
				return err
			}
			c, err := avmon.NewCluster(avmon.ClusterConfig{
				N: n, Seed: deriveSeed(o.Seed, 0), Shards: o.Shards, Scheduler: o.Scheduler,
			}, model)
			if err != nil {
				return err
			}
			c.Run(warmup)
			snaps[i] = snapshotCluster(c)
			protos[i] = chaosProtoOf(c)
			return nil
		})
	if err != nil {
		return nil, err
	}
	if err := sameChaosProto(protos[0], protos[1]); err != nil {
		return nil, fmt.Errorf("query: cache-off and cache-on clusters diverged on one seed: %w", err)
	}

	// Run the regimes. The load generator saturates the machine, so
	// regimes run sequentially — parallelism lives inside each regime.
	pts := make([]QueryPoint, 0, len(arms)*len(queryBatchSizes))
	workSeed := deriveSeed(o.Seed, 1)
	for ai, arm := range arms {
		for _, b := range queryBatchSizes {
			pt, err := queryRunRegime(snaps[ai], arm, b, queryCount, workers, workSeed)
			if err != nil {
				return nil, err
			}
			pts = append(pts, *pt)
		}
	}
	for _, pt := range pts[1:] {
		if pt.Fingerprint != pts[0].Fingerprint {
			return nil, fmt.Errorf("query: %s/batch=%d answers (fingerprint %s) differ from %s/batch=%d (%s): cache or batching changed results",
				pt.Arm, pt.Batch, pt.Fingerprint, pts[0].Arm, pts[0].Batch, pts[0].Fingerprint)
		}
	}

	perf := &Table{
		Title: "Query plane load test: latency and throughput by cache arm and batch size",
		Header: []string{"arm", "batch", "queries", "workers", "p50 (µs)", "p99 (µs)",
			"answers/s", "answers/s/core", "hit rate"},
	}
	for _, pt := range pts {
		perf.AddRow(pt.Arm, itoa(pt.Batch), itoa(pt.Queries), itoa(pt.Workers),
			f2(pt.P50Micros), f2(pt.P99Micros),
			fmt.Sprintf("%.3g", pt.AnswersPerSec), fmt.Sprintf("%.3g", pt.AnswersPerSecPerCore),
			f4(pt.CacheHitRate))
	}
	gate := &Table{
		Title:  "Determinism gates: paired-seed cluster state and answer fingerprints",
		Header: []string{"gate", "value", "status"},
	}
	gate.AddRow("protocol fingerprint (cache-off vs cache-on)",
		fmt.Sprintf("events=%d bytes_out=%d", protos[0].Events, protos[0].BytesOut), "identical")
	gate.AddRow("answer fingerprint (6 regimes)", pts[0].Fingerprint, "identical")

	artifact, err := json.MarshalIndent(queryArtifact{
		Experiment:    "query",
		Seed:          o.Seed,
		Scale:         o.Scale,
		N:             n,
		WarmupSeconds: warmup.Seconds(),
		Batches:       queryBatchSizes,
		Proto:         protos[0],
		Host:          collectHostStats(),
		Points:        pts,
	}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("query: marshal artifact: %w", err)
	}
	artifact = append(artifact, '\n')
	return &Result{
		ID:        "query",
		Title:     "Production query plane load test (cache × batch regimes, paired seeds)",
		Tables:    []*Table{perf, gate},
		Artifacts: map[string][]byte{QueryArtifactName: artifact},
	}, nil
}
