package experiments

import (
	"bufio"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// HostStats is the shared host section of every BENCH artifact: a
// snapshot of the process's memory and GC behaviour taken when the
// artifact is assembled, plus the machine shape. All fields describe
// the machine that produced the file and vary run to run; consumers
// comparing artifacts across PRs must never gate on them, only track
// them (peak RSS and GC counts are the perf trajectory the memory-diet
// work is measured by).
type HostStats struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	HostCores  int `json:"host_cores"`

	// Go heap at collection time, cumulative allocation, and completed
	// GC cycles (runtime.MemStats HeapAlloc / TotalAlloc / NumGC).
	HeapAllocMB  float64 `json:"heap_alloc_mb"`
	TotalAllocMB float64 `json:"total_alloc_mb"`
	NumGC        uint32  `json:"num_gc"`

	// Peak resident set size of the whole process (Linux VmHWM;
	// 0 = not measured on this platform).
	PeakRSSMB float64 `json:"peak_rss_mb"`
}

// collectHostStats snapshots the process for an artifact's host
// section.
func collectHostStats() HostStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return HostStats{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		HostCores:    runtime.NumCPU(),
		HeapAllocMB:  float64(ms.HeapAlloc) / (1 << 20),
		TotalAllocMB: float64(ms.TotalAlloc) / (1 << 20),
		NumGC:        ms.NumGC,
		PeakRSSMB:    peakRSSMB(),
	}
}

// peakRSSMB reads the process's peak resident set size from
// /proc/self/status (Linux). It returns 0 where the file or the VmHWM
// field is unavailable; the JSON consumer treats 0 as "not measured".
// Note the value is process-wide: with parallel sweep points it
// reflects the whole sweep, not one cluster.
func peakRSSMB() float64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}
