package experiments

import (
	"fmt"
	"math"
	"time"

	"avmon"
	"avmon/internal/hashing"
	"avmon/internal/ids"
	"avmon/internal/membership"
	"avmon/internal/stats"
)

// Table1 reproduces the paper's Table 1: memory/bandwidth per round
// (M), expected discovery time (D), and computations per round (C)
// for Broadcast [11] and the AVMON variants. It emits both the
// analytical values at N = 1 million (the paper's running example) and
// measured values from a small live simulation.
func Table1(o Options) (*Result, error) {
	o = o.withDefaults()

	analytic := &Table{
		Title:  "Analytical comparison at N = 1,000,000 (Table 1)",
		Header: []string{"approach", "cvs", "M (entries/round)", "E[D] (rounds)", "C (checks/round)"},
	}
	const bigN = 1_000_000
	logN := int(math.Round(math.Log2(bigN)))
	addVariant := func(name string, cvs int) {
		analytic.AddRow(name, itoa(cvs),
			itoa(cvs),
			f2(hashing.ExpectedDiscoveryTime(cvs, bigN)),
			itoa(2*cvs*cvs))
	}
	analytic.AddRow("Broadcast [11]", "-", itoa(bigN), "O(log N), one-time", "2 per join per node")
	addVariant("AVMON generic, cvs=log N", logN)
	addVariant("AVMON Optimal-MD, cvs=(2N)^(1/3)", avmon.VariantMD.CVS(bigN))
	addVariant("AVMON Optimal-MDC/DC, cvs=N^(1/4)", avmon.VariantMDC.CVS(bigN))

	// Measured comparison on a small population.
	const n = 512
	measured := &Table{
		Title:  fmt.Sprintf("Measured comparison at N = %d", n),
		Header: []string{"approach", "cvs", "bytes/round/node", "mean discovery (rounds)", "checks/round/node"},
	}
	// Broadcast: N joins, each costing N-1 messages of 8 bytes;
	// discovery is immediate.
	sel, err := hashing.NewSelector(hashing.FastHasher{}, hashing.DefaultK(n), n)
	if err != nil {
		return nil, err
	}
	b := membership.NewBroadcastDiscovery(sel)
	for i := 0; i < n; i++ {
		b.Join(ids.Sim(i))
	}
	measured.AddRow("Broadcast [11]", "-",
		fmt.Sprintf("%.0f (join burst)", float64(b.BytesSent)/float64(n)),
		"0 (immediate)",
		f2(float64(b.HashChecks)/float64(n)))

	variants := []struct {
		name    string
		variant avmon.Variant
	}{
		{"AVMON generic, cvs=log N", avmon.VariantGeneric},
		{"AVMON Optimal-MD", avmon.VariantMD},
		{"AVMON Optimal-MDC", avmon.VariantMDC},
	}
	scens := make([]scenario, len(variants))
	for i, v := range variants {
		s := synthScenario(o, modelSTAT, n, 45*time.Minute)
		s.opts.Variant = v.variant
		scens[i] = s
	}
	// One seed group: all three variants run against the same (static)
	// realization, so M/D/C differences isolate the cvs policy.
	outs, err := runAllPaired(o, scens, func(int) int { return 0 })
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		out := outs[i]
		period := time.Minute
		rounds := out.measure.Minutes()
		var bytesPer, checksPer stats.Welford
		for _, idx := range out.aliveIndexes() {
			st := out.c.Stats(idx)
			bytesPer.Add(float64(st.Traffic.BytesOut) / rounds)
			checksPer.Add(float64(st.HashChecks-out.checksAtW[idx]) / rounds)
		}
		times, _ := out.firstDiscoveries(out.controlOrLateBorn())
		var disc stats.Welford
		for _, d := range times {
			disc.Add(float64(d) / float64(period))
		}
		measured.AddRow(v.name, itoa(out.c.CVS()),
			f2(bytesPer.Mean()), f2(disc.Mean()), f2(checksPer.Mean()))
	}
	return &Result{
		ID:     "table1",
		Title:  "AVMON variants vs Broadcast: M, D, C",
		Tables: []*Table{analytic, measured},
	}, nil
}
