package experiments

// The chaos experiment (beyond the paper): adversarial and correlated-
// failure scenarios that the steady-state sweeps never exercise —
// a colluding/eclipsing monitor ring, a whole availability zone
// failing and healing, a flash crowd, and a mass leave. Every scenario
// is a paired-seed A/B: three arms share one derived seed, so the
// attack arm faces the identical churn-and-network realization as its
// control and the reported delta isolates the fault.
//
// The arms are deliberately asymmetric:
//
//   - baseline: no chaos plumbing at all (nil Collusion, empty outage
//     schedule, zeroed storm), simulated in one uninterrupted Run;
//   - control: the chaos plumbing installed at magnitude zero,
//     simulated as 24 sampling steps;
//   - attack: the fault injected, same 24 sampling steps.
//
// The experiment FAILS (returns an error) unless baseline and control
// report byte-identical protocol metrics. That single gate proves two
// non-trivial properties at once: the zero-magnitude plumbing draws no
// stray randomness and schedules no perturbing events, and chopping a
// run into RunFor steps at sample boundaries cannot change results.

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"

	"avmon"
)

// ChaosArtifactName is the machine-readable output of the chaos
// experiment (written next to the tables by avmon-bench, checked into
// the repo like BENCH_skew.json).
const ChaosArtifactName = "BENCH_chaos.json"

// chaosDefaultN is the population when Options.Ns is not set.
const chaosDefaultN = 240

// chaosSamples is the number of equal sampling steps each measured arm
// is chopped into; the fault window spans steps 6..12.
const (
	chaosSamples    = 24
	chaosFaultStart = 6
	chaosFaultEnd   = 12
)

// chaosArm identifies one leg of a scenario's three-way comparison.
type chaosArm int

const (
	armBaseline chaosArm = iota // no chaos plumbing, one uninterrupted Run
	armControl                  // plumbing at magnitude zero, stepped run
	armAttack                   // fault injected, stepped run
)

func (a chaosArm) String() string {
	switch a {
	case armBaseline:
		return "baseline"
	case armControl:
		return "control"
	case armAttack:
		return "attack"
	default:
		return "?"
	}
}

// chaosTimeline is the shared schedule every scenario aligns to.
type chaosTimeline struct {
	step       time.Duration // one sampling step
	total      time.Duration // chaosSamples * step
	faultStart time.Duration // fault injected here
	faultEnd   time.Duration // fault healed here
}

func chaosTimes(o Options) chaosTimeline {
	step := o.scaled(4*time.Hour, 48*time.Minute) / chaosSamples
	return chaosTimeline{
		step:       step,
		total:      chaosSamples * step,
		faultStart: chaosFaultStart * step,
		faultEnd:   chaosFaultEnd * step,
	}
}

// chaosSpec describes one scenario: a name, a one-line summary for CLI
// listings, and a builder that assembles the cluster for a given arm.
type chaosSpec struct {
	name    string
	summary string
	build   func(o Options, n int, seed int64, tl chaosTimeline, arm chaosArm) (*avmon.Cluster, error)
}

func chaosSpecs() []chaosSpec {
	ms := time.Millisecond
	return []chaosSpec{
		{
			name: "collusion",
			summary: "a colluding quarter of the population turns on its victims: " +
				"monitoring pings suppressed, reports defamed to 0%",
			build: func(o Options, n int, seed int64, _ chaosTimeline, arm chaosArm) (*avmon.Cluster, error) {
				cfg := avmon.ClusterConfig{N: n, Seed: seed, Shards: o.Shards, Scheduler: o.Scheduler}
				switch arm {
				case armControl:
					cfg.Collusion = &avmon.CollusionConfig{Fraction: 0, SuppressPings: true, ForgedAvail: 0}
				case armAttack:
					cfg.Collusion = &avmon.CollusionConfig{Fraction: 0.25, SuppressPings: true, ForgedAvail: 0}
				}
				return avmon.NewCluster(cfg, avmon.NewSTATModel(n))
			},
		},
		{
			name: "zone-outage",
			summary: "one of three WAN zones fails for a quarter of the run, then the " +
				"partition heals; measures the coverage dip and recovery time",
			build: func(o Options, n int, seed int64, tl chaosTimeline, arm chaosArm) (*avmon.Cluster, error) {
				lat, err := avmon.NewZoneLatency([][]time.Duration{
					{10 * ms, 80 * ms, 150 * ms},
					{85 * ms, 15 * ms, 200 * ms},
					{140 * ms, 210 * ms, 12 * ms},
				}, 0.25)
				if err != nil {
					return nil, err
				}
				var schedule []avmon.ZoneOutage
				if arm == armAttack {
					// Round-trip the schedule through the textual format
					// so the parser the CLI and the fuzzer exercise is
					// load-bearing here too.
					text := fmt.Sprintf("1@%s+%s", tl.faultStart, tl.faultEnd-tl.faultStart)
					if schedule, err = avmon.ParseOutageSchedule(text); err != nil {
						return nil, err
					}
				}
				model, err := avmon.NewZoneOutageModel(n, 3, schedule)
				if err != nil {
					return nil, err
				}
				return avmon.NewCluster(avmon.ClusterConfig{
					N: n, Seed: seed, Shards: o.Shards, Scheduler: o.Scheduler,
					LatencyModel: lat,
				}, model)
			},
		},
		{
			name: "flash-crowd",
			summary: "a join storm: half again the population arrives inside two " +
				"sampling steps; discovery must absorb the surge",
			build: func(o Options, n int, seed int64, tl chaosTimeline, arm chaosArm) (*avmon.Cluster, error) {
				cfg := avmon.StormConfig{N: n}
				if arm == armAttack {
					cfg.SurgeNodes = n / 2
					cfg.SurgeAt = tl.faultStart
					cfg.SurgeWindow = tl.faultEnd - tl.faultStart
				}
				model, err := avmon.NewStormModel(cfg)
				if err != nil {
					return nil, err
				}
				return avmon.NewCluster(avmon.ClusterConfig{
					N: n, Seed: seed, Shards: o.Shards, Scheduler: o.Scheduler,
				}, model)
			},
		},
		{
			name: "mass-leave",
			summary: "40% of the population departs inside two sampling steps and " +
				"rejoins after the fault window; self-repair must restore coverage",
			build: func(o Options, n int, seed int64, tl chaosTimeline, arm chaosArm) (*avmon.Cluster, error) {
				cfg := avmon.StormConfig{N: n}
				if arm == armAttack {
					cfg.LeaveNodes = 2 * n / 5
					cfg.LeaveAt = tl.faultStart
					cfg.LeaveWindow = 2 * tl.step
					cfg.HealAt = tl.faultEnd
				}
				model, err := avmon.NewStormModel(cfg)
				if err != nil {
					return nil, err
				}
				return avmon.NewCluster(avmon.ClusterConfig{
					N: n, Seed: seed, Shards: o.Shards, Scheduler: o.Scheduler,
				}, model)
			},
		},
	}
}

// ChaosScenarioInfo names one chaos scenario for CLI listings
// (avmon-bench -run list, -chaos validation).
type ChaosScenarioInfo struct {
	Name    string
	Summary string
}

// ChaosScenarios lists every chaos scenario in run order.
func ChaosScenarios() []ChaosScenarioInfo {
	specs := chaosSpecs()
	out := make([]ChaosScenarioInfo, len(specs))
	for i, s := range specs {
		out[i] = ChaosScenarioInfo{Name: s.name, Summary: s.summary}
	}
	return out
}

// ChaosScenarioNames lists the valid -chaos scenario names in run
// order.
func ChaosScenarioNames() []string {
	specs := chaosSpecs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.name
	}
	return out
}

// chaosSelect resolves Options.Chaos to scenario specs, rejecting
// unknown names with the full valid list in the error.
func chaosSelect(names []string) ([]chaosSpec, error) {
	specs := chaosSpecs()
	if len(names) == 0 {
		return specs, nil
	}
	byName := make(map[string]chaosSpec, len(specs))
	for _, s := range specs {
		byName[s.name] = s
	}
	out := make([]chaosSpec, 0, len(names))
	for _, name := range names {
		s, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("chaos: unknown scenario %q (valid: %s)",
				name, strings.Join(ChaosScenarioNames(), ", "))
		}
		out = append(out, s)
	}
	return out, nil
}

// chaosProto is the aggregate protocol-visible state of one finished
// arm. Every field is a deterministic function of (scenario, arm,
// seed, shard count); the baseline/control gate compares these
// exactly.
type chaosProto struct {
	Events     uint64 `json:"events"`
	Alive      int    `json:"alive"`
	Size       int    `json:"size"`
	PSTotal    int    `json:"ps_total"`
	CVTotal    int    `json:"cv_total"`
	MonPings   uint64 `json:"mon_pings"`
	MonAcks    uint64 `json:"mon_acks"`
	BytesOut   uint64 `json:"bytes_out"`
	HashChecks uint64 `json:"hash_checks"`
}

func chaosProtoOf(c *avmon.Cluster) chaosProto {
	p := chaosProto{Events: c.Steps(), Alive: c.AliveCount(), Size: c.Size()}
	for i := 0; i < c.Size(); i++ {
		st := c.Stats(i)
		p.PSTotal += st.PSSize
		p.CVTotal += st.CVSize
		p.MonPings += st.MonPingsSent
		p.MonAcks += st.MonAcks
		p.BytesOut += st.Traffic.BytesOut
		p.HashChecks += st.HashChecks
	}
	return p
}

// sameChaosProto asserts two arms' protocol metrics match exactly.
func sameChaosProto(a, b chaosProto) error {
	type pair struct {
		name string
		a, b any
	}
	for _, p := range []pair{
		{"events", a.Events, b.Events},
		{"alive", a.Alive, b.Alive},
		{"size", a.Size, b.Size},
		{"ps_total", a.PSTotal, b.PSTotal},
		{"cv_total", a.CVTotal, b.CVTotal},
		{"mon_pings", a.MonPings, b.MonPings},
		{"mon_acks", a.MonAcks, b.MonAcks},
		{"bytes_out", a.BytesOut, b.BytesOut},
		{"hash_checks", a.HashChecks, b.HashChecks},
	} {
		if p.a != p.b {
			return fmt.Errorf("%s: %v vs %v", p.name, p.a, p.b)
		}
	}
	return nil
}

// chaosMonFill returns the mean, over alive honest nodes, of the
// number of alive honest monitors each has discovered divided by the
// target monitor count K — the system's useful monitoring capacity.
// It dips when monitors die (zone outage), when they defect
// (collusion), and when newcomers have not been discovered yet (flash
// crowd), and climbs back as the protocol self-repairs.
func chaosMonFill(c *avmon.Cluster) float64 {
	honest, fill := 0, 0.0
	k := float64(c.K())
	for i := 0; i < c.Size(); i++ {
		if c.IsColluder(i) || !c.Stats(i).Alive {
			continue
		}
		honest++
		useful := 0
		for _, mon := range c.MonitorsOf(i) {
			mi, ok := c.IndexOf(mon)
			if !ok || c.IsColluder(mi) || !c.Stats(mi).Alive {
				continue
			}
			useful++
		}
		fill += float64(useful) / k
	}
	if honest == 0 {
		return 0
	}
	return fill / float64(honest)
}

// chaosEclipsed returns the fraction of alive honest nodes with zero
// alive honest monitors — fully eclipsed: nobody trustworthy measures
// them.
func chaosEclipsed(c *avmon.Cluster) float64 {
	honest, eclipsed := 0, 0
	for i := 0; i < c.Size(); i++ {
		if c.IsColluder(i) || !c.Stats(i).Alive {
			continue
		}
		honest++
		seen := false
		for _, mon := range c.MonitorsOf(i) {
			mi, ok := c.IndexOf(mon)
			if ok && !c.IsColluder(mi) && c.Stats(mi).Alive {
				seen = true
				break
			}
		}
		if !seen {
			eclipsed++
		}
	}
	if honest == 0 {
		return 0
	}
	return float64(eclipsed) / float64(honest)
}

// chaosAffected is the Figure 20 criterion over a whole cluster: the
// fraction of measured honest nodes whose monitor-averaged estimate is
// off from their true availability by more than 0.2.
func chaosAffected(c *avmon.Cluster) float64 {
	affected, measured := 0, 0
	for i := 0; i < c.Size(); i++ {
		st := c.Stats(i)
		if c.IsColluder(i) || !st.Alive {
			continue
		}
		truth := st.TrueAvailability()
		if truth <= 0 {
			continue
		}
		var sum float64
		count := 0
		for _, mon := range c.MonitorsOf(i) {
			mi, ok := c.IndexOf(mon)
			if !ok {
				continue
			}
			est, known := c.EstimateBy(mi, c.IDOf(i))
			if !known {
				continue
			}
			sum += est
			count++
		}
		if count == 0 {
			continue
		}
		measured++
		if math.Abs(sum/float64(count)-truth) > 0.2 {
			affected++
		}
	}
	if measured == 0 {
		return 0
	}
	return float64(affected) / float64(measured)
}

// ChaosPoint is one (scenario, arm) cell as serialized into
// BENCH_chaos.json. The baseline arm carries protocol metrics only;
// measured arms add the sampled coverage series and the derived
// dip/recovery summary.
type ChaosPoint struct {
	Scenario string `json:"scenario"`
	Arm      string `json:"arm"`
	N        int    `json:"n"`

	// MonFill is the mean alive-honest-monitors-per-K series, sampled
	// once per step; sample i is taken at virtual time (i+1)·step.
	MonFill []float64 `json:"mon_fill,omitempty"`
	// FillPreFault is the last sample strictly before the fault
	// window, FillDip the minimum inside it, FillEnd the final sample.
	FillPreFault float64 `json:"fill_pre_fault"`
	FillDip      float64 `json:"fill_dip"`
	FillEnd      float64 `json:"fill_end"`
	// RecoverySeconds is the virtual time from the heal to the first
	// sample whose fill regained the pre-fault level (-1 = never
	// within the run).
	RecoverySeconds float64 `json:"recovery_seconds"`
	// Eclipsed is the fraction of honest alive nodes with no alive
	// honest monitor at run end; Affected is the Figure 20
	// mis-estimation criterion at run end.
	Eclipsed float64 `json:"eclipsed_fraction"`
	Affected float64 `json:"affected_fraction"`

	Proto chaosProto `json:"proto"`
}

// chaosRunArm simulates one arm of one scenario and extracts its
// metrics.
func chaosRunArm(spec chaosSpec, arm chaosArm, o Options, n int, seed int64, tl chaosTimeline) (*ChaosPoint, error) {
	c, err := spec.build(o, n, seed, tl, arm)
	if err != nil {
		return nil, fmt.Errorf("chaos %s/%s: %w", spec.name, arm, err)
	}
	pt := &ChaosPoint{Scenario: spec.name, Arm: arm.String(), N: n, RecoverySeconds: -1}
	if arm == armBaseline {
		// One uninterrupted run: the reference the stepped control arm
		// must match byte-for-byte.
		c.Run(tl.total)
		pt.Proto = chaosProtoOf(c)
		return pt, nil
	}
	fill := make([]float64, chaosSamples)
	for i := 0; i < chaosSamples; i++ {
		c.Run(tl.step)
		fill[i] = chaosMonFill(c)
	}
	pt.MonFill = fill
	// Sample i lands at (i+1)·step; the fault spans steps
	// [chaosFaultStart, chaosFaultEnd)·step. Boundary samples could
	// fall on either side of the injection event, so the pre-fault
	// reference stops one sample early and the dip window includes the
	// boundary.
	pt.FillPreFault = fill[chaosFaultStart-2]
	pt.FillDip = fill[chaosFaultStart-1]
	for i := chaosFaultStart - 1; i < chaosFaultEnd; i++ {
		if fill[i] < pt.FillDip {
			pt.FillDip = fill[i]
		}
	}
	pt.FillEnd = fill[chaosSamples-1]
	for i := chaosFaultEnd; i < chaosSamples; i++ {
		if fill[i] >= pt.FillPreFault {
			pt.RecoverySeconds = (time.Duration(i+1)*tl.step - tl.faultEnd).Seconds()
			break
		}
	}
	pt.Eclipsed = chaosEclipsed(c)
	pt.Affected = chaosAffected(c)
	pt.Proto = chaosProtoOf(c)
	return pt, nil
}

// chaosArtifact is the BENCH_chaos.json envelope.
type chaosArtifact struct {
	Experiment  string       `json:"experiment"`
	Seed        int64        `json:"seed"`
	Scale       float64      `json:"scale"`
	N           int          `json:"n"`
	Shards      int          `json:"shards"`
	Samples     int          `json:"samples"`
	StepSeconds float64      `json:"step_seconds"`
	FaultStartS float64      `json:"fault_start_seconds"`
	FaultEndS   float64      `json:"fault_end_seconds"`
	Host        HostStats    `json:"host"`
	Points      []ChaosPoint `json:"points"`
}

// Chaos runs the adversarial and correlated-failure scenario suite:
// collusion/eclipse, zone outage with partition heal, flash crowd, and
// mass leave. Every scenario runs three arms on one derived seed —
// baseline (no chaos plumbing, uninterrupted), control (plumbing at
// magnitude zero, stepped), attack (fault on, stepped) — and the
// experiment returns an error unless each scenario's control arm is
// byte-identical to its baseline, proving the plumbing itself perturbs
// nothing. Options.Chaos selects a scenario subset; Options.Ns[0]
// overrides the population (default 240).
func Chaos(o Options) (*Result, error) {
	o = o.withDefaults()
	specs, err := chaosSelect(o.Chaos)
	if err != nil {
		return nil, err
	}
	n := chaosDefaultN
	if len(o.Ns) > 0 {
		n = o.Ns[0]
	}
	if n < 20 {
		return nil, fmt.Errorf("chaos: N=%d too small (need ≥ 20 for meaningful cohorts)", n)
	}
	tl := chaosTimes(o)
	arms := []chaosArm{armBaseline, armControl, armAttack}
	pts := make([]*ChaosPoint, len(specs)*len(arms))
	err = forEachPoint(o, len(pts),
		func(i int) string {
			return fmt.Sprintf("chaos %s/%s", specs[i/len(arms)].name, arms[i%len(arms)])
		},
		func(i int) error {
			spec, arm := specs[i/len(arms)], arms[i%len(arms)]
			// All three arms share the scenario's derived seed: the
			// attack delta is a paired comparison on one realization.
			pt, err := chaosRunArm(spec, arm, o, n, deriveSeed(o.Seed, i/len(arms)), tl)
			if err != nil {
				return err
			}
			pts[i] = pt
			return nil
		})
	if err != nil {
		return nil, err
	}
	gate := &Table{
		Title:  "Control-arm gate: zero-magnitude chaos plumbing is a no-op (baseline vs stepped control)",
		Header: []string{"scenario", "events", "mon pings", "bytes out", "gate"},
	}
	for si, spec := range specs {
		base, ctrl := pts[si*len(arms)], pts[si*len(arms)+1]
		if err := sameChaosProto(base.Proto, ctrl.Proto); err != nil {
			return nil, fmt.Errorf("chaos %s: control arm diverged from the no-attack baseline: %w",
				spec.name, err)
		}
		gate.AddRow(spec.name, u64(base.Proto.Events), u64(base.Proto.MonPings),
			u64(base.Proto.BytesOut), "identical")
	}
	cover := &Table{
		Title: "Chaos scenarios: useful monitoring capacity under fault (paired seeds)",
		Header: []string{"scenario", "arm", "fill pre-fault", "fill dip", "fill end",
			"recovery (min)", "eclipsed", "affected", "alive", "events"},
	}
	flat := make([]ChaosPoint, 0, len(pts))
	for _, pt := range pts {
		flat = append(flat, *pt)
		if pt.Arm == armBaseline.String() {
			continue
		}
		rec := "-"
		if pt.RecoverySeconds >= 0 {
			rec = f2(pt.RecoverySeconds / 60)
		}
		cover.AddRow(pt.Scenario, pt.Arm, f4(pt.FillPreFault), f4(pt.FillDip), f4(pt.FillEnd),
			rec, f4(pt.Eclipsed), f4(pt.Affected), itoa(pt.Proto.Alive), u64(pt.Proto.Events))
	}
	artifact, err := json.MarshalIndent(chaosArtifact{
		Experiment:  "chaos",
		Seed:        o.Seed,
		Scale:       o.Scale,
		N:           n,
		Shards:      o.Shards,
		Samples:     chaosSamples,
		StepSeconds: tl.step.Seconds(),
		FaultStartS: tl.faultStart.Seconds(),
		FaultEndS:   tl.faultEnd.Seconds(),
		Host:        collectHostStats(),
		Points:      flat,
	}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("chaos: marshal artifact: %w", err)
	}
	artifact = append(artifact, '\n')
	return &Result{
		ID:        "chaos",
		Title:     "Adversarial & chaos scenario suite (paired-seed A/B with a control-arm gate)",
		Tables:    []*Table{cover, gate},
		Artifacts: map[string][]byte{ChaosArtifactName: artifact},
	}, nil
}
