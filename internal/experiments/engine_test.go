package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"testing"
)

func TestDeriveSeed(t *testing.T) {
	seen := make(map[int64]bool)
	for _, base := range []int64{0, 1, 7, -3} {
		for idx := 0; idx < 500; idx++ {
			s := deriveSeed(base, idx)
			if seen[s] {
				t.Fatalf("collision at base=%d idx=%d", base, idx)
			}
			seen[s] = true
			if s2 := deriveSeed(base, idx); s2 != s {
				t.Fatalf("deriveSeed not stable: %d vs %d", s, s2)
			}
		}
	}
}

func TestParallelismResolution(t *testing.T) {
	if got := (Options{}).parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default parallelism = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Options{Parallelism: 3}).parallelism(); got != 3 {
		t.Errorf("explicit parallelism = %d, want 3", got)
	}
}

func TestForEachPointRunsAllAndReportsProgress(t *testing.T) {
	const total = 17
	ran := make([]bool, total)
	var events []string
	lastDone := 0
	o := Options{
		Parallelism: 4,
		Progress: func(done, tot int, label string) {
			if tot != total {
				t.Errorf("total = %d, want %d", tot, total)
			}
			if done != lastDone+1 {
				t.Errorf("done = %d after %d; progress not serialized", done, lastDone)
			}
			lastDone = done
			events = append(events, label)
		},
	}
	err := forEachPoint(o, total,
		func(i int) string { return fmt.Sprintf("point-%d", i) },
		func(i int) error { ran[i] = true; return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ran {
		if !r {
			t.Errorf("point %d never ran", i)
		}
	}
	if lastDone != total || len(events) != total {
		t.Errorf("progress ended at %d with %d events, want %d", lastDone, len(events), total)
	}
}

func TestForEachPointReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	fail37 := func(i int) error {
		switch i {
		case 3:
			return errLow
		case 7:
			return errHigh
		}
		return nil
	}
	// Serial: point 7 is never dispatched after 3 fails, so the
	// lowest-index failure is returned deterministically.
	err := forEachPoint(Options{Parallelism: 1}, 10, func(int) string { return "" }, fail37)
	if err != errLow {
		t.Errorf("serial err = %v, want the lowest-index failure %v", err, errLow)
	}
	// Parallel: which in-flight points still ran can vary, but an
	// error return is guaranteed.
	err = forEachPoint(Options{Parallelism: 8}, 10, func(int) string { return "" }, fail37)
	if err != errLow && err != errHigh {
		t.Errorf("parallel err = %v, want a recorded failure", err)
	}
	if err := forEachPoint(Options{Parallelism: 8}, 0, nil, nil); err != nil {
		t.Errorf("empty sweep errored: %v", err)
	}
}

func TestForEachPointStopsDispatchAfterFailure(t *testing.T) {
	errBoom := errors.New("boom")
	ran := make([]bool, 10)
	err := forEachPoint(Options{Parallelism: 1}, len(ran),
		func(i int) string { return "" },
		func(i int) error {
			ran[i] = true
			if i == 2 {
				return errBoom
			}
			return nil
		})
	if err != errBoom {
		t.Errorf("err = %v, want %v", err, errBoom)
	}
	// With one worker, the point after the failure may already be in
	// the channel, but nothing beyond it may be dispatched.
	for i := 4; i < len(ran); i++ {
		if ran[i] {
			t.Errorf("point %d dispatched after failure at point 2", i)
		}
	}
}

// TestRunAllPairedSharesRealization checks the common-random-numbers
// contract: points in one seed group run against the same churn
// realization, while ungrouped points get independent draws.
func TestRunAllPairedSharesRealization(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	o := Options{Scale: 0.01, Seed: 3, Parallelism: 2}.withDefaults()
	s := synthScenario(o, modelSYNTH, 40, 0)
	totalChecks := func(out *outcome) uint64 {
		var sum uint64
		for i := 0; i < out.c.Size(); i++ {
			sum += out.c.Stats(i).HashChecks
		}
		return sum
	}
	paired, err := runAllPaired(o, []scenario{s, s}, func(int) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if a, b := totalChecks(paired[0]), totalChecks(paired[1]); a != b {
		t.Errorf("paired points diverged: %d vs %d hash checks", a, b)
	}
	unpaired, err := runAll(o, []scenario{s, s})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := totalChecks(unpaired[0]), totalChecks(unpaired[1]); a == b {
		t.Errorf("unpaired points identical (%d checks); seeds not independent", a)
	}
}

// TestParallelMatchesSerial is the engine's core guarantee: a parallel
// run of an experiment produces output byte-identical to a serial run
// with the same Options, because every sweep point derives its seed
// from (Seed, point index) rather than from scheduling.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	for _, id := range []string{"table1", "figure3"} {
		id := id
		t.Run(id, func(t *testing.T) {
			render := func(parallelism int) string {
				o := tinyOptions()
				o.Parallelism = parallelism
				res, err := Registry()[id](o)
				if err != nil {
					t.Fatalf("%s at parallelism %d: %v", id, parallelism, err)
				}
				return res.String()
			}
			serial := render(1)
			parallel := render(8)
			if serial != parallel {
				t.Errorf("%s: parallel output differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
					id, serial, parallel)
			}
		})
	}
}

// TestShardedSweepMatchesSerial is the same guarantee one level down:
// sharding a single simulation run across P engine shards
// (Options.Shards, avmon-bench -shards) changes nothing about an
// experiment's rendered output at any shard count. The wan experiment
// covers the heterogeneous latency/loss models, whose sharded runs use
// each model's MinLatency floor as the adaptive lookahead; chaos
// covers the adversarial suite (collusion hooks, zone-outage events,
// storm shocks) plus its stepped RunFor sampling loop.
func TestShardedSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	for _, id := range []string{"table1", "figure3", "wan", "chaos"} {
		id := id
		t.Run(id, func(t *testing.T) {
			render := func(shards int) string {
				o := tinyOptions()
				o.Shards = shards
				res, err := Registry()[id](o)
				if err != nil {
					t.Fatalf("%s at shards %d: %v", id, shards, err)
				}
				return res.String()
			}
			serial := render(0)
			for _, shards := range []int{1, 2, 8} {
				if got := render(shards); got != serial {
					t.Errorf("%s: output at shards=%d differs from serial\n--- serial ---\n%s\n--- shards=%d ---\n%s",
						id, shards, serial, shards, got)
				}
			}
		})
	}
}

// TestScaleShardedSpeedupColumns checks the scale experiment's sharded
// rerun: the in-sweep serial/sharded equality assertion passes and the
// artifact carries the speedup fields.
func TestScaleShardedSpeedupColumns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	o := tinyOptions()
	o.Shards = 2
	res, err := Scale(o)
	if err != nil {
		t.Fatal(err)
	}
	data, ok := res.Artifacts[ScaleArtifactName]
	if !ok {
		t.Fatal("scale artifact missing")
	}
	var art struct {
		HostCores int `json:"host_cores"`
		Points    []struct {
			Shards             int     `json:"shards"`
			WallSecondsSharded float64 `json:"wall_seconds_sharded"`
			Speedup            float64 `json:"speedup"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if art.HostCores < 1 {
		t.Errorf("host_cores = %d", art.HostCores)
	}
	for i, p := range art.Points {
		if p.Shards != 2 {
			t.Errorf("point %d: shards = %d, want 2", i, p.Shards)
		}
		if p.WallSecondsSharded <= 0 || p.Speedup <= 0 {
			t.Errorf("point %d: wall_seconds_sharded = %v, speedup = %v", i, p.WallSecondsSharded, p.Speedup)
		}
	}
}
