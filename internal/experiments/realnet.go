package experiments

// The realnet experiment (beyond the paper): every other generator in
// this package predicts AVMON's behavior inside the discrete-event
// simulator. This one checks those predictions against reality — it
// boots hundreds of real avmon.Service instances (real goroutines,
// real codec bytes, real wall-clock tickers) over two transports: the
// in-process memnet loopback (simnet latency/loss models applied in
// wall time) and genuine 127.0.0.1 UDP sockets. The same regime is
// then run through the simulator, and the experiment FAILS unless the
// real deployment's discovery time, monitoring coverage, and per-node
// bandwidth land within the stated tolerances of the sim's
// predictions. BENCH_realnet.json records both arms and the
// tolerances; unlike the other BENCH artifacts it is not
// byte-deterministic, because half of it is measured wall-clock
// behavior.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"avmon"
	"avmon/internal/ids"
	"avmon/internal/memnet"
	"avmon/internal/netstack"
	"avmon/internal/observer"
	"avmon/internal/simnet"
	"avmon/internal/stats"
)

// RealnetArtifactName is the machine-readable output of the realnet
// experiment (written next to the tables by avmon-bench, checked into
// the repo like BENCH_wan.json).
const RealnetArtifactName = "BENCH_realnet.json"

// realnetDefaultN is the deployment size when Options.Ns is unset:
// large enough to be a real many-node system (and satisfy the ≥200
// harness bar), small enough that two full wall-clock arms stay well
// under a minute.
const realnetDefaultN = 240

// realnetK and realnetCVS pin the protocol parameters for both arms
// explicitly so the sim predicts exactly the deployed configuration.
const (
	realnetK   = 8
	realnetCVS = 10
)

// RealnetTolerances states how far reality may drift from the sim's
// prediction before the experiment fails. Wall-clock scheduling noise,
// boot staggering, and scrape-resolution quantization make the two
// arms statistically — not numerically — comparable, hence ratio
// bands rather than equality.
type RealnetTolerances struct {
	// MinDiscoveredFrac is the floor on the fraction of control
	// joiners that discover a monitor, in both arms.
	MinDiscoveredFrac float64 `json:"min_discovered_frac"`
	// DiscoveryRatioMax bounds real/sim mean discovery time (in
	// protocol periods) from both sides: the ratio must lie within
	// [1/max, max] after adding DiscoverySlackPeriods of absolute
	// slack (scrape resolution + boot stagger).
	DiscoveryRatioMax     float64 `json:"discovery_ratio_max"`
	DiscoverySlackPeriods float64 `json:"discovery_slack_periods"`
	// CoverageAbsMax bounds |real − sim| mean |PS|/K.
	CoverageAbsMax float64 `json:"coverage_abs_max"`
	// BandwidthRatioMin/Max bound real/sim bytes per node per period.
	BandwidthRatioMin float64 `json:"bandwidth_ratio_min"`
	BandwidthRatioMax float64 `json:"bandwidth_ratio_max"`
}

// realnetTolerances are the stated gates. They are deliberately loose
// — a factor of ~2.5 on timing, a factor of 3 on bandwidth — because
// they must hold on loaded CI machines; what they still catch is the
// protocol behaving *qualitatively* differently over a real network
// than the simulator claims (discovery stalling, coverage collapsing,
// traffic blowing up).
var realnetTolerances = RealnetTolerances{
	MinDiscoveredFrac:     0.8,
	DiscoveryRatioMax:     2.5,
	DiscoverySlackPeriods: 2,
	CoverageAbsMax:        0.25,
	BandwidthRatioMin:     1.0 / 3.0,
	BandwidthRatioMax:     3.0,
}

// RealnetPoint is one transport mode's real-vs-sim comparison as
// serialized into BENCH_realnet.json.
type RealnetPoint struct {
	Mode        string  `json:"mode"` // "memnet" or "udp"
	N           int     `json:"n"`
	K           int     `json:"k"`
	ControlSize int     `json:"control_size"`
	PeriodMS    float64 `json:"period_ms"` // real-arm protocol period

	// Real arm (measured wall-clock behavior).
	Discovered             int     `json:"discovered"`
	MeanDiscoveryPeriods   float64 `json:"mean_discovery_periods"`
	Coverage               float64 `json:"coverage"` // mean |PS|/K
	BytesPerNodePeriod     float64 `json:"bytes_per_node_period"`
	DatagramsPerNodePeriod float64 `json:"datagrams_per_node_period"`
	DroppedDatagrams       uint64  `json:"dropped_datagrams"`
	InboxOverflows         uint64  `json:"inbox_overflows,omitempty"`

	// Sim arm (the prediction for the same N/K/CVS regime).
	SimDiscovered           int     `json:"sim_discovered"`
	SimControlSize          int     `json:"sim_control_size"`
	SimMeanDiscoveryPeriods float64 `json:"sim_mean_discovery_periods"`
	SimCoverage             float64 `json:"sim_coverage"`
	SimBytesPerNodePeriod   float64 `json:"sim_bytes_per_node_period"`

	// Gate evaluation.
	DiscoveryRatio  float64 `json:"discovery_ratio"`
	CoverageAbsDiff float64 `json:"coverage_abs_diff"`
	BandwidthRatio  float64 `json:"bandwidth_ratio"`
	GatePass        bool    `json:"gate_pass"`
	GateDetail      string  `json:"gate_detail,omitempty"`

	WallSeconds float64 `json:"wall_seconds"`
}

// realnetArtifact is the BENCH_realnet.json envelope.
type realnetArtifact struct {
	Experiment    string            `json:"experiment"`
	Seed          int64             `json:"seed"`
	Scale         float64           `json:"scale"`
	N             int               `json:"n"`
	GOMAXPROCS    int               `json:"gomaxprocs"`
	Deterministic bool              `json:"deterministic"` // always false: half is wall clock
	Tolerances    RealnetTolerances `json:"tolerances"`
	Host          HostStats         `json:"host"`
	Points        []RealnetPoint    `json:"points"`
}

// realnetArm is everything measured from one real deployment.
type realnetArm struct {
	discovered             int
	controlSize            int
	meanDiscoveryPeriods   float64
	coverage               float64
	bytesPerNodePeriod     float64
	datagramsPerNodePeriod float64
	droppedDatagrams       uint64
	inboxOverflows         uint64
}

// realnetOpts are the per-node protocol knobs shared by both arms
// (periods differ: the sim keeps its 1-virtual-minute default, the
// real arm compresses the period to wall-clock milliseconds — all
// comparisons are period-normalized).
func realnetOpts(period time.Duration) avmon.NodeOptions {
	return avmon.NodeOptions{
		K:             realnetK,
		CVS:           realnetCVS,
		Period:        period,
		MonitorPeriod: period,
		Hash:          avmon.HashFast,
	}
}

// runRealnetArm boots n real services over the transports produced by
// listen, measures discovery of the late-joining control group and
// steady-state coverage/bandwidth, and tears everything down. stats is
// called at the end for network-level drop counters (nil-able).
func runRealnetArm(n int, period time.Duration, seed int64,
	listen func(i int) (id ids.ID, tr avmon.Transport, traffic observer.Traffic, err error),
	netStats func() (dropped, overflows uint64)) (*realnetArm, error) {

	ctl := n / 10
	if ctl < 1 {
		ctl = 1
	}
	base := n - ctl
	rng := rand.New(rand.NewSource(seed))

	type inst struct {
		svc     *avmon.Service
		traffic observer.Traffic
	}
	instances := make([]inst, 0, n)
	addrs := make([]string, 0, n)
	defer func() {
		for _, in := range instances {
			in.svc.Stop()
		}
	}()

	boot := func(i int, bootstrap string) error {
		id, tr, traffic, err := listen(i)
		if err != nil {
			return err
		}
		svc, err := avmon.NewService(avmon.ServiceConfig{
			Addr:      id.String(),
			Bootstrap: bootstrap,
			N:         n,
			Options:   realnetOpts(period),
			Seed:      seed + int64(i) + 1,
			Transport: tr,
		})
		if err != nil {
			_ = tr.Close() // NewService failed: the transport is still ours
			return fmt.Errorf("realnet: NewService %d: %w", i, err)
		}
		if err := svc.Start(); err != nil {
			return fmt.Errorf("realnet: Start %d: %w", i, err)
		}
		instances = append(instances, inst{svc: svc, traffic: traffic})
		addrs = append(addrs, id.String())
		return nil
	}

	// Boot the base population, bootstrapped in a binary tree so join
	// load spreads instead of hammering node 0.
	for i := 0; i < base; i++ {
		bs := ""
		if i > 0 {
			bs = addrs[i/2]
		}
		if err := boot(i, bs); err != nil {
			return nil, err
		}
	}

	// Warm up: let the coarse views mix before the control group joins.
	warmupDeadline := time.Now().Add(30 * period)
	for time.Now().Before(warmupDeadline) {
		ready := 0
		for _, in := range instances {
			if ps, _, _, _ := in.svc.Stats(); ps > 0 {
				ready++
			}
		}
		if ready >= base*8/10 {
			break
		}
		time.Sleep(period / 2)
	}

	// Enroll the control joiners and watch their discovery through the
	// observer side channel (scrape resolution: half a period).
	obs := observer.New(period / 2)
	for i := base; i < n; i++ {
		if err := boot(i, addrs[rng.Intn(base)]); err != nil {
			return nil, err
		}
		in := instances[len(instances)-1]
		obs.Add(observer.Target{Node: in.svc, Traffic: in.traffic})
	}
	obs.Start()
	defer obs.Stop()

	discoveryDeadline := time.Now().Add(40 * period)
	for time.Now().Before(discoveryDeadline) {
		found := 0
		for i := 0; i < ctl; i++ {
			if _, ok := obs.DiscoveryTime(i); ok {
				found++
			}
		}
		if found == ctl {
			break
		}
		time.Sleep(period / 2)
	}

	arm := &realnetArm{controlSize: ctl}
	var disc stats.Welford
	for i := 0; i < ctl; i++ {
		if d, ok := obs.DiscoveryTime(i); ok {
			arm.discovered++
			disc.Add(float64(d) / float64(period))
		}
	}
	arm.meanDiscoveryPeriods = disc.Mean()

	// Steady-state measurement window: snapshot traffic, wait, diff.
	type snap struct{ bytes, datagrams uint64 }
	before := make([]snap, len(instances))
	for i, in := range instances {
		before[i] = snap{in.traffic.WireBytesSent(), in.traffic.DatagramsSent()}
	}
	const measurePeriods = 15
	time.Sleep(measurePeriods * period)

	var fill, bw, dg stats.Welford
	for i, in := range instances {
		ps, _, _, _ := in.svc.Stats()
		fill.Add(float64(ps) / float64(realnetK))
		bw.Add(float64(in.traffic.WireBytesSent()-before[i].bytes) / measurePeriods)
		dg.Add(float64(in.traffic.DatagramsSent()-before[i].datagrams) / measurePeriods)
	}
	arm.coverage = fill.Mean()
	arm.bytesPerNodePeriod = bw.Mean()
	arm.datagramsPerNodePeriod = dg.Mean()
	if netStats != nil {
		arm.droppedDatagrams, arm.inboxOverflows = netStats()
	}
	return arm, nil
}

// realnetSim runs the simulator's prediction for the same regime: a
// static system of n nodes with 10% late joiners, default (1-minute)
// periods, measured over the same number of periods the real arm uses.
func realnetSim(n int, seed int64) (*RealnetPoint, error) {
	out, err := run(scenario{
		kind:        modelSTAT,
		n:           n,
		opts:        realnetOpts(0), // 0 = the sim's 1-minute default
		warmup:      10 * time.Minute,
		measure:     15 * time.Minute,
		controlFrac: 0.1,
		seed:        seed,
	})
	if err != nil {
		return nil, err
	}
	control := out.controlOrLateBorn()
	times, missed := out.firstDiscoveries(control)
	p := &RealnetPoint{
		SimControlSize: len(control),
		SimDiscovered:  len(control) - missed,
		// Period = 1 virtual minute, so discovery minutes ARE periods.
		SimMeanDiscoveryPeriods: meanDiscoveryMinutes(times),
	}
	var fill, bw stats.Welford
	for _, idx := range out.aliveIndexes() {
		st := out.c.Stats(idx)
		fill.Add(float64(st.PSSize) / float64(out.c.K()))
		bw.Add(float64(st.Traffic.BytesOut) / out.measure.Minutes())
	}
	p.SimCoverage = fill.Mean()
	p.SimBytesPerNodePeriod = bw.Mean()
	return p, nil
}

// realnetGate evaluates one mode's real arm against the sim
// prediction, filling the comparison fields and the pass/fail verdict.
func realnetGate(p *RealnetPoint, tol RealnetTolerances) {
	detail := ""
	fail := func(format string, args ...interface{}) {
		if detail != "" {
			detail += "; "
		}
		detail += fmt.Sprintf(format, args...)
	}

	if frac := float64(p.Discovered) / float64(p.ControlSize); frac < tol.MinDiscoveredFrac {
		fail("real discovered %d/%d < %.0f%%", p.Discovered, p.ControlSize, tol.MinDiscoveredFrac*100)
	}
	if frac := float64(p.SimDiscovered) / float64(p.SimControlSize); frac < tol.MinDiscoveredFrac {
		fail("sim discovered %d/%d < %.0f%%", p.SimDiscovered, p.SimControlSize, tol.MinDiscoveredFrac*100)
	}
	if p.SimMeanDiscoveryPeriods > 0 {
		p.DiscoveryRatio = p.MeanDiscoveryPeriods / p.SimMeanDiscoveryPeriods
	}
	// Two-sided timing band with absolute slack for scrape resolution.
	slack := tol.DiscoverySlackPeriods
	if p.MeanDiscoveryPeriods > p.SimMeanDiscoveryPeriods*tol.DiscoveryRatioMax+slack {
		fail("discovery %.2f periods > sim %.2f × %.1f + %.0f", p.MeanDiscoveryPeriods,
			p.SimMeanDiscoveryPeriods, tol.DiscoveryRatioMax, slack)
	}
	if p.MeanDiscoveryPeriods < p.SimMeanDiscoveryPeriods/tol.DiscoveryRatioMax-slack {
		fail("discovery %.2f periods < sim %.2f ÷ %.1f − %.0f (too fast to be the same protocol)",
			p.MeanDiscoveryPeriods, p.SimMeanDiscoveryPeriods, tol.DiscoveryRatioMax, slack)
	}
	p.CoverageAbsDiff = p.Coverage - p.SimCoverage
	if p.CoverageAbsDiff < 0 {
		p.CoverageAbsDiff = -p.CoverageAbsDiff
	}
	if p.CoverageAbsDiff > tol.CoverageAbsMax {
		fail("coverage |%.2f − %.2f| > %.2f", p.Coverage, p.SimCoverage, tol.CoverageAbsMax)
	}
	if p.SimBytesPerNodePeriod > 0 {
		p.BandwidthRatio = p.BytesPerNodePeriod / p.SimBytesPerNodePeriod
	}
	if p.BandwidthRatio < tol.BandwidthRatioMin || p.BandwidthRatio > tol.BandwidthRatioMax {
		fail("bandwidth ratio %.2f outside [%.2f, %.2f]", p.BandwidthRatio,
			tol.BandwidthRatioMin, tol.BandwidthRatioMax)
	}
	p.GatePass = detail == ""
	p.GateDetail = detail
}

// Realnet boots the real deployment arms (memnet loopback, then
// 127.0.0.1 UDP), runs the matching simulation, and fails unless
// reality lands within the stated tolerances of the prediction.
// Options.Ns[0] overrides the deployment size; Options.Scale scales
// the real-arm protocol period (floor 60ms).
func Realnet(o Options) (*Result, error) {
	o = o.withDefaults()
	n := realnetDefaultN
	if len(o.Ns) > 0 {
		n = o.Ns[0]
	}
	if n < 20 {
		return nil, fmt.Errorf("realnet: N must be ≥ 20, got %d", n)
	}
	period := o.scaled(200*time.Millisecond, 60*time.Millisecond)
	tol := realnetTolerances

	progress := func(done int, label string) {
		if o.Progress != nil {
			o.Progress(done, 3, label)
		}
	}

	// The prediction arm runs once; both real modes compare against it.
	sim, err := realnetSim(n, deriveSeed(o.Seed, 0))
	if err != nil {
		return nil, fmt.Errorf("realnet: sim arm: %w", err)
	}
	progress(1, "realnet sim prediction")

	pts := make([]RealnetPoint, 0, 2)
	runMode := func(mode string, done int,
		listen func(i int) (ids.ID, avmon.Transport, observer.Traffic, error),
		netStats func() (uint64, uint64)) error {
		start := time.Now()
		arm, err := runRealnetArm(n, period, deriveSeed(o.Seed, modeSeedIndex(mode)), listen, netStats)
		if err != nil {
			return fmt.Errorf("realnet: %s arm: %w", mode, err)
		}
		p := *sim
		p.Mode = mode
		p.N = n
		p.K = realnetK
		p.PeriodMS = float64(period) / float64(time.Millisecond)
		p.ControlSize = arm.controlSize
		p.Discovered = arm.discovered
		p.MeanDiscoveryPeriods = arm.meanDiscoveryPeriods
		p.Coverage = arm.coverage
		p.BytesPerNodePeriod = arm.bytesPerNodePeriod
		p.DatagramsPerNodePeriod = arm.datagramsPerNodePeriod
		p.DroppedDatagrams = arm.droppedDatagrams
		p.InboxOverflows = arm.inboxOverflows
		p.WallSeconds = time.Since(start).Seconds()
		realnetGate(&p, tol)
		pts = append(pts, p)
		progress(done, "realnet "+mode)
		return nil
	}

	// Mode 1: memnet loopback with a 2ms constant modeled latency.
	lat, err := simnet.NewConstantLatency(2 * time.Millisecond)
	if err != nil {
		return nil, err
	}
	memNet := memnet.New(memnet.Config{Latency: lat, Seed: deriveSeed(o.Seed, 1), InboxDepth: 8192})
	memTransports := make(map[int]*memnet.Transport)
	err = runMode("memnet", 2, func(i int) (ids.ID, avmon.Transport, observer.Traffic, error) {
		id := ids.Sim(i + 1)
		tr, err := memNet.Listen(id)
		if err != nil {
			return ids.None, nil, nil, err
		}
		memTransports[i] = tr
		return id, tr, tr, nil
	}, func() (uint64, uint64) {
		var dropped uint64
		for _, tr := range memTransports {
			dropped += tr.DroppedDatagrams()
		}
		st := memNet.Stats()
		return dropped, st.InboxOverflows
	})
	memNet.Close()
	if err != nil {
		return nil, err
	}

	// Mode 2: real UDP sockets on 127.0.0.1. The port block derives
	// from the seed; a block with an occupied port is retried.
	udpTransports := make(map[int]*netstack.UDPTransport)
	portBase := 21000 + int(deriveSeed(o.Seed, 2)%17)*2000
	var udpErr error
	for attempt := 0; attempt < 5; attempt++ {
		udpErr = runMode("udp", 3, func(i int) (ids.ID, avmon.Transport, observer.Traffic, error) {
			id := ids.MustParse(fmt.Sprintf("127.0.0.1:%d", portBase+i))
			tr, err := netstack.Listen(id)
			if err != nil {
				return ids.None, nil, nil, err
			}
			udpTransports[i] = tr
			return id, tr, tr, nil
		}, func() (uint64, uint64) {
			var dropped uint64
			for _, tr := range udpTransports {
				dropped += tr.DroppedDatagrams()
			}
			return dropped, 0
		})
		if udpErr == nil || !isBindError(udpErr) {
			break
		}
		portBase = (portBase+2048-20000)%40000 + 20000
		udpTransports = make(map[int]*netstack.UDPTransport)
	}
	if udpErr != nil {
		return nil, udpErr
	}

	cmp := &Table{
		Title: "Realnet vs sim: real Service deployments against the simulator's prediction",
		Header: []string{"mode", "n", "period", "disc (real/sim periods)", "coverage (real/sim)",
			"B/node/period (real/sim)", "gate"},
	}
	for _, p := range pts {
		gate := "PASS"
		if !p.GatePass {
			gate = "FAIL: " + p.GateDetail
		}
		cmp.AddRow(p.Mode, itoa(p.N), fmt.Sprintf("%.0fms", p.PeriodMS),
			fmt.Sprintf("%.2f / %.2f", p.MeanDiscoveryPeriods, p.SimMeanDiscoveryPeriods),
			fmt.Sprintf("%.2f / %.2f", p.Coverage, p.SimCoverage),
			fmt.Sprintf("%.1f / %.1f", p.BytesPerNodePeriod, p.SimBytesPerNodePeriod),
			gate)
	}

	artifact, err := json.MarshalIndent(realnetArtifact{
		Experiment:    "realnet",
		Seed:          o.Seed,
		Scale:         o.Scale,
		N:             n,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Deterministic: false,
		Tolerances:    tol,
		Host:          collectHostStats(),
		Points:        pts,
	}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("realnet: marshal artifact: %w", err)
	}
	artifact = append(artifact, '\n')

	res := &Result{
		ID:        "realnet",
		Title:     "Real multi-node deployments (memnet + UDP) vs simulator predictions",
		Tables:    []*Table{cmp},
		Artifacts: map[string][]byte{RealnetArtifactName: artifact},
	}
	for _, p := range pts {
		if !p.GatePass {
			return nil, fmt.Errorf("realnet: %s arm outside tolerances: %s\n%s",
				p.Mode, p.GateDetail, res.String())
		}
	}
	return res, nil
}

// modeSeedIndex derives a stable per-mode seed index from the mode
// name, so the two arms never share randomness.
func modeSeedIndex(mode string) int {
	sum := 0
	for _, r := range mode {
		sum += int(r)
	}
	return sum
}

// isBindError reports whether err looks like a socket bind failure
// (address in use), the only UDP-arm error worth retrying on a
// different port block.
func isBindError(err error) bool {
	return err != nil && (strings.Contains(err.Error(), "address already in use") ||
		strings.Contains(err.Error(), "bind"))
}
