package experiments

import (
	"encoding/json"
	"testing"
)

// TestQueryGatesAndArtifact runs the query load test at smoke scale and
// checks the properties the experiment is built around: every (arm,
// batch) regime resolves the identical workload to the identical
// answers, the cache-on arm actually hits its cache, and the artifact
// round-trips as JSON with one point per regime.
func TestQueryGatesAndArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	o := Options{Scale: 0.001, Seed: 11, Ns: []int{60}, Parallelism: 2}
	res, err := Query(o)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	raw, ok := res.Artifacts[QueryArtifactName]
	if !ok {
		t.Fatalf("no %s artifact", QueryArtifactName)
	}
	var art queryArtifact
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	wantPoints := 2 * len(queryBatchSizes)
	if len(art.Points) != wantPoints {
		t.Fatalf("artifact has %d points, want %d", len(art.Points), wantPoints)
	}
	fp := art.Points[0].Fingerprint
	if fp == "" {
		t.Fatal("empty answer fingerprint")
	}
	var sawCacheOn bool
	for _, pt := range art.Points {
		if pt.Fingerprint != fp {
			t.Errorf("%s/batch=%d fingerprint %s differs from %s", pt.Arm, pt.Batch, pt.Fingerprint, fp)
		}
		if pt.Queries < queryMinCount {
			t.Errorf("%s/batch=%d ran %d queries, floor is %d", pt.Arm, pt.Batch, pt.Queries, queryMinCount)
		}
		switch pt.Arm {
		case "cache-off":
			if pt.CacheHitRate != 0 {
				t.Errorf("cache-off regime reports hit rate %v", pt.CacheHitRate)
			}
		case "cache-on":
			sawCacheOn = true
			// 20k queries over ≤ 60 subjects: after the cold pass
			// virtually everything hits.
			if pt.CacheHitRate < 0.9 {
				t.Errorf("cache-on batch=%d hit rate %v, want > 0.9", pt.Batch, pt.CacheHitRate)
			}
		default:
			t.Errorf("unknown arm %q", pt.Arm)
		}
	}
	if !sawCacheOn {
		t.Error("no cache-on points in artifact")
	}
	if art.Proto.Events == 0 || art.Proto.MonPings == 0 {
		t.Errorf("warm-up produced no protocol activity: %+v", art.Proto)
	}
}

// TestQueryRejectsTinyN guards the population floor.
func TestQueryRejectsTinyN(t *testing.T) {
	if _, err := Query(Options{Scale: 0.001, Ns: []int{5}}); err == nil {
		t.Fatal("N=5 accepted")
	}
}
