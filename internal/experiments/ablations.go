package experiments

import (
	"fmt"
	"time"

	"avmon"
	"avmon/internal/churn"
	"avmon/internal/hashing"
	"avmon/internal/ids"
	"avmon/internal/membership"
	"avmon/internal/stats"
)

// The ablations quantify the design choices DESIGN.md calls out. They
// go beyond the paper's figures: each switches off (or swaps) one
// mechanism and measures what degrades.

// AblationReshuffle measures the coarse-view reshuffle step of
// Figure 2: without it, coarse views freeze and discovery of monitors
// for late-joining nodes slows dramatically.
func AblationReshuffle(o Options) (*Result, error) {
	o = o.withDefaults()
	ns := o.ns()
	n := ns[len(ns)-1]
	table := &Table{
		Title:  fmt.Sprintf("Coarse-view reshuffle ablation (STAT, N = %d)", n),
		Header: []string{"variant", "discovered", "missed", "mean discovery (s)"},
	}
	variants := []bool{false, true}
	scens := make([]scenario, len(variants))
	for i, disable := range variants {
		s := synthScenario(o, modelSTAT, n, 45*time.Minute)
		s.opts.DisableReshuffle = disable
		scens[i] = s
	}
	// Paired seeds: both variants see the same realization, so the
	// delta is the reshuffle step alone.
	outs, err := runAllPaired(o, scens, func(int) int { return 0 })
	if err != nil {
		return nil, err
	}
	for i, disable := range variants {
		out := outs[i]
		times, missed := out.firstDiscoveries(out.controlOrLateBorn())
		var w stats.Welford
		for _, d := range times {
			w.Add(d.Seconds())
		}
		name := "reshuffle (paper)"
		if disable {
			name = "no reshuffle"
		}
		table.AddRow(name, itoa(len(times)), itoa(missed), f2(w.Mean()))
	}
	return &Result{
		ID:     "ablation-reshuffle",
		Title:  "Why the coarse view is re-randomized every round",
		Tables: []*Table{table},
	}, nil
}

// AblationRejoinWeight measures the rejoin-weight rule of Figure 1:
// rejoining with the full cvs weight (instead of min(cvs, downtime))
// inflates the rejoining node's coarse-view indegree beyond cvs,
// breaking the load-balance invariant. The rule only bites when
// downtimes are SHORT relative to cvs protocol periods (otherwise
// min(cvs, downtime) = cvs), so this workload uses frequent 3-minute
// outages.
func AblationRejoinWeight(o Options) (*Result, error) {
	o = o.withDefaults()
	const n = 600
	table := &Table{
		Title: fmt.Sprintf(
			"Rejoin-weight ablation (flappy SYNTH: 3-minute downtimes, N = %d)", n),
		Header: []string{"variant", "mean CV size", "mean indegree", "p99 indegree", "msgs/node/min"},
	}
	variants := []bool{false, true}
	rows := make([][]string, len(variants))
	err := forEachPoint(o, len(variants),
		func(i int) string {
			return fmt.Sprintf("flappy SYNTH N=%d full=%v", n, variants[i])
		},
		func(vi int) error {
			full := variants[vi]
			model, err := churn.NewSYNTH(churn.SynthConfig{
				N:            n,
				ChurnPerHour: 2.0, // mean session 30 min: nodes flap constantly
				MeanDowntime: 3 * time.Minute,
			})
			if err != nil {
				return err
			}
			c, err := avmon.NewCluster(avmon.ClusterConfig{
				N: n,
				// Paired seeds (group 0 for both variants): identical
				// flap pattern, so indegree/traffic deltas isolate
				// the rejoin-weight rule.
				Seed: deriveSeed(o.Seed, 0),
				Options: avmon.NodeOptions{
					RejoinFullWeight: full,
				},
			}, model)
			if err != nil {
				return err
			}
			horizon := o.scaled(3*time.Hour, 45*time.Minute)
			c.Run(horizon)
			// Aggregate message volume: the rejoin cascade costs ≈weight
			// JOIN forwards, so capping the weight cuts system traffic.
			var totalMsgs uint64
			for i := 0; i < c.Size(); i++ {
				totalMsgs += c.Stats(i).Traffic.MsgsOut
			}
			msgsPerNodeMin := float64(totalMsgs) / float64(c.Size()) / horizon.Minutes()
			// Indegree: how many alive coarse views contain each node.
			indegree := make(map[avmon.ID]int)
			var alive []int
			for i := 0; i < c.Size(); i++ {
				if c.Stats(i).Alive {
					alive = append(alive, i)
				}
			}
			var cvSize stats.Welford
			for _, idx := range alive {
				cvSize.Add(float64(c.Stats(idx).CVSize))
				for _, member := range c.CoarseViewOf(idx) {
					indegree[member]++
				}
			}
			var deg stats.CDF
			for _, idx := range alive {
				deg.Add(float64(indegree[c.IDOf(idx)]))
			}
			name := "min(cvs, downtime) (paper)"
			if full {
				name = "always cvs"
			}
			rows[vi] = []string{name, f2(cvSize.Mean()), f2(deg.Mean()),
				f2(deg.Percentile(99)), f2(msgsPerNodeMin)}
			return nil
		})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		table.AddRow(row...)
	}
	return &Result{
		ID:     "ablation-rejoin-weight",
		Title:  "Why rejoin weight is capped by downtime",
		Tables: []*Table{table},
	}, nil
}

// AblationForgetful sweeps the forgetful-pinging parameters c and τ:
// the accuracy / useless-ping tradeoff of Section 3.3.
func AblationForgetful(o Options) (*Result, error) {
	o = o.withDefaults()
	ns := o.ns()
	n := ns[len(ns)-1]
	table := &Table{
		Title:  fmt.Sprintf("Forgetful-pinging parameter sweep (SYNTH, N = %d)", n),
		Header: []string{"c", "tau", "useless pings/min/node", "mean |rel err|"},
	}
	type params struct {
		c   float64
		tau time.Duration
	}
	sweep := []params{
		{1, 2 * time.Minute},  // paper default
		{1, 10 * time.Minute}, // lazier threshold
		{3, 2 * time.Minute},  // more persistent pinging
		{0.25, 2 * time.Minute},
	}
	scens := make([]scenario, len(sweep))
	for i, p := range sweep {
		s := synthScenario(o, modelSYNTH, n, 3*time.Hour)
		s.opts.Forgetful = true
		s.opts.ForgetfulC = p.c
		s.opts.ForgetfulTau = p.tau
		scens[i] = s
	}
	// Paired seeds: every (c, τ) setting observes the same churn, so
	// the sweep isolates the parameters.
	outs, err := runAllPaired(o, scens, func(int) int { return 0 })
	if err != nil {
		return nil, err
	}
	for i, p := range sweep {
		out := outs[i]
		minutes := out.measure.Minutes()
		var useless stats.Welford
		for _, idx := range out.aliveIndexes() {
			delta := out.c.Stats(idx).UselessMonPings - out.uselessAtW[idx]
			useless.Add(float64(delta) / minutes)
		}
		errSum, count := 0.0, 0
		for _, idx := range out.controlOrLateBorn() {
			r, ok := estimateRatio(out.c, idx)
			if !ok {
				continue
			}
			e := r - 1
			if e < 0 {
				e = -e
			}
			errSum += e
			count++
		}
		meanErr := 0.0
		if count > 0 {
			meanErr = errSum / float64(count)
		}
		table.AddRow(f2(p.c), p.tau.String(), f4(useless.Mean()), f4(meanErr))
	}
	return &Result{
		ID:     "ablation-forgetful",
		Title:  "Forgetful pinging: accuracy vs wasted bandwidth",
		Tables: []*Table{table},
	}, nil
}

// AblationConsistency contrasts AVMON's churn-proof selection with the
// DHT replica-set approach: monitor-set damage per join/leave and the
// monitor-pair correlation statistic (randomness condition 3(b)).
func AblationConsistency(o Options) (*Result, error) {
	o = o.withDefaults()
	const (
		n = 500
		k = 8
	)
	ring := membership.NewRing(hashing.FastHasher{}, k)
	pop := make([]ids.ID, n)
	for i := range pop {
		pop[i] = ids.Sim(i)
		ring.Add(pop[i])
	}
	// DHT: damage from 20 joins and 20 leaves.
	var joinDamage, leaveDamage stats.Welford
	for i := 0; i < 20; i++ {
		newcomer := ids.Sim(10000 + i)
		joinDamage.Add(float64(ring.ConsistencyDamage(newcomer, ring.Add, pop)))
		leaveDamage.Add(float64(ring.ConsistencyDamage(pop[i], ring.Remove, pop)))
		ring.Add(pop[i]) // restore
	}
	// Correlation statistic for both schemes.
	dhtSets := make(map[ids.ID][]ids.ID, n)
	for _, x := range pop {
		dhtSets[x] = ring.MonitorsOf(x)
	}
	sel, err := hashing.NewSelector(hashing.FastHasher{}, k, n)
	if err != nil {
		return nil, err
	}
	avmonSets := make(map[ids.ID][]ids.ID, n)
	for _, x := range pop {
		var set []ids.ID
		for _, y := range pop {
			if sel.Related(y, x) {
				set = append(set, y)
			}
		}
		avmonSets[x] = set
	}
	table := &Table{
		Title:  fmt.Sprintf("Selection-scheme comparison (N = %d, K = %d)", n, k),
		Header: []string{"property", "AVMON hash condition", "DHT replica set"},
	}
	table.AddRow("monitor sets changed per join", "0 (consistent)", f2(joinDamage.Mean()))
	table.AddRow("monitor sets changed per leave", "0 (consistent)", f2(leaveDamage.Mean()))
	table.AddRow("monitor-pair correlation (1 = uncorrelated)",
		f2(membership.PairCorrelation(avmonSets)),
		f2(membership.PairCorrelation(dhtSets)))
	return &Result{
		ID:     "ablation-consistency",
		Title:  "AVMON vs DHT-based monitor selection",
		Tables: []*Table{table},
	}, nil
}

// AblationHash compares the hash functions behind the consistency
// condition: all must yield the same expected PS sizes; they differ
// only in evaluation cost.
func AblationHash(o Options) (*Result, error) {
	o = o.withDefaults()
	const (
		n = 2000
		k = 11
	)
	table := &Table{
		Title:  fmt.Sprintf("Hash function comparison (N = %d, K = %d)", n, k),
		Header: []string{"hash", "mean |PS|", "max |PS|", "ns/check (approx)"},
	}
	for _, h := range []hashing.Hasher{hashing.MD5Hasher{}, hashing.SHA1Hasher{}, hashing.FastHasher{}} {
		sel, err := hashing.NewSelector(h, k, n)
		if err != nil {
			return nil, err
		}
		var sizes stats.Welford
		maxPS := 0
		start := time.Now()
		checks := 0
		for xi := 0; xi < 300; xi++ {
			x := ids.Sim(xi)
			count := 0
			for yi := 0; yi < n; yi++ {
				checks++
				if sel.Related(ids.Sim(yi), x) {
					count++
				}
			}
			sizes.Add(float64(count))
			if count > maxPS {
				maxPS = count
			}
		}
		perCheck := float64(time.Since(start).Nanoseconds()) / float64(checks)
		table.AddRow(h.Name(), f2(sizes.Mean()), itoa(maxPS), f2(perCheck))
	}
	return &Result{
		ID:     "ablation-hash",
		Title:  "MD5 vs SHA-1 vs fast mixer for the consistency condition",
		Tables: []*Table{table},
	}, nil
}
