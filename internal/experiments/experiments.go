// Package experiments regenerates every table and figure of the
// paper's evaluation (Table 1, Figures 3-20). Each experiment is a
// function from Options to a Result holding one or more text tables;
// cmd/avmon-bench runs them from the command line and bench_test.go
// wraps each in a testing.B benchmark.
//
// Durations scale with Options.Scale: 1.0 approximates the paper's
// methodology (hour-scale warm-up, multi-hour measurement; the paper
// ran 48h wall-clock per point, which changes none of the reported
// steady-state metrics), while small values give quick smoke runs.
//
// Each experiment's sweep points (N × scheme × seed combinations) are
// independent simulations; the engine in engine.go fans them across
// Options.Parallelism workers with per-point seed derivation, so
// parallel and serial runs produce identical output. See EXPERIMENTS.md
// for the paper-claim → generator map.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"avmon"
	"avmon/internal/stats"
)

// Options control experiment scale and reproducibility.
type Options struct {
	// Scale multiplies the per-experiment durations (default 1.0).
	Scale float64
	// Seed drives all randomness (default 1). Each sweep point runs
	// with a seed derived from Seed and the point's index, so results
	// are a pure function of Options regardless of Parallelism.
	Seed int64
	// Ns overrides the system sizes swept by size-sweep experiments.
	Ns []int
	// Parallelism caps how many sweep points run concurrently
	// (default GOMAXPROCS). 1 forces a serial run; results are
	// identical either way.
	Parallelism int
	// Shards partitions each single simulation across this many
	// parallel engine shards (0 or 1 = the serial engine). Results are
	// byte-identical at any value — the sharded engine's determinism
	// contract — so this is purely a wall-clock knob, orthogonal to
	// Parallelism (which runs independent sweep points concurrently).
	// The scale experiment treats it specially: it runs each point
	// both serial and sharded and reports the speedup.
	Shards int
	// Scheduler overrides the sharded engine's scheduler configuration
	// for every sharded run (nil = the engine default; avmon-bench
	// -sched). Like Shards it never changes results, only wall-clock
	// behavior; the skew experiment ignores it (its whole sweep is a
	// scheduler A/B comparison).
	Scheduler *avmon.SchedulerConfig
	// Progress, when non-nil, receives a serialized callback each
	// time a sweep point completes — useful for long paper-scale
	// runs. It must not assume any completion order, and done reaches
	// total only when the sweep succeeds.
	Progress ProgressFunc
	// Chaos restricts the chaos experiment to the named scenarios
	// (avmon-bench -chaos). Empty runs them all; an unknown name is an
	// error listing the valid ones.
	Chaos []string
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// scaled returns d·Scale, floored at min.
func (o Options) scaled(d, min time.Duration) time.Duration {
	s := time.Duration(float64(d) * o.Scale)
	if s < min {
		return min
	}
	return s
}

// ns returns the sweep sizes (paper default 100..2000).
func (o Options) ns() []int {
	if len(o.Ns) > 0 {
		return o.Ns
	}
	return []int{100, 500, 1000, 2000}
}

// Table is one titled text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString("## ")
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				for p := len(cell); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Result is one experiment's full output. Artifacts holds optional
// machine-readable outputs keyed by file name (e.g. BENCH_scale.json);
// cmd/avmon-bench writes them next to the rendered tables so future
// runs can track the perf trajectory.
type Result struct {
	ID        string
	Title     string
	Tables    []*Table
	Artifacts map[string][]byte
}

// String renders all tables.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Runner is an experiment entry point.
type Runner func(Options) (*Result, error)

// Registry maps experiment IDs (table1, figure3..figure20) to their
// runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1":   Table1,
		"scale":    Scale,
		"wan":      Wan,
		"skew":     Skew,
		"chaos":    Chaos,
		"query":    Query,
		"realnet":  Realnet,
		"figure3":  Figure3,
		"figure4":  Figure4,
		"figure5":  Figure5,
		"figure6":  Figure6,
		"figure7":  Figure7,
		"figure8":  Figure8,
		"figure9":  Figure9,
		"figure10": Figure10,
		"figure11": Figure11,
		"figure12": Figure12,
		"figure13": Figure13,
		"figure14": Figure14,
		"figure15": Figure15,
		"figure16": Figure16,
		"figure17": Figure17,
		"figure18": Figure18,
		"figure19": Figure19,
		"figure20": Figure20,
		// Ablations of the design choices DESIGN.md calls out (not in
		// the paper; they justify its mechanisms quantitatively).
		"ablation-reshuffle":     AblationReshuffle,
		"ablation-rejoin-weight": AblationRejoinWeight,
		"ablation-forgetful":     AblationForgetful,
		"ablation-consistency":   AblationConsistency,
		"ablation-hash":          AblationHash,
	}
}

// IDs returns the registry keys in a stable order.
func IDs() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for id := range reg {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// --- shared scenario machinery ---------------------------------------

// modelKind names the availability models of Section 5.
type modelKind int

const (
	modelSTAT modelKind = iota + 1
	modelSYNTH
	modelSYNTHBD
	modelSYNTHBD2
	modelPL
	modelOV
	modelHotspot
)

func (k modelKind) String() string {
	switch k {
	case modelSTAT:
		return "STAT"
	case modelSYNTH:
		return "SYNTH"
	case modelSYNTHBD:
		return "SYNTH-BD"
	case modelSYNTHBD2:
		return "SYNTH-BD2"
	case modelPL:
		return "PL"
	case modelOV:
		return "OV"
	case modelHotspot:
		return "HOTSPOT"
	default:
		return "?"
	}
}

// scenario describes one simulated run.
type scenario struct {
	kind        modelKind
	n           int // stable size / protocol N
	opts        avmon.NodeOptions
	overreport  float64
	warmup      time.Duration
	measure     time.Duration
	controlFrac float64 // fraction of N enrolled after warm-up
	seed        int64
	loss        float64
	latModel    avmon.LatencyModel // nil = constant 50ms
	lossModel   avmon.LossModel    // nil = Bernoulli(loss)
	shards      int                // engine shards for this one run (0/1 = serial)
	sched       *avmon.SchedulerConfig
	stride      int // hotspot stride (modelHotspot only)
}

// outcome is the state captured from one finished run.
type outcome struct {
	c           *avmon.Cluster
	control     []int // enrolled control nodes (synthetic models)
	warmupEnd   time.Duration
	measure     time.Duration
	checksAtW   map[int]uint64 // hash checks at warm-up end
	monPingsAtW map[int]uint64
	uselessAtW  map[int]uint64
}

func (s scenario) model(horizon time.Duration) (avmon.ChurnModel, error) {
	switch s.kind {
	case modelSTAT:
		return avmon.NewSTATModel(s.n), nil
	case modelSYNTH:
		return avmon.NewSYNTHModel(s.n, 0.2)
	case modelSYNTHBD:
		return avmon.NewSYNTHBDModel(s.n, 0.2, 0.2)
	case modelSYNTHBD2:
		return avmon.NewSYNTHBDModel(s.n, 0.2, 0.4)
	case modelPL:
		return avmon.NewPlanetLabModel(s.n, horizon, s.seed)
	case modelOV:
		return avmon.NewOvernetModel(s.n, horizon, s.seed)
	case modelHotspot:
		return avmon.NewHotspotModel(s.n, s.stride)
	default:
		return nil, fmt.Errorf("experiments: unknown model kind %d", s.kind)
	}
}

// run executes the scenario: build, warm up, enroll control, measure.
func run(s scenario) (*outcome, error) {
	horizon := s.warmup + s.measure + time.Hour
	model, err := s.model(horizon)
	if err != nil {
		return nil, err
	}
	c, err := avmon.NewCluster(avmon.ClusterConfig{
		N:                  s.n,
		Seed:               s.seed,
		Shards:             s.shards,
		Scheduler:          s.sched,
		Options:            s.opts,
		OverreportFraction: s.overreport,
		Loss:               s.loss,
		LatencyModel:       s.latModel,
		LossModel:          s.lossModel,
	}, model)
	if err != nil {
		return nil, err
	}
	c.Run(s.warmup)
	o := &outcome{
		c:           c,
		warmupEnd:   c.Elapsed(),
		measure:     s.measure,
		checksAtW:   make(map[int]uint64),
		monPingsAtW: make(map[int]uint64),
		uselessAtW:  make(map[int]uint64),
	}
	if s.controlFrac > 0 {
		o.control = c.EnrollControl(int(float64(s.n)*s.controlFrac + 0.5))
	}
	for i := 0; i < c.Size(); i++ {
		st := c.Stats(i)
		o.checksAtW[i] = st.HashChecks
		o.monPingsAtW[i] = st.MonPingsSent
		o.uselessAtW[i] = st.UselessMonPings
	}
	c.ResetTraffic()
	c.Run(s.measure)
	return o, nil
}

// controlOrLateBorn returns the measurement population: the explicit
// control group if one was enrolled, otherwise every node born after
// warm-up (the implicit control group of SYNTH-BD and the traces).
func (o *outcome) controlOrLateBorn() []int {
	if len(o.control) > 0 {
		return o.control
	}
	var out []int
	for i := 0; i < o.c.Size(); i++ {
		st := o.c.Stats(i)
		if st.EverBorn && st.BornAtOffset > o.warmupEnd {
			out = append(out, i)
		}
	}
	return out
}

// firstDiscoveries returns, for each node in group, the time from its
// birth to its first monitor discovery (nodes that never discovered
// are skipped; the count skipped is also returned).
func (o *outcome) firstDiscoveries(group []int) (times []time.Duration, missed int) {
	for _, idx := range group {
		dts := o.c.Stats(idx).DiscoveryTimes
		if len(dts) == 0 {
			missed++
			continue
		}
		times = append(times, dts[0])
	}
	return times, missed
}

// meanDiscoveryMinutes averages first-monitor discovery, dropping the
// single largest outlier as the paper does (Figure 3, footnote 8).
func meanDiscoveryMinutes(times []time.Duration) float64 {
	if len(times) == 0 {
		return 0
	}
	if len(times) > 2 {
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		times = times[:len(times)-1]
	}
	var sum time.Duration
	for _, d := range times {
		sum += d
	}
	return sum.Minutes() / float64(len(times))
}

// aliveIndexes returns all currently-alive member indexes.
func (o *outcome) aliveIndexes() []int {
	var out []int
	for i := 0; i < o.c.Size(); i++ {
		if o.c.Stats(i).Alive {
			out = append(out, i)
		}
	}
	return out
}

// cdfTable renders an empirical CDF as (x, fraction ≤ x) rows.
func cdfTable(title, xLabel string, c *stats.CDF, points int) *Table {
	t := &Table{Title: title, Header: []string{xLabel, "fraction"}}
	if c.N() == 0 {
		t.AddRow("(no samples at this scale)", "-")
		return t
	}
	for _, p := range c.Points(points) {
		t.AddRow(fmt.Sprintf("%.3g", p.X), fmt.Sprintf("%.4f", p.Y))
	}
	return t
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func itoa(v int) string   { return fmt.Sprintf("%d", v) }
