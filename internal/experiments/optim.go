package experiments

import (
	"fmt"
	"math"
	"time"

	"avmon"
	"avmon/internal/stats"
)

// estimateRatio computes, for one node, the ratio of its
// monitor-averaged estimated availability to its true availability.
// ok is false if no monitor has an estimate yet.
func estimateRatio(c *avmon.Cluster, idx int) (float64, bool) {
	st := c.Stats(idx)
	truth := st.TrueAvailability()
	if truth <= 0 {
		return 0, false
	}
	var sum float64
	count := 0
	for _, mon := range c.MonitorsOf(idx) {
		monIdx, ok := c.IndexOf(mon)
		if !ok {
			continue
		}
		est, known := c.EstimateBy(monIdx, c.IDOf(idx))
		if !known {
			continue
		}
		sum += est
		count++
	}
	if count == 0 {
		return 0, false
	}
	return (sum / float64(count)) / truth, true
}

// Figure17 reproduces "Ratio of estimated availability to actual
// availability, with and without forgetful pinging" on SYNTH at the
// largest swept N.
func Figure17(o Options) (*Result, error) {
	o = o.withDefaults()
	ns := o.ns()
	n := ns[len(ns)-1]
	table := &Table{
		Title:  fmt.Sprintf("Estimated/actual availability ratio, SYNTH N = %d", n),
		Header: []string{"variant", "nodes", "mean ratio", "mean |rel err|", "max |rel err|"},
	}
	variants := []bool{true, false}
	scens := make([]scenario, len(variants))
	for i, forgetful := range variants {
		s := synthScenario(o, modelSYNTH, n, 4*time.Hour)
		s.opts.Forgetful = forgetful
		scens[i] = s
	}
	// Paired seeds: forgetful vs non-forgetful observe the same churn,
	// so the accuracy comparison isolates the optimization.
	outs, err := runAllPaired(o, scens, func(int) int { return 0 })
	if err != nil {
		return nil, err
	}
	for i, forgetful := range variants {
		out := outs[i]
		var ratios stats.Welford
		maxErr, meanErrSum := 0.0, 0.0
		count := 0
		for _, idx := range out.controlOrLateBorn() {
			r, ok := estimateRatio(out.c, idx)
			if !ok {
				continue
			}
			ratios.Add(r)
			e := math.Abs(r - 1)
			meanErrSum += e
			if e > maxErr {
				maxErr = e
			}
			count++
		}
		name := "NON-Forgetful ping"
		if forgetful {
			name = "Forgetful ping"
		}
		meanErr := 0.0
		if count > 0 {
			meanErr = meanErrSum / float64(count)
		}
		table.AddRow(name, itoa(count), f4(ratios.Mean()), f4(meanErr), f4(maxErr))
	}
	return &Result{
		ID:     "figure17",
		Title:  "Availability estimation accuracy under forgetful pinging",
		Tables: []*Table{table},
	}, nil
}

// Figure18 reproduces "Forgetful pinging reduces useless pings sent to
// absent nodes" across the N sweep on SYNTH.
func Figure18(o Options) (*Result, error) {
	o = o.withDefaults()
	table := &Table{
		Title:  "Average useless monitoring pings per node per minute (SYNTH)",
		Header: []string{"N", "Forgetful", "NON-Forgetful", "reduction factor"},
	}
	variants := []bool{true, false}
	var scens []scenario
	for _, n := range o.ns() {
		for _, forgetful := range variants {
			s := synthScenario(o, modelSYNTH, n, 4*time.Hour)
			s.opts.Forgetful = forgetful
			scens = append(scens, s)
		}
	}
	// Points come in (forgetful, non-forgetful) pairs per N; pairing
	// their seeds makes each reduction factor a same-realization
	// comparison.
	outs, err := runAllPaired(o, scens, func(i int) int { return i / 2 })
	if err != nil {
		return nil, err
	}
	next := 0
	for _, n := range o.ns() {
		var rates [2]float64
		for i := range variants {
			out := outs[next]
			next++
			minutes := out.measure.Minutes()
			var w stats.Welford
			for _, idx := range out.aliveIndexes() {
				delta := out.c.Stats(idx).UselessMonPings - out.uselessAtW[idx]
				w.Add(float64(delta) / minutes)
			}
			rates[i] = w.Mean()
		}
		factor := 0.0
		if rates[0] > 0 {
			factor = rates[1] / rates[0]
		}
		table.AddRow(itoa(n), f4(rates[0]), f4(rates[1]), f2(factor))
	}
	return &Result{
		ID:     "figure18",
		Title:  "Useless-ping reduction from forgetful pinging",
		Tables: []*Table{table},
	}, nil
}

// Figure19 reproduces the "CDF of per-node outgoing bandwidth" for
// STAT, STAT-PR2, and OV.
func Figure19(o Options) (*Result, error) {
	o = o.withDefaults()
	ns := o.ns()
	n := ns[len(ns)-1]
	res := &Result{ID: "figure19", Title: "CDF of per-node outgoing bandwidth (Bps)"}
	type variant struct {
		label string
		s     scenario
	}
	statS := synthScenario(o, modelSTAT, n, 2*time.Hour)
	statS.controlFrac = 0
	pr2S := statS
	pr2S.opts.PR2 = true
	ovS := traceScenario(o, modelOV, 550)
	// For OV, measure bandwidth over the post-warm-up half of the run.
	ovS.warmup = ovS.measure / 2
	ovS.measure = ovS.measure / 2
	variants := []variant{
		{fmt.Sprintf("STAT, N=%d", n), statS},
		{fmt.Sprintf("STAT-PR2, N=%d", n), pr2S},
		{"OV", ovS},
	}
	scens := make([]scenario, len(variants))
	for i, v := range variants {
		scens[i] = v.s
	}
	// STAT and STAT-PR2 (points 0 and 1) are an A/B pair; OV is its
	// own workload.
	outs, err := runAllPaired(o, scens, func(i int) int {
		if i == 2 {
			return 1
		}
		return 0
	})
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		out := outs[i]
		secs := out.measure.Seconds()
		var c stats.CDF
		for _, idx := range out.aliveIndexes() {
			c.Add(float64(out.c.Stats(idx).Traffic.BytesOut) / secs)
		}
		t := cdfTable(v.label, "outgoing Bps", &c, 13)
		t.AddRow("fraction below 10 Bps", f4(c.FractionBelow(10)))
		t.AddRow("p99.85 (Bps)", f2(c.Percentile(99.85)))
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}
