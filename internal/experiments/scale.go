package experiments

// The large-N scale path (not in the paper, which tops out at
// N = 2000): AVMON's headline claim is that the consistency condition
// H(y, x) ≤ K/N needs no coordination and therefore scales with N.
// This experiment exercises the claim directly, sweeping N into the
// 10^6 regime and recording both the protocol metrics the paper
// reports (discovery time, per-node bandwidth) and the simulator's
// own cost of opening that regime (events, wall-clock, memory), so
// future PRs can track the perf trajectory via BENCH_scale.json.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"avmon/internal/stats"
)

// ScaleArtifactName is the machine-readable output written by the
// scale experiment (via Result.Artifacts / avmon-bench).
//
// The experiment is registered like every table and figure but is
// excluded from `avmon-bench -run all`: its N sweep is fixed (Scale
// only shrinks horizons), so it costs minutes and gigabytes that the
// paper-reproduction flow should not pay implicitly.
const ScaleArtifactName = "BENCH_scale.json"

// scaleDefaultNs is swept when Options.Ns is not set: the paper's top
// size, then up to 2.5 orders of magnitude beyond it. The 10^6 point
// is the memory-diet regime: it runs serial only (no sharded rerun,
// see shardedRerunMaxN), under a Go soft memory limit, and with
// trimmed horizons (see scaleHugeN) — CI never reaches it because
// every test overrides Options.Ns.
var scaleDefaultNs = []int{10_000, 30_000, 100_000, 1_000_000}

// scaleHugeN is the threshold for the huge-N regime: points at or
// above it run with shorter horizons and a soft memory limit, and
// skip the sharded determinism rerun.
const scaleHugeN = 300_000

// scaleHugeMemLimit is the Go soft memory limit installed while a
// huge-N point runs: 7.5 GiB, leaving headroom under the 8 GiB peak
// RSS budget the 10^6 point is gated by. The limit turns "heap grows
// to 2× live" into "GC runs harder near the ceiling" — the right
// trade at 10^6 nodes, where doubling the live set would cost more
// RSS than the extra GC cycles cost wall-clock.
const scaleHugeMemLimit = int64(7680) << 20

// ScalePoint is one sweep point of the scale experiment as serialized
// into BENCH_scale.json. Protocol metrics are deterministic functions
// of (Options, N); host metrics (Wall*, RSS*, Heap*) describe the
// machine that produced the file and vary run to run.
type ScalePoint struct {
	N   int `json:"n"`
	K   int `json:"k"`
	CVS int `json:"cvs"`

	ControlSize       int     `json:"control_size"`
	Discovered        int     `json:"discovered"`
	MeanDiscoveryMin  float64 `json:"mean_discovery_minutes"`
	P93DiscoverySec   float64 `json:"p93_discovery_seconds"`
	BytesPerNodeSec   float64 `json:"bytes_out_per_node_per_second"`
	ChecksPerNodeSec  float64 `json:"hash_checks_per_node_per_second"`
	MemoryEntriesMean float64 `json:"memory_entries_mean"`
	Events            uint64  `json:"events"`

	WallSeconds float64 `json:"wall_seconds"`
	HeapAllocMB float64 `json:"heap_alloc_mb"`
	PeakRSSMB   float64 `json:"peak_rss_mb"`
	// Allocation volume and completed GC cycles during this point's
	// serial run (deltas of runtime.MemStats TotalAlloc / NumGC) — the
	// per-point view of the allocation diet that the host section's
	// process-wide numbers cannot give.
	TotalAllocMB float64 `json:"total_alloc_mb"`
	NumGC        uint32  `json:"num_gc"`

	// Sharded rerun of the same point (present when the sweep ran with
	// Options.Shards > 1). The run is asserted byte-identical on every
	// protocol metric above — the sharded engine's determinism
	// contract, checked here at full scale — so only the host cost is
	// reported. Speedup = WallSeconds / WallSecondsSharded; it exceeds
	// 1 only when the host has cores to spare (see HostCores in the
	// envelope).
	Shards             int     `json:"shards,omitempty"`
	WallSecondsSharded float64 `json:"wall_seconds_sharded,omitempty"`
	Speedup            float64 `json:"speedup,omitempty"`

	// Scheduler counters of the sharded rerun (see avmon.SchedStats):
	// coordinator barriers, executed windows, lane migrations, and
	// per-shard busy wall-clock — the measurables behind the adaptive
	// scheduler's wins across the bench trajectory. Barriers/windows/
	// migrations are deterministic; busy times describe the host.
	BarriersSharded   uint64  `json:"barriers_sharded,omitempty"`
	WindowsSharded    uint64  `json:"windows_sharded,omitempty"`
	MigrationsSharded uint64  `json:"migrations_sharded,omitempty"`
	ShardBusyNS       []int64 `json:"shard_busy_ns,omitempty"`
}

// scaleProgress narrates paper-scale sweep points to stderr: a
// default sweep runs for hours, and without per-point lines a user
// (or CI timeout) cannot tell the 10⁶ point from a hang. Points below
// 10⁴ nodes — every test override — stay silent.
func scaleProgress(n int, format string, args ...any) {
	if n < 10_000 {
		return
	}
	fmt.Fprintf(os.Stderr, "scale: N=%d "+format+"\n", append([]any{n}, args...)...)
}

// scaleArtifact is the BENCH_scale.json envelope.
type scaleArtifact struct {
	Experiment string       `json:"experiment"`
	Seed       int64        `json:"seed"`
	Scale      float64      `json:"scale"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	HostCores  int          `json:"host_cores,omitempty"`
	Host       HostStats    `json:"host"`
	Points     []ScalePoint `json:"points"`
}

// Scale sweeps a static system to N = 100,000 (by default) and
// reports discovery time, per-node bandwidth, and the host cost of
// the run. Unlike the paper experiments, each sweep point's cluster
// is released as soon as its metrics are extracted — at 10^5 nodes
// the cluster itself is the dominant allocation, and the sweep must
// not hold three of them to the end.
func Scale(o Options) (*Result, error) {
	o = o.withDefaults()
	// Points run serially regardless of Options.Parallelism: the host
	// metrics (wall, heap, peak RSS) are process-wide measurements,
	// and concurrent 10^4–10^5-node clusters would cross-contaminate
	// them — BENCH_scale.json must be comparable across PRs. Protocol
	// metrics are seed-derived per point and unaffected either way.
	o.Parallelism = 1
	ns := o.Ns
	if len(ns) == 0 {
		ns = scaleDefaultNs
	}
	scens := make([]scenario, len(ns))
	for i, n := range ns {
		// ~100 control joiners measure discovery; at small N (tests,
		// reduced-scale benches) fall back to the 10% the paper uses.
		frac := 100 / float64(n)
		if frac > 0.10 {
			frac = 0.10
		}
		// Shorter horizon than the paper sweeps: control joiners are
		// spread into ~cvs coarse views by their JOIN and discover
		// within a few periods, so 20 measured periods suffice — and
		// at N = 10^5 every simulated minute costs ~10^9 hash checks.
		warmup := o.scaled(10*time.Minute, 8*time.Minute)
		measure := o.scaled(20*time.Minute, 10*time.Minute)
		if n >= scaleHugeN {
			// Huge-N regime: a simulated minute at 10^6 nodes costs
			// ~3×10^7 events, so the horizons shrink again. Discovery
			// of the ~100 control joiners still completes within a few
			// monitor periods; the trimmed measure window keeps the
			// point at ~10^8 events instead of ~10^9. These points are
			// NOT comparable to the N ≤ 10^5 horizon — they exist to
			// pin the memory and throughput trajectory, not to extend
			// the discovery-time curve.
			warmup = o.scaled(6*time.Minute, 5*time.Minute)
			measure = o.scaled(8*time.Minute, 6*time.Minute)
		}
		scens[i] = scenario{
			kind:        modelSTAT,
			n:           n,
			warmup:      warmup,
			measure:     measure,
			controlFrac: frac,
		}
	}
	pts := make([]ScalePoint, len(scens))
	err := forEachPoint(o, len(scens),
		func(i int) string { return pointLabel(scens[i]) },
		func(i int) error {
			s := scens[i]
			s.seed = deriveSeed(o.Seed, i)
			if s.n >= scaleHugeN {
				defer debug.SetMemoryLimit(debug.SetMemoryLimit(scaleHugeMemLimit))
			}
			var before runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			scaleProgress(s.n, "serial start (peak RSS %.1f MB)", peakRSSMB())
			out, err := run(s)
			if err != nil {
				return err
			}
			pts[i] = scalePointMetrics(s.n, out, time.Since(start), before)
			scaleProgress(s.n, "serial done in %.0fs: heap %.1f MB, peak RSS %.1f MB",
				pts[i].WallSeconds, pts[i].HeapAllocMB, pts[i].PeakRSSMB)
			if o.Shards <= 1 || s.n > shardedRerunMaxN {
				return nil
			}
			// Rerun the identical point on the sharded engine. Beyond
			// the speedup measurement this is the determinism contract
			// checked at full scale: every protocol metric must match
			// the serial run exactly, or the sweep fails.
			s.shards = o.Shards
			s.sched = o.Scheduler
			out = nil // release the serial cluster before building the next
			runtime.ReadMemStats(&before)
			start = time.Now()
			shardedOut, err := run(s)
			if err != nil {
				return err
			}
			sharded := scalePointMetrics(s.n, shardedOut, time.Since(start), before)
			scaleProgress(s.n, "sharded rerun done in %.0fs", sharded.WallSeconds)
			if err := sameProtocolMetrics(pts[i], sharded); err != nil {
				return fmt.Errorf("scale: sharded run diverged from serial at N=%d: %w", s.n, err)
			}
			pts[i].Shards = o.Shards
			pts[i].WallSecondsSharded = sharded.WallSeconds
			if sharded.WallSeconds > 0 {
				pts[i].Speedup = pts[i].WallSeconds / sharded.WallSeconds
			}
			if st, ok := shardedOut.c.SchedStats(); ok {
				pts[i].BarriersSharded = st.Barriers
				pts[i].WindowsSharded = st.Windows
				pts[i].MigrationsSharded = st.Migrations
				for _, sh := range st.PerShard {
					pts[i].ShardBusyNS = append(pts[i].ShardBusyNS, sh.BusyNS)
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}

	proto := &Table{
		Title: "Large-N sweep: protocol metrics (deterministic)",
		Header: []string{"N", "K", "cvs", "control", "discovered",
			"mean disc (min)", "p93 disc (s)", "B/s/node", "checks/s/node", "mem entries", "events"},
	}
	host := &Table{
		Title: "Large-N sweep: host metrics (non-deterministic, this machine)",
		Header: []string{"N", "wall (s)", "heap alloc (MB)", "peak RSS (MB)",
			"shards", "wall sharded (s)", "speedup", "barriers", "windows"},
	}
	for _, p := range pts {
		proto.AddRow(itoa(p.N), itoa(p.K), itoa(p.CVS),
			itoa(p.ControlSize), itoa(p.Discovered),
			f2(p.MeanDiscoveryMin), f2(p.P93DiscoverySec),
			f2(p.BytesPerNodeSec), f2(p.ChecksPerNodeSec),
			f2(p.MemoryEntriesMean), fmt.Sprintf("%d", p.Events))
		shards, wallSharded, speedup, barriers, windows := "-", "-", "-", "-", "-"
		if p.Shards > 1 {
			shards, wallSharded, speedup = itoa(p.Shards), f2(p.WallSecondsSharded), f2(p.Speedup)
			barriers, windows = u64(p.BarriersSharded), u64(p.WindowsSharded)
		}
		host.AddRow(itoa(p.N), f2(p.WallSeconds), f2(p.HeapAllocMB), f2(p.PeakRSSMB),
			shards, wallSharded, speedup, barriers, windows)
	}

	artifact, err := json.MarshalIndent(scaleArtifact{
		Experiment: "scale",
		Seed:       o.Seed,
		Scale:      o.Scale,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		HostCores:  runtime.NumCPU(),
		Host:       collectHostStats(),
		Points:     pts,
	}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scale: marshal artifact: %w", err)
	}
	artifact = append(artifact, '\n')

	return &Result{
		ID:        "scale",
		Title:     "Scalability of discovery, bandwidth, and simulation cost to N = 1,000,000",
		Tables:    []*Table{proto, host},
		Artifacts: map[string][]byte{ScaleArtifactName: artifact},
	}, nil
}

// sameProtocolMetrics checks the deterministic fields of two runs of
// one sweep point; a mismatch means the sharded engine broke its
// byte-identical contract.
func sameProtocolMetrics(a, b ScalePoint) error {
	type pair struct {
		name string
		a, b any
	}
	for _, p := range []pair{
		{"k", a.K, b.K},
		{"cvs", a.CVS, b.CVS},
		{"control_size", a.ControlSize, b.ControlSize},
		{"discovered", a.Discovered, b.Discovered},
		{"mean_discovery_minutes", a.MeanDiscoveryMin, b.MeanDiscoveryMin},
		{"p93_discovery_seconds", a.P93DiscoverySec, b.P93DiscoverySec},
		{"bytes_out_per_node_per_second", a.BytesPerNodeSec, b.BytesPerNodeSec},
		{"hash_checks_per_node_per_second", a.ChecksPerNodeSec, b.ChecksPerNodeSec},
		{"memory_entries_mean", a.MemoryEntriesMean, b.MemoryEntriesMean},
		{"events", a.Events, b.Events},
	} {
		if p.a != p.b {
			return fmt.Errorf("%s: serial %v vs sharded %v", p.name, p.a, p.b)
		}
	}
	return nil
}

// shardedRerunMaxN caps the sharded determinism rerun: the equivalence
// anchor is checked at every point up to 10^5, where serial and
// sharded runs both fit comfortably in time and memory. The 10^6 point
// is pinned serial — rerunning it sharded would double a multi-hour
// wall cost for a contract already verified three times in the same
// sweep.
const shardedRerunMaxN = 100_000

// scalePointMetrics extracts one sweep point's metrics and lets the
// cluster go unreferenced afterwards. before is the MemStats snapshot
// taken when the point started; allocation volume and GC cycles are
// reported as deltas against it.
func scalePointMetrics(n int, out *outcome, wall time.Duration, before runtime.MemStats) ScalePoint {
	c := out.c
	p := ScalePoint{
		N:           n,
		K:           c.K(),
		CVS:         c.CVS(),
		Events:      c.Steps(),
		WallSeconds: wall.Seconds(),
	}

	control := out.controlOrLateBorn()
	p.ControlSize = len(control)
	times, missed := out.firstDiscoveries(control)
	p.Discovered = len(control) - missed
	var cdf stats.CDF
	for _, d := range times {
		cdf.Add(d.Seconds())
	}
	p.P93DiscoverySec = cdf.Percentile(93)
	p.MeanDiscoveryMin = meanDiscoveryMinutes(times)

	secs := out.measure.Seconds()
	alive := out.aliveIndexes()
	var bw, checks, mem stats.Welford
	for _, idx := range alive {
		st := c.Stats(idx)
		bw.Add(float64(st.Traffic.BytesOut) / secs)
		mem.Add(float64(st.MemoryEntries))
	}
	for _, v := range out.compsPerSecond(alive) {
		checks.Add(v)
	}
	p.BytesPerNodeSec = bw.Mean()
	p.ChecksPerNodeSec = checks.Mean()
	p.MemoryEntriesMean = mem.Mean()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.HeapAllocMB = float64(ms.HeapAlloc) / (1 << 20)
	p.TotalAllocMB = float64(ms.TotalAlloc-before.TotalAlloc) / (1 << 20)
	p.NumGC = ms.NumGC - before.NumGC
	p.PeakRSSMB = peakRSSMB()
	return p
}
