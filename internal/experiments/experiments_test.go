package experiments

import (
	"strings"
	"testing"
	"time"
)

// tinyOptions keeps every experiment fast enough for CI while still
// exercising the full pipeline.
func tinyOptions() Options {
	return Options{Scale: 0.01, Seed: 7, Ns: []int{60, 120}}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	want := []string{
		"table1", "scale", "wan", "skew", "chaos", "query", "realnet",
		"figure3", "figure4", "figure5", "figure6", "figure7",
		"figure8", "figure9", "figure10", "figure11", "figure12",
		"figure13", "figure14", "figure15", "figure16", "figure17",
		"figure18", "figure19", "figure20",
		"ablation-reshuffle", "ablation-rejoin-weight",
		"ablation-forgetful", "ablation-consistency", "ablation-hash",
	}
	if len(reg) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(reg), len(want))
	}
	for _, id := range want {
		if reg[id] == nil {
			t.Errorf("missing experiment %q", id)
		}
	}
	idsList := IDs()
	if len(idsList) != len(reg) {
		t.Errorf("IDs() returned %d, want %d", len(idsList), len(reg))
	}
	for i := 1; i < len(idsList); i++ {
		if idsList[i] <= idsList[i-1] {
			t.Error("IDs() not sorted")
		}
	}
}

func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	o := tinyOptions()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Registry()[id](o)
			if err != nil {
				t.Fatalf("%s failed: %v", id, err)
			}
			if res.ID != id {
				t.Errorf("result ID = %q, want %q", res.ID, id)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables produced")
			}
			text := res.String()
			if !strings.Contains(text, res.Title) {
				t.Error("rendered output missing title")
			}
			for _, tb := range res.Tables {
				if len(tb.Header) == 0 || len(tb.Rows) == 0 {
					t.Errorf("table %q empty", tb.Title)
				}
			}
		})
	}
}

func TestScaledDurations(t *testing.T) {
	o := Options{Scale: 0.5}.withDefaults()
	if got := o.scaled(2*time.Hour, time.Minute); got != time.Hour {
		t.Errorf("scaled = %v, want 1h", got)
	}
	if got := o.scaled(time.Minute, 10*time.Minute); got != 10*time.Minute {
		t.Errorf("floor not applied: %v", got)
	}
	if def := (Options{}).withDefaults(); def.Scale != 1 || def.Seed != 1 {
		t.Errorf("defaults = %+v", def)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Header: []string{"col", "value"}}
	tb.AddRow("a", "1")
	tb.AddRow("longer-cell", "2")
	s := tb.String()
	if !strings.Contains(s, "## demo") || !strings.Contains(s, "longer-cell") {
		t.Errorf("rendered:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Errorf("rendered %d lines, want 4", len(lines))
	}
}

func TestMeanDiscoveryDropsOutlier(t *testing.T) {
	times := []time.Duration{time.Minute, time.Minute, 100 * time.Minute}
	if got := meanDiscoveryMinutes(times); got != 1 {
		t.Errorf("mean = %v, want 1 (outlier dropped)", got)
	}
	if got := meanDiscoveryMinutes(nil); got != 0 {
		t.Errorf("empty mean = %v", got)
	}
	// With ≤ 2 samples nothing is dropped.
	two := []time.Duration{time.Minute, 3 * time.Minute}
	if got := meanDiscoveryMinutes(two); got != 2 {
		t.Errorf("two-sample mean = %v, want 2", got)
	}
}

func TestModelKindStrings(t *testing.T) {
	kinds := []modelKind{modelSTAT, modelSYNTH, modelSYNTHBD, modelSYNTHBD2, modelPL, modelOV}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "?" || seen[s] {
			t.Errorf("kind %d stringifies to %q", k, s)
		}
		seen[s] = true
	}
	if modelKind(99).String() != "?" {
		t.Error("unknown kind not ?")
	}
}
