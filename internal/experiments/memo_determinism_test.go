package experiments

import (
	"reflect"
	"testing"
	"time"

	"avmon"
)

// TestMemoizedSelectorChangesNoTable is the determinism contract of
// the hash memo: a cluster running the paper's MD5 hash with the
// memoizing selector (the simulation default) must produce state
// identical — node by node, counter by counter — to the same cluster
// with memoization disabled. Every experiment table is a function of
// these per-node stats, so equality here proves no table can change.
func TestMemoizedSelectorChangesNoTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	o := Options{Scale: 0.01, Seed: 11, Parallelism: 2}.withDefaults()
	memoized := synthScenario(o, modelSYNTH, 50, 30*time.Minute)
	memoized.opts.Hash = avmon.HashMD5
	plain := memoized
	plain.opts.NoHashMemo = true

	// One seed group: both variants run against the same churn
	// realization, so any divergence is the memo's doing.
	outs, err := runAllPaired(o, []scenario{memoized, plain}, func(int) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	a, b := outs[0].c, outs[1].c
	if a.Size() != b.Size() {
		t.Fatalf("population diverged: %d vs %d nodes", a.Size(), b.Size())
	}
	for i := 0; i < a.Size(); i++ {
		sa, sb := a.Stats(i), b.Stats(i)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("node %d stats diverged with memoization:\nmemo:  %+v\nplain: %+v", i, sa, sb)
		}
	}
}
