package experiments

import (
	"fmt"
	"time"

	"avmon/internal/stats"
)

// traceScenario builds the Section 5.3 trace-driven scenario: no
// explicit control group (every node born during the run is measured),
// protocol parameters derived from the trace's stable size.
func traceScenario(o Options, kind modelKind, n int) scenario {
	return scenario{
		kind:    kind,
		n:       n,
		warmup:  0,
		measure: o.scaled(48*time.Hour, 2*time.Hour),
		seed:    o.Seed,
	}
}

// tracePairs returns the two trace workloads with the paper's sizes:
// PL with N = 239 (K = 8, cvs = 16) and OV with N = 550 (K = 9,
// cvs = 19).
func tracePairs() []struct {
	kind modelKind
	n    int
} {
	return []struct {
		kind modelKind
		n    int
	}{
		{modelPL, 239},
		{modelOV, 550},
	}
}

// allBorn returns every node that was ever born (the Nlongterm
// population of Section 5.3).
func (o *outcome) allBorn() []int {
	var out []int
	for i := 0; i < o.c.Size(); i++ {
		if o.c.Stats(i).EverBorn {
			out = append(out, i)
		}
	}
	return out
}

// Figure13 reproduces "CDF of discovery time of first monitors, PL and
// OV traces".
func Figure13(o Options) (*Result, error) {
	o = o.withDefaults()
	res := &Result{ID: "figure13", Title: "CDF of first-monitor discovery time, PL and OV"}
	pairs := tracePairs()
	scens := make([]scenario, len(pairs))
	for i, tp := range pairs {
		scens[i] = traceScenario(o, tp.kind, tp.n)
	}
	outs, err := runAll(o, scens)
	if err != nil {
		return nil, err
	}
	for i, tp := range pairs {
		out := outs[i]
		born := out.allBorn()
		times, missed := out.firstDiscoveries(born)
		var c stats.CDF
		for _, d := range times {
			c.Add(d.Minutes())
		}
		t := cdfTable(
			fmt.Sprintf("%v (N=%d, Nlongterm=%d, %d undiscovered)", tp.kind, tp.n, len(born), missed),
			"discovery time (min)", &c, 13)
		t.AddRow("fraction within 63s", f4(c.FractionBelow(63.0/60)))
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}

// Figure14 reproduces "CDF of number of memory entries per node, PL
// and OV traces".
func Figure14(o Options) (*Result, error) {
	o = o.withDefaults()
	res := &Result{ID: "figure14", Title: "CDF of per-node memory entries, PL and OV"}
	pairs := tracePairs()
	scens := make([]scenario, len(pairs))
	for i, tp := range pairs {
		scens[i] = traceScenario(o, tp.kind, tp.n)
	}
	outs, err := runAll(o, scens)
	if err != nil {
		return nil, err
	}
	for i, tp := range pairs {
		out := outs[i]
		var c stats.CDF
		c.AddAll(out.memoryEntries(out.aliveIndexes()))
		expected := 2*out.c.K() + out.c.CVS()
		t := cdfTable(
			fmt.Sprintf("%v (N=%d, expected %d entries)", tp.kind, tp.n, expected),
			"|PS|+|TS|+|CV|", &c, 11)
		t.AddRow("max entries", f2(c.Max()))
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}

// Figure15 reproduces "CDFs of discovery time of first monitors,
// SYNTH-BD vs SYNTH-BD2" at the largest swept N: doubling the
// birth/death rate must not noticeably change discovery.
func Figure15(o Options) (*Result, error) {
	o = o.withDefaults()
	ns := o.ns()
	n := ns[len(ns)-1]
	res := &Result{ID: "figure15", Title: "Discovery under doubled birth/death churn"}
	kinds := []modelKind{modelSYNTHBD, modelSYNTHBD2}
	scens := make([]scenario, len(kinds))
	for i, kind := range kinds {
		scens[i] = synthScenario(o, kind, n, 2*time.Hour)
	}
	// Paired seeds: BD vs BD2 differ only in birth/death rate; the
	// shared realization isolates that doubling.
	outs, err := runAllPaired(o, scens, func(int) int { return 0 })
	if err != nil {
		return nil, err
	}
	for i, kind := range kinds {
		out := outs[i]
		born := out.controlOrLateBorn()
		times, missed := out.firstDiscoveries(born)
		var c stats.CDF
		for _, d := range times {
			c.Add(d.Minutes())
		}
		t := cdfTable(
			fmt.Sprintf("%v, N = %d (Nlongterm = %d, %d undiscovered)",
				kind, n, out.c.Size(), missed),
			"discovery time (min)", &c, 11)
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}

// Figure16 reproduces "Average number of memory entries, SYNTH-BD vs
// SYNTH-BD2" across the N sweep: doubling births/deaths adds under 10%
// of garbage entries.
func Figure16(o Options) (*Result, error) {
	o = o.withDefaults()
	table := &Table{
		Title:  "Average memory entries per node",
		Header: []string{"N", "SYNTH-BD", "SYNTH-BD stddev", "SYNTH-BD2", "SYNTH-BD2 stddev", "increase %"},
	}
	kinds := []modelKind{modelSYNTHBD, modelSYNTHBD2}
	var scens []scenario
	for _, n := range o.ns() {
		for _, kind := range kinds {
			scens = append(scens, synthScenario(o, kind, n, 2*time.Hour))
		}
	}
	// Points come in (BD, BD2) pairs per N; pairing their seeds makes
	// each "increase %" a same-realization comparison.
	outs, err := runAllPaired(o, scens, func(i int) int { return i / 2 })
	if err != nil {
		return nil, err
	}
	next := 0
	for _, n := range o.ns() {
		var means [2]float64
		var stds [2]float64
		for i := range kinds {
			out := outs[next]
			next++
			var w stats.Welford
			for _, v := range out.memoryEntries(out.aliveIndexes()) {
				w.Add(v)
			}
			means[i] = w.Mean()
			stds[i] = w.Stddev()
		}
		inc := 0.0
		if means[0] > 0 {
			inc = (means[1] - means[0]) / means[0] * 100
		}
		table.AddRow(itoa(n), f2(means[0]), f2(stds[0]), f2(means[1]), f2(stds[1]), f2(inc))
	}
	return &Result{
		ID:     "figure16",
		Title:  "Memory entries under doubled birth/death churn",
		Tables: []*Table{table},
	}, nil
}
