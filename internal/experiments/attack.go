package experiments

import (
	"math"
	"time"
)

// overreportFractions are the x-axis of Figure 20.
var overreportFractions = []float64{0, 0.05, 0.10, 0.15, 0.20}

// affectedFraction returns the fraction of measured nodes whose
// monitor-averaged estimated availability differs from their true
// availability by more than 0.2 (the paper's "negatively affected"
// criterion).
func (o *outcome) affectedFraction() float64 {
	affected, measured := 0, 0
	for _, idx := range o.aliveIndexes() {
		st := o.c.Stats(idx)
		truth := st.TrueAvailability()
		if truth <= 0 {
			continue
		}
		var sum float64
		count := 0
		for _, mon := range o.c.MonitorsOf(idx) {
			monIdx, ok := o.c.IndexOf(mon)
			if !ok {
				continue
			}
			est, known := o.c.EstimateBy(monIdx, o.c.IDOf(idx))
			if !known {
				continue
			}
			sum += est
			count++
		}
		if count == 0 {
			continue
		}
		measured++
		if math.Abs(sum/float64(count)-truth) > 0.2 {
			affected++
		}
	}
	if measured == 0 {
		return 0
	}
	return float64(affected) / float64(measured)
}

// Figure20 reproduces the overreporting attack: a fraction of nodes
// report 100% availability for all their targets; the y-axis is the
// fraction of nodes whose measured availability is off by > 0.2.
func Figure20(o Options) (*Result, error) {
	o = o.withDefaults()
	table := &Table{
		Title:  "Fraction of nodes negatively affected by overreporting monitors",
		Header: []string{"fraction misreporting", "SYNTH", "SYNTH-BD", "PL", "OV"},
	}
	type workload struct {
		kind modelKind
		mk   func(frac float64) scenario
	}
	ns := o.ns()
	n := ns[len(ns)-1]
	workloads := []workload{
		{modelSYNTH, func(f float64) scenario {
			s := synthScenario(o, modelSYNTH, n, 3*time.Hour)
			s.overreport = f
			return s
		}},
		{modelSYNTHBD, func(f float64) scenario {
			s := synthScenario(o, modelSYNTHBD, n, 3*time.Hour)
			s.overreport = f
			return s
		}},
		{modelPL, func(f float64) scenario {
			s := traceScenario(o, modelPL, 239)
			s.overreport = f
			return s
		}},
		{modelOV, func(f float64) scenario {
			s := traceScenario(o, modelOV, 550)
			s.overreport = f
			return s
		}},
	}
	var scens []scenario
	for _, frac := range overreportFractions {
		for _, w := range workloads {
			scens = append(scens, w.mk(frac))
		}
	}
	// Pair seeds per workload column: each column sweeps the
	// misreporting fraction over one fixed realization (the
	// misreporting sets even nest as the fraction grows), so the
	// dose-response trend isolates the attack.
	outs, err := runAllPaired(o, scens, func(i int) int { return i % len(workloads) })
	if err != nil {
		return nil, err
	}
	i := 0
	for _, frac := range overreportFractions {
		row := []string{f2(frac)}
		for range workloads {
			row = append(row, f4(outs[i].affectedFraction()))
			i++
		}
		table.AddRow(row...)
	}
	return &Result{
		ID:     "figure20",
		Title:  "Effect of the overreporting attack (Section 5.4)",
		Tables: []*Table{table},
	}, nil
}
