package hashing

import (
	"crypto/md5"
	"math"
	"testing"
	"testing/quick"

	"avmon/internal/ids"
)

func allHashers() []Hasher {
	return []Hasher{MD5Hasher{}, SHA1Hasher{}, FastHasher{}}
}

func TestHashersDeterministic(t *testing.T) {
	x := ids.MustParse("10.0.0.1:4000")
	y := ids.MustParse("10.0.0.2:4000")
	for _, h := range allHashers() {
		t.Run(h.Name(), func(t *testing.T) {
			a := h.Hash64(y, x)
			b := h.Hash64(y, x)
			if a != b {
				t.Errorf("non-deterministic: %x vs %x", a, b)
			}
		})
	}
}

func TestHashersOrderSensitive(t *testing.T) {
	// H(y,x) and H(x,y) are independent evaluations: the relation
	// y ∈ PS(x) must be distinct from x ∈ PS(y).
	x := ids.MustParse("10.0.0.1:4000")
	y := ids.MustParse("10.0.0.2:4000")
	for _, h := range allHashers() {
		t.Run(h.Name(), func(t *testing.T) {
			if h.Hash64(y, x) == h.Hash64(x, y) {
				t.Errorf("Hash64 is symmetric for %s", h.Name())
			}
		})
	}
}

func TestMD5MatchesReference(t *testing.T) {
	// The paper's condition hashes the 12-byte <y||x> encoding with
	// MD5 and keeps the first 64 bits. Verify against a direct
	// computation, which is exactly what a third-party verifier does.
	y := ids.MustParse("192.168.0.7:1234")
	x := ids.MustParse("10.20.30.40:80")
	var buf []byte
	buf = y.AppendWire(buf)
	buf = x.AppendWire(buf)
	sum := md5.Sum(buf)
	var want uint64
	for i := 0; i < 8; i++ {
		want = want<<8 | uint64(sum[i])
	}
	if got := (MD5Hasher{}).Hash64(y, x); got != want {
		t.Errorf("MD5 Hash64 = %x, want %x", got, want)
	}
}

func TestHasherUniformity(t *testing.T) {
	// Bucket hash values of many distinct pairs into 16 bins; each bin
	// should hold roughly 1/16 of the mass (within 5 sigma).
	const (
		samples = 20000
		bins    = 16
	)
	for _, h := range allHashers() {
		t.Run(h.Name(), func(t *testing.T) {
			var counts [bins]int
			x := ids.Sim(999999)
			for i := 0; i < samples; i++ {
				v := h.Hash64(ids.Sim(i), x)
				counts[v>>60]++
			}
			mean := float64(samples) / bins
			sigma := math.Sqrt(mean * (1 - 1.0/bins))
			for b, c := range counts {
				if math.Abs(float64(c)-mean) > 5*sigma {
					t.Errorf("bin %d: count %d deviates from mean %.1f by more than 5 sigma", b, c, mean)
				}
			}
		})
	}
}

func TestSelectorExpectedPSSize(t *testing.T) {
	// E[|PS(x)|] should be about K (Section 3.1). Draw a population of
	// n nodes and count how many are related to each of a few targets.
	const (
		n = 4000
		k = 12
	)
	for _, h := range allHashers() {
		t.Run(h.Name(), func(t *testing.T) {
			sel, err := NewSelector(h, k, n)
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			const targets = 40
			for ti := 0; ti < targets; ti++ {
				x := ids.Sim(n + ti)
				for i := 0; i < n; i++ {
					if sel.Related(ids.Sim(i), x) {
						total++
					}
				}
			}
			mean := float64(total) / targets
			// Binomial(n, k/n): stddev ≈ sqrt(k). Averaged over 40
			// targets the standard error is sqrt(k/40) ≈ 0.55; allow 4x.
			if math.Abs(mean-k) > 4*math.Sqrt(float64(k)/targets) {
				t.Errorf("mean |PS| = %.2f, want ≈ %d", mean, k)
			}
		})
	}
}

func TestSelectorConsistencyUnderReparam(t *testing.T) {
	// The relation must be a pure function of (y, x, K, N, H): two
	// independently constructed selectors agree everywhere.
	s1, err := NewSelector(MD5Hasher{}, 8, 500)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSelector(MD5Hasher{}, 8, 500)
	if err != nil {
		t.Fatal(err)
	}
	f := func(i, j uint16) bool {
		y, x := ids.Sim(int(i)), ids.Sim(int(j)+70000)
		return s1.Related(y, x) == s2.Related(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSelectorSelfNeverRelated(t *testing.T) {
	sel, err := NewSelector(FastHasher{}, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if sel.Related(ids.Sim(i), ids.Sim(i)) {
			t.Fatalf("node %d related to itself", i)
		}
	}
}

func TestSelectorParamValidation(t *testing.T) {
	tests := []struct {
		name string
		h    Hasher
		k, n int
	}{
		{"nil hasher", nil, 1, 10},
		{"zero k", FastHasher{}, 0, 10},
		{"negative k", FastHasher{}, -1, 10},
		{"zero n", FastHasher{}, 1, 0},
		{"k greater than n", FastHasher{}, 11, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSelector(tt.h, tt.k, tt.n); err == nil {
				t.Error("NewSelector accepted invalid parameters")
			}
		})
	}
}

func TestSelectorRandomnessNonCorrelation(t *testing.T) {
	// Condition 3(b): given y, z ∈ PS(x), membership of z in PS(w)
	// must be independent of y ∈ PS(w). We estimate
	// Pr(z ∈ PS(w) | y,z ∈ PS(x), y ∈ PS(w)) and compare with K/N.
	const (
		n = 900
		k = 30 // high K so conditioning events are common
	)
	sel, err := NewSelector(FastHasher{}, k, n)
	if err != nil {
		t.Fatal(err)
	}
	pop := make([]ids.ID, n)
	for i := range pop {
		pop[i] = ids.Sim(i)
	}
	cond, hit := 0, 0
	for xi := 0; xi < 30; xi++ {
		x := pop[xi]
		var ps []ids.ID
		for _, y := range pop {
			if sel.Related(y, x) {
				ps = append(ps, y)
			}
		}
		for i := 0; i < len(ps); i++ {
			for j := 0; j < len(ps); j++ {
				if i == j {
					continue
				}
				y, z := ps[i], ps[j]
				for wi := 30; wi < 90; wi++ {
					w := pop[wi]
					if w == y || w == z || w == x {
						continue
					}
					if sel.Related(y, w) {
						cond++
						if sel.Related(z, w) {
							hit++
						}
					}
				}
			}
		}
	}
	if cond < 200 {
		t.Fatalf("too few conditioning events (%d) — test setup broken", cond)
	}
	got := float64(hit) / float64(cond)
	want := float64(k) / float64(n)
	sigma := math.Sqrt(want * (1 - want) / float64(cond))
	if math.Abs(got-want) > 6*sigma {
		t.Errorf("conditional Pr(z∈PS(w)) = %.4f, want ≈ %.4f (independence violated)", got, want)
	}
}

func BenchmarkHash64MD5(b *testing.B) {
	h := MD5Hasher{}
	x, y := ids.Sim(1), ids.Sim(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Hash64(y, x)
	}
}

func BenchmarkHash64Fast(b *testing.B) {
	h := FastHasher{}
	x, y := ids.Sim(1), ids.Sim(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Hash64(y, x)
	}
}
