package hashing

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"avmon/internal/ids"
)

// refThreshold computes floor(k·2^64/n) with arbitrary-precision
// integers: the ground truth the fixed-point threshold must match.
func refThreshold(k, n int) uint64 {
	if k >= n {
		return math.MaxUint64
	}
	num := new(big.Int).Lsh(big.NewInt(int64(k)), 64)
	num.Div(num, big.NewInt(int64(n)))
	if !num.IsUint64() {
		panic("reference threshold exceeds 64 bits")
	}
	return num.Uint64()
}

// refRelated evaluates the consistency condition H(y,x)/2^64 ≤ K/N
// exactly: H·N ≤ K·2^64, compared as big integers.
func refRelated(h uint64, k, n int) bool {
	lhs := new(big.Int).Mul(new(big.Int).SetUint64(h), big.NewInt(int64(n)))
	rhs := new(big.Int).Lsh(big.NewInt(int64(k)), 64)
	return lhs.Cmp(rhs) <= 0
}

// TestThresholdMatchesBigIntReference pins the fixed-point threshold
// to the exact big-integer value at the edges the ISSUE calls out:
// K ≈ N, K = 1 with huge N, and a sweep of awkward ratios where the
// old float64 rounding was off by up to several thousand ulps.
func TestThresholdMatchesBigIntReference(t *testing.T) {
	cases := []struct{ k, n int }{
		{1, 2}, {1, 3}, {1, 7}, {2, 3},
		{1, 1}, {5, 5}, // K = N: threshold saturates
		{999_999, 1_000_000},   // K ≈ N
		{1 << 30, 1<<30 + 1},   // K ≈ N, huge
		{1, math.MaxInt32},     // K = 1, huge N
		{1, 1_000_000_000_000}, // K = 1, N beyond 32 bits
		{17, 100_000},          // the large-N sweep's K/N
		{10, 1 << 50}, {(1 << 50) - 1, 1 << 50},
	}
	for _, c := range cases {
		sel, err := NewSelector(FastHasher{}, c.k, c.n)
		if err != nil {
			t.Fatalf("NewSelector(%d, %d): %v", c.k, c.n, err)
		}
		if got, want := sel.Threshold(), refThreshold(c.k, c.n); got != want {
			t.Errorf("threshold(K=%d, N=%d) = %d, want %d (off by %d)",
				c.k, c.n, got, want, int64(got-want))
		}
	}
}

// TestThresholdPropertyRandomRatios is the property form: for random
// (K, N) the fixed-point threshold equals the big-integer floor, and
// Related agrees with the exact rational comparison for hash values
// probing both sides of the cut.
func TestThresholdPropertyRandomRatios(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(1<<31)
		k := 1 + rng.Intn(n)
		sel, err := NewSelector(FastHasher{}, k, n)
		if err != nil {
			t.Fatal(err)
		}
		thr := sel.Threshold()
		if want := refThreshold(k, n); thr != want {
			t.Fatalf("threshold(K=%d, N=%d) = %d, want %d", k, n, thr, want)
		}
		// Probe hash values at and around the threshold plus a random
		// draw; the selector's verdict must match exact arithmetic.
		probes := []uint64{thr, thr + 1, thr - 1, 0, math.MaxUint64, rng.Uint64()}
		for _, h := range probes {
			got := h <= thr
			if want := refRelated(h, k, n); got != want {
				t.Fatalf("K=%d N=%d hash=%d: fixed-point says %v, exact says %v",
					k, n, h, got, want)
			}
		}
	}
}

// TestRelatedMatchesExactReference drives the full Related path (hash
// included) against the exact rational comparison over real ID pairs.
func TestRelatedMatchesExactReference(t *testing.T) {
	for _, c := range []struct{ k, n int }{{1, 1000}, {7, 129}, {128, 129}, {17, 100_000}} {
		for _, h := range allHashers() {
			sel, err := NewSelector(h, c.k, c.n)
			if err != nil {
				t.Fatal(err)
			}
			x := ids.Sim(0)
			for i := 1; i < 500; i++ {
				y := ids.Sim(i)
				if got, want := sel.Related(y, x), refRelated(h.Hash64(y, x), c.k, c.n); got != want {
					t.Fatalf("%s K=%d N=%d pair (%v,%v): Related = %v, exact = %v",
						h.Name(), c.k, c.n, y, x, got, want)
				}
			}
		}
	}
}
