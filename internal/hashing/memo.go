package hashing

import (
	"avmon/internal/ids"
)

// DefaultMemoCapacity bounds the number of cached pair verdicts held
// by a MemoSelector before the cache is flushed (one "epoch"). At the
// default, a full cache costs a few tens of megabytes — small next to
// the simulation state it serves, and bounded regardless of how many
// distinct pairs a long run evaluates.
const DefaultMemoCapacity = 1 << 20

// MemoSelector wraps a Selector with a bounded memo of Related
// verdicts. During a coarse-view discovery sweep the same (y, x) pair
// is re-evaluated many times — by the discoverer, by both notified
// endpoints, and again on every later sweep that sees the pair — so a
// cluster-wide memo lets each pair be hashed at most once per epoch.
//
// The memo is worthwhile exactly when hashing is expensive: for the
// paper's MD5/SHA-1 hashes a map hit is ~5× cheaper than the digest,
// while for FastHasher the mix is cheaper than any lookup and the raw
// selector should be used directly (the avmon package wires this
// policy up automatically for simulated clusters).
//
// Memoization is invisible to results by construction: Related returns
// exactly what the wrapped selector returns, and cache flushes affect
// only speed. A MemoSelector is NOT safe for concurrent use; it is
// meant for the single-threaded discrete-event simulator, one instance
// per cluster. Concurrent deployments (Service) use the plain Selector.
type MemoSelector struct {
	inner *Selector
	cap   int
	cache map[pairKey]bool

	hits    uint64
	misses  uint64
	flushes uint64
}

type pairKey struct{ y, x ids.ID }

// Memoize wraps sel with a bounded pair-verdict memo. capacity ≤ 0
// selects DefaultMemoCapacity.
func Memoize(sel *Selector, capacity int) *MemoSelector {
	if capacity <= 0 {
		capacity = DefaultMemoCapacity
	}
	return &MemoSelector{
		inner: sel,
		cap:   capacity,
		cache: make(map[pairKey]bool),
	}
}

// Related reports whether y ∈ PS(x), hashing the pair only on a memo
// miss.
func (m *MemoSelector) Related(y, x ids.ID) bool {
	key := pairKey{y, x}
	if v, ok := m.cache[key]; ok {
		m.hits++
		return v
	}
	m.misses++
	v := m.inner.Related(y, x)
	if len(m.cache) >= m.cap {
		// Epoch flush: start a fresh memo rather than tracking
		// per-entry recency. The population of hot pairs shifts slowly
		// (coarse views reshuffle once per period), so a flush is
		// repopulated within one sweep.
		m.cache = make(map[pairKey]bool)
		m.flushes++
	}
	m.cache[key] = v
	return v
}

// K returns the pinging-set parameter of the wrapped selector.
func (m *MemoSelector) K() int { return m.inner.K() }

// N returns the expected stable system size of the wrapped selector.
func (m *MemoSelector) N() int { return m.inner.N() }

// Hasher returns the wrapped selector's hash function.
func (m *MemoSelector) Hasher() Hasher { return m.inner.Hasher() }

// Threshold returns the wrapped selector's 64-bit threshold.
func (m *MemoSelector) Threshold() uint64 { return m.inner.Threshold() }

// Unwrap returns the wrapped selector.
func (m *MemoSelector) Unwrap() *Selector { return m.inner }

// MemoStats reports cache effectiveness counters.
type MemoStats struct {
	Hits    uint64 // Related calls answered from the memo
	Misses  uint64 // Related calls that hashed
	Flushes uint64 // epoch flushes triggered by the capacity bound
	Entries int    // pairs currently memoized
}

// Stats returns a snapshot of the memo counters.
func (m *MemoSelector) Stats() MemoStats {
	return MemoStats{Hits: m.hits, Misses: m.misses, Flushes: m.flushes, Entries: len(m.cache)}
}

// Reset drops all memoized verdicts (the counters survive). Useful at
// epoch boundaries chosen by the caller, e.g. when the system size
// estimate is re-tuned.
func (m *MemoSelector) Reset() {
	m.cache = make(map[pairKey]bool)
	m.flushes++
}
