package hashing

import (
	"math"
	"testing"
)

func TestVariantString(t *testing.T) {
	tests := []struct {
		v    Variant
		want string
	}{
		{VariantGeneric, "generic-logN"},
		{VariantMD, "optimal-MD"},
		{VariantMDC, "optimal-MDC"},
		{VariantDC, "optimal-DC"},
		{Variant(99), "unknown-variant"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("Variant(%d).String() = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestClosedFormsMatchPaper(t *testing.T) {
	// Paper Section 4.2: for N = 1 Million, cvs_MDC = N^(1/4) ≈ 32.
	if got := VariantMDC.CVS(1_000_000); got < 31 || got > 32 {
		t.Errorf("MDC cvs for 1M nodes = %d, want ≈ 32", got)
	}
	// cvs_MD = (2N)^(1/3): for N=1M that's ~126.
	if got := VariantMD.CVS(1_000_000); got < 125 || got > 127 {
		t.Errorf("MD cvs for 1M nodes = %d, want ≈ 126", got)
	}
	// DC equals MDC (Optimality Analysis 3).
	for _, n := range []int{100, 2000, 1_000_000} {
		if VariantDC.CVS(n) != VariantMDC.CVS(n) {
			t.Errorf("DC and MDC disagree at N=%d", n)
		}
	}
	// Generic: log2(N). K default for N=1M is 20 per the paper.
	if got := DefaultK(1_000_000); got != 20 {
		t.Errorf("DefaultK(1M) = %d, want 20", got)
	}
}

func TestNumericMinimizerConfirmsClosedForms(t *testing.T) {
	// The closed forms are stationary points of the cost functions;
	// confirm the numeric argmin lands close for several N.
	for _, n := range []int{500, 2000, 50000, 1_000_000} {
		md := MinimizeCost(CostMD, n, 4000)
		wantMD := CVSOptimalMD(n)
		if math.Abs(float64(md)-wantMD) > wantMD*0.25+2 {
			t.Errorf("N=%d: numeric MD argmin %d far from closed form %.1f", n, md, wantMD)
		}
		mdc := MinimizeCost(CostMDC, n, 4000)
		wantMDC := CVSOptimalMDC(n)
		if math.Abs(float64(mdc)-wantMDC) > wantMDC*0.35+2 {
			t.Errorf("N=%d: numeric MDC argmin %d far from closed form %.1f", n, mdc, wantMDC)
		}
	}
}

func TestExpectedDiscoveryTime(t *testing.T) {
	// E[D] ≈ N/cvs² when cvs = o(sqrt(N)); for N=1M, cvs=32 the paper
	// quotes 1000 time units.
	got := ExpectedDiscoveryTime(32, 1_000_000)
	if got < 900 || got > 1100 {
		t.Errorf("E[D] for N=1M, cvs=32 = %.1f, want ≈ 1000", got)
	}
	// Monotone decreasing in cvs.
	prev := math.Inf(1)
	for cvs := 2; cvs <= 64; cvs *= 2 {
		d := ExpectedDiscoveryTime(cvs, 10000)
		if d >= prev {
			t.Errorf("E[D] not decreasing at cvs=%d: %f >= %f", cvs, d, prev)
		}
		prev = d
	}
	// Degenerate inputs.
	if !math.IsInf(ExpectedDiscoveryTime(0, 100), 1) {
		t.Error("E[D] with cvs=0 should be +Inf")
	}
	if !math.IsInf(ExpectedDiscoveryTime(10, 0), 1) {
		t.Error("E[D] with n=0 should be +Inf")
	}
}

func TestDefaultCVSMatchesExperimentalSetting(t *testing.T) {
	// Section 5: cvs = 4·N^(1/4); for N=2000, K=11, cvs=27.
	if got := DefaultCVS(2000); got != 27 {
		t.Errorf("DefaultCVS(2000) = %d, want 27", got)
	}
	if got := DefaultK(2000); got != 11 {
		t.Errorf("DefaultK(2000) = %d, want 11", got)
	}
	// Section 5.3: PL has N=239 → K=8, cvs=16; OV has N=550 → K=9, cvs=19.
	if got := DefaultK(239); got != 8 {
		t.Errorf("DefaultK(239) = %d, want 8", got)
	}
	if got := DefaultCVS(239); got != 16 {
		t.Errorf("DefaultCVS(239) = %d, want 16", got)
	}
	if got := DefaultK(550); got != 9 {
		t.Errorf("DefaultK(550) = %d, want 9", got)
	}
	if got := DefaultCVS(550); got != 19 {
		t.Errorf("DefaultCVS(550) = %d, want 19", got)
	}
}

func TestKForLOutOfK(t *testing.T) {
	// K = (l+1)·log(N) grows with both l and N.
	if KForLOutOfK(1, 1000) <= KForLOutOfK(0, 1000) {
		t.Error("K not increasing in l")
	}
	if KForLOutOfK(1, 100000) <= KForLOutOfK(1, 100) {
		t.Error("K not increasing in N")
	}
	if got := KForLOutOfK(2, 1); got < 3 {
		t.Errorf("degenerate N: got %d, want ≥ l+1", got)
	}
}

func TestCVSFloors(t *testing.T) {
	for _, v := range []Variant{VariantGeneric, VariantMD, VariantMDC, VariantDC} {
		if got := v.CVS(1); got < 2 {
			t.Errorf("%v.CVS(1) = %d, want ≥ 2", v, got)
		}
	}
	if DefaultCVS(1) < 2 {
		t.Error("DefaultCVS(1) < 2")
	}
	if DefaultK(1) < 1 {
		t.Error("DefaultK(1) < 1")
	}
}
