package hashing

import (
	"testing"

	"avmon/internal/ids"
)

func TestMemoSelectorMatchesInner(t *testing.T) {
	for _, h := range allHashers() {
		t.Run(h.Name(), func(t *testing.T) {
			sel, err := NewSelector(h, 8, 200)
			if err != nil {
				t.Fatal(err)
			}
			memo := Memoize(sel, 0)
			for round := 0; round < 3; round++ { // repeats exercise hits
				for i := 0; i < 200; i++ {
					for j := 0; j < 10; j++ {
						y, x := ids.Sim(i), ids.Sim(j)
						if got, want := memo.Related(y, x), sel.Related(y, x); got != want {
							t.Fatalf("memo.Related(%v,%v) = %v, inner = %v", y, x, got, want)
						}
					}
				}
			}
			st := memo.Stats()
			if st.Misses == 0 || st.Hits == 0 {
				t.Errorf("memo never exercised both paths: %+v", st)
			}
			// Rounds 2 and 3 must be pure hits.
			if st.Misses > 200*10 {
				t.Errorf("misses = %d, want ≤ %d (pairs hashed at most once)", st.Misses, 200*10)
			}
		})
	}
}

func TestMemoSelectorPassthrough(t *testing.T) {
	sel, err := NewSelector(FastHasher{}, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	memo := Memoize(sel, 0)
	if memo.K() != sel.K() || memo.N() != sel.N() || memo.Threshold() != sel.Threshold() {
		t.Errorf("passthrough mismatch: K=%d/%d N=%d/%d thr=%d/%d",
			memo.K(), sel.K(), memo.N(), sel.N(), memo.Threshold(), sel.Threshold())
	}
	if memo.Hasher() != sel.Hasher() {
		t.Error("Hasher passthrough mismatch")
	}
	if memo.Unwrap() != sel {
		t.Error("Unwrap did not return the inner selector")
	}
}

func TestMemoSelectorCapacityFlush(t *testing.T) {
	sel, err := NewSelector(FastHasher{}, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	memo := Memoize(sel, 16)
	x := ids.Sim(0)
	for i := 1; i <= 100; i++ {
		memo.Related(ids.Sim(i), x)
	}
	st := memo.Stats()
	if st.Flushes == 0 {
		t.Errorf("no flush after %d distinct pairs with capacity 16: %+v", 100, st)
	}
	if st.Entries > 16 {
		t.Errorf("cache holds %d entries, capacity 16", st.Entries)
	}
	// Verdicts remain correct across flushes.
	for i := 1; i <= 100; i++ {
		if memo.Related(ids.Sim(i), x) != sel.Related(ids.Sim(i), x) {
			t.Fatalf("verdict diverged after flush for pair %d", i)
		}
	}
}

func TestMemoSelectorReset(t *testing.T) {
	sel, err := NewSelector(FastHasher{}, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	memo := Memoize(sel, 0)
	memo.Related(ids.Sim(1), ids.Sim(2))
	if memo.Stats().Entries != 1 {
		t.Fatalf("entries = %d, want 1", memo.Stats().Entries)
	}
	memo.Reset()
	if st := memo.Stats(); st.Entries != 0 || st.Flushes != 1 {
		t.Errorf("after Reset: %+v", st)
	}
	if memo.Related(ids.Sim(1), ids.Sim(2)) != sel.Related(ids.Sim(1), ids.Sim(2)) {
		t.Error("verdict diverged after Reset")
	}
}
