package hashing

import (
	"fmt"
	"math"

	"avmon/internal/ids"
)

// Selector implements the paper's consistency condition
//
//	y ∈ PS(x)  ⇐⇒  H(y, x) ≤ K/N
//
// for a fixed hash function and fixed parameters K and N (Section 3.1).
// Because K, N, and H are system-wide constants, the relation is
// consistent (independent of churn and of who evaluates it),
// verifiable (any third node can recompute it), and random (H is
// uniform and pairwise uncorrelated).
type Selector struct {
	hasher    Hasher
	k         int
	n         int
	threshold uint64 // floor(K/N * 2^64), the integer form of K/N
}

// NewSelector builds a Selector with pinging-set parameter k and
// expected stable system size n. It returns an error on non-positive
// parameters or k > n (the condition would then be vacuous or total).
func NewSelector(h Hasher, k, n int) (*Selector, error) {
	if h == nil {
		return nil, fmt.Errorf("hashing: nil hasher")
	}
	if k <= 0 || n <= 0 {
		return nil, fmt.Errorf("hashing: K and N must be positive (K=%d, N=%d)", k, n)
	}
	if k > n {
		return nil, fmt.Errorf("hashing: K must not exceed N (K=%d, N=%d)", k, n)
	}
	frac := float64(k) / float64(n)
	var thr uint64
	if frac >= 1 {
		thr = math.MaxUint64
	} else {
		thr = uint64(frac * math.Exp2(64))
	}
	return &Selector{hasher: h, k: k, n: n, threshold: thr}, nil
}

// Related reports whether y ∈ PS(x), i.e. whether y monitors x.
func (s *Selector) Related(y, x ids.ID) bool {
	if y == x {
		return false
	}
	return s.hasher.Hash64(y, x) <= s.threshold
}

// K returns the pinging-set parameter.
func (s *Selector) K() int { return s.k }

// N returns the expected stable system size.
func (s *Selector) N() int { return s.n }

// Hasher returns the underlying hash function.
func (s *Selector) Hasher() Hasher { return s.hasher }

// Threshold returns the 64-bit integer form of K/N.
func (s *Selector) Threshold() uint64 { return s.threshold }
