package hashing

import (
	"fmt"
	"math/bits"

	"avmon/internal/ids"
)

// Selector implements the paper's consistency condition
//
//	y ∈ PS(x)  ⇐⇒  H(y, x) ≤ K/N
//
// for a fixed hash function and fixed parameters K and N (Section 3.1).
// Because K, N, and H are system-wide constants, the relation is
// consistent (independent of churn and of who evaluates it),
// verifiable (any third node can recompute it), and random (H is
// uniform and pairwise uncorrelated).
type Selector struct {
	hasher    Hasher
	fast      bool // hasher is FastHasher: statically dispatch the hot path
	k         int
	n         int
	threshold uint64 // floor(K/N * 2^64), the integer form of K/N
}

// NewSelector builds a Selector with pinging-set parameter k and
// expected stable system size n. It returns an error on non-positive
// parameters or k > n (the condition would then be vacuous or total).
func NewSelector(h Hasher, k, n int) (*Selector, error) {
	if h == nil {
		return nil, fmt.Errorf("hashing: nil hasher")
	}
	if k <= 0 || n <= 0 {
		return nil, fmt.Errorf("hashing: K and N must be positive (K=%d, N=%d)", k, n)
	}
	if k > n {
		return nil, fmt.Errorf("hashing: K must not exceed N (K=%d, N=%d)", k, n)
	}
	_, fast := h.(FastHasher)
	return &Selector{hasher: h, fast: fast, k: k, n: n, threshold: threshold64(k, n)}, nil
}

// threshold64 returns floor(k/n · 2^64), the exact 64-bit fixed-point
// form of K/N, computed with a 128-by-64-bit division. The earlier
// float64 route (uint64(frac · 2^64)) both lost precision for most
// K/N ratios and hit undefined float→uint conversion behavior when the
// product rounded up to exactly 2^64 (K close to N); every node must
// agree on the threshold bit-for-bit or the relation stops being
// consistent.
func threshold64(k, n int) uint64 {
	if k >= n {
		// K/N ≥ 1: the condition H ≤ K/N holds for every hash value.
		return ^uint64(0)
	}
	// k < n guarantees the quotient of (k·2^64)/n fits in 64 bits.
	q, _ := bits.Div64(uint64(k), 0, uint64(n))
	return q
}

// Related reports whether y ∈ PS(x), i.e. whether y monitors x. The
// discovery sweep evaluates this Θ(cvs²) times per node per period,
// so the FastHasher case dispatches statically (the dynamic interface
// call costs more than the mix itself).
func (s *Selector) Related(y, x ids.ID) bool {
	if y == x {
		return false
	}
	if s.fast {
		return FastHasher{}.Hash64(y, x) <= s.threshold
	}
	return s.hasher.Hash64(y, x) <= s.threshold
}

// K returns the pinging-set parameter.
func (s *Selector) K() int { return s.k }

// N returns the expected stable system size.
func (s *Selector) N() int { return s.n }

// Hasher returns the underlying hash function.
func (s *Selector) Hasher() Hasher { return s.hasher }

// Threshold returns the 64-bit integer form of K/N.
func (s *Selector) Threshold() uint64 { return s.threshold }
