// Package hashing implements AVMON's hash-based monitor selection
// scheme (paper Section 3.1) and the optimal coarse-view sizing math
// (Section 4.2).
//
// Two nodes x, y are related as y ∈ PS(x) iff H(y, x) ≤ K/N, where H is
// a consistent hash over the 12-byte concatenation of the two node
// identities, normalized to [0, 1]. The paper uses libSSL MD5 keeping
// only the first 64 bits of the digest; MD5Hasher reproduces that
// exactly. FastHasher is a statistically equivalent 64-bit mixer used
// for large single-core simulations.
package hashing

import (
	"crypto/md5"
	"crypto/sha1"
	"math/bits"

	"avmon/internal/ids"
)

// Hasher maps an ordered pair of node identities to a uniform 64-bit
// value. Hash64(y, x) is the first 64 bits (big-endian) of
// H(bytes(y) || bytes(x)).
//
// Implementations must be deterministic (consistency and verifiability
// of the selection scheme both depend on any third node being able to
// recompute the value).
type Hasher interface {
	Hash64(y, x ids.ID) uint64
	Name() string
}

// MD5Hasher is the paper's default hash: MD5 over the 12-byte pair
// encoding, first 64 bits. The zero value is ready to use.
type MD5Hasher struct{}

var _ Hasher = MD5Hasher{}

// Hash64 implements Hasher.
func (MD5Hasher) Hash64(y, x ids.ID) uint64 {
	var buf [2 * ids.WireLen]byte
	yw := y.Wire()
	xw := x.Wire()
	copy(buf[:], yw[:])
	copy(buf[ids.WireLen:], xw[:])
	sum := md5.Sum(buf[:])
	return be64(sum[:8])
}

// Name implements Hasher.
func (MD5Hasher) Name() string { return "md5" }

// SHA1Hasher is the paper's alternative hash (Section 3.1 mentions
// MD-5 or SHA-1): SHA-1 over the 12-byte pair encoding, first 64 bits.
type SHA1Hasher struct{}

var _ Hasher = SHA1Hasher{}

// Hash64 implements Hasher.
func (SHA1Hasher) Hash64(y, x ids.ID) uint64 {
	var buf [2 * ids.WireLen]byte
	yw := y.Wire()
	xw := x.Wire()
	copy(buf[:], yw[:])
	copy(buf[ids.WireLen:], xw[:])
	sum := sha1.Sum(buf[:])
	return be64(sum[:8])
}

// Name implements Hasher.
func (SHA1Hasher) Name() string { return "sha1" }

// FastHasher is a non-cryptographic 64-bit finalizer (splitmix64-style)
// over the pair encoding. It has the same consistency, verifiability,
// and uniformity properties required by the protocol, at a fraction of
// the cost of MD5; it is the default for large simulations.
type FastHasher struct{}

var _ Hasher = FastHasher{}

// Hash64 implements Hasher.
func (FastHasher) Hash64(y, x ids.ID) uint64 {
	v := uint64(y)*0x9E3779B97F4A7C15 ^ bits.RotateLeft64(uint64(x)*0xC2B2AE3D27D4EB4F, 31)
	v ^= v >> 30
	v *= 0xBF58476D1CE4E5B9
	v ^= v >> 27
	v *= 0x94D049BB133111EB
	v ^= v >> 31
	return v
}

// Name implements Hasher.
func (FastHasher) Name() string { return "fast" }

func be64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
