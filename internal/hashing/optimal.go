package hashing

import "math"

// Variant identifies one of the AVMON coarse-view-size policies
// analyzed in Section 4.2 and summarized in Table 1 of the paper.
type Variant int

const (
	// VariantGeneric uses cvs = log2(N) (the "AVMON, cvs = log(N)" row
	// of Table 1).
	VariantGeneric Variant = iota + 1
	// VariantMD minimizes memory/bandwidth and discovery time:
	// cvs = (2N)^(1/3) (Optimality Analysis 1).
	VariantMD
	// VariantMDC minimizes memory/bandwidth, discovery time, and
	// computation: cvs ≈ N^(1/4) (Optimality Analysis 2).
	VariantMDC
	// VariantDC minimizes discovery time and computation:
	// cvs = N^(1/4), identical to MDC (Optimality Analysis 3).
	VariantDC
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantGeneric:
		return "generic-logN"
	case VariantMD:
		return "optimal-MD"
	case VariantMDC:
		return "optimal-MDC"
	case VariantDC:
		return "optimal-DC"
	default:
		return "unknown-variant"
	}
}

// CVS returns the coarse-view size this variant prescribes for system
// size n. Results are rounded to the nearest integer and floored at 2
// (a coarse view needs at least one peer besides the fetch target).
func (v Variant) CVS(n int) int {
	if n < 2 {
		return 2
	}
	var f float64
	switch v {
	case VariantMD:
		f = CVSOptimalMD(n)
	case VariantMDC, VariantDC:
		f = CVSOptimalMDC(n)
	default:
		f = math.Log2(float64(n))
	}
	c := int(math.Round(f))
	if c < 2 {
		c = 2
	}
	return c
}

// CVSOptimalMD is the closed-form minimizer of
// f(cvs) = cvs + N/cvs² (memory+bandwidth plus discovery time):
// cvs = (2N)^(1/3).
func CVSOptimalMD(n int) float64 { return math.Cbrt(2 * float64(n)) }

// CVSOptimalMDC is the closed-form (approximate) minimizer of
// g(cvs) = cvs + cvs² + N/cvs²: cvs ≈ N^(1/4).
func CVSOptimalMDC(n int) float64 { return math.Pow(float64(n), 0.25) }

// ExpectedDiscoveryTime returns the paper's upper bound on the expected
// number of protocol periods to discover an arbitrary related pair:
//
//	E[D] ≤ 1 / (1 − e^(−cvs²/N))        (Section 4.1)
//
// For cvs² ≪ N this is ≈ N/cvs².
func ExpectedDiscoveryTime(cvs, n int) float64 {
	if cvs <= 0 || n <= 0 {
		return math.Inf(1)
	}
	p := 1 - math.Exp(-float64(cvs)*float64(cvs)/float64(n))
	if p <= 0 {
		return math.Inf(1)
	}
	return 1 / p
}

// CostMD is the Optimal-MD objective f(cvs) = cvs + E[D](cvs).
func CostMD(cvs, n int) float64 {
	return float64(cvs) + ExpectedDiscoveryTime(cvs, n)
}

// CostMDC is the Optimal-MDC objective
// g(cvs) = cvs + cvs² + E[D](cvs).
func CostMDC(cvs, n int) float64 {
	return float64(cvs) + float64(cvs)*float64(cvs) + ExpectedDiscoveryTime(cvs, n)
}

// MinimizeCost numerically minimizes cost over cvs ∈ [2, limit] and
// returns the argmin. It exists so tests can confirm the closed forms:
// the numeric minimum of CostMD should be near (2N)^(1/3), and that of
// CostMDC near N^(1/4).
func MinimizeCost(cost func(cvs, n int) float64, n, limit int) int {
	best, bestCost := 2, math.Inf(1)
	for c := 2; c <= limit; c++ {
		if v := cost(c, n); v < bestCost {
			best, bestCost = c, v
		}
	}
	return best
}

// DefaultK returns the paper's default pinging-set parameter
// K = log2(N) (Section 5 experimental settings), floored at 1.
func DefaultK(n int) int {
	if n < 2 {
		return 1
	}
	k := int(math.Round(math.Log2(float64(n))))
	if k < 1 {
		k = 1
	}
	return k
}

// KForLOutOfK returns the K needed to support an "l out of K"
// reporting policy with high probability: K = (l+1)·log(N)
// (Section 4.3).
func KForLOutOfK(l, n int) int {
	if n < 2 {
		return l + 1
	}
	k := int(math.Ceil(float64(l+1) * math.Log(float64(n))))
	if k < 1 {
		k = 1
	}
	return k
}

// DefaultCVS returns the paper's experimental coarse-view size
// cvs = 4·N^(1/4) (Section 5: "a factor of 4 above cvsOptimal−MDC for
// performance reasons").
func DefaultCVS(n int) int {
	c := int(math.Round(4 * CVSOptimalMDC(n)))
	if c < 2 {
		c = 2
	}
	return c
}
