package hashing

import (
	"math"
	"testing"

	"avmon/internal/ids"
)

// TestCollusionPollutionProbability validates the Section 4.3
// analysis: with C colluders per node and K = log2(N), the probability
// that at least one colluder lands in PS(x) is ≈ 1 − (1 − K/N)^C.
func TestCollusionPollutionProbability(t *testing.T) {
	const (
		n = 2000
		c = 20 // colluders per node
	)
	k := DefaultK(n)
	sel, err := NewSelector(FastHasher{}, k, n)
	if err != nil {
		t.Fatal(err)
	}
	polluted := 0
	const victims = 1500
	for v := 0; v < victims; v++ {
		x := ids.Sim(v)
		// The colluders are c arbitrary distinct other nodes; use a
		// disjoint index range so they are deterministic.
		for ci := 0; ci < c; ci++ {
			colluder := ids.Sim(100000 + v*c + ci)
			if sel.Related(colluder, x) {
				polluted++
				break
			}
		}
	}
	got := float64(polluted) / victims
	want := 1 - math.Pow(1-float64(k)/n, c)
	sigma := math.Sqrt(want * (1 - want) / victims)
	if math.Abs(got-want) > 5*sigma {
		t.Errorf("pollution probability = %.4f, analysis predicts %.4f", got, want)
	}
}

// TestMinPSSizeWithLOutOfK validates the Section 4.3 sizing rule: with
// K = (l+1)·log(N), w.h.p. no node has fewer than l monitors in a
// population of size N.
func TestMinPSSizeWithLOutOfK(t *testing.T) {
	const (
		n = 1200
		l = 2
	)
	k := KForLOutOfK(l, n)
	sel, err := NewSelector(FastHasher{}, k, n)
	if err != nil {
		t.Fatal(err)
	}
	pop := make([]ids.ID, n)
	for i := range pop {
		pop[i] = ids.Sim(i)
	}
	short := 0
	for _, x := range pop {
		count := 0
		for _, y := range pop {
			if sel.Related(y, x) {
				count++
			}
		}
		if count < l {
			short++
		}
	}
	// The analysis gives O(1/N) probability of ANY node being short;
	// allow a tiny handful to absorb hash-specific variance.
	if short > 2 {
		t.Errorf("%d of %d nodes have fewer than %d monitors with K=%d", short, n, l, k)
	}
}

// TestMaxPSSizeLogarithmic validates the balls-and-bins bound: with
// K = O(log N), the maximum PS size is O(log N) w.h.p.
func TestMaxPSSizeLogarithmic(t *testing.T) {
	const n = 1500
	k := DefaultK(n)
	sel, err := NewSelector(FastHasher{}, k, n)
	if err != nil {
		t.Fatal(err)
	}
	maxPS := 0
	for xi := 0; xi < n; xi++ {
		x := ids.Sim(xi)
		count := 0
		for yi := 0; yi < n; yi++ {
			if sel.Related(ids.Sim(yi), x) {
				count++
			}
		}
		if count > maxPS {
			maxPS = count
		}
	}
	// Raab-Steger: max ≈ K + O(sqrt(K log N)); 3K is a loose ceiling.
	if maxPS > 3*k {
		t.Errorf("max |PS| = %d with K = %d; exceeds the O(log N) bound", maxPS, k)
	}
	if maxPS < k {
		t.Errorf("max |PS| = %d below K = %d; selection suspiciously tight", maxPS, k)
	}
}
