package hashing

import (
	"math"
	"testing"

	"avmon/internal/ids"
)

// TestCollusionPollutionProbability validates the Section 4.3
// analysis: with C colluders per node and K = log2(N), the probability
// that at least one colluder lands in PS(x) is ≈ 1 − (1 − K/N)^C.
func TestCollusionPollutionProbability(t *testing.T) {
	const (
		n = 2000
		c = 20 // colluders per node
	)
	k := DefaultK(n)
	sel, err := NewSelector(FastHasher{}, k, n)
	if err != nil {
		t.Fatal(err)
	}
	polluted := 0
	const victims = 1500
	for v := 0; v < victims; v++ {
		x := ids.Sim(v)
		// The colluders are c arbitrary distinct other nodes; use a
		// disjoint index range so they are deterministic.
		for ci := 0; ci < c; ci++ {
			colluder := ids.Sim(100000 + v*c + ci)
			if sel.Related(colluder, x) {
				polluted++
				break
			}
		}
	}
	got := float64(polluted) / victims
	want := 1 - math.Pow(1-float64(k)/n, c)
	sigma := math.Sqrt(want * (1 - want) / victims)
	if math.Abs(got-want) > 5*sigma {
		t.Errorf("pollution probability = %.4f, analysis predicts %.4f", got, want)
	}
}

// TestCollusionCoverageVsFraction is the quantitative version of the
// Section 4.3 analysis, swept over the colluder fraction, two K/N
// sizing rules, and two hash functions. Colluders are the top f·N
// indexes (the convention the cluster's CollusionConfig uses). For
// every honest victim x three statistics must track the analytic
// prediction within 5σ of the corresponding binomial:
//
//   - honest coverage: P(≥1 honest monitor in PS(x)) = 1−(1−K/N)^(N−C−1)
//   - pollution:       P(≥1 colluder in PS(x))       = 1−(1−K/N)^C
//   - infiltration:    E[colluders in PS(x)]          = C·K/N
//
// The relation is a pure hash, so each run is deterministic — the 5σ
// bound is a property of the hash behaving uniformly, not a flaky
// statistical test.
func TestCollusionCoverageVsFraction(t *testing.T) {
	fractions := []float64{0.05, 0.10, 0.20, 0.30}
	settings := []struct {
		name string
		n, k int
	}{
		{"N=500-defaultK", 500, DefaultK(500)},
		{"N=2000-defaultK", 2000, DefaultK(2000)},
		{"N=1200-K2of", 1200, KForLOutOfK(2, 1200)},
	}
	hashers := []struct {
		name string
		h    Hasher
	}{
		{"fast", FastHasher{}},
		{"md5", MD5Hasher{}},
	}
	for _, hs := range hashers {
		for _, set := range settings {
			set := set
			hs := hs
			t.Run(hs.name+"/"+set.name, func(t *testing.T) {
				sel, err := NewSelector(hs.h, set.k, set.n)
				if err != nil {
					t.Fatal(err)
				}
				// Precompute each node's monitor set once; the fraction
				// sweep only moves the colluder threshold index.
				monitors := make([][]int, set.n)
				for x := 0; x < set.n; x++ {
					id := ids.Sim(x)
					for y := 0; y < set.n; y++ {
						if y != x && sel.Related(ids.Sim(y), id) {
							monitors[x] = append(monitors[x], y)
						}
					}
				}
				p := float64(set.k) / float64(set.n)
				for _, f := range fractions {
					colluders := int(f*float64(set.n) + 0.5)
					from := set.n - colluders
					victims := from
					covered, polluted := 0, 0
					var infiltration float64
					for x := 0; x < from; x++ {
						hasHonest := false
						coll := 0
						for _, y := range monitors[x] {
							if y >= from {
								coll++
							} else {
								hasHonest = true
							}
						}
						if hasHonest {
							covered++
						}
						if coll > 0 {
							polluted++
						}
						infiltration += float64(coll)
					}
					check := func(metric string, got, want, sigma float64) {
						if math.Abs(got-want) > 5*sigma {
							t.Errorf("f=%.2f %s = %.5f, analysis predicts %.5f (5σ = %.5f)",
								f, metric, got, want, 5*sigma)
						}
					}
					wantCov := 1 - math.Pow(1-p, float64(set.n-colluders-1))
					check("honest coverage", float64(covered)/float64(victims), wantCov,
						math.Sqrt(wantCov*(1-wantCov)/float64(victims)))
					wantPol := 1 - math.Pow(1-p, float64(colluders))
					check("pollution", float64(polluted)/float64(victims), wantPol,
						math.Sqrt(wantPol*(1-wantPol)/float64(victims)))
					wantInf := float64(colluders) * p
					check("infiltration", infiltration/float64(victims), wantInf,
						math.Sqrt(float64(colluders)*p*(1-p)/float64(victims)))
				}
			})
		}
	}
}

// TestMinPSSizeWithLOutOfK validates the Section 4.3 sizing rule: with
// K = (l+1)·log(N), w.h.p. no node has fewer than l monitors in a
// population of size N.
func TestMinPSSizeWithLOutOfK(t *testing.T) {
	const (
		n = 1200
		l = 2
	)
	k := KForLOutOfK(l, n)
	sel, err := NewSelector(FastHasher{}, k, n)
	if err != nil {
		t.Fatal(err)
	}
	pop := make([]ids.ID, n)
	for i := range pop {
		pop[i] = ids.Sim(i)
	}
	short := 0
	for _, x := range pop {
		count := 0
		for _, y := range pop {
			if sel.Related(y, x) {
				count++
			}
		}
		if count < l {
			short++
		}
	}
	// The analysis gives O(1/N) probability of ANY node being short;
	// allow a tiny handful to absorb hash-specific variance.
	if short > 2 {
		t.Errorf("%d of %d nodes have fewer than %d monitors with K=%d", short, n, l, k)
	}
}

// TestMaxPSSizeLogarithmic validates the balls-and-bins bound: with
// K = O(log N), the maximum PS size is O(log N) w.h.p.
func TestMaxPSSizeLogarithmic(t *testing.T) {
	const n = 1500
	k := DefaultK(n)
	sel, err := NewSelector(FastHasher{}, k, n)
	if err != nil {
		t.Fatal(err)
	}
	maxPS := 0
	for xi := 0; xi < n; xi++ {
		x := ids.Sim(xi)
		count := 0
		for yi := 0; yi < n; yi++ {
			if sel.Related(ids.Sim(yi), x) {
				count++
			}
		}
		if count > maxPS {
			maxPS = count
		}
	}
	// Raab-Steger: max ≈ K + O(sqrt(K log N)); 3K is a loose ceiling.
	if maxPS > 3*k {
		t.Errorf("max |PS| = %d with K = %d; exceeds the O(log N) bound", maxPS, k)
	}
	if maxPS < k {
		t.Errorf("max |PS| = %d below K = %d; selection suspiciously tight", maxPS, k)
	}
}
