package trace

import (
	"fmt"
	"time"
)

// TimeScale returns a copy of t compressed by an integer factor: every
// instant — session boundaries, births, deaths, the horizon, the
// sampling granularity — divides by factor, so the scaled trace
// replays the identical churn pattern factor× faster (a 48-hour trace
// becomes a 29-minute one at factor 100). Scaling preserves every
// structural invariant (the result still passes Validate) and every
// availability ratio exactly; only absolute durations shrink. The
// scaled trace is named "<name>-x<factor>".
//
// factor must be ≥ 1 and divide Granularity evenly — the generators'
// alignment guarantee (every session boundary sits on a granularity
// multiple) then makes every division exact. To round-trip a scaled
// trace through the integer-second avmon-trace-v1 format, the scaled
// granularity must additionally remain a whole number of seconds. The
// receiver is not modified.
func TimeScale(t *Trace, factor int) (*Trace, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("trace %q: non-positive time-scale factor %d", t.Name, factor)
	}
	f := time.Duration(factor)
	if t.Granularity%f != 0 {
		return nil, fmt.Errorf("trace %q: factor %d does not divide granularity %v",
			t.Name, factor, t.Granularity)
	}
	out := &Trace{
		Name:        fmt.Sprintf("%s-x%d", t.Name, factor),
		Granularity: t.Granularity / f,
		Duration:    t.Duration / f,
		StableN:     t.StableN,
		Nodes:       make([]NodeTrace, len(t.Nodes)),
	}
	for i := range t.Nodes {
		src := &t.Nodes[i]
		nt := NodeTrace{
			Born:     src.Born / f,
			DeathAt:  src.DeathAt / f,
			Sessions: make([]Session, len(src.Sessions)),
		}
		for j, s := range src.Sessions {
			nt.Sessions[j] = Session{Start: s.Start / f, End: s.End / f}
		}
		out.Nodes[i] = nt
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("trace %q: time-scaling by %d broke invariants: %w",
			t.Name, factor, err)
	}
	return out, nil
}
