package trace

import (
	"math/rand"
	"time"

	"avmon/internal/churn"
	"avmon/internal/sim"
)

// Model adapts a Trace to the churn.Model interface so trace-driven
// experiments run through the same cluster driver as the synthetic
// models (paper Section 5: "injected as such in the simulation").
type Model struct {
	trace *Trace

	eng    sim.Sched
	driver churn.Driver
	rng    *rand.Rand
	next   int // next driver index for Enroll-created nodes

	meanSession time.Duration
	meanDown    time.Duration
}

var _ churn.Model = (*Model)(nil)

// NewModel wraps a validated trace.
func NewModel(t *Trace) (*Model, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	ms, md := t.SessionStats()
	if ms <= 0 {
		ms = time.Hour
	}
	if md <= 0 {
		md = 30 * time.Minute
	}
	return &Model{trace: t, meanSession: ms, meanDown: md}, nil
}

// Name implements churn.Model.
func (m *Model) Name() string { return m.trace.Name }

// StableN implements churn.Model.
func (m *Model) StableN() int { return m.trace.StableN }

// Trace returns the underlying trace.
func (m *Model) Trace() *Trace { return m.trace }

// Install implements churn.Model: it schedules every session
// transition in the trace.
func (m *Model) Install(eng sim.Sched, d churn.Driver) {
	m.eng = eng
	m.driver = d
	m.rng = eng.Rand()
	m.next = len(m.trace.Nodes)
	for i := range m.trace.Nodes {
		nt := &m.trace.Nodes[i]
		idx := i
		for j, s := range nt.Sessions {
			first := j == 0
			start := s.Start
			eng.At(sim.Epoch.Add(start), func() {
				if first {
					m.driver.Birth(idx)
				} else {
					m.driver.Rejoin(idx)
				}
			})
			end := s.End
			if end < m.trace.Duration { // leaving exactly at horizon is invisible
				eng.At(sim.Epoch.Add(end), func() { m.driver.Leave(idx) })
			}
		}
		if nt.Dead() {
			at := nt.DeathAt
			eng.At(sim.Epoch.Add(at), func() { m.driver.Death(idx) })
		}
	}
}

// Enroll implements churn.Model: the control node is born now and then
// follows sessions drawn from the trace's empirical mean session and
// downtime lengths.
func (m *Model) Enroll() int {
	idx := m.next
	m.next++
	m.driver.Birth(idx)
	m.scheduleLeave(idx)
	return idx
}

func (m *Model) scheduleLeave(idx int) {
	d := time.Duration(m.rng.ExpFloat64() * float64(m.meanSession))
	m.eng.After(d, func() {
		m.driver.Leave(idx)
		m.scheduleRejoin(idx)
	})
}

func (m *Model) scheduleRejoin(idx int) {
	d := time.Duration(m.rng.ExpFloat64() * float64(m.meanDown))
	m.eng.After(d, func() {
		m.driver.Rejoin(idx)
		m.scheduleLeave(idx)
	})
}
