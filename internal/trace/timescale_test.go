package trace

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"avmon/internal/sim"
)

// TestTimeScaleTable sweeps the replay-acceleration factors over an
// Overnet-style trace (20-minute granularity, so 10/50/100 all divide
// into whole seconds) and checks the exact-compression contract:
// structure preserved, every duration divided exactly, every
// availability ratio bit-identical.
func TestTimeScaleTable(t *testing.T) {
	orig := GenerateOvernet(120, 48*time.Hour, 11)
	for _, factor := range []int{10, 50, 100} {
		factor := factor
		t.Run(fmt.Sprintf("x%d", factor), func(t *testing.T) {
			scaled, err := TimeScale(orig, factor)
			if err != nil {
				t.Fatal(err)
			}
			f := time.Duration(factor)
			if scaled.Name != fmt.Sprintf("OV-x%d", factor) {
				t.Errorf("Name = %q", scaled.Name)
			}
			if scaled.Granularity != orig.Granularity/f || scaled.Duration != orig.Duration/f {
				t.Errorf("granularity/duration = %v/%v, want %v/%v",
					scaled.Granularity, scaled.Duration, orig.Granularity/f, orig.Duration/f)
			}
			if scaled.StableN != orig.StableN || len(scaled.Nodes) != len(orig.Nodes) {
				t.Errorf("StableN/nodes = %d/%d, want %d/%d",
					scaled.StableN, len(scaled.Nodes), orig.StableN, len(orig.Nodes))
			}
			for i := range orig.Nodes {
				on, sn := &orig.Nodes[i], &scaled.Nodes[i]
				if sn.Uptime() != on.Uptime()/f {
					t.Fatalf("node %d: uptime %v, want %v", i, sn.Uptime(), on.Uptime()/f)
				}
				// Both numerator and denominator divide exactly, so the
				// availability ratio is the same rational number and its
				// correctly-rounded float64 is bit-identical.
				if sn.Availability(scaled.Duration) != on.Availability(orig.Duration) {
					t.Fatalf("node %d: availability %v, want %v",
						i, sn.Availability(scaled.Duration), on.Availability(orig.Duration))
				}
			}
			// Scaling is deterministic: a second application is
			// structurally identical.
			again, err := TimeScale(orig, factor)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(scaled, again) {
				t.Error("TimeScale is not deterministic")
			}
		})
	}
}

// TestTimeScaleRoundTripsThroughIO writes each scaled trace in the
// avmon-trace-v1 format and reads it back: the whole-second scaled
// granularities survive the integer-second wire format losslessly.
func TestTimeScaleRoundTripsThroughIO(t *testing.T) {
	orig := GenerateOvernet(80, 24*time.Hour, 13)
	for _, factor := range []int{10, 50, 100} {
		scaled, err := TimeScale(orig, factor)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, scaled); err != nil {
			t.Fatalf("x%d: write: %v", factor, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("x%d: read: %v", factor, err)
		}
		if !reflect.DeepEqual(got, scaled) {
			t.Errorf("x%d: io round-trip altered the scaled trace", factor)
		}
	}
}

// replayEvent is one recorded driver callback with its virtual time.
type replayEvent struct {
	at   time.Duration
	kind string
	idx  int
}

// replayRecorder captures the exact (time, kind, index) sequence a
// model delivers — the ground truth for scaled-replay determinism.
type replayRecorder struct {
	eng    *sim.Engine
	events []replayEvent
}

func (r *replayRecorder) add(kind string, idx int) {
	r.events = append(r.events, replayEvent{at: r.eng.Elapsed(), kind: kind, idx: idx})
}

func (r *replayRecorder) Birth(idx int)  { r.add("birth", idx) }
func (r *replayRecorder) Rejoin(idx int) { r.add("rejoin", idx) }
func (r *replayRecorder) Leave(idx int)  { r.add("leave", idx) }
func (r *replayRecorder) Death(idx int)  { r.add("death", idx) }

// replay runs a trace through the Model adapter on a fresh engine and
// returns the full lifecycle event sequence.
func replay(t *testing.T, tr *Trace) []replayEvent {
	t.Helper()
	m, err := NewModel(tr)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(1)
	rec := &replayRecorder{eng: eng}
	m.Install(eng, rec)
	eng.RunFor(tr.Duration)
	return rec.events
}

// TestTimeScaleReplayDeterminism replays the original and scaled
// traces through the sim engine: the scaled replay must deliver the
// identical event sequence (same kinds, same node indexes, same
// order) with every timestamp divided by the factor.
func TestTimeScaleReplayDeterminism(t *testing.T) {
	orig := GenerateOvernet(60, 24*time.Hour, 17)
	base := replay(t, orig)
	if len(base) == 0 {
		t.Fatal("original replay produced no events")
	}
	for _, factor := range []int{10, 50, 100} {
		scaled, err := TimeScale(orig, factor)
		if err != nil {
			t.Fatal(err)
		}
		got := replay(t, scaled)
		if len(got) != len(base) {
			t.Fatalf("x%d: %d events, want %d", factor, len(got), len(base))
		}
		f := time.Duration(factor)
		for i, ev := range got {
			want := replayEvent{at: base[i].at / f, kind: base[i].kind, idx: base[i].idx}
			if ev != want {
				t.Fatalf("x%d: event %d = %+v, want %+v", factor, i, ev, want)
			}
		}
	}
}

// TestTimeScaleErrors covers the rejection paths: non-positive factors
// and factors that do not divide the granularity.
func TestTimeScaleErrors(t *testing.T) {
	orig := GenerateOvernet(20, 12*time.Hour, 19)
	for _, factor := range []int{0, -4, 7} {
		if _, err := TimeScale(orig, factor); err == nil {
			t.Errorf("factor %d: expected an error", factor)
		}
	}
	if _, err := TimeScale(orig, 1); err != nil {
		t.Errorf("factor 1: %v", err)
	}
}
