package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ErrBadFormat reports a malformed trace file.
var ErrBadFormat = errors.New("trace: bad format")

// Write serializes the trace in the line-oriented avmon-trace-v1
// format:
//
//	avmon-trace-v1 <name> <granularity_s> <duration_s> <stable_n>
//	node <born_s> <death_s|->
//	s <start_s> <end_s>
//	...
//
// All times are integer seconds. Lines beginning with '#' are comments.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "avmon-trace-v1 %s %d %d %d\n",
		t.Name, int(t.Granularity.Seconds()), int(t.Duration.Seconds()), t.StableN)
	for i := range t.Nodes {
		nt := &t.Nodes[i]
		death := "-"
		if nt.Dead() {
			death = strconv.Itoa(int(nt.DeathAt.Seconds()))
		}
		fmt.Fprintf(bw, "node %d %s\n", int(nt.Born.Seconds()), death)
		for _, s := range nt.Sessions {
			fmt.Fprintf(bw, "s %d %d\n", int(s.Start.Seconds()), int(s.End.Seconds()))
		}
	}
	return bw.Flush()
}

// Read parses a trace in the avmon-trace-v1 format and validates it.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var t *Trace
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "avmon-trace-v1":
			if t != nil {
				return nil, fmt.Errorf("%w: line %d: duplicate header", ErrBadFormat, line)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("%w: line %d: header needs 5 fields", ErrBadFormat, line)
			}
			gran, err1 := strconv.Atoi(fields[2])
			dur, err2 := strconv.Atoi(fields[3])
			stable, err3 := strconv.Atoi(fields[4])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("%w: line %d: non-integer header field", ErrBadFormat, line)
			}
			t = &Trace{
				Name:        fields[1],
				Granularity: time.Duration(gran) * time.Second,
				Duration:    time.Duration(dur) * time.Second,
				StableN:     stable,
			}
		case "node":
			if t == nil {
				return nil, fmt.Errorf("%w: line %d: node before header", ErrBadFormat, line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("%w: line %d: node needs 3 fields", ErrBadFormat, line)
			}
			born, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad born time", ErrBadFormat, line)
			}
			nt := NodeTrace{Born: time.Duration(born) * time.Second}
			if fields[2] != "-" {
				death, err := strconv.Atoi(fields[2])
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: bad death time", ErrBadFormat, line)
				}
				nt.DeathAt = time.Duration(death) * time.Second
			}
			t.Nodes = append(t.Nodes, nt)
		case "s":
			if t == nil || len(t.Nodes) == 0 {
				return nil, fmt.Errorf("%w: line %d: session before node", ErrBadFormat, line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("%w: line %d: session needs 3 fields", ErrBadFormat, line)
			}
			start, err1 := strconv.Atoi(fields[1])
			end, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("%w: line %d: bad session bounds", ErrBadFormat, line)
			}
			nt := &t.Nodes[len(t.Nodes)-1]
			nt.Sessions = append(nt.Sessions, Session{
				Start: time.Duration(start) * time.Second,
				End:   time.Duration(end) * time.Second,
			})
		default:
			return nil, fmt.Errorf("%w: line %d: unknown record %q", ErrBadFormat, line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if t == nil {
		return nil, fmt.Errorf("%w: missing header", ErrBadFormat)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
