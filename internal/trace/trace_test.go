package trace

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func TestGeneratePlanetLabShape(t *testing.T) {
	tr := GeneratePlanetLab(239, 48*time.Hour, 1)
	if err := tr.Validate(); err != nil {
		t.Fatalf("PL trace invalid: %v", err)
	}
	if tr.Name != "PL" || tr.StableN != 239 || tr.Granularity != time.Second {
		t.Errorf("header = %q/%d/%v", tr.Name, tr.StableN, tr.Granularity)
	}
	if len(tr.Nodes) != 239 {
		t.Errorf("population = %d, want 239 (no births)", len(tr.Nodes))
	}
	// High availability regime: mean alive ≈ 0.9 N.
	mean := tr.MeanAlive(time.Hour)
	if mean < 0.80*239 || mean > 239 {
		t.Errorf("mean alive = %.1f, want ≈ 0.9·239", mean)
	}
	for i := range tr.Nodes {
		if tr.Nodes[i].Dead() {
			t.Fatalf("PL node %d dies; PL should be death-free", i)
		}
	}
}

func TestGenerateOvernetShape(t *testing.T) {
	tr := GenerateOvernet(550, 48*time.Hour, 2)
	if err := tr.Validate(); err != nil {
		t.Fatalf("OV trace invalid: %v", err)
	}
	if tr.Granularity != 20*time.Minute {
		t.Errorf("granularity = %v, want 20m", tr.Granularity)
	}
	// Stable alive size within a constant factor of 550.
	mean := tr.MeanAlive(time.Hour)
	if mean < 350 || mean > 800 {
		t.Errorf("mean alive = %.1f, want ≈ 550", mean)
	}
	// Long-term population well above the stable size (paper: 1319
	// born over 48h for N=550).
	if got := len(tr.Nodes); got < 900 || got > 1800 {
		t.Errorf("Nlongterm = %d, want ≈ 1319", got)
	}
	// Some nodes must die.
	deaths := 0
	for i := range tr.Nodes {
		if tr.Nodes[i].Dead() {
			deaths++
		}
	}
	if deaths == 0 {
		t.Error("OV trace has no deaths")
	}
	// Session boundaries on 20-minute marks.
	for i, nt := range tr.Nodes[:10] {
		for _, s := range nt.Sessions {
			if s.Start%tr.Granularity != 0 || s.End%tr.Granularity != 0 {
				t.Fatalf("node %d session %v not on granularity", i, s)
			}
		}
	}
}

func TestNodeTraceQueries(t *testing.T) {
	nt := NodeTrace{
		Born: time.Hour,
		Sessions: []Session{
			{Start: time.Hour, End: 2 * time.Hour},
			{Start: 3 * time.Hour, End: 5 * time.Hour},
		},
	}
	tests := []struct {
		at   time.Duration
		want bool
	}{
		{0, false},
		{time.Hour, true},
		{90 * time.Minute, true},
		{2 * time.Hour, false}, // End exclusive
		{150 * time.Minute, false},
		{4 * time.Hour, true},
		{6 * time.Hour, false},
	}
	for _, tt := range tests {
		if got := nt.UpAt(tt.at); got != tt.want {
			t.Errorf("UpAt(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
	if up := nt.Uptime(); up != 3*time.Hour {
		t.Errorf("Uptime = %v, want 3h", up)
	}
	// Lifetime from 1h to 6h horizon = 5h, 3h up.
	if a := nt.Availability(6 * time.Hour); math.Abs(a-0.6) > 1e-12 {
		t.Errorf("Availability = %v, want 0.6", a)
	}
}

func TestAvailabilityWithDeath(t *testing.T) {
	nt := NodeTrace{
		Born:     0,
		Sessions: []Session{{Start: 0, End: time.Hour}},
		DeathAt:  2 * time.Hour,
	}
	// Life = 2h (dies), up 1h.
	if a := nt.Availability(10 * time.Hour); math.Abs(a-0.5) > 1e-12 {
		t.Errorf("Availability = %v, want 0.5", a)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	base := func() *Trace {
		return &Trace{
			Name:        "t",
			Granularity: time.Minute,
			Duration:    time.Hour,
			StableN:     1,
			Nodes: []NodeTrace{{
				Born:     0,
				Sessions: []Session{{Start: 0, End: 30 * time.Minute}},
			}},
		}
	}
	tests := []struct {
		name string
		mut  func(*Trace)
	}{
		{"zero duration", func(t *Trace) { t.Duration = 0 }},
		{"zero granularity", func(t *Trace) { t.Granularity = 0 }},
		{"zero stableN", func(t *Trace) { t.StableN = 0 }},
		{"no sessions", func(t *Trace) { t.Nodes[0].Sessions = nil }},
		{"born mismatch", func(t *Trace) { t.Nodes[0].Born = time.Minute }},
		{"empty session", func(t *Trace) { t.Nodes[0].Sessions[0].End = 0 }},
		{"off granularity", func(t *Trace) { t.Nodes[0].Sessions[0].End = 30*time.Minute + time.Second }},
		{"past horizon", func(t *Trace) { t.Nodes[0].Sessions[0].End = 2 * time.Hour }},
		{"session after death", func(t *Trace) { t.Nodes[0].DeathAt = time.Minute }},
		{"overlap", func(t *Trace) {
			t.Nodes[0].Sessions = append(t.Nodes[0].Sessions,
				Session{Start: 20 * time.Minute, End: 40 * time.Minute})
		}},
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base trace invalid: %v", err)
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr := base()
			tt.mut(tr)
			if err := tr.Validate(); err == nil {
				t.Error("Validate accepted corrupted trace")
			}
		})
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	orig := GenerateOvernet(50, 6*time.Hour, 3)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.StableN != orig.StableN ||
		got.Granularity != orig.Granularity || got.Duration != orig.Duration {
		t.Errorf("header mismatch: %+v vs %+v", got, orig)
	}
	if len(got.Nodes) != len(orig.Nodes) {
		t.Fatalf("node count %d vs %d", len(got.Nodes), len(orig.Nodes))
	}
	for i := range got.Nodes {
		a, b := got.Nodes[i], orig.Nodes[i]
		if a.Born != b.Born || a.DeathAt != b.DeathAt || len(a.Sessions) != len(b.Sessions) {
			t.Fatalf("node %d mismatch: %+v vs %+v", i, a, b)
		}
		for j := range a.Sessions {
			if a.Sessions[j] != b.Sessions[j] {
				t.Fatalf("node %d session %d mismatch", i, j)
			}
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"no header", "node 0 -\ns 0 60\n"},
		{"short header", "avmon-trace-v1 x 60\n"},
		{"bad header ints", "avmon-trace-v1 x a b c\n"},
		{"duplicate header", "avmon-trace-v1 x 60 3600 5\navmon-trace-v1 x 60 3600 5\n"},
		{"session before node", "avmon-trace-v1 x 60 3600 5\ns 0 60\n"},
		{"bad node fields", "avmon-trace-v1 x 60 3600 5\nnode zero -\n"},
		{"bad session fields", "avmon-trace-v1 x 60 3600 5\nnode 0 -\ns 0\n"},
		{"unknown record", "avmon-trace-v1 x 60 3600 5\nblah\n"},
		{"fails validation", "avmon-trace-v1 x 60 3600 5\nnode 0 -\ns 0 61\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tt.input))
			if err == nil {
				t.Error("Read accepted malformed input")
			}
		})
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	input := "# comment\n\navmon-trace-v1 x 60 3600 5\n# another\nnode 0 -\ns 0 60\n"
	tr, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 1 {
		t.Errorf("nodes = %d, want 1", len(tr.Nodes))
	}
}

func TestErrBadFormatMatchable(t *testing.T) {
	_, err := Read(strings.NewReader("garbage stuff\n"))
	if !errors.Is(err, ErrBadFormat) {
		t.Errorf("error %v not matchable as ErrBadFormat", err)
	}
}

func TestSessionStats(t *testing.T) {
	tr := &Trace{
		Name: "t", Granularity: time.Minute, Duration: 10 * time.Hour, StableN: 1,
		Nodes: []NodeTrace{{
			Born: 0,
			Sessions: []Session{
				{Start: 0, End: time.Hour},
				{Start: 2 * time.Hour, End: 4 * time.Hour},
			},
		}},
	}
	ms, md := tr.SessionStats()
	if ms != 90*time.Minute {
		t.Errorf("mean session = %v, want 1h30m", ms)
	}
	if md != time.Hour {
		t.Errorf("mean down = %v, want 1h", md)
	}
}
