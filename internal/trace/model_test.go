package trace

import (
	"testing"
	"time"

	"avmon/internal/sim"
)

// recorder mirrors the churn-package test driver.
type recorder struct {
	alive  map[int]bool
	dead   map[int]bool
	births int
	events int
}

func newRecorder() *recorder {
	return &recorder{alive: make(map[int]bool), dead: make(map[int]bool)}
}

func (r *recorder) Birth(idx int)  { r.alive[idx] = true; r.births++; r.events++ }
func (r *recorder) Rejoin(idx int) { r.alive[idx] = true; r.events++ }
func (r *recorder) Leave(idx int)  { delete(r.alive, idx); r.events++ }
func (r *recorder) Death(idx int)  { delete(r.alive, idx); r.dead[idx] = true; r.events++ }

func TestModelReplaysTraceExactly(t *testing.T) {
	tr := &Trace{
		Name: "unit", Granularity: time.Minute, Duration: 5 * time.Hour, StableN: 2,
		Nodes: []NodeTrace{
			{
				Born: 0,
				Sessions: []Session{
					{Start: 0, End: time.Hour},
					{Start: 2 * time.Hour, End: 3 * time.Hour},
				},
			},
			{
				Born:     30 * time.Minute,
				Sessions: []Session{{Start: 30 * time.Minute, End: 4 * time.Hour}},
				DeathAt:  4 * time.Hour,
			},
		},
	}
	m, err := NewModel(tr)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(1)
	rec := newRecorder()
	m.Install(eng, rec)

	check := func(at time.Duration, want0, want1 bool) {
		t.Helper()
		eng.RunUntil(sim.Epoch.Add(at))
		if rec.alive[0] != want0 || rec.alive[1] != want1 {
			t.Errorf("at %v: alive = (%v, %v), want (%v, %v)",
				at, rec.alive[0], rec.alive[1], want0, want1)
		}
	}
	check(10*time.Minute, true, false)
	check(45*time.Minute, true, true)
	check(90*time.Minute, false, true)
	check(150*time.Minute, true, true)
	check(200*time.Minute, false, true)
	check(250*time.Minute, false, false) // node 1 died at 4h
	if !rec.dead[1] {
		t.Error("node 1 death not delivered")
	}
	if rec.dead[0] {
		t.Error("node 0 spuriously died")
	}
}

func TestModelMetadata(t *testing.T) {
	tr := GeneratePlanetLab(30, 4*time.Hour, 5)
	m, err := NewModel(tr)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "PL" || m.StableN() != 30 {
		t.Errorf("Name/StableN = %q/%d", m.Name(), m.StableN())
	}
	if m.Trace() != tr {
		t.Error("Trace() does not return the wrapped trace")
	}
}

func TestModelRejectsInvalidTrace(t *testing.T) {
	bad := &Trace{Name: "bad", Granularity: time.Minute, Duration: 0, StableN: 1}
	if _, err := NewModel(bad); err == nil {
		t.Error("NewModel accepted an invalid trace")
	}
}

func TestModelEnroll(t *testing.T) {
	tr := GenerateOvernet(40, 6*time.Hour, 7)
	m, err := NewModel(tr)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(2)
	rec := newRecorder()
	m.Install(eng, rec)
	eng.RunFor(time.Hour)
	idx := m.Enroll()
	if idx < len(tr.Nodes) {
		t.Errorf("Enroll index %d collides with trace nodes [0, %d)", idx, len(tr.Nodes))
	}
	if !rec.alive[idx] {
		t.Error("enrolled node not alive")
	}
	idx2 := m.Enroll()
	if idx2 == idx {
		t.Error("Enroll reused an index")
	}
	// Enrolled node churns eventually (empirical session lengths are
	// hours; run long enough).
	eng.RunFor(40 * time.Hour)
	if rec.events == 0 {
		t.Error("no events after enroll")
	}
}
