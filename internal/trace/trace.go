// Package trace provides the availability-trace substrate for the
// paper's trace-driven experiments (Section 5, classes II and III).
//
// The original evaluation injected PlanetLab all-pairs-ping traces
// (N=239, 1-second granularity) and Overnet churn traces (N=550,
// 20-minute granularity). Those datasets are not redistributable, so
// this package provides (a) a portable on-disk trace format with a
// parser and writer, and (b) synthetic generators that reproduce the
// published statistical characteristics of each trace (see DESIGN.md,
// "Substitutions"). Experiments accept any Trace, so real traces can
// be dropped in via the file format.
package trace

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Session is one contiguous up-interval of a node, relative to the
// trace origin. End is exclusive; Start < End always holds in a valid
// trace.
type Session struct {
	Start time.Duration
	End   time.Duration
}

// NodeTrace is the full lifetime of one node.
type NodeTrace struct {
	// Born is the instant the node first enters the system (equal to
	// Sessions[0].Start).
	Born time.Duration
	// Sessions are the node's up-intervals, sorted and non-overlapping.
	Sessions []Session
	// DeathAt, if positive, is the instant after which the node never
	// returns (silent death). Zero means the node never dies within
	// the trace horizon.
	DeathAt time.Duration
}

// Dead reports whether the node dies within the trace.
func (nt *NodeTrace) Dead() bool { return nt.DeathAt > 0 }

// UpAt reports whether the node is up at time t.
func (nt *NodeTrace) UpAt(t time.Duration) bool {
	i := sort.Search(len(nt.Sessions), func(i int) bool {
		return nt.Sessions[i].End > t
	})
	return i < len(nt.Sessions) && nt.Sessions[i].Start <= t
}

// Uptime returns the node's total up duration.
func (nt *NodeTrace) Uptime() time.Duration {
	var total time.Duration
	for _, s := range nt.Sessions {
		total += s.End - s.Start
	}
	return total
}

// Availability returns the fraction of the node's lifetime (from Born
// to death or the horizon) that it was up.
func (nt *NodeTrace) Availability(horizon time.Duration) float64 {
	end := horizon
	if nt.Dead() && nt.DeathAt < end {
		end = nt.DeathAt
	}
	life := end - nt.Born
	if life <= 0 {
		return 0
	}
	return float64(nt.Uptime()) / float64(life)
}

// Trace is a complete availability trace for a node population.
type Trace struct {
	// Name labels the trace in plots (e.g. "PL", "OV").
	Name string
	// Granularity is the sampling interval of the source measurement;
	// all session boundaries are multiples of it.
	Granularity time.Duration
	// Duration is the trace horizon.
	Duration time.Duration
	// StableN is the long-term average number of alive nodes, used as
	// the protocol parameter N (Section 5.3).
	StableN int
	// Nodes holds one entry per node ever observed.
	Nodes []NodeTrace
}

// Validate checks structural invariants: sorted non-overlapping
// sessions on granularity boundaries, Born matching the first session,
// no sessions after death, and a positive horizon.
func (t *Trace) Validate() error {
	if t.Duration <= 0 {
		return fmt.Errorf("trace %q: non-positive duration %v", t.Name, t.Duration)
	}
	if t.Granularity <= 0 {
		return fmt.Errorf("trace %q: non-positive granularity %v", t.Name, t.Granularity)
	}
	if t.StableN <= 0 {
		return fmt.Errorf("trace %q: non-positive stable N %d", t.Name, t.StableN)
	}
	for i := range t.Nodes {
		nt := &t.Nodes[i]
		if len(nt.Sessions) == 0 {
			return fmt.Errorf("trace %q node %d: no sessions", t.Name, i)
		}
		if nt.Born != nt.Sessions[0].Start {
			return fmt.Errorf("trace %q node %d: born %v != first session start %v",
				t.Name, i, nt.Born, nt.Sessions[0].Start)
		}
		prevEnd := time.Duration(-1)
		for j, s := range nt.Sessions {
			if s.Start >= s.End {
				return fmt.Errorf("trace %q node %d session %d: empty interval [%v, %v)",
					t.Name, i, j, s.Start, s.End)
			}
			if s.Start <= prevEnd {
				return fmt.Errorf("trace %q node %d session %d: overlaps previous", t.Name, i, j)
			}
			if s.Start%t.Granularity != 0 || s.End%t.Granularity != 0 {
				return fmt.Errorf("trace %q node %d session %d: boundaries not on %v granularity",
					t.Name, i, j, t.Granularity)
			}
			if s.End > t.Duration {
				return fmt.Errorf("trace %q node %d session %d: extends past horizon", t.Name, i, j)
			}
			prevEnd = s.End
		}
		if nt.Dead() && nt.Sessions[len(nt.Sessions)-1].End > nt.DeathAt {
			return fmt.Errorf("trace %q node %d: session after death", t.Name, i)
		}
	}
	return nil
}

// AliveAt counts the nodes up at time t.
func (t *Trace) AliveAt(at time.Duration) int {
	n := 0
	for i := range t.Nodes {
		if t.Nodes[i].UpAt(at) {
			n++
		}
	}
	return n
}

// MeanAlive samples the alive count at the given interval and returns
// its average, i.e. the empirical stable system size.
func (t *Trace) MeanAlive(every time.Duration) float64 {
	if every <= 0 {
		every = t.Granularity
	}
	sum, n := 0, 0
	for at := time.Duration(0); at <= t.Duration; at += every {
		sum += t.AliveAt(at)
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// SessionStats returns the mean session length and mean downtime gap
// across all nodes (diagnostic and Enroll-sampling helper).
func (t *Trace) SessionStats() (meanSession, meanDown time.Duration) {
	var sessSum, downSum time.Duration
	sessN, downN := 0, 0
	for i := range t.Nodes {
		nt := &t.Nodes[i]
		for j, s := range nt.Sessions {
			sessSum += s.End - s.Start
			sessN++
			if j > 0 {
				downSum += s.Start - nt.Sessions[j-1].End
				downN++
			}
		}
	}
	if sessN > 0 {
		meanSession = sessSum / time.Duration(sessN)
	}
	if downN > 0 {
		meanDown = downSum / time.Duration(downN)
	}
	return meanSession, meanDown
}

// quantize rounds d up to the next multiple of g (minimum one g).
func quantize(d, g time.Duration) time.Duration {
	if d <= g {
		return g
	}
	return (d + g - 1) / g * g
}

// genConfig is shared by the synthetic generators.
type genConfig struct {
	name        string
	initial     int           // population at time zero
	meanSession time.Duration // exponential
	meanDown    time.Duration // exponential
	birthRate   float64       // births per minute (0 = none)
	deathRate   float64       // deaths per minute (0 = none)
	granularity time.Duration
	stableN     int
}

func generate(cfg genConfig, duration time.Duration, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	// Keep the horizon and every event on granularity boundaries.
	duration -= duration % cfg.granularity
	tr := &Trace{
		Name:        cfg.name,
		Granularity: cfg.granularity,
		Duration:    duration,
		StableN:     cfg.stableN,
	}
	expDur := func(mean time.Duration) time.Duration {
		return quantize(time.Duration(rng.ExpFloat64()*float64(mean)), cfg.granularity)
	}
	// Pre-draw death times for the Poisson death process; deaths hit
	// a uniformly random living node at each event.
	var deathTimes []time.Duration
	if cfg.deathRate > 0 {
		at := time.Duration(0)
		for {
			at += time.Duration(rng.ExpFloat64() / cfg.deathRate * float64(time.Minute))
			if at >= duration {
				break
			}
			deathTimes = append(deathTimes, quantize(at, cfg.granularity))
		}
	}
	// Birth times: initial population at 0, then Poisson arrivals.
	var births []time.Duration
	for i := 0; i < cfg.initial; i++ {
		births = append(births, 0)
	}
	if cfg.birthRate > 0 {
		at := time.Duration(0)
		for {
			at += time.Duration(rng.ExpFloat64() / cfg.birthRate * float64(time.Minute))
			if at >= duration {
				break
			}
			births = append(births, quantize(at, cfg.granularity))
		}
	}
	// Build each node's session chain, then overlay deaths.
	for _, born := range births {
		nt := NodeTrace{Born: born}
		at := born
		// Randomize the initial phase for the time-zero population so
		// the alive count starts near steady state.
		up := true
		if born == 0 {
			frac := float64(cfg.meanSession) / float64(cfg.meanSession+cfg.meanDown)
			up = rng.Float64() < frac
			if !up {
				at = quantize(time.Duration(rng.ExpFloat64()*float64(cfg.meanDown)), cfg.granularity)
				nt.Born = at
			}
		}
		for at < duration {
			end := at + expDur(cfg.meanSession)
			if end > duration {
				end = duration
			}
			nt.Sessions = append(nt.Sessions, Session{Start: at, End: end})
			at = end + expDur(cfg.meanDown)
		}
		if len(nt.Sessions) == 0 {
			continue
		}
		tr.Nodes = append(tr.Nodes, nt)
	}
	// Apply deaths: each death event truncates a random not-yet-dead
	// node whose life has started by then.
	for _, dt := range deathTimes {
		candidates := candidates(tr, dt)
		if len(candidates) == 0 {
			continue
		}
		idx := candidates[rng.Intn(len(candidates))]
		truncate(&tr.Nodes[idx], dt)
	}
	// Drop nodes whose truncation removed every session.
	kept := tr.Nodes[:0]
	for _, nt := range tr.Nodes {
		if len(nt.Sessions) > 0 {
			kept = append(kept, nt)
		}
	}
	tr.Nodes = kept
	return tr
}

func candidates(tr *Trace, at time.Duration) []int {
	var out []int
	for i := range tr.Nodes {
		nt := &tr.Nodes[i]
		if nt.Dead() || nt.Born > at {
			continue
		}
		out = append(out, i)
	}
	return out
}

func truncate(nt *NodeTrace, at time.Duration) {
	nt.DeathAt = at
	var kept []Session
	for _, s := range nt.Sessions {
		switch {
		case s.End <= at:
			kept = append(kept, s)
		case s.Start < at:
			kept = append(kept, Session{Start: s.Start, End: at})
		}
	}
	nt.Sessions = kept
	if len(kept) > 0 {
		nt.Born = kept[0].Start
	}
}

// GeneratePlanetLab synthesizes a PlanetLab-like trace: a fixed
// population of long-lived, highly available hosts measured at
// 1-second granularity (paper Section 5: N = 239, minimal deaths).
// Mean session ≈ 20h and mean downtime ≈ 2h give ≈ 91% availability,
// the low-churn Grid regime the PL experiments probe.
func GeneratePlanetLab(n int, duration time.Duration, seed int64) *Trace {
	return generate(genConfig{
		name:        "PL",
		initial:     n,
		meanSession: 20 * time.Hour,
		meanDown:    2 * time.Hour,
		granularity: time.Second,
		stableN:     n,
	}, duration, seed)
}

// GenerateOvernet synthesizes an Overnet-like trace following the
// published characteristics of Bhagwan et al. [2] as used in Section
// 5.3: availability sampled every 20 minutes, ≈20%-per-hour churn
// (mean session 5h), moderate per-node availability (≈75%), and
// ongoing births/deaths such that the total population born over 48h
// reaches ≈ 2.4× the stable alive size (OV: N = 550, Nlongterm = 1319).
func GenerateOvernet(stableN int, duration time.Duration, seed int64) *Trace {
	availability := 0.75
	meanSession := 5 * time.Hour
	meanDown := time.Duration(float64(meanSession) * (1 - availability) / availability)
	initial := int(float64(stableN) / availability)
	// Births sized so total-born(48h) ≈ 2.4 × stableN as in the paper.
	birthsPerMin := 1.4 * float64(stableN) / (48 * 60)
	return generate(genConfig{
		name:        "OV",
		initial:     initial,
		meanSession: meanSession,
		meanDown:    meanDown,
		birthRate:   birthsPerMin,
		deathRate:   birthsPerMin,
		granularity: 20 * time.Minute,
		stableN:     stableN,
	}, duration, seed)
}
