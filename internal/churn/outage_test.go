package churn

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"avmon/internal/sim"
)

func TestZoneOutageValidation(t *testing.T) {
	ok := []ZoneOutage{{Zone: 1, Start: 10 * time.Minute, End: 20 * time.Minute}}
	for _, tc := range []struct {
		name string
		cfg  ZoneOutageConfig
	}{
		{"zero N", ZoneOutageConfig{N: 0, Zones: 2, Schedule: ok}},
		{"one zone", ZoneOutageConfig{N: 10, Zones: 1, Schedule: ok}},
		{"more zones than nodes", ZoneOutageConfig{N: 3, Zones: 4}},
		{"zone out of range", ZoneOutageConfig{N: 10, Zones: 2, Schedule: []ZoneOutage{
			{Zone: 2, Start: 0, End: time.Minute},
		}}},
		{"negative zone", ZoneOutageConfig{N: 10, Zones: 2, Schedule: []ZoneOutage{
			{Zone: -1, Start: 0, End: time.Minute},
		}}},
		{"empty interval", ZoneOutageConfig{N: 10, Zones: 2, Schedule: []ZoneOutage{
			{Zone: 0, Start: time.Minute, End: time.Minute},
		}}},
		{"negative start", ZoneOutageConfig{N: 10, Zones: 2, Schedule: []ZoneOutage{
			{Zone: 0, Start: -time.Minute, End: time.Minute},
		}}},
		{"same-zone overlap", ZoneOutageConfig{N: 10, Zones: 2, Schedule: []ZoneOutage{
			{Zone: 0, Start: 0, End: 10 * time.Minute},
			{Zone: 0, Start: 5 * time.Minute, End: 15 * time.Minute},
		}}},
	} {
		if _, err := NewZoneOutage(tc.cfg); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
	// Distinct zones may fail concurrently; same-zone back-to-back is
	// also fine.
	if _, err := NewZoneOutage(ZoneOutageConfig{N: 10, Zones: 3, Schedule: []ZoneOutage{
		{Zone: 0, Start: 0, End: 10 * time.Minute},
		{Zone: 1, Start: 5 * time.Minute, End: 15 * time.Minute},
		{Zone: 0, Start: 10 * time.Minute, End: 12 * time.Minute},
	}}); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestZoneOutageFailsAndHeals(t *testing.T) {
	m, err := NewZoneOutage(ZoneOutageConfig{
		N: 12, Zones: 3,
		Schedule: []ZoneOutage{{Zone: 1, Start: 30 * time.Minute, End: time.Hour}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "ZONE-OUTAGE" || m.StableN() != 12 {
		t.Fatalf("Name/StableN = %q/%d", m.Name(), m.StableN())
	}
	eng := sim.New(3)
	rec := newRecorder()
	m.Install(eng, rec)

	eng.RunFor(10 * time.Minute)
	if len(rec.alive) != 12 {
		t.Fatalf("pre-outage alive = %d, want 12", len(rec.alive))
	}
	eng.RunFor(35 * time.Minute) // t = 45m, inside the outage
	if len(rec.alive) != 8 {
		t.Fatalf("mid-outage alive = %d, want 8 (zone 1 of 3 down)", len(rec.alive))
	}
	for idx := range rec.alive {
		if idx%3 == 1 {
			t.Fatalf("zone-1 node %d alive during its outage", idx)
		}
	}
	eng.RunFor(45 * time.Minute) // t = 90m, healed
	if len(rec.alive) != 12 {
		t.Fatalf("post-heal alive = %d, want 12", len(rec.alive))
	}
	if rec.leaves != 4 || rec.rejoins != 4 {
		t.Fatalf("leaves/rejoins = %d/%d, want 4/4", rec.leaves, rec.rejoins)
	}
	if rec.deaths != 0 {
		t.Fatalf("deaths = %d, want 0 (outages are not deaths)", rec.deaths)
	}
}

func TestZoneOutageEnrolleesUntouched(t *testing.T) {
	m, err := NewZoneOutage(ZoneOutageConfig{
		N: 9, Zones: 3,
		Schedule: []ZoneOutage{{Zone: 0, Start: 20 * time.Minute, End: 40 * time.Minute}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(4)
	rec := newRecorder()
	m.Install(eng, rec)
	eng.RunFor(25 * time.Minute) // inside the outage
	idx := m.Enroll()
	if !rec.alive[idx] {
		t.Fatal("enrolled node not alive")
	}
	eng.RunFor(25 * time.Minute) // past the heal
	if !rec.alive[idx] {
		t.Error("heal toggled a node enrolled during the outage")
	}
	if len(rec.alive) != 10 {
		t.Errorf("alive = %d, want 10", len(rec.alive))
	}
}

func TestParseOutageSchedule(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []ZoneOutage
	}{
		{"", nil},
		{"   ", nil},
		{"1@30m+10m", []ZoneOutage{{Zone: 1, Start: 30 * time.Minute, End: 40 * time.Minute}}},
		{"1@30m+10m,2@1h+5m", []ZoneOutage{
			{Zone: 1, Start: 30 * time.Minute, End: 40 * time.Minute},
			{Zone: 2, Start: time.Hour, End: time.Hour + 5*time.Minute},
		}},
		{" 0@0s+1.5h ", []ZoneOutage{{Zone: 0, Start: 0, End: 90 * time.Minute}}},
	} {
		got, err := ParseOutageSchedule(tc.in)
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%q: got %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{
		"1",                   // no @
		"1@30m",               // no +
		"x@30m+10m",           // bad zone
		"-1@30m+10m",          // negative zone
		"1@-30m+10m",          // negative start
		"1@30m+0s",            // zero duration
		"1@30m+-10m",          // negative duration
		"1@30m+10m,",          // trailing empty entry
		"1@30m+10m,2",         // malformed second entry
		"1@2562047h+2562047h", // start+duration overflows
	} {
		if _, err := ParseOutageSchedule(bad); err == nil {
			t.Errorf("%q: expected an error", bad)
		}
	}
}

func TestFormatOutageScheduleRoundTrip(t *testing.T) {
	for _, schedule := range [][]ZoneOutage{
		nil,
		{{Zone: 0, Start: 0, End: time.Second}},
		{{Zone: 3, Start: 90 * time.Minute, End: 4 * time.Hour},
			{Zone: 1, Start: 0, End: 30 * time.Second}},
	} {
		text := FormatOutageSchedule(schedule)
		got, err := ParseOutageSchedule(text)
		if err != nil {
			t.Fatalf("%v → %q: %v", schedule, text, err)
		}
		if !reflect.DeepEqual(got, schedule) {
			t.Errorf("%v → %q → %v", schedule, text, got)
		}
	}
}

// FuzzParseOutageSchedule asserts the textual schedule parser never
// panics and that every accepted schedule is a fixed point of the
// Format → Parse round trip (canonical duration rendering may differ
// from the input spelling — "90m" prints as "1h30m0s" — so the
// comparison is on parsed values, not strings).
func FuzzParseOutageSchedule(f *testing.F) {
	f.Add("")
	f.Add("1@30m+10m")
	f.Add("1@30m+10m,2@1h+5m")
	f.Add("0@0s+1.5h")
	f.Add("1@2562047h+2562047h")
	f.Add("99@1ns+1ns")
	f.Add("1@30m")
	f.Add(",,,")
	f.Add("-1@-1m+-1m")
	f.Fuzz(func(t *testing.T, s string) {
		schedule, err := ParseOutageSchedule(s)
		if err != nil {
			return
		}
		text := FormatOutageSchedule(schedule)
		again, err := ParseOutageSchedule(text)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q rejected: %v", text, s, err)
		}
		if !reflect.DeepEqual(again, schedule) {
			t.Fatalf("round trip changed the schedule: %v → %q → %v", schedule, text, again)
		}
		// Parsed schedules respect the parser's documented shape
		// guarantees.
		for _, o := range schedule {
			if o.Zone < 0 || o.Start < 0 || o.End <= o.Start {
				t.Fatalf("accepted malformed outage %+v from %q", o, s)
			}
		}
		if strings.TrimSpace(s) == "" && schedule != nil {
			t.Fatalf("blank input %q produced a schedule", s)
		}
	})
}
