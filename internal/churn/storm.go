package churn

import (
	"fmt"
	"time"

	"avmon/internal/sim"
)

// StormConfig parameterizes the flash-crowd / mass-leave storm model:
// a static base population of N nodes born in index order (the
// hotspot model's orderedJoin idiom, so node i owns lane i+1), plus up
// to two deterministic population shocks:
//
//   - a flash crowd: SurgeNodes extra nodes (indexes N..N+SurgeNodes-1)
//     join evenly spread across [SurgeAt, SurgeAt+SurgeWindow);
//   - a mass leave: the first LeaveNodes base indexes leave evenly
//     spread across [LeaveAt, LeaveAt+LeaveWindow), and — when HealAt
//     is set — rejoin in the same order starting at HealAt.
//
// With both shocks zeroed the model degenerates to an ordered static
// population, which is the storm scenarios' attack-off control arm.
type StormConfig struct {
	// N is the base population and the protocol parameter N; the
	// shocks are the perturbation the protocol must absorb.
	N int

	// SurgeNodes is the flash-crowd cohort size (0 disables the
	// surge).
	SurgeNodes int
	// SurgeAt is when the first surge node joins.
	SurgeAt time.Duration
	// SurgeWindow is the ramp width; the cohort joins evenly spaced
	// across it. Must be positive when SurgeNodes > 0.
	SurgeWindow time.Duration

	// LeaveNodes is the mass-leave cohort size, drawn from the base
	// population's first indexes (0 disables the leave; must be ≤ N).
	LeaveNodes int
	// LeaveAt is when the first leaver departs.
	LeaveAt time.Duration
	// LeaveWindow is the departure ramp width. Must be positive when
	// LeaveNodes > 0.
	LeaveWindow time.Duration
	// HealAt, when positive, has the leavers rejoin evenly spread
	// across [HealAt, HealAt+LeaveWindow); it must be ≥
	// LeaveAt+LeaveWindow. Zero means the leavers are gone for good
	// and the survivors' self-repair is what the scenario measures.
	HealAt time.Duration
}

// stormModel overlays deterministic join/leave waves on a static
// ordered-join base population.
type stormModel struct {
	*synthModel
	cfg StormConfig
}

// NewStorm returns the flash-crowd / mass-leave model ("STORM").
func NewStorm(cfg StormConfig) (Model, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("churn: N must be positive, got %d", cfg.N)
	}
	if cfg.SurgeNodes < 0 || cfg.LeaveNodes < 0 {
		return nil, fmt.Errorf("churn: negative storm cohort (surge=%d, leave=%d)",
			cfg.SurgeNodes, cfg.LeaveNodes)
	}
	if cfg.LeaveNodes > cfg.N {
		return nil, fmt.Errorf("churn: mass-leave cohort %d exceeds base population %d",
			cfg.LeaveNodes, cfg.N)
	}
	if cfg.SurgeNodes > 0 && (cfg.SurgeAt < 0 || cfg.SurgeWindow <= 0) {
		return nil, fmt.Errorf("churn: surge needs SurgeAt ≥ 0 and SurgeWindow > 0 (at=%v, window=%v)",
			cfg.SurgeAt, cfg.SurgeWindow)
	}
	if cfg.LeaveNodes > 0 && (cfg.LeaveAt < 0 || cfg.LeaveWindow <= 0) {
		return nil, fmt.Errorf("churn: mass leave needs LeaveAt ≥ 0 and LeaveWindow > 0 (at=%v, window=%v)",
			cfg.LeaveAt, cfg.LeaveWindow)
	}
	if cfg.HealAt != 0 && cfg.HealAt < cfg.LeaveAt+cfg.LeaveWindow {
		return nil, fmt.Errorf("churn: HealAt %v precedes the end of the leave wave %v",
			cfg.HealAt, cfg.LeaveAt+cfg.LeaveWindow)
	}
	return &stormModel{
		synthModel: &synthModel{name: "STORM", n: cfg.N, orderedJoin: true},
		cfg:        cfg,
	}, nil
}

// Install implements Model: the ordered base population plus the
// scheduled surge and leave/heal waves.
func (m *stormModel) Install(eng sim.Sched, d Driver) {
	m.synthModel.Install(eng, d)
	// Surge indexes are allocated here, before any Enroll call, so the
	// flash-crowd cohort is always N..N+SurgeNodes-1.
	for i := 0; i < m.cfg.SurgeNodes; i++ {
		idx := m.newNode()
		at := m.cfg.SurgeAt + time.Duration(i)*m.cfg.SurgeWindow/time.Duration(m.cfg.SurgeNodes)
		eng.At(sim.Epoch.Add(at), func() { m.birth(idx) })
	}
	for i := 0; i < m.cfg.LeaveNodes; i++ {
		idx := i
		step := time.Duration(i) * m.cfg.LeaveWindow / time.Duration(m.cfg.LeaveNodes)
		eng.At(sim.Epoch.Add(m.cfg.LeaveAt+step), func() { m.shockLeave(idx) })
		if m.cfg.HealAt > 0 {
			eng.At(sim.Epoch.Add(m.cfg.HealAt+step), func() { m.shockRejoin(idx) })
		}
	}
}

// shockLeave forces one mass-leave victim down.
func (m *stormModel) shockLeave(idx int) {
	st := &m.states[idx]
	if st.dead || !st.up {
		return
	}
	st.up = false
	st.gen++
	m.driver.Leave(idx)
}

// shockRejoin brings one healed victim back.
func (m *stormModel) shockRejoin(idx int) {
	st := &m.states[idx]
	if st.dead || st.up {
		return
	}
	st.up = true
	st.gen++
	m.driver.Rejoin(idx)
}
