package churn

import (
	"testing"
	"time"

	"avmon/internal/sim"
)

func TestStormValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  StormConfig
	}{
		{"zero N", StormConfig{N: 0}},
		{"negative surge", StormConfig{N: 10, SurgeNodes: -1}},
		{"negative leave", StormConfig{N: 10, LeaveNodes: -1}},
		{"leave exceeds N", StormConfig{N: 10, LeaveNodes: 11, LeaveAt: time.Minute, LeaveWindow: time.Minute}},
		{"surge without window", StormConfig{N: 10, SurgeNodes: 2, SurgeAt: time.Minute}},
		{"leave without window", StormConfig{N: 10, LeaveNodes: 2, LeaveAt: time.Minute}},
		{"heal before leave ends", StormConfig{
			N: 10, LeaveNodes: 2, LeaveAt: 10 * time.Minute, LeaveWindow: 10 * time.Minute,
			HealAt: 15 * time.Minute,
		}},
	} {
		if _, err := NewStorm(tc.cfg); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
	if _, err := NewStorm(StormConfig{N: 10}); err != nil {
		t.Errorf("degenerate static storm rejected: %v", err)
	}
}

func TestStormSurgeLeaveHeal(t *testing.T) {
	m, err := NewStorm(StormConfig{
		N:          10,
		SurgeNodes: 4, SurgeAt: 30 * time.Minute, SurgeWindow: 8 * time.Minute,
		LeaveNodes: 5, LeaveAt: time.Hour, LeaveWindow: 10 * time.Minute,
		HealAt: 90 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "STORM" || m.StableN() != 10 {
		t.Fatalf("Name/StableN = %q/%d", m.Name(), m.StableN())
	}
	eng := sim.New(5)
	rec := newRecorder()
	m.Install(eng, rec)

	eng.RunFor(20 * time.Minute)
	if len(rec.alive) != 10 {
		t.Fatalf("pre-surge alive = %d, want 10", len(rec.alive))
	}
	eng.RunFor(25 * time.Minute) // t = 45m: surge complete
	if len(rec.alive) != 14 {
		t.Fatalf("post-surge alive = %d, want 14", len(rec.alive))
	}
	// The flash-crowd cohort owns the indexes right after the base
	// population.
	for idx := 10; idx < 14; idx++ {
		if !rec.alive[idx] {
			t.Fatalf("surge node %d not alive after the surge window", idx)
		}
	}
	eng.RunFor(30 * time.Minute) // t = 75m: mass leave complete
	if len(rec.alive) != 9 {
		t.Fatalf("post-leave alive = %d, want 9", len(rec.alive))
	}
	for idx := 0; idx < 5; idx++ {
		if rec.alive[idx] {
			t.Fatalf("leaver %d still alive after the leave window", idx)
		}
	}
	eng.RunFor(30 * time.Minute) // t = 105m: healed
	if len(rec.alive) != 14 {
		t.Fatalf("post-heal alive = %d, want 14", len(rec.alive))
	}
	if rec.births != 14 || rec.leaves != 5 || rec.rejoins != 5 || rec.deaths != 0 {
		t.Fatalf("births/leaves/rejoins/deaths = %d/%d/%d/%d, want 14/5/5/0",
			rec.births, rec.leaves, rec.rejoins, rec.deaths)
	}
}

func TestStormWithoutHealLeavesGone(t *testing.T) {
	m, err := NewStorm(StormConfig{
		N: 8, LeaveNodes: 3, LeaveAt: 30 * time.Minute, LeaveWindow: 6 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(6)
	rec := newRecorder()
	m.Install(eng, rec)
	eng.RunFor(3 * time.Hour)
	if len(rec.alive) != 5 {
		t.Fatalf("alive = %d, want 5 (no heal scheduled)", len(rec.alive))
	}
	if rec.rejoins != 0 {
		t.Fatalf("rejoins = %d, want 0", rec.rejoins)
	}
}

func TestStormEnrollAfterSurge(t *testing.T) {
	m, err := NewStorm(StormConfig{
		N: 6, SurgeNodes: 3, SurgeAt: 10 * time.Minute, SurgeWindow: 3 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(7)
	rec := newRecorder()
	m.Install(eng, rec)
	eng.RunFor(5 * time.Minute)
	// Enrolling before the surge fires must not collide with the
	// pre-allocated surge cohort (indexes 6..8).
	idx := m.Enroll()
	if idx < 9 {
		t.Fatalf("Enroll index %d collides with the surge cohort [6, 9)", idx)
	}
	eng.RunFor(15 * time.Minute)
	if len(rec.alive) != 10 {
		t.Fatalf("alive = %d, want 10", len(rec.alive))
	}
}
