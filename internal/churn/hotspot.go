package churn

import (
	"fmt"
	"time"
)

// HotspotConfig parameterizes the deliberately skewed population used
// by scheduler experiments (the `skew` sweep): a minority of "hot"
// nodes that never leave, interleaved at a fixed stride through a
// majority of "cold" nodes that are down most of the time.
type HotspotConfig struct {
	// N is the total population (hot + cold).
	N int
	// Stride places a hot node at every index ≡ 0 (mod Stride); the
	// remaining indexes are cold. Because the model births nodes in
	// index order, node i always owns simulation lane i+1, so under a
	// round-robin lane partition with Stride == shard count every hot
	// node lands on shard 0 — the adversarial assignment that lane
	// rebalancing exists to fix. Must be ≥ 2.
	Stride int
	// ColdSession is the cold class's mean session length (default
	// 90s); ColdDowntime its mean downtime (default 200h). The
	// defaults make a cold node join once, linger briefly, and stay
	// gone for the rest of any realistic horizon, so once the coarse
	// overlay evicts it its lane receives essentially nothing.
	ColdSession  time.Duration
	ColdDowntime time.Duration
}

// NewHotspot returns the hot-shard skew model behind the `skew`
// experiment. Hot nodes (every Stride-th index) are born once and
// never leave — they carry essentially all protocol traffic — while
// cold nodes churn with long downtimes and contribute almost nothing.
// Unlike the other synthetic models, the initial population is born in
// index order so the index → lane mapping is exact (see
// HotspotConfig.Stride).
func NewHotspot(cfg HotspotConfig) (Model, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("churn: N must be positive, got %d", cfg.N)
	}
	if cfg.Stride < 2 {
		return nil, fmt.Errorf("churn: hotspot stride must be ≥ 2, got %d", cfg.Stride)
	}
	if cfg.ColdSession <= 0 {
		cfg.ColdSession = 90 * time.Second
	}
	if cfg.ColdDowntime <= 0 {
		cfg.ColdDowntime = 200 * time.Hour
	}
	stride := cfg.Stride
	return &synthModel{
		name: "HOTSPOT",
		n:    cfg.N,
		classes: []sessionParams{
			{meanSession: 0}, // hot: sessions never end
			{meanSession: cfg.ColdSession, meanDown: cfg.ColdDowntime},
		},
		classFor: func(idx int) int {
			if idx%stride == 0 {
				return 0
			}
			return 1
		},
		orderedJoin: true,
	}, nil
}
