package churn

import (
	"testing"
	"time"

	"avmon/internal/sim"
)

// recorder is a Driver that tracks node liveness for assertions.
type recorder struct {
	alive   map[int]bool
	dead    map[int]bool
	births  int
	rejoins int
	leaves  int
	deaths  int
}

func newRecorder() *recorder {
	return &recorder{alive: make(map[int]bool), dead: make(map[int]bool)}
}

func (r *recorder) Birth(idx int) {
	if r.alive[idx] {
		panic("birth of already-alive node")
	}
	if r.dead[idx] {
		panic("birth of dead node")
	}
	r.alive[idx] = true
	r.births++
}

func (r *recorder) Rejoin(idx int) {
	if r.alive[idx] {
		panic("rejoin of alive node")
	}
	if r.dead[idx] {
		panic("rejoin of dead node")
	}
	r.alive[idx] = true
	r.rejoins++
}

func (r *recorder) Leave(idx int) {
	if !r.alive[idx] {
		panic("leave of non-alive node")
	}
	delete(r.alive, idx)
	r.leaves++
}

func (r *recorder) Death(idx int) {
	delete(r.alive, idx)
	r.dead[idx] = true
	r.deaths++
}

func TestSTATStaysStatic(t *testing.T) {
	eng := sim.New(1)
	rec := newRecorder()
	m := NewSTAT(200)
	if m.Name() != "STAT" || m.StableN() != 200 {
		t.Fatalf("Name/StableN = %q/%d", m.Name(), m.StableN())
	}
	m.Install(eng, rec)
	eng.RunFor(24 * time.Hour)
	if rec.births != 200 {
		t.Errorf("births = %d, want 200", rec.births)
	}
	if rec.leaves != 0 || rec.rejoins != 0 || rec.deaths != 0 {
		t.Errorf("STAT churned: leaves=%d rejoins=%d deaths=%d", rec.leaves, rec.rejoins, rec.deaths)
	}
	if len(rec.alive) != 200 {
		t.Errorf("alive = %d, want 200", len(rec.alive))
	}
}

func TestSTATJoinsStaggered(t *testing.T) {
	eng := sim.New(2)
	rec := newRecorder()
	NewSTAT(50).Install(eng, rec)
	eng.RunFor(30 * time.Second)
	early := rec.births
	eng.RunFor(time.Minute)
	if early == 0 || early == 50 {
		t.Errorf("joins not staggered: %d of 50 within 30s", early)
	}
	if rec.births != 50 {
		t.Errorf("births after 90s = %d, want 50", rec.births)
	}
}

func TestSYNTHChurnRate(t *testing.T) {
	eng := sim.New(3)
	rec := newRecorder()
	m, err := NewSYNTH(SynthConfig{N: 500, ChurnPerHour: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "SYNTH" {
		t.Errorf("Name = %q", m.Name())
	}
	m.Install(eng, rec)
	eng.RunFor(10 * time.Hour)
	// ~0.2 * alive ≈ 0.2 * 450 leaves per hour over 10h; wide tolerance.
	perHour := float64(rec.leaves) / 10
	if perHour < 0.1*500 || perHour > 0.3*500 {
		t.Errorf("leave rate = %.1f/hour, want ≈ %d/hour", perHour, 500/5)
	}
	// Rejoins roughly balance leaves in steady state (λr = λl).
	if rec.rejoins == 0 {
		t.Error("no rejoins")
	}
	ratio := float64(rec.rejoins) / float64(rec.leaves)
	if ratio < 0.7 || ratio > 1.1 {
		t.Errorf("rejoin/leave ratio = %.2f, want ≈ 1", ratio)
	}
	if rec.deaths != 0 || rec.births != 500 {
		t.Errorf("SYNTH produced deaths=%d births=%d", rec.deaths, rec.births)
	}
}

func TestSYNTHStableSize(t *testing.T) {
	eng := sim.New(4)
	rec := newRecorder()
	m, err := NewSYNTH(SynthConfig{N: 400, ChurnPerHour: 0.2, MeanDowntime: 30 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	m.Install(eng, rec)
	// Expected availability = 300/(300+30) ≈ 0.91; alive count must
	// stay within a constant factor of N throughout.
	for hour := 1; hour <= 12; hour++ {
		eng.RunFor(time.Hour)
		alive := len(rec.alive)
		if alive < 300 || alive > 400 {
			t.Fatalf("hour %d: alive = %d, drifted outside [300, 400]", hour, alive)
		}
	}
}

func TestSYNTHBDBirthsAndDeaths(t *testing.T) {
	eng := sim.New(5)
	rec := newRecorder()
	m, err := NewSYNTHBD(SynthConfig{N: 500, ChurnPerHour: 0.2, BirthDeathPerDay: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "SYNTH-BD" {
		t.Errorf("Name = %q", m.Name())
	}
	m.Install(eng, rec)
	eng.RunFor(48 * time.Hour)
	// 0.2N/day * 2 days = 200 expected births and deaths.
	if rec.births < 500+120 || rec.births > 500+300 {
		t.Errorf("births = %d, want ≈ 700", rec.births)
	}
	if rec.deaths < 120 || rec.deaths > 300 {
		t.Errorf("deaths = %d, want ≈ 200", rec.deaths)
	}
	// Stable size maintained.
	alive := len(rec.alive)
	if alive < 350 || alive > 650 {
		t.Errorf("alive after 48h = %d, want within a constant factor of 500", alive)
	}
	// Dead nodes never reappear (checked by recorder panics), and
	// Nlongterm grows as the paper describes.
	sm := m.(*synthModel)
	if sm.TotalBorn() != rec.births {
		t.Errorf("TotalBorn = %d, births = %d", sm.TotalBorn(), rec.births)
	}
}

func TestSYNTHBD2DoublesRates(t *testing.T) {
	m, err := NewSYNTHBD(SynthConfig{N: 100, ChurnPerHour: 0.2, BirthDeathPerDay: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "SYNTH-BD2" {
		t.Errorf("Name = %q, want SYNTH-BD2", m.Name())
	}
	eng := sim.New(6)
	rec := newRecorder()
	m.Install(eng, rec)
	eng.RunFor(48 * time.Hour)
	// 0.4N/day * 2 days = 80 expected births.
	extra := rec.births - 100
	if extra < 40 || extra > 130 {
		t.Errorf("SYNTH-BD2 extra births = %d, want ≈ 80", extra)
	}
}

func TestEnrollControlGroup(t *testing.T) {
	eng := sim.New(7)
	rec := newRecorder()
	m, err := NewSYNTH(SynthConfig{N: 100, ChurnPerHour: 0.5, MeanDowntime: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	m.Install(eng, rec)
	eng.RunFor(time.Hour)
	before := rec.births
	var ctl []int
	for i := 0; i < 10; i++ {
		ctl = append(ctl, m.Enroll())
	}
	if rec.births != before+10 {
		t.Errorf("births after Enroll = %d, want %d", rec.births, before+10)
	}
	for _, idx := range ctl {
		if !rec.alive[idx] {
			t.Errorf("control node %d not alive after Enroll", idx)
		}
	}
	// Control nodes churn like everyone else: over several mean
	// sessions at least one of them must have left.
	eng.RunFor(8 * time.Hour)
	left := false
	for _, idx := range ctl {
		if !rec.alive[idx] {
			left = true
		}
	}
	// They may also have rejoined; check leave counter moved well past
	// the base population's expectation is fiddly, so just require the
	// model kept running.
	if !left && rec.leaves == 0 {
		t.Error("no churn at all after Enroll")
	}
}

func TestSynthConfigValidation(t *testing.T) {
	if _, err := NewSYNTH(SynthConfig{N: 0, ChurnPerHour: 0.2}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := NewSYNTH(SynthConfig{N: 10, ChurnPerHour: 0}); err == nil {
		t.Error("ChurnPerHour=0 accepted")
	}
	if _, err := NewSYNTHBD(SynthConfig{N: -5, ChurnPerHour: 0.2}); err == nil {
		t.Error("negative N accepted")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (int, int, int, int) {
		eng := sim.New(99)
		rec := newRecorder()
		m, err := NewSYNTHBD(SynthConfig{N: 200, ChurnPerHour: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		m.Install(eng, rec)
		eng.RunFor(6 * time.Hour)
		return rec.births, rec.leaves, rec.rejoins, rec.deaths
	}
	b1, l1, r1, d1 := run()
	b2, l2, r2, d2 := run()
	if b1 != b2 || l1 != l2 || r1 != r2 || d1 != d2 {
		t.Errorf("non-deterministic: (%d,%d,%d,%d) vs (%d,%d,%d,%d)", b1, l1, r1, d1, b2, l2, r2, d2)
	}
}

func TestMixedModelClasses(t *testing.T) {
	m, err := NewMixed(MixedConfig{NStable: 50, NFlaky: 50})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "MIXED" || m.StableN() != 100 {
		t.Errorf("Name/StableN = %q/%d", m.Name(), m.StableN())
	}
	eng := sim.New(21)
	rec := newRecorder()
	m.Install(eng, rec)
	eng.RunFor(12 * time.Hour)
	// Stable nodes (indexes < 50) should be up nearly always; flaky
	// nodes (≥ 50) should be down often (33% availability).
	stableUp, flakyUp := 0, 0
	for idx := range rec.alive {
		if idx < 50 {
			stableUp++
		} else {
			flakyUp++
		}
	}
	if stableUp < 45 {
		t.Errorf("only %d of 50 stable nodes up", stableUp)
	}
	if flakyUp > 35 {
		t.Errorf("%d of 50 flaky nodes up, want roughly a third", flakyUp)
	}
	if flakyUp == 0 {
		t.Error("no flaky nodes up at all")
	}
}

func TestMixedModelValidation(t *testing.T) {
	if _, err := NewMixed(MixedConfig{NStable: 0, NFlaky: 10}); err == nil {
		t.Error("empty stable class accepted")
	}
	if _, err := NewMixed(MixedConfig{NStable: 10, NFlaky: 0}); err == nil {
		t.Error("empty flaky class accepted")
	}
}
