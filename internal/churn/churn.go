// Package churn implements the synthetic availability models of the
// paper's evaluation (Section 5):
//
//   - STAT: a static network with no churn.
//   - SYNTH: join/leave churn with exponentially distributed sessions
//     and downtimes (Poisson processes), no births or deaths. The
//     paper targets a 20%-per-hour churn rate (akin to Overnet [2]).
//   - SYNTH-BD: SYNTH plus node birth and death, each Poisson at
//     20% per day of the stable size (SYNTH-BD2 doubles that,
//     Section 5.3).
//
// A Model schedules lifecycle events onto a sim.Sched and reports
// them to a Driver (the cluster under test). All models keep the alive
// population within a constant factor of the stable size N, matching
// the paper's system-model assumption.
package churn

import (
	"fmt"
	"math/rand"
	"time"

	"avmon/internal/sim"
)

// Driver receives lifecycle events for simulated nodes. Node indexes
// are dense small integers assigned by the model.
type Driver interface {
	// Birth creates node idx and has it join for the first time.
	Birth(idx int)
	// Rejoin has a previously known node re-enter the system.
	Rejoin(idx int)
	// Leave has node idx leave or fail (it may rejoin later).
	Leave(idx int)
	// Death removes node idx for good. Deaths are silent: the driver
	// must treat this exactly like a Leave that never un-does.
	Death(idx int)
}

// Model drives churn for one availability scenario.
type Model interface {
	// Name returns the plot label (STAT, SYNTH, ...).
	Name() string
	// StableN returns the stable system size N.
	StableN() int
	// Install creates the initial population and schedules all future
	// churn on eng. Call exactly once.
	Install(eng sim.Sched, d Driver)
	// Enroll births one extra (control-group) node immediately and
	// subjects it to the model's ongoing churn. It returns the new
	// node's index. Install must have been called first.
	Enroll() int
}

type nodeState struct {
	up   bool
	dead bool
	gen  uint64 // invalidates scheduled session events after state changes
}

// sessionParams holds one availability class's exponential session
// and downtime means.
type sessionParams struct {
	meanSession time.Duration // 0 disables leaving
	meanDown    time.Duration
}

// synthModel implements STAT (zero rates), SYNTH, SYNTH-BD, and the
// heterogeneous Mixed model.
type synthModel struct {
	name        string
	n           int
	meanSession time.Duration // 0 disables leaving (STAT)
	meanDown    time.Duration
	birthRate   float64 // births per minute, system-wide (0 disables)
	deathRate   float64 // deaths per minute, system-wide

	// classes, when non-nil, gives per-class session parameters;
	// classFor maps a node index to its class. Used by NewMixed.
	classes  []sessionParams
	classFor func(idx int) int

	// orderedJoin makes Install birth the initial population in index
	// order with evenly spaced (rather than random) offsets, so node
	// index i always lands on simulation lane i+1. Used by NewHotspot,
	// whose whole point is a known index → lane → shard mapping.
	orderedJoin bool

	eng    sim.Sched
	driver Driver
	rng    *rand.Rand
	states []nodeState
}

var _ Model = (*synthModel)(nil)

// NewSTAT returns the static model: n nodes join at the start and
// never leave.
func NewSTAT(n int) Model {
	return &synthModel{name: "STAT", n: n}
}

// SynthConfig parameterizes the SYNTH and SYNTH-BD models.
type SynthConfig struct {
	// N is the stable system size.
	N int
	// ChurnPerHour is the fraction of the population that leaves per
	// hour (paper: 0.2, i.e. λl = 0.2N/60 per minute). The per-node
	// mean session time is 1h/ChurnPerHour.
	ChurnPerHour float64
	// MeanDowntime is the expected downtime before a rejoin. In
	// steady state the rejoin rate then equals the leave rate
	// (λr = λl as in the paper). Default 30 minutes.
	MeanDowntime time.Duration
	// BirthDeathPerDay is the fraction of N born (and dying) per day
	// (paper: 0.2 for SYNTH-BD, 0.4 for SYNTH-BD2). Zero disables
	// births and deaths.
	BirthDeathPerDay float64
}

// NewSYNTH returns a join/leave model with no births or deaths.
func NewSYNTH(cfg SynthConfig) (Model, error) {
	cfg.BirthDeathPerDay = 0
	return newSynth("SYNTH", cfg)
}

// NewSYNTHBD returns the join/leave/birth/death model. The name
// reported is SYNTH-BD.
func NewSYNTHBD(cfg SynthConfig) (Model, error) {
	if cfg.BirthDeathPerDay <= 0 {
		cfg.BirthDeathPerDay = 0.2
	}
	name := "SYNTH-BD"
	if cfg.BirthDeathPerDay >= 0.4 {
		name = "SYNTH-BD2"
	}
	return newSynth(name, cfg)
}

func newSynth(name string, cfg SynthConfig) (Model, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("churn: N must be positive, got %d", cfg.N)
	}
	if cfg.ChurnPerHour <= 0 {
		return nil, fmt.Errorf("churn: ChurnPerHour must be positive, got %v", cfg.ChurnPerHour)
	}
	if cfg.MeanDowntime <= 0 {
		cfg.MeanDowntime = 30 * time.Minute
	}
	meanSession := time.Duration(float64(time.Hour) / cfg.ChurnPerHour)
	m := &synthModel{
		name:        name,
		n:           cfg.N,
		meanSession: meanSession,
		meanDown:    cfg.MeanDowntime,
	}
	if cfg.BirthDeathPerDay > 0 {
		m.birthRate = cfg.BirthDeathPerDay * float64(cfg.N) / (24 * 60)
		m.deathRate = m.birthRate
	}
	return m, nil
}

// Name implements Model.
func (m *synthModel) Name() string { return m.name }

// StableN implements Model.
func (m *synthModel) StableN() int { return m.n }

// Install implements Model.
func (m *synthModel) Install(eng sim.Sched, d Driver) {
	m.eng = eng
	m.driver = d
	m.rng = eng.Rand()
	// Stagger initial joins across one minute so protocol periods are
	// asynchronous from the start (evenly when the model needs births
	// in index order, uniformly at random otherwise).
	for i := 0; i < m.n; i++ {
		idx := m.newNode()
		var delay time.Duration
		if m.orderedJoin {
			delay = time.Duration(i) * (time.Minute / time.Duration(m.n))
		} else {
			delay = time.Duration(m.rng.Int63n(int64(time.Minute)))
		}
		eng.After(delay, func() { m.birth(idx) })
	}
	if m.birthRate > 0 {
		m.scheduleNext(m.birthRate, m.birthEvent)
		m.scheduleNext(m.deathRate, m.deathEvent)
	}
}

// Enroll implements Model.
func (m *synthModel) Enroll() int {
	idx := m.newNode()
	m.birth(idx)
	return idx
}

func (m *synthModel) newNode() int {
	m.states = append(m.states, nodeState{})
	return len(m.states) - 1
}

func (m *synthModel) birth(idx int) {
	st := &m.states[idx]
	st.up = true
	st.gen++
	m.driver.Birth(idx)
	m.scheduleLeave(idx)
}

// paramsFor returns the session parameters governing node idx.
func (m *synthModel) paramsFor(idx int) sessionParams {
	if m.classes != nil && m.classFor != nil {
		class := m.classFor(idx)
		if class >= 0 && class < len(m.classes) {
			return m.classes[class]
		}
	}
	return sessionParams{meanSession: m.meanSession, meanDown: m.meanDown}
}

func (m *synthModel) scheduleLeave(idx int) {
	p := m.paramsFor(idx)
	if p.meanSession <= 0 {
		return // sessions never end for this class
	}
	st := &m.states[idx]
	gen := st.gen
	d := m.expDur(p.meanSession)
	m.eng.After(d, func() {
		st := &m.states[idx]
		if st.gen != gen || st.dead || !st.up {
			return
		}
		st.up = false
		st.gen++
		m.driver.Leave(idx)
		m.scheduleRejoin(idx)
	})
}

func (m *synthModel) scheduleRejoin(idx int) {
	st := &m.states[idx]
	gen := st.gen
	d := m.expDur(m.paramsFor(idx).meanDown)
	m.eng.After(d, func() {
		st := &m.states[idx]
		if st.gen != gen || st.dead || st.up {
			return
		}
		st.up = true
		st.gen++
		m.driver.Rejoin(idx)
		m.scheduleLeave(idx)
	})
}

// scheduleNext arms a Poisson process with the given per-minute rate.
func (m *synthModel) scheduleNext(ratePerMin float64, fire func()) {
	if ratePerMin <= 0 {
		return
	}
	gap := time.Duration(m.rng.ExpFloat64() / ratePerMin * float64(time.Minute))
	m.eng.After(gap, func() {
		fire()
		m.scheduleNext(ratePerMin, fire)
	})
}

func (m *synthModel) birthEvent() {
	idx := m.newNode()
	m.birth(idx)
}

func (m *synthModel) deathEvent() {
	// Deaths pick a uniformly random non-dead node (reservoir sample).
	victim, count := -1, 0
	for i := range m.states {
		if m.states[i].dead {
			continue
		}
		count++
		if m.rng.Intn(count) == 0 {
			victim = i
		}
	}
	if victim < 0 {
		return
	}
	st := &m.states[victim]
	st.dead = true
	st.up = false
	st.gen++
	m.driver.Death(victim)
}

func (m *synthModel) expDur(mean time.Duration) time.Duration {
	return time.Duration(m.rng.ExpFloat64() * float64(mean))
}

// MixedConfig parameterizes the heterogeneous availability model used
// by availability-aware application examples: a stable class that is
// almost always up and a flaky class that churns heavily. This is the
// regime in which availability-informed node selection (replication,
// multicast parents — the paper's motivating applications [3,4,7,11])
// pays off.
type MixedConfig struct {
	// NStable nodes rarely leave (mean session 100h, mean down 5m).
	NStable int
	// NFlaky nodes churn heavily with the given mean session and
	// downtime (defaults: 30m up, 60m down → ≈33% availability).
	NFlaky         int
	FlakySession   time.Duration
	FlakyDowntime  time.Duration
	StableSession  time.Duration
	StableDowntime time.Duration
}

// NewMixed returns the heterogeneous model. Node indexes below
// NStable are stable; the rest (including Enroll-created nodes) are
// flaky.
func NewMixed(cfg MixedConfig) (Model, error) {
	if cfg.NStable <= 0 || cfg.NFlaky <= 0 {
		return nil, fmt.Errorf("churn: both classes must be non-empty (stable=%d, flaky=%d)",
			cfg.NStable, cfg.NFlaky)
	}
	if cfg.StableSession <= 0 {
		cfg.StableSession = 100 * time.Hour
	}
	if cfg.StableDowntime <= 0 {
		cfg.StableDowntime = 5 * time.Minute
	}
	if cfg.FlakySession <= 0 {
		cfg.FlakySession = 30 * time.Minute
	}
	if cfg.FlakyDowntime <= 0 {
		cfg.FlakyDowntime = time.Hour
	}
	stable := cfg.NStable
	return &synthModel{
		name: "MIXED",
		n:    cfg.NStable + cfg.NFlaky,
		classes: []sessionParams{
			{meanSession: cfg.StableSession, meanDown: cfg.StableDowntime},
			{meanSession: cfg.FlakySession, meanDown: cfg.FlakyDowntime},
		},
		classFor: func(idx int) int {
			if idx < stable {
				return 0
			}
			return 1
		},
	}, nil
}

// AliveCount returns how many enrolled nodes the model currently
// considers up (test/diagnostic helper).
func (m *synthModel) AliveCount() int {
	n := 0
	for i := range m.states {
		if m.states[i].up {
			n++
		}
	}
	return n
}

// TotalBorn returns how many nodes have ever been created (the
// Nlongterm of Section 5.3).
func (m *synthModel) TotalBorn() int { return len(m.states) }
