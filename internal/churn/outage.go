package churn

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"avmon/internal/sim"
)

// ZoneOutage is one scheduled correlated fault: every node of Zone is
// forced down at Start (a whole availability zone failing, or becoming
// partitioned from the rest of the system — from the survivors' point
// of view the two are indistinguishable) and restored at End (the
// partition heals). Times are virtual durations since the simulation
// epoch.
type ZoneOutage struct {
	Zone  int
	Start time.Duration
	End   time.Duration
}

// ZoneOutageConfig parameterizes the correlated zone-outage model: a
// static population of N nodes spread across Zones zones, with whole
// zones killed and restored on a deterministic schedule.
//
// Node index idx belongs to zone idx mod Zones — exactly the mapping
// the zone-matrix latency model uses (simnet.NewZoneLatency), so an
// outage of zone z under a Zones×Zones latency matrix takes out
// precisely the nodes that share zone z's latency row. The initial
// population is born in index order (the hotspot model's orderedJoin
// idiom), keeping the index → zone → lane mapping exact.
type ZoneOutageConfig struct {
	// N is the stable population size.
	N int
	// Zones is the zone count; must be ≥ 2 (a single zone would make
	// every outage a full-system blackout).
	Zones int
	// Schedule lists the outages. Outages of the same zone must not
	// overlap; distinct zones may fail concurrently.
	Schedule []ZoneOutage
}

// zoneOutageModel overlays a deterministic fail/heal schedule on a
// static ordered-join base population.
type zoneOutageModel struct {
	*synthModel
	zones    int
	schedule []ZoneOutage
}

// NewZoneOutage returns the correlated zone-outage model
// ("ZONE-OUTAGE"). The base population is static (no background
// churn), so every lifecycle event is one of the scheduled faults and
// recovery metrics isolate the outage.
func NewZoneOutage(cfg ZoneOutageConfig) (Model, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("churn: N must be positive, got %d", cfg.N)
	}
	if cfg.Zones < 2 {
		return nil, fmt.Errorf("churn: zone count must be ≥ 2, got %d", cfg.Zones)
	}
	if cfg.Zones > cfg.N {
		return nil, fmt.Errorf("churn: more zones (%d) than nodes (%d)", cfg.Zones, cfg.N)
	}
	if err := validateSchedule(cfg.Schedule, cfg.Zones); err != nil {
		return nil, err
	}
	return &zoneOutageModel{
		synthModel: &synthModel{name: "ZONE-OUTAGE", n: cfg.N, orderedJoin: true},
		zones:      cfg.Zones,
		schedule:   append([]ZoneOutage(nil), cfg.Schedule...),
	}, nil
}

// validateSchedule checks zone bounds, interval shape, and per-zone
// non-overlap.
func validateSchedule(schedule []ZoneOutage, zones int) error {
	perZone := make(map[int][]ZoneOutage)
	for i, o := range schedule {
		if o.Zone < 0 || o.Zone >= zones {
			return fmt.Errorf("churn: outage %d: zone %d outside [0,%d)", i, o.Zone, zones)
		}
		if o.Start < 0 || o.Start >= o.End {
			return fmt.Errorf("churn: outage %d: bad interval [%v, %v)", i, o.Start, o.End)
		}
		perZone[o.Zone] = append(perZone[o.Zone], o)
	}
	for zone, outages := range perZone {
		sort.Slice(outages, func(i, j int) bool { return outages[i].Start < outages[j].Start })
		for i := 1; i < len(outages); i++ {
			if outages[i].Start < outages[i-1].End {
				return fmt.Errorf("churn: zone %d outages [%v,%v) and [%v,%v) overlap",
					zone, outages[i-1].Start, outages[i-1].End, outages[i].Start, outages[i].End)
			}
		}
	}
	return nil
}

// Install implements Model: the static base population plus one
// fail/heal event pair per scheduled outage.
func (m *zoneOutageModel) Install(eng sim.Sched, d Driver) {
	m.synthModel.Install(eng, d)
	for _, o := range m.schedule {
		o := o
		eng.At(sim.Epoch.Add(o.Start), func() { m.failZone(o.Zone) })
		eng.At(sim.Epoch.Add(o.End), func() { m.healZone(o.Zone) })
	}
}

// failZone takes down every currently-up node of the zone.
func (m *zoneOutageModel) failZone(zone int) {
	for idx := range m.states {
		st := &m.states[idx]
		if idx%m.zones != zone || st.dead || !st.up {
			continue
		}
		st.up = false
		st.gen++
		m.driver.Leave(idx)
	}
}

// healZone is failZone's inverse: every down node of the zone rejoins.
// Nodes born during the outage (Enroll) are already up and untouched.
func (m *zoneOutageModel) healZone(zone int) {
	for idx := range m.states {
		st := &m.states[idx]
		if idx%m.zones != zone || st.dead || st.up {
			continue
		}
		st.up = true
		st.gen++
		m.driver.Rejoin(idx)
	}
}

// ParseOutageSchedule parses the textual zone-outage schedule format
// used by avmon-bench and the chaos experiment: a comma-separated list
// of `zone@start+duration` entries, where start and duration use Go
// duration syntax. Example:
//
//	"1@30m+10m,2@1h+5m"
//
// means zone 1 is down from minute 30 to minute 40 and zone 2 from
// 1h00 to 1h05. The empty string is an empty schedule. Zone bounds are
// checked by NewZoneOutage, which knows the zone count; this parser
// checks shape only (zone ≥ 0, start ≥ 0, duration > 0).
func ParseOutageSchedule(s string) ([]ZoneOutage, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []ZoneOutage
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		zonePart, timesPart, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("churn: outage entry %q: want zone@start+duration", entry)
		}
		startPart, durPart, ok := strings.Cut(timesPart, "+")
		if !ok {
			return nil, fmt.Errorf("churn: outage entry %q: want zone@start+duration", entry)
		}
		zone, err := strconv.Atoi(zonePart)
		if err != nil || zone < 0 {
			return nil, fmt.Errorf("churn: outage entry %q: bad zone %q", entry, zonePart)
		}
		start, err := time.ParseDuration(startPart)
		if err != nil || start < 0 {
			return nil, fmt.Errorf("churn: outage entry %q: bad start %q", entry, startPart)
		}
		dur, err := time.ParseDuration(durPart)
		if err != nil || dur <= 0 {
			return nil, fmt.Errorf("churn: outage entry %q: bad duration %q", entry, durPart)
		}
		if start+dur < start { // duration overflow
			return nil, fmt.Errorf("churn: outage entry %q: start+duration overflows", entry)
		}
		out = append(out, ZoneOutage{Zone: zone, Start: start, End: start + dur})
	}
	return out, nil
}

// FormatOutageSchedule renders a schedule back into the textual format
// ParseOutageSchedule reads; Parse(Format(x)) == x for any schedule
// with non-negative zones and positive-length intervals.
func FormatOutageSchedule(schedule []ZoneOutage) string {
	parts := make([]string, 0, len(schedule))
	for _, o := range schedule {
		parts = append(parts, fmt.Sprintf("%d@%s+%s", o.Zone, o.Start, o.End-o.Start))
	}
	return strings.Join(parts, ",")
}
