package simnet

import (
	"math/rand"
	"testing"
	"time"

	"avmon/internal/ids"
	"avmon/internal/sim"
)

// drawMany pulls n draws from a model across several src/dst pairs and
// fails if any draw undercuts the declared floor (or overshoots max,
// when max > 0). This is THE property the sharded engine depends on:
// a single draw below MinLatency() would violate the lookahead window.
func drawMany(t *testing.T, m LatencyModel, n int, rng *rand.Rand, max time.Duration) {
	t.Helper()
	floor := m.MinLatency()
	if floor <= 0 {
		t.Fatalf("model %T declares non-positive floor %v", m, floor)
	}
	for i := 0; i < n; i++ {
		src, dst := ids.Sim(i%17), ids.Sim(i%23)
		d := m.Latency(src, dst, rng)
		if d < floor {
			t.Fatalf("%T draw %v below declared MinLatency %v (draw #%d)", m, d, floor, i)
		}
		if max > 0 && d > max {
			t.Fatalf("%T draw %v above cap %v (draw #%d)", m, d, max, i)
		}
	}
}

// TestLatencyModelsNeverBelowFloor is the floor property test over
// randomized parameters: every constructible model must respect its
// own declared MinLatency on every draw.
func TestLatencyModelsNeverBelowFloor(t *testing.T) {
	pr := rand.New(rand.NewSource(99)) // parameter randomness
	rng := rand.New(rand.NewSource(7)) // draw randomness (a lane stream stand-in)

	t.Run("constant", func(t *testing.T) {
		for trial := 0; trial < 50; trial++ {
			d := time.Duration(1+pr.Int63n(int64(500*time.Millisecond))) * 1
			m, err := NewConstantLatency(d)
			if err != nil {
				t.Fatal(err)
			}
			if m.MinLatency() != d {
				t.Fatalf("constant floor %v, want %v", m.MinLatency(), d)
			}
			drawMany(t, m, 100, rng, d)
		}
	})

	t.Run("lognormal", func(t *testing.T) {
		for trial := 0; trial < 50; trial++ {
			floor := time.Duration(1 + pr.Int63n(int64(50*time.Millisecond)))
			median := time.Duration(1 + pr.Int63n(int64(400*time.Millisecond)))
			sigma := 0.05 + 2*pr.Float64()
			var cap time.Duration
			if pr.Intn(2) == 0 {
				cap = floor + median + time.Duration(pr.Int63n(int64(2*time.Second)))
			}
			m, err := NewLognormalLatency(floor, median, sigma, cap)
			if err != nil {
				t.Fatal(err)
			}
			if m.MinLatency() != floor {
				t.Fatalf("lognormal floor %v, want %v", m.MinLatency(), floor)
			}
			drawMany(t, m, 2000, rng, cap)
		}
	})

	t.Run("zone", func(t *testing.T) {
		for trial := 0; trial < 50; trial++ {
			z := 1 + pr.Intn(5)
			base := make([][]time.Duration, z)
			min := time.Duration(1<<62 - 1)
			for i := range base {
				base[i] = make([]time.Duration, z)
				for j := range base[i] {
					base[i][j] = time.Duration(1 + pr.Int63n(int64(300*time.Millisecond)))
					if base[i][j] < min {
						min = base[i][j]
					}
				}
			}
			jitter := pr.Float64()
			m, err := NewZoneLatency(base, jitter)
			if err != nil {
				t.Fatal(err)
			}
			if m.MinLatency() != min {
				t.Fatalf("zone floor %v, want smallest entry %v", m.MinLatency(), min)
			}
			drawMany(t, m, 500, rng, 0)
		}
	})
}

// FuzzLognormalFloor fuzzes the lognormal parameter space: any
// parameter set the constructor accepts must yield draws at or above
// the declared floor (and under the cap when one is set).
func FuzzLognormalFloor(f *testing.F) {
	f.Add(int64(5e6), int64(50e6), 0.6, int64(2e9), int64(1))
	f.Add(int64(1), int64(1), 3.0, int64(0), int64(42))
	f.Add(int64(20e6), int64(500e6), 0.1, int64(600e6), int64(-9))
	f.Fuzz(func(t *testing.T, floorNs, medianNs int64, sigma float64, capNs, seed int64) {
		m, err := NewLognormalLatency(
			time.Duration(floorNs), time.Duration(medianNs), sigma, time.Duration(capNs))
		if err != nil {
			t.Skip() // invalid parameters are the constructor's to reject
		}
		rng := rand.New(rand.NewSource(seed))
		floor := m.MinLatency()
		for i := 0; i < 64; i++ {
			d := m.Latency(ids.Sim(1), ids.Sim(2), rng)
			if d < floor {
				t.Fatalf("draw %v below floor %v (floor=%d median=%d sigma=%v cap=%d)",
					d, floor, floorNs, medianNs, sigma, capNs)
			}
			if capNs > 0 && d > time.Duration(capNs) {
				t.Fatalf("draw %v above cap %v", d, time.Duration(capNs))
			}
		}
	})
}

// FuzzZoneFloor fuzzes zone-matrix construction from raw entries: an
// accepted matrix must report the smallest entry as its floor and
// never draw below it.
func FuzzZoneFloor(f *testing.F) {
	f.Add(int64(10e6), int64(80e6), int64(150e6), int64(30e6), 0.3, int64(3))
	f.Add(int64(1), int64(1), int64(1), int64(1), 0.0, int64(0))
	// Regression: absurd jitter once overflowed the int64 conversion
	// and drew a negative latency, below the floor.
	f.Add(int64(10e6), int64(10e6), int64(10e6), int64(10e6), 1e12, int64(1))
	f.Fuzz(func(t *testing.T, a, b, c, d int64, jitter float64, seed int64) {
		base := [][]time.Duration{
			{time.Duration(a), time.Duration(b)},
			{time.Duration(c), time.Duration(d)},
		}
		m, err := NewZoneLatency(base, jitter)
		if err != nil {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		floor := m.MinLatency()
		for i := 0; i < 64; i++ {
			if got := m.Latency(ids.Sim(i), ids.Sim(i*7+1), rng); got < floor {
				t.Fatalf("draw %v below floor %v (matrix %v)", got, floor, base)
			}
		}
	})
}

// TestLatencyModelValidation covers constructor rejections.
func TestLatencyModelValidation(t *testing.T) {
	if _, err := NewConstantLatency(0); err == nil {
		t.Error("zero constant latency accepted")
	}
	if _, err := NewLognormalLatency(0, time.Millisecond, 1, 0); err == nil {
		t.Error("zero lognormal floor accepted")
	}
	if _, err := NewLognormalLatency(time.Millisecond, 0, 1, 0); err == nil {
		t.Error("zero lognormal median accepted")
	}
	if _, err := NewLognormalLatency(time.Millisecond, time.Millisecond, 0, 0); err == nil {
		t.Error("zero lognormal sigma accepted")
	}
	if _, err := NewLognormalLatency(time.Millisecond, 10*time.Millisecond, 1, 5*time.Millisecond); err == nil {
		t.Error("lognormal cap below floor+median accepted")
	}
	if _, err := NewZoneLatency(nil, 0); err == nil {
		t.Error("empty zone matrix accepted")
	}
	if _, err := NewZoneLatency([][]time.Duration{{time.Millisecond, time.Millisecond}}, 0); err == nil {
		t.Error("non-square zone matrix accepted")
	}
	if _, err := NewZoneLatency([][]time.Duration{{0}}, 0); err == nil {
		t.Error("non-positive zone entry accepted")
	}
	if _, err := NewZoneLatency([][]time.Duration{{time.Millisecond}}, -1); err == nil {
		t.Error("negative jitter accepted")
	}
	if _, err := NewBernoulliLoss(1.0); err == nil {
		t.Error("loss probability 1.0 accepted")
	}
	if _, err := NewBernoulliLoss(-0.1); err == nil {
		t.Error("negative loss probability accepted")
	}
	if _, err := NewGilbertElliottLoss(0, 0.5, 0, 0.5); err == nil {
		t.Error("zero enterBad accepted")
	}
	if _, err := NewGilbertElliottLoss(0.1, 0, 0, 0.5); err == nil {
		t.Error("zero exitBad accepted")
	}
	if _, err := NewGilbertElliottLoss(0.1, 0.5, 0.6, 0.5); err == nil {
		t.Error("lossBad < lossGood accepted")
	}
	if _, err := NewGilbertElliottLoss(0.1, 0.5, -0.1, 0.5); err == nil {
		t.Error("negative lossGood accepted")
	}
}

// TestZoneAssignmentDeterministic pins the zone mapping: simulated
// index mod zone count, independent of any scheduler or RNG state, so
// a node's zone is identical across runs and engines.
func TestZoneAssignmentDeterministic(t *testing.T) {
	base := [][]time.Duration{
		{10 * time.Millisecond, 80 * time.Millisecond},
		{90 * time.Millisecond, 20 * time.Millisecond},
	}
	m, err := NewZoneLatency(base, 0) // no jitter: draws are the base entries
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := base[i%2][j%2]
			if got := m.Latency(ids.Sim(i), ids.Sim(j), rng); got != want {
				t.Fatalf("latency(%d→%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

// TestGilbertElliottBurstiness checks the chain actually produces
// correlated loss: with a lossless good state and a lossy bad state,
// drops must cluster into runs, and the long-run loss rate must track
// the stationary formula.
func TestGilbertElliottBurstiness(t *testing.T) {
	const enterBad, exitBad, lossBad = 0.02, 0.25, 1.0
	m, err := NewGilbertElliottLoss(enterBad, exitBad, 0, lossBad)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var st LossState
	const total = 200_000
	drops, bursts := 0, 0
	inBurst := false
	for i := 0; i < total; i++ {
		if m.Drop(&st, rng) {
			drops++
			if !inBurst {
				bursts++
				inBurst = true
			}
		} else {
			inBurst = false
		}
	}
	stationary := enterBad * lossBad / (enterBad + exitBad)
	rate := float64(drops) / total
	if rate < stationary*0.8 || rate > stationary*1.2 {
		t.Errorf("loss rate %.4f, want ≈ stationary %.4f", rate, stationary)
	}
	// Mean burst length must reflect the bad-state dwell time (≈
	// 1/exitBad = 4 messages), not independence (≈ 1/(1-rate) ≈ 1.1).
	meanBurst := float64(drops) / float64(bursts)
	if meanBurst < 2 {
		t.Errorf("mean burst length %.2f; drops look independent, not bursty", meanBurst)
	}
}

// TestShardedNetworkRejectsLowFloor is the constructor half of the
// adaptive-lookahead contract: pairing a sharded engine with a latency
// model whose floor is below the engine's lookahead must fail at
// network construction, before any event can violate the window.
func TestShardedNetworkRejectsLowFloor(t *testing.T) {
	eng, err := sim.NewSharded(1, 2, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	low, err := NewConstantLatency(10 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(eng, WithLatencyModel(low)); err == nil {
		t.Error("latency floor below the engine lookahead accepted")
	}
	// The legacy func form declares no floor at all, so it can never
	// run sharded.
	if _, err := New(eng, WithLatency(ConstantLatency(time.Second))); err == nil {
		t.Error("floorless LatencyFunc accepted under a sharded engine")
	}
	// A model meeting the floor is accepted.
	ok, err := NewLognormalLatency(50*time.Millisecond, 20*time.Millisecond, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(eng, WithLatencyModel(ok)); err != nil {
		t.Errorf("matching floor rejected: %v", err)
	}
	// Serial engines have no lookahead to violate.
	if _, err := New(sim.New(1), WithLatencyModel(low)); err != nil {
		t.Errorf("serial engine rejected a low-floor model: %v", err)
	}
	// Invalid WithLoss probabilities surface as New errors.
	if _, err := New(sim.New(1), WithLoss(1.5)); err == nil {
		t.Error("loss probability 1.5 accepted")
	}
}

// TestNetworkHeterogeneousDelivery drives messages through the
// lognormal and zone models on a live engine: deliveries happen, and
// every delivery timestamp respects the model floor.
func TestNetworkHeterogeneousDelivery(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() (LatencyModel, error)
	}{
		{"lognormal", func() (LatencyModel, error) {
			return NewLognormalLatency(5*time.Millisecond, 40*time.Millisecond, 0.8, time.Second)
		}},
		{"zones", func() (LatencyModel, error) {
			return NewZoneLatency([][]time.Duration{
				{10 * time.Millisecond, 120 * time.Millisecond},
				{130 * time.Millisecond, 15 * time.Millisecond},
			}, 0.2)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			model, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			eng := sim.New(3)
			_, a, b, got := newPair(t, eng, WithLatencyModel(model))
			sendAt := eng.Now()
			const total = 200
			for i := 0; i < total; i++ {
				a.Send(b.ID(), i, 1)
			}
			eng.Run()
			if len(*got) != total {
				t.Fatalf("delivered %d of %d", len(*got), total)
			}
			for _, r := range *got {
				if lat := r.at - sendAt.Sub(sim.Epoch); lat < model.MinLatency() {
					t.Fatalf("delivery after %v, below the %v floor", lat, model.MinLatency())
				}
			}
		})
	}
}
