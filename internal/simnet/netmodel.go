// Heterogeneous WAN network models: latency distributions with a
// provable floor, and bursty loss processes.
//
// Every model obeys the engine's lane discipline — all randomness for
// a message is drawn from the SENDER's lane stream at send time, and
// model values are immutable after construction (per-message loss
// state lives in the sender's Endpoint, not in the model), so one
// model value can safely be shared by every endpoint and by
// concurrent simulations.
//
// The adaptive-lookahead contract: a LatencyModel must never draw
// below its declared MinLatency(). That floor is what a sharded
// cluster uses as its conservative lookahead window (see
// sim.ShardedEngine), so a draw below it would be a determinism
// violation, not just an inaccuracy — the engine panics on it.

package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"avmon/internal/ids"
)

// LatencyModel draws one-way message delivery latencies. Implementations
// must be immutable after construction (they are shared across
// endpoints and goroutines), must draw only from the rng passed in
// (the sender's lane stream, preserving serial/sharded determinism),
// and must never return less than MinLatency().
type LatencyModel interface {
	// Latency draws the one-way delivery latency for a message from
	// src to dst. rng is the sender's lane stream; the draw count per
	// call must depend only on the model and the stream, never on
	// scheduler state.
	Latency(src, dst ids.ID, rng *rand.Rand) time.Duration
	// MinLatency returns a positive lower bound on every possible
	// draw — the provable floor. Under a sharded engine it bounds the
	// conservative lookahead window: the engine's lookahead must be
	// ≤ this floor or cross-shard posts could land inside the current
	// window.
	MinLatency() time.Duration
}

// LossModel decides whether a message is lost in transit.
// Implementations must be immutable after construction; all evolving
// state lives in the per-sender LossState, and all randomness comes
// from the rng passed in (the sender's lane stream), so loss decisions
// are deterministic per lane under both engines.
type LossModel interface {
	// Drop reports whether the message is lost, advancing st (owned by
	// the sending endpoint, touched only on its lane).
	Drop(st *LossState, rng *rand.Rand) bool
}

// LossState is the per-sender evolving state of a LossModel (e.g. the
// Gilbert-Elliott good/bad channel state). It is owned by the sending
// endpoint's lane: only Drop mutates it, and Drop only runs inside
// Send on the sender's lane.
type LossState struct {
	// Bad reports whether the sender's channel is currently in the
	// lossy burst state (Gilbert-Elliott); Bernoulli loss ignores it.
	Bad bool
}

// --- latency models ---------------------------------------------------

// constantLatency is the degenerate model: every message takes exactly
// d, so the floor equals the draw and no randomness is consumed.
type constantLatency struct {
	d time.Duration
}

// NewConstantLatency returns the model behind the default network: a
// fixed one-way latency d for every link. d must be positive — it is
// both every draw and the sharded lookahead floor.
func NewConstantLatency(d time.Duration) (LatencyModel, error) {
	if d <= 0 {
		return nil, fmt.Errorf("simnet: constant latency must be positive, got %v", d)
	}
	return constantLatency{d: d}, nil
}

// Latency implements LatencyModel; it consumes no randomness.
func (c constantLatency) Latency(_, _ ids.ID, _ *rand.Rand) time.Duration { return c.d }

// MinLatency implements LatencyModel: the constant itself.
func (c constantLatency) MinLatency() time.Duration { return c.d }

// lognormalLatency models heavy-tailed WAN latency: a fixed floor
// (propagation delay) plus a lognormally distributed tail (queueing),
// optionally clamped at a cap.
type lognormalLatency struct {
	floor    time.Duration
	medianNs float64 // median of the tail above the floor, in ns
	sigma    float64
	cap      time.Duration // 0 = uncapped
}

// NewLognormalLatency returns a heavy-tailed latency model: every draw
// is floor + L where L is lognormal with the given median (so the
// model's overall median one-way latency is floor+median) and shape
// sigma; draws above cap are clamped to it (cap 0 disables clamping).
// floor must be positive (it is the sharded lookahead floor), median
// must exceed zero, sigma must be positive, and a non-zero cap must be
// at least floor+median.
func NewLognormalLatency(floor, median time.Duration, sigma float64, cap time.Duration) (LatencyModel, error) {
	switch {
	case floor <= 0:
		return nil, fmt.Errorf("simnet: lognormal floor must be positive, got %v", floor)
	case median <= 0:
		return nil, fmt.Errorf("simnet: lognormal median must be positive, got %v", median)
	case sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0):
		return nil, fmt.Errorf("simnet: lognormal sigma must be a positive finite number, got %v", sigma)
	case cap != 0 && cap < floor+median:
		return nil, fmt.Errorf("simnet: lognormal cap %v below floor+median %v", cap, floor+median)
	}
	return lognormalLatency{
		floor:    floor,
		medianNs: float64(median),
		sigma:    sigma,
		cap:      cap,
	}, nil
}

// Latency implements LatencyModel: one normal draw from the sender's
// lane stream, exponentiated around the tail median.
func (l lognormalLatency) Latency(_, _ ids.ID, rng *rand.Rand) time.Duration {
	tail := l.medianNs * math.Exp(l.sigma*rng.NormFloat64())
	d := l.floor + time.Duration(tail)
	if d < l.floor {
		// Guard against float overflow wrapping the conversion.
		d = l.floor
	}
	if l.cap != 0 && d > l.cap {
		d = l.cap
	}
	return d
}

// MinLatency implements LatencyModel: the configured floor (the
// lognormal tail is strictly positive).
func (l lognormalLatency) MinLatency() time.Duration { return l.floor }

// zoneLatency models a federation of zones (data centers, continents):
// each node belongs to a zone, and the one-way base latency between a
// pair of nodes is a zone-to-zone matrix entry plus optional uniform
// multiplicative jitter.
type zoneLatency struct {
	base   [][]time.Duration
	jitter float64
	min    time.Duration
}

// NewZoneLatency returns a per-link latency model over a square
// zone-to-zone base matrix: base[i][j] is the one-way latency from
// zone i to zone j, and every draw is base·(1+u·jitter) with u uniform
// in [0,1). All matrix entries must be positive and the matrix square;
// jitter must be ≥ 0. Nodes map to zones deterministically from their
// identity (simulated index mod zone count), so zone assignment — like
// every latency draw — is independent of scheduler interleaving.
// MinLatency is the smallest matrix entry.
func NewZoneLatency(base [][]time.Duration, jitter float64) (LatencyModel, error) {
	if len(base) == 0 {
		return nil, fmt.Errorf("simnet: zone matrix is empty")
	}
	if jitter < 0 || math.IsNaN(jitter) || math.IsInf(jitter, 0) {
		return nil, fmt.Errorf("simnet: zone jitter must be a finite non-negative number, got %v", jitter)
	}
	min := time.Duration(math.MaxInt64)
	m := make([][]time.Duration, len(base))
	for i, row := range base {
		if len(row) != len(base) {
			return nil, fmt.Errorf("simnet: zone matrix row %d has %d entries, want %d", i, len(row), len(base))
		}
		m[i] = append([]time.Duration(nil), row...)
		for j, d := range row {
			if d <= 0 {
				return nil, fmt.Errorf("simnet: zone matrix entry [%d][%d] = %v must be positive", i, j, d)
			}
			if d < min {
				min = d
			}
		}
	}
	return zoneLatency{base: m, jitter: jitter, min: min}, nil
}

// zoneOf maps an identity to its zone: simulated nodes by index modulo
// the zone count (stable, scheduler-independent), other identities by
// a splitmix64 scramble of the raw id.
func (z zoneLatency) zoneOf(id ids.ID) int {
	if idx, ok := ids.SimIndex(id); ok {
		return idx % len(z.base)
	}
	w := uint64(id) * 0x9E3779B97F4A7C15
	w = (w ^ (w >> 30)) * 0xBF58476D1CE4E5B9
	return int((w ^ (w >> 27)) % uint64(len(z.base)))
}

// Latency implements LatencyModel: the zone-pair base entry plus one
// uniform jitter draw from the sender's lane stream (no draw when
// jitter is zero).
func (z zoneLatency) Latency(src, dst ids.ID, rng *rand.Rand) time.Duration {
	d := z.base[z.zoneOf(src)][z.zoneOf(dst)]
	if z.jitter > 0 {
		total := float64(d) * (1 + z.jitter*rng.Float64())
		if total > float64(1<<62) {
			// Guard against float overflow wrapping the int64
			// conversion below the floor (absurd jitter values are
			// accepted by the constructor; the floor contract is not
			// theirs to break).
			return time.Duration(1 << 62)
		}
		d = time.Duration(total)
	}
	return d
}

// MinLatency implements LatencyModel: the smallest matrix entry
// (jitter only adds).
func (z zoneLatency) MinLatency() time.Duration { return z.min }

// funcLatency adapts a legacy LatencyFunc. It declares no floor
// (MinLatency 0), so it is valid only on the serial engine — New
// rejects it under a sharded engine.
type funcLatency struct {
	fn LatencyFunc
}

// Latency implements LatencyModel by delegating to the wrapped func.
func (f funcLatency) Latency(_, _ ids.ID, rng *rand.Rand) time.Duration { return f.fn(rng) }

// MinLatency implements LatencyModel: zero — the wrapped func proves
// no floor, which is exactly why sharded engines reject it.
func (f funcLatency) MinLatency() time.Duration { return 0 }

// --- loss models ------------------------------------------------------

// bernoulliLoss drops each message independently with probability p.
type bernoulliLoss struct {
	p float64
}

// NewBernoulliLoss returns the memoryless loss model: each message is
// dropped independently with probability p ∈ [0, 1). One uniform draw
// per message from the sender's lane stream.
func NewBernoulliLoss(p float64) (LossModel, error) {
	if p < 0 || p >= 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("simnet: loss probability %v outside [0, 1)", p)
	}
	return bernoulliLoss{p: p}, nil
}

// Drop implements LossModel: one uniform draw against p; the state is
// unused.
func (b bernoulliLoss) Drop(_ *LossState, rng *rand.Rand) bool {
	return rng.Float64() < b.p
}

// gilbertElliott is the classic two-state burst-loss channel: a good
// state with low loss and a bad state with high loss, with per-message
// transition probabilities between them. The chain state is per
// SENDER (its access link), held in the endpoint's LossState.
type gilbertElliott struct {
	enterBad float64 // P(good → bad) per message
	exitBad  float64 // P(bad → good) per message
	lossGood float64 // drop probability while good
	lossBad  float64 // drop probability while bad
}

// NewGilbertElliottLoss returns a bursty loss model (Gilbert-Elliott):
// the sender's channel alternates between a good state (drop
// probability lossGood) and a bad state (lossBad), entering the bad
// state with probability enterBad per message and leaving it with
// probability exitBad. Mean burst length is 1/exitBad messages, and
// the stationary loss rate is
//
//	(enterBad·lossBad + exitBad·lossGood) / (enterBad + exitBad).
//
// enterBad and exitBad must be in (0, 1]; lossGood and lossBad in
// [0, 1] with lossBad ≥ lossGood. The chain advances exactly one
// transition draw plus (when the state's drop probability is neither
// 0 nor 1) one loss draw per message, all on the sender's lane stream.
func NewGilbertElliottLoss(enterBad, exitBad, lossGood, lossBad float64) (LossModel, error) {
	switch {
	case !(enterBad > 0 && enterBad <= 1):
		return nil, fmt.Errorf("simnet: gilbert-elliott enterBad %v outside (0, 1]", enterBad)
	case !(exitBad > 0 && exitBad <= 1):
		return nil, fmt.Errorf("simnet: gilbert-elliott exitBad %v outside (0, 1]", exitBad)
	case !(lossGood >= 0 && lossGood <= 1):
		return nil, fmt.Errorf("simnet: gilbert-elliott lossGood %v outside [0, 1]", lossGood)
	case !(lossBad >= 0 && lossBad <= 1):
		return nil, fmt.Errorf("simnet: gilbert-elliott lossBad %v outside [0, 1]", lossBad)
	case lossBad < lossGood:
		return nil, fmt.Errorf("simnet: gilbert-elliott lossBad %v below lossGood %v", lossBad, lossGood)
	}
	return gilbertElliott{enterBad: enterBad, exitBad: exitBad, lossGood: lossGood, lossBad: lossBad}, nil
}

// Drop implements LossModel: advance the sender's two-state chain,
// then draw against the current state's loss probability.
func (g gilbertElliott) Drop(st *LossState, rng *rand.Rand) bool {
	if st.Bad {
		if rng.Float64() < g.exitBad {
			st.Bad = false
		}
	} else if rng.Float64() < g.enterBad {
		st.Bad = true
	}
	p := g.lossGood
	if st.Bad {
		p = g.lossBad
	}
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	default:
		return rng.Float64() < p
	}
}
