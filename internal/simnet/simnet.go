// Package simnet is the simulated network substrate used by the
// trace-driven evaluation (paper Section 5).
//
// It models the paper's system model (Section 3): communication
// between a pair of nodes is reliable and timely iff both nodes are
// currently alive. Message payloads are opaque to the network; callers
// supply the wire size so per-node bandwidth can be accounted exactly
// as the paper does (outgoing bytes per second, including "useless"
// messages sent to absent nodes).
//
// Endpoint state is held in dense indexed tables rather than maps:
// simulated identities (ids.Sim) resolve through a flat slice indexed
// by node number, and the alive population is a swap-remove slice, so
// lookups and uniform alive draws are O(1) regardless of N.
//
// The network runs on any sim.Sched and follows its lane discipline,
// which is what lets one simulation run serially or sharded with
// byte-identical results:
//
//   - Each endpoint owns one lane; its message handler and delivery
//     events execute on that lane, and its latency/loss draws come
//     from that lane's private random stream.
//   - Aliveness is two copies: the registry (the dense alive table
//     behind RandomAlive/AliveCount, mutated only from control-lane
//     lifecycle events) and the per-endpoint delivery flag (mutated
//     only on the endpoint's own lane). Both transition at the same
//     virtual times; each is read only by its owner.
//   - Whether a message was "useless" (sent toward a dead node) is
//     decided at delivery time on the destination lane — the only
//     point where the destination's liveness is deterministically
//     known to a parallel scheduler — and recorded on the sender's
//     counters with atomic adds (several destination shards may
//     classify one sender's messages concurrently).
package simnet

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"avmon/internal/ids"
	"avmon/internal/sim"
)

// Handler receives a delivered message at an endpoint, on the
// endpoint's lane, at virtual time now.
type Handler func(from ids.ID, msg any, size int, now time.Time)

// UndeliveredFunc observes a message that could not be delivered (the
// "useless" traffic of Figure 18). For a known-but-dead destination it
// runs on the destination's lane at delivery time; for a destination
// that was never attached there is no lane to deliver on, so it runs
// synchronously on the sender's lane at send time. Implementations
// must therefore assume no particular lane and touch shared state
// atomically.
type UndeliveredFunc func(from *Endpoint, to ids.ID, msg any, size int)

// LatencyFunc draws a one-way delivery latency. It declares no floor,
// so a network configured with one (WithLatency) runs only on the
// serial engine; sharded runs need a LatencyModel with a provable
// MinLatency (see netmodel.go).
type LatencyFunc func(rng *rand.Rand) time.Duration

// ConstantLatency returns a LatencyFunc that always yields d.
func ConstantLatency(d time.Duration) LatencyFunc {
	return func(*rand.Rand) time.Duration { return d }
}

// UniformLatency returns a LatencyFunc uniform in [lo, hi].
func UniformLatency(lo, hi time.Duration) LatencyFunc {
	if hi < lo {
		lo, hi = hi, lo
	}
	return func(rng *rand.Rand) time.Duration {
		if hi == lo {
			return lo
		}
		return lo + time.Duration(rng.Int63n(int64(hi-lo)))
	}
}

// Counters accumulates per-endpoint traffic statistics. UselessMsgs
// and UselessBytes are maintained with atomic adds (see the package
// comment); the rest are owned by a single lane.
type Counters struct {
	MsgsOut      uint64 // messages sent
	MsgsIn       uint64 // messages delivered
	BytesOut     uint64 // bytes sent (counted even if the peer is dead)
	BytesIn      uint64 // bytes delivered
	UselessMsgs  uint64 // messages that found their destination dead
	UselessBytes uint64 // bytes of such messages
	Dropped      uint64 // messages lost to random loss injection
}

// Network connects endpoints through a shared discrete-event engine.
type Network struct {
	eng         sim.Sched
	latency     LatencyModel
	loss        LossModel // nil = lossless (no draw per send)
	undelivered UndeliveredFunc

	// Endpoint state is interned: identities resolve to dense uint32
	// indexes (ids.Interner), endpoints live in a flat slice under
	// those indexes, and delivery events reference endpoints by index —
	// two packed words instead of a captured closure per message.
	interner ids.Interner
	eps      []*Endpoint // dense table indexed by interned index (= attachment order)
	alive    []*Endpoint // registry: current alive set, swap-remove maintained

	lossErr error // deferred WithLoss validation error, surfaced by New
}

// Option configures a Network.
type Option func(*Network)

// WithLatency sets the one-way latency distribution from a bare draw
// function (default: constant 50ms). The func form declares no floor
// (MinLatency 0), so it is valid only on the serial engine — New
// rejects it under a sharded one. Use WithLatencyModel for anything
// that must run sharded.
func WithLatency(l LatencyFunc) Option {
	return func(n *Network) { n.latency = funcLatency{fn: l} }
}

// WithLatencyModel sets the one-way latency model (default: constant
// 50ms). Under a sharded engine the model's MinLatency() must be at
// least the engine's lookahead window; New enforces this.
func WithLatencyModel(m LatencyModel) Option {
	return func(n *Network) { n.latency = m }
}

// WithLoss sets an independent (Bernoulli) per-message drop
// probability in [0, 1). The paper assumes reliable links; loss
// injection exists for failure testing of the protocol's robustness.
// Probabilities outside [0, 1) are a programming error surfaced by
// New.
func WithLoss(p float64) Option {
	return func(n *Network) {
		if p == 0 {
			n.loss = nil
			return
		}
		m, err := NewBernoulliLoss(p)
		if err != nil {
			n.lossErr = err
			return
		}
		n.loss = m
	}
}

// WithLossModel sets the loss process (default: lossless). Per-sender
// evolving state (e.g. the Gilbert-Elliott channel state) lives in the
// endpoint; the model itself must be immutable.
func WithLossModel(m LossModel) Option {
	return func(n *Network) { n.loss = m }
}

// WithUndelivered registers a callback for messages that found their
// destination dead or unknown at delivery time.
func WithUndelivered(fn UndeliveredFunc) Option {
	return func(n *Network) { n.undelivered = fn }
}

// New creates a network on the given engine. It enforces the
// adaptive-lookahead contract at construction time: when the engine is
// sharded (it exposes a Lookahead), the latency model's MinLatency()
// must be at least the engine's lookahead window — otherwise a latency
// draw could post a delivery inside the current window, which the
// engine would punish with a deterministic panic mid-run. Rejecting
// the pairing here turns that runtime violation into an error.
func New(eng sim.Sched, opts ...Option) (*Network, error) {
	n := &Network{eng: eng}
	n.latency, _ = NewConstantLatency(50 * time.Millisecond)
	for _, o := range opts {
		o(n)
	}
	if n.lossErr != nil {
		return nil, n.lossErr
	}
	if la, ok := eng.(interface{ Lookahead() time.Duration }); ok {
		if floor := n.latency.MinLatency(); floor < la.Lookahead() {
			return nil, fmt.Errorf(
				"simnet: latency model floor %v below the sharded engine's %v lookahead",
				floor, la.Lookahead())
		}
	}
	return n, nil
}

// Engine returns the underlying simulation scheduler.
func (n *Network) Engine() sim.Sched { return n.eng }

// CrossLaneBound returns a conservative lower bound on the timestamp
// (as an offset from the simulation epoch) of any cross-lane event the
// network could generate from sends made at or after virtual time
// after: the send time plus the latency model's provable floor. It is
// the network's half of the dynamic-lookahead contract — the sharded
// engine's scheduler registers it (sim.ShardedEngine.SetCrossLaneBound)
// and widens per-shard execution horizons with it, trusting that no
// delivery is ever posted below the bound. The latency-floor property
// tests in netmodel_test.go are what make that trust sound.
func (n *Network) CrossLaneBound(after time.Duration) time.Duration {
	return after + n.latency.MinLatency()
}

// lookup resolves an identity to its endpoint (nil if unknown).
func (n *Network) lookup(id ids.ID) *Endpoint {
	if idx, ok := n.interner.Index(id); ok {
		return n.eps[idx]
	}
	return nil
}

// Attach registers a new endpoint with the given identity and message
// handler, on a fresh lane. The endpoint starts dead; call SetAlive
// (or the registry/flag pair) to bring it up. Attach only from
// control-lane events or while the engine is quiescent. Attaching a
// duplicate identity is a programming error.
func (n *Network) Attach(id ids.ID, h Handler) (*Endpoint, error) {
	if id.IsNone() {
		return nil, fmt.Errorf("simnet: cannot attach the None identity")
	}
	if n.lookup(id) != nil {
		return nil, fmt.Errorf("simnet: endpoint %v already attached", id)
	}
	ep := &Endpoint{net: n, id: id, handler: h, lane: n.eng.AddLane(), alivePos: -1}
	ep.idx = n.interner.Intern(id)
	n.eps = append(n.eps, ep)
	return ep, nil
}

// Alive reports whether the identified endpoint exists and is up. It
// is the experiment oracle; protocol code must not use it, and under a
// sharded engine it is valid only while the engine is quiescent.
func (n *Network) Alive(id ids.ID) bool {
	ep := n.lookup(id)
	return ep != nil && ep.alive
}

// AliveCount returns the number of endpoints in the alive registry.
func (n *Network) AliveCount() int { return len(n.alive) }

// AliveIDs returns the identities of all registry-alive endpoints, in
// attachment order.
func (n *Network) AliveIDs() []ids.ID {
	out := make([]ids.ID, 0, len(n.alive))
	for _, ep := range n.eps {
		if ep.alivePos >= 0 {
			out = append(out, ep.id)
		}
	}
	return out
}

// RandomAlive returns a uniformly random registry-alive endpoint
// identity other than exclude, or None if there is no such endpoint.
// It is the bootstrap oracle for the join protocol ("Pick a random
// node y", Figure 1): one random draw from the control stream against
// the dense alive registry, regardless of N. Call only from
// control-lane events or while quiescent.
func (n *Network) RandomAlive(exclude ids.ID) ids.ID {
	count := len(n.alive)
	if ex := n.lookup(exclude); ex != nil && ex.alivePos >= 0 {
		if count <= 1 {
			return ids.None
		}
		// Draw from the alive set with the excluded slot skipped.
		j := n.eng.Rand().Intn(count - 1)
		if j >= ex.alivePos {
			j++
		}
		return n.alive[j].id
	}
	if count == 0 {
		return ids.None
	}
	return n.alive[n.eng.Rand().Intn(count)].id
}

// Endpoint is one node's attachment point to the network.
type Endpoint struct {
	net      *Network
	id       ids.ID
	idx      uint32 // interned index in net.eps
	lane     *sim.Lane
	alive    bool      // delivery flag, owned by the endpoint's lane
	alivePos int       // registry: index in net.alive while alive, -1 otherwise
	lossSt   LossState // loss-process state, owned by the endpoint's lane
	handler  Handler
	counters Counters
	tag      any
}

// ID returns the endpoint's identity.
func (ep *Endpoint) ID() ids.ID { return ep.id }

// Lane returns the endpoint's execution lane.
func (ep *Endpoint) Lane() *sim.Lane { return ep.lane }

// SetTag attaches opaque caller state to the endpoint (readable from
// UndeliveredFunc callbacks). Set it before the endpoint first sends.
func (ep *Endpoint) SetTag(tag any) { ep.tag = tag }

// Tag returns the caller state attached with SetTag.
func (ep *Endpoint) Tag() any { return ep.tag }

// Alive reports the endpoint's delivery flag.
func (ep *Endpoint) Alive() bool { return ep.alive }

// Registered reports whether the endpoint is in the alive registry
// (the control-lane view of its liveness).
func (ep *Endpoint) Registered() bool { return ep.alivePos >= 0 }

// SetAliveRegistry adds the endpoint to or removes it from the alive
// registry behind RandomAlive/AliveCount. Call only from control-lane
// events or while quiescent.
func (ep *Endpoint) SetAliveRegistry(alive bool) {
	if (ep.alivePos >= 0) == alive {
		return
	}
	n := ep.net
	if alive {
		ep.alivePos = len(n.alive)
		n.alive = append(n.alive, ep)
		return
	}
	last := len(n.alive) - 1
	moved := n.alive[last]
	n.alive[ep.alivePos] = moved
	moved.alivePos = ep.alivePos
	n.alive[last] = nil
	n.alive = n.alive[:last]
	ep.alivePos = -1
}

// SetAliveFlag raises or lowers the delivery flag. Call only from the
// endpoint's own lane (or while quiescent). Messages in flight toward
// a downed endpoint are silently dropped at delivery time (crash-stop,
// Section 3).
func (ep *Endpoint) SetAliveFlag(alive bool) { ep.alive = alive }

// SetAlive updates the registry and the delivery flag together — the
// convenience form for tests and single-threaded harnesses, valid
// while the engine is quiescent. The cluster driver instead updates
// the registry from its control-lane lifecycle events and posts the
// flag change to the endpoint's lane at the same virtual time.
func (ep *Endpoint) SetAlive(alive bool) {
	ep.SetAliveRegistry(alive)
	ep.SetAliveFlag(alive)
}

// Counters returns a snapshot of the endpoint's traffic counters.
// Valid while the engine is quiescent.
func (ep *Endpoint) Counters() Counters {
	c := ep.counters
	c.UselessMsgs = atomic.LoadUint64(&ep.counters.UselessMsgs)
	c.UselessBytes = atomic.LoadUint64(&ep.counters.UselessBytes)
	return c
}

// ResetCounters zeroes the traffic counters (used at the end of
// experiment warm-up). Valid while the engine is quiescent.
func (ep *Endpoint) ResetCounters() { ep.counters = Counters{} }

// Send transmits msg of the given wire size to the identified peer,
// from the sender's lane at the sender's current virtual time. Sends
// from a dead endpoint are ignored. Delivery happens on the
// destination's lane after the network's latency draw, iff the
// destination is alive at that time; a dead (or unknown) destination
// is charged to the sender's useless counters at that point.
func (ep *Endpoint) Send(to ids.ID, msg any, size int) {
	if !ep.alive {
		return
	}
	ep.counters.MsgsOut++
	ep.counters.BytesOut += uint64(size)
	dst := ep.net.lookup(to)
	if dst == nil {
		// The message still leaves the sender's NIC; there is no lane
		// to deliver on, so the useless classification happens here.
		ep.chargeUseless(to, msg, size)
		return
	}
	if ep.net.loss != nil && ep.net.loss.Drop(&ep.lossSt, ep.lane.Rand()) {
		ep.counters.Dropped++
		return
	}
	now := ep.net.eng.LaneNow(ep.lane)
	d := ep.net.latency.Latency(ep.id, to, ep.lane.Rand())
	// Deliveries are posted as handler events keyed by interned endpoint
	// indexes — two packed words plus the payload — so the steady-state
	// send path allocates nothing.
	ep.net.eng.PostEvent(ep.lane, dst.lane, now.Add(d), ep.net, sim.EventArg{
		A: uint64(size),
		B: uint64(ep.idx)<<32 | uint64(dst.idx),
		P: msg,
	})
}

// Fire delivers one in-flight message (posted by Send) on the
// destination's lane: sim.Handler implementation.
func (n *Network) Fire(now time.Time, arg sim.EventArg) {
	from := n.eps[arg.B>>32]
	dst := n.eps[uint32(arg.B)]
	size := int(arg.A)
	if !dst.alive {
		from.chargeUseless(dst.id, arg.P, size)
		return
	}
	dst.counters.MsgsIn++
	dst.counters.BytesIn += uint64(size)
	dst.handler(from.id, arg.P, size, now)
}

// chargeUseless records an undeliverable message on the sender's
// counters. It may run on any destination lane, hence the atomics.
func (ep *Endpoint) chargeUseless(to ids.ID, msg any, size int) {
	atomic.AddUint64(&ep.counters.UselessMsgs, 1)
	atomic.AddUint64(&ep.counters.UselessBytes, uint64(size))
	if ep.net.undelivered != nil {
		ep.net.undelivered(ep, to, msg, size)
	}
}
