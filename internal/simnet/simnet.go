// Package simnet is the simulated network substrate used by the
// trace-driven evaluation (paper Section 5).
//
// It models the paper's system model (Section 3): communication
// between a pair of nodes is reliable and timely iff both nodes are
// currently alive. Message payloads are opaque to the network; callers
// supply the wire size so per-node bandwidth can be accounted exactly
// as the paper does (outgoing bytes per second, including "useless"
// messages sent to absent nodes).
//
// Endpoint state is held in dense indexed tables rather than maps:
// simulated identities (ids.Sim) resolve through a flat slice indexed
// by node number, and the alive population is a swap-remove slice, so
// lookups and uniform alive draws are O(1) regardless of N. The
// previous map + reservoir-sample design drew one random number per
// alive endpoint on every bootstrap lookup — quadratic work over a
// run at N = 100,000.
package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"avmon/internal/ids"
	"avmon/internal/sim"
)

// Handler receives a delivered message at an endpoint.
type Handler func(from ids.ID, msg any, size int)

// LatencyFunc draws a one-way delivery latency.
type LatencyFunc func(rng *rand.Rand) time.Duration

// ConstantLatency returns a LatencyFunc that always yields d.
func ConstantLatency(d time.Duration) LatencyFunc {
	return func(*rand.Rand) time.Duration { return d }
}

// UniformLatency returns a LatencyFunc uniform in [lo, hi].
func UniformLatency(lo, hi time.Duration) LatencyFunc {
	if hi < lo {
		lo, hi = hi, lo
	}
	return func(rng *rand.Rand) time.Duration {
		if hi == lo {
			return lo
		}
		return lo + time.Duration(rng.Int63n(int64(hi-lo)))
	}
}

// Counters accumulates per-endpoint traffic statistics.
type Counters struct {
	MsgsOut      uint64 // messages sent
	MsgsIn       uint64 // messages delivered
	BytesOut     uint64 // bytes sent (counted even if the peer is dead)
	BytesIn      uint64 // bytes delivered
	UselessMsgs  uint64 // messages sent to a currently-dead destination
	UselessBytes uint64 // bytes of such messages
	Dropped      uint64 // messages lost to random loss injection
}

// Network connects endpoints through a shared discrete-event engine.
type Network struct {
	eng     *sim.Engine
	latency LatencyFunc
	loss    float64

	bySim  []*Endpoint          // dense table indexed by ids.SimIndex
	others map[ids.ID]*Endpoint // non-simulated identities (lazily built)
	order  []*Endpoint          // attachment order, for deterministic iteration
	alive  []*Endpoint          // current alive set, swap-remove maintained
}

// Option configures a Network.
type Option func(*Network)

// WithLatency sets the one-way latency model (default: constant 50ms).
func WithLatency(l LatencyFunc) Option {
	return func(n *Network) { n.latency = l }
}

// WithLoss sets an independent per-message drop probability in [0, 1).
// The paper assumes reliable links; loss injection exists for failure
// testing of the protocol's robustness.
func WithLoss(p float64) Option {
	return func(n *Network) { n.loss = p }
}

// New creates a network on the given engine.
func New(eng *sim.Engine, opts ...Option) *Network {
	n := &Network{
		eng:     eng,
		latency: ConstantLatency(50 * time.Millisecond),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Engine returns the underlying simulation engine.
func (n *Network) Engine() *sim.Engine { return n.eng }

// lookup resolves an identity to its endpoint (nil if unknown).
func (n *Network) lookup(id ids.ID) *Endpoint {
	if idx, ok := ids.SimIndex(id); ok {
		if idx < len(n.bySim) {
			return n.bySim[idx]
		}
		return nil
	}
	return n.others[id]
}

// Attach registers a new endpoint with the given identity and message
// handler. The endpoint starts dead; call SetAlive(true) to bring it
// up. Attaching a duplicate identity is a programming error.
func (n *Network) Attach(id ids.ID, h Handler) (*Endpoint, error) {
	if id.IsNone() {
		return nil, fmt.Errorf("simnet: cannot attach the None identity")
	}
	if n.lookup(id) != nil {
		return nil, fmt.Errorf("simnet: endpoint %v already attached", id)
	}
	ep := &Endpoint{net: n, id: id, handler: h, alivePos: -1}
	if idx, ok := ids.SimIndex(id); ok {
		for len(n.bySim) <= idx {
			n.bySim = append(n.bySim, nil)
		}
		n.bySim[idx] = ep
	} else {
		if n.others == nil {
			n.others = make(map[ids.ID]*Endpoint)
		}
		n.others[id] = ep
	}
	n.order = append(n.order, ep)
	return ep, nil
}

// Alive reports whether the identified endpoint exists and is up. It
// is the experiment oracle (e.g. for counting useless pings); protocol
// code must not use it.
func (n *Network) Alive(id ids.ID) bool {
	ep := n.lookup(id)
	return ep != nil && ep.alive
}

// AliveCount returns the number of currently-alive endpoints.
func (n *Network) AliveCount() int { return len(n.alive) }

// AliveIDs returns the identities of all currently-alive endpoints,
// in attachment order.
func (n *Network) AliveIDs() []ids.ID {
	out := make([]ids.ID, 0, len(n.alive))
	for _, ep := range n.order {
		if ep.alive {
			out = append(out, ep.id)
		}
	}
	return out
}

// RandomAlive returns a uniformly random alive endpoint identity other
// than exclude, or None if there is no such endpoint. It is used as
// the bootstrap oracle for the join protocol ("Pick a random node y",
// Figure 1). One random draw against the dense alive set, regardless
// of N.
func (n *Network) RandomAlive(exclude ids.ID) ids.ID {
	count := len(n.alive)
	if ex := n.lookup(exclude); ex != nil && ex.alive {
		if count <= 1 {
			return ids.None
		}
		// Draw from the alive set with the excluded slot skipped.
		j := n.eng.Rand().Intn(count - 1)
		if j >= ex.alivePos {
			j++
		}
		return n.alive[j].id
	}
	if count == 0 {
		return ids.None
	}
	return n.alive[n.eng.Rand().Intn(count)].id
}

// Endpoint is one node's attachment point to the network.
type Endpoint struct {
	net      *Network
	id       ids.ID
	alive    bool
	alivePos int // index in net.alive while alive, -1 otherwise
	handler  Handler
	counters Counters
}

// ID returns the endpoint's identity.
func (ep *Endpoint) ID() ids.ID { return ep.id }

// Alive reports whether the endpoint is up.
func (ep *Endpoint) Alive() bool { return ep.alive }

// SetAlive brings the endpoint up or down. Messages in flight toward a
// downed endpoint are silently dropped at delivery time (crash-stop,
// Section 3).
func (ep *Endpoint) SetAlive(alive bool) {
	if ep.alive == alive {
		return
	}
	ep.alive = alive
	n := ep.net
	if alive {
		ep.alivePos = len(n.alive)
		n.alive = append(n.alive, ep)
		return
	}
	last := len(n.alive) - 1
	moved := n.alive[last]
	n.alive[ep.alivePos] = moved
	moved.alivePos = ep.alivePos
	n.alive[last] = nil
	n.alive = n.alive[:last]
	ep.alivePos = -1
}

// Counters returns a snapshot of the endpoint's traffic counters.
func (ep *Endpoint) Counters() Counters { return ep.counters }

// ResetCounters zeroes the traffic counters (used at the end of
// experiment warm-up).
func (ep *Endpoint) ResetCounters() { ep.counters = Counters{} }

// Send transmits msg of the given wire size to the identified peer.
// Sends from a dead endpoint are ignored. Delivery happens after the
// network's latency draw, iff the destination is alive at that time.
func (ep *Endpoint) Send(to ids.ID, msg any, size int) {
	if !ep.alive {
		return
	}
	ep.counters.MsgsOut++
	ep.counters.BytesOut += uint64(size)
	if dst := ep.net.lookup(to); dst == nil || !dst.alive {
		ep.counters.UselessMsgs++
		ep.counters.UselessBytes += uint64(size)
		// The message still leaves the sender's NIC; it is simply
		// never delivered.
	}
	if ep.net.loss > 0 && ep.net.eng.Rand().Float64() < ep.net.loss {
		ep.counters.Dropped++
		return
	}
	from := ep.id
	d := ep.net.latency(ep.net.eng.Rand())
	ep.net.eng.After(d, func() {
		dst := ep.net.lookup(to)
		if dst == nil || !dst.alive {
			return
		}
		dst.counters.MsgsIn++
		dst.counters.BytesIn += uint64(size)
		dst.handler(from, msg, size)
	})
}
