package simnet

import (
	"testing"
	"time"

	"avmon/internal/ids"
	"avmon/internal/sim"
)

type rec struct {
	from ids.ID
	msg  any
	size int
	at   time.Duration
}

func newPair(t *testing.T, eng *sim.Engine, opts ...Option) (*Network, *Endpoint, *Endpoint, *[]rec) {
	t.Helper()
	n, err := New(eng, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var got []rec
	a, err := n.Attach(ids.Sim(1), func(ids.ID, any, int, time.Time) {})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach(ids.Sim(2), func(from ids.ID, msg any, size int, now time.Time) {
		got = append(got, rec{from, msg, size, now.Sub(sim.Epoch)})
	})
	if err != nil {
		t.Fatal(err)
	}
	a.SetAlive(true)
	b.SetAlive(true)
	return n, a, b, &got
}

func TestDeliveryBetweenAliveNodes(t *testing.T) {
	eng := sim.New(1)
	_, a, b, got := newPair(t, eng, WithLatency(ConstantLatency(50*time.Millisecond)))
	a.Send(b.ID(), "hello", 12)
	eng.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(*got))
	}
	r := (*got)[0]
	if r.from != a.ID() || r.msg != "hello" || r.size != 12 {
		t.Errorf("got %+v", r)
	}
	if r.at != 50*time.Millisecond {
		t.Errorf("delivered at %v, want 50ms", r.at)
	}
}

func TestNoDeliveryToDeadNode(t *testing.T) {
	eng := sim.New(1)
	_, a, b, got := newPair(t, eng)
	b.SetAlive(false)
	a.Send(b.ID(), "x", 8)
	eng.Run()
	if len(*got) != 0 {
		t.Fatal("message delivered to dead node")
	}
	c := a.Counters()
	if c.UselessMsgs != 1 || c.UselessBytes != 8 {
		t.Errorf("useless counters = %d msgs / %d bytes, want 1/8", c.UselessMsgs, c.UselessBytes)
	}
	if c.BytesOut != 8 || c.MsgsOut != 1 {
		t.Errorf("outgoing still counted: got %d msgs / %d bytes, want 1/8", c.MsgsOut, c.BytesOut)
	}
}

func TestNodeDiesWhileMessageInFlight(t *testing.T) {
	eng := sim.New(1)
	_, a, b, got := newPair(t, eng, WithLatency(ConstantLatency(100*time.Millisecond)))
	a.Send(b.ID(), "x", 8)
	eng.RunFor(10 * time.Millisecond)
	b.SetAlive(false) // dies before delivery
	eng.Run()
	if len(*got) != 0 {
		t.Fatal("in-flight message delivered to node that died")
	}
	// Uselessness is decided at delivery time — the only point where
	// the destination's liveness is deterministically known to a
	// sharded scheduler — so a message whose destination died in
	// flight IS charged to the sender (it was never delivered).
	if a.Counters().UselessMsgs != 1 {
		t.Error("message undelivered due to in-flight death not counted as useless")
	}
}

func TestUndeliveredCallback(t *testing.T) {
	eng := sim.New(1)
	type miss struct {
		from *Endpoint
		to   ids.ID
		size int
	}
	var misses []miss
	_, a, b, _ := newPair(t, eng, WithUndelivered(func(from *Endpoint, to ids.ID, _ any, size int) {
		misses = append(misses, miss{from, to, size})
	}))
	a.SetTag("sender-a")
	b.SetAlive(false)
	a.Send(b.ID(), "x", 8)      // known but dead: classified at delivery
	a.Send(ids.Sim(99), "y", 4) // unknown: classified at send
	eng.Run()
	if len(misses) != 2 {
		t.Fatalf("undelivered callback fired %d times, want 2", len(misses))
	}
	for _, m := range misses {
		if m.from != a || m.from.Tag() != "sender-a" {
			t.Errorf("undelivered from = %v (tag %v), want endpoint a", m.from.ID(), m.from.Tag())
		}
	}
	if misses[0].to != ids.Sim(99) || misses[1].to != b.ID() {
		// The unknown destination is charged synchronously at send
		// time; the dead-but-known one at delivery time.
		t.Errorf("undelivered order = %v, %v", misses[0].to, misses[1].to)
	}
}

func TestSendFromDeadNodeIgnored(t *testing.T) {
	eng := sim.New(1)
	_, a, b, got := newPair(t, eng)
	a.SetAlive(false)
	a.Send(b.ID(), "x", 8)
	eng.Run()
	if len(*got) != 0 {
		t.Fatal("dead node transmitted a message")
	}
	if a.Counters().MsgsOut != 0 {
		t.Error("dead node accumulated outgoing counters")
	}
}

func TestByteAccounting(t *testing.T) {
	eng := sim.New(1)
	_, a, b, _ := newPair(t, eng)
	for i := 0; i < 5; i++ {
		a.Send(b.ID(), i, 10)
	}
	eng.Run()
	if got := a.Counters().BytesOut; got != 50 {
		t.Errorf("BytesOut = %d, want 50", got)
	}
	if got := b.Counters().BytesIn; got != 50 {
		t.Errorf("BytesIn = %d, want 50", got)
	}
	if got := b.Counters().MsgsIn; got != 5 {
		t.Errorf("MsgsIn = %d, want 5", got)
	}
	a.ResetCounters()
	if a.Counters().BytesOut != 0 {
		t.Error("ResetCounters did not zero counters")
	}
}

func TestLossInjection(t *testing.T) {
	eng := sim.New(7)
	_, a, b, got := newPair(t, eng, WithLoss(0.5))
	const total = 2000
	for i := 0; i < total; i++ {
		a.Send(b.ID(), i, 1)
	}
	eng.Run()
	delivered := len(*got)
	if delivered == 0 || delivered == total {
		t.Fatalf("delivered %d of %d with 50%% loss", delivered, total)
	}
	if frac := float64(delivered) / total; frac < 0.4 || frac > 0.6 {
		t.Errorf("delivery fraction %.3f, want ≈ 0.5", frac)
	}
	if a.Counters().Dropped == 0 {
		t.Error("Dropped counter not incremented")
	}
}

func TestAttachValidation(t *testing.T) {
	eng := sim.New(1)
	n, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(ids.None, nil); err == nil {
		t.Error("Attach(None) succeeded")
	}
	if _, err := n.Attach(ids.Sim(1), func(ids.ID, any, int, time.Time) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach(ids.Sim(1), func(ids.ID, any, int, time.Time) {}); err == nil {
		t.Error("duplicate Attach succeeded")
	}
}

func TestAliveOracle(t *testing.T) {
	eng := sim.New(1)
	n, a, b, _ := newPair(t, eng)
	if !n.Alive(a.ID()) || !n.Alive(b.ID()) {
		t.Error("alive endpoints reported dead")
	}
	b.SetAlive(false)
	if n.Alive(b.ID()) {
		t.Error("dead endpoint reported alive")
	}
	if n.Alive(ids.Sim(99)) {
		t.Error("unknown endpoint reported alive")
	}
	live := n.AliveIDs()
	if len(live) != 1 || live[0] != a.ID() {
		t.Errorf("AliveIDs = %v, want [%v]", live, a.ID())
	}
}

func TestRandomAlive(t *testing.T) {
	eng := sim.New(3)
	n, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}
	var eps []*Endpoint
	for i := 0; i < 10; i++ {
		ep, err := n.Attach(ids.Sim(i), func(ids.ID, any, int, time.Time) {})
		if err != nil {
			t.Fatal(err)
		}
		ep.SetAlive(true)
		eps = append(eps, ep)
	}
	// Excluded node never returned; all others eventually seen.
	seen := make(map[ids.ID]bool)
	for i := 0; i < 500; i++ {
		id := n.RandomAlive(ids.Sim(0))
		if id == ids.Sim(0) {
			t.Fatal("RandomAlive returned the excluded node")
		}
		if id.IsNone() {
			t.Fatal("RandomAlive returned None with alive nodes present")
		}
		seen[id] = true
	}
	if len(seen) != 9 {
		t.Errorf("RandomAlive covered %d of 9 candidates", len(seen))
	}
	// All dead: None.
	for _, ep := range eps {
		ep.SetAlive(false)
	}
	if got := n.RandomAlive(ids.None); !got.IsNone() {
		t.Errorf("RandomAlive with all dead = %v, want None", got)
	}
}

func TestUniformLatency(t *testing.T) {
	eng := sim.New(5)
	lat := UniformLatency(10*time.Millisecond, 20*time.Millisecond)
	for i := 0; i < 100; i++ {
		d := lat(eng.Rand())
		if d < 10*time.Millisecond || d >= 20*time.Millisecond {
			t.Fatalf("latency %v outside [10ms, 20ms)", d)
		}
	}
	// Degenerate and inverted ranges behave.
	if d := UniformLatency(5*time.Millisecond, 5*time.Millisecond)(eng.Rand()); d != 5*time.Millisecond {
		t.Errorf("degenerate range latency = %v", d)
	}
	if d := UniformLatency(20*time.Millisecond, 10*time.Millisecond)(eng.Rand()); d < 10*time.Millisecond || d >= 20*time.Millisecond {
		t.Errorf("inverted range latency = %v", d)
	}
}

func TestCrossLaneBound(t *testing.T) {
	// The network's half of the dynamic-lookahead contract: the bound
	// must be the latency model's provable floor past the send time.
	eng := sim.New(6)
	lat, err := NewLognormalLatency(7*time.Millisecond, 20*time.Millisecond, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(eng, WithLatencyModel(lat))
	if err != nil {
		t.Fatal(err)
	}
	for _, after := range []time.Duration{0, time.Second, time.Hour} {
		if got, want := n.CrossLaneBound(after), after+7*time.Millisecond; got != want {
			t.Errorf("CrossLaneBound(%v) = %v, want %v", after, got, want)
		}
	}
	// A sharded cluster registers exactly this bound; no latency draw
	// may ever undercut it (TestLatencyModelsNeverBelowFloor), so the
	// scheduler can widen horizons with it safely.
	for i := 0; i < 1000; i++ {
		if d := lat.Latency(ids.Sim(1), ids.Sim(2), eng.Rand()); time.Duration(0)+d < n.CrossLaneBound(0) {
			t.Fatalf("latency draw %v below CrossLaneBound(0) = %v", d, n.CrossLaneBound(0))
		}
	}
}
