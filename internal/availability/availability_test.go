package availability

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC)

func TestRawEstimate(t *testing.T) {
	r := NewRaw()
	if r.Estimate(t0) != 0 || r.Samples() != 0 {
		t.Error("empty Raw not zero")
	}
	outcomes := []bool{true, true, false, true}
	for i, up := range outcomes {
		r.Record(t0.Add(time.Duration(i)*time.Minute), up)
	}
	if got := r.Estimate(t0); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Estimate = %v, want 0.75", got)
	}
	if r.Samples() != 4 {
		t.Errorf("Samples = %d, want 4", r.Samples())
	}
}

func TestRawEstimateInRangeProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRaw()
		for i := 0; i < int(n); i++ {
			r.Record(t0, rng.Intn(2) == 0)
		}
		e := r.Estimate(t0)
		return e >= 0 && e <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecentWindowing(t *testing.T) {
	r, err := NewRecent(10 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// 5 failures early, then 5 successes later: once the failures age
	// out, the estimate becomes 1.
	for i := 0; i < 5; i++ {
		r.Record(t0.Add(time.Duration(i)*time.Minute), false)
	}
	for i := 0; i < 5; i++ {
		r.Record(t0.Add(time.Duration(20+i)*time.Minute), true)
	}
	if got := r.Estimate(t0.Add(25 * time.Minute)); got != 1 {
		t.Errorf("windowed Estimate = %v, want 1 (old failures aged out)", got)
	}
	if r.Samples() != 5 {
		t.Errorf("retained Samples = %d, want 5", r.Samples())
	}
	// All samples aged out.
	if got := r.Estimate(t0.Add(24 * time.Hour)); got != 0 {
		t.Errorf("fully-aged Estimate = %v, want 0", got)
	}
}

func TestRecentMixedWithinWindow(t *testing.T) {
	r, err := NewRecent(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.Record(t0.Add(time.Duration(i)*time.Minute), i%2 == 0)
	}
	if got := r.Estimate(t0.Add(10 * time.Minute)); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Estimate = %v, want 0.5", got)
	}
}

func TestRecentValidation(t *testing.T) {
	if _, err := NewRecent(0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewRecent(-time.Minute); err == nil {
		t.Error("negative window accepted")
	}
}

func TestAgedConvergence(t *testing.T) {
	a, err := NewAged(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate(t0) != 0 {
		t.Error("empty Aged not zero")
	}
	// Long run of ups converges to 1 from a down start.
	a.Record(t0, false)
	for i := 0; i < 200; i++ {
		a.Record(t0, true)
	}
	if got := a.Estimate(t0); got < 0.99 {
		t.Errorf("Estimate after long up-run = %v, want > 0.99", got)
	}
	if a.Samples() != 201 {
		t.Errorf("Samples = %d, want 201", a.Samples())
	}
}

func TestAgedWeightsRecentMore(t *testing.T) {
	// Same multiset of outcomes, different order: recent-heavy ups
	// must score higher than early-heavy ups.
	mk := func(outcomes []bool) float64 {
		a, err := NewAged(0.2)
		if err != nil {
			t.Fatal(err)
		}
		for _, up := range outcomes {
			a.Record(t0, up)
		}
		return a.Estimate(t0)
	}
	seq := make([]bool, 60)
	for i := 30; i < 60; i++ {
		seq[i] = true // 30 downs then 30 ups
	}
	rev := make([]bool, 60)
	for i := 0; i < 30; i++ {
		rev[i] = true // 30 ups then 30 downs
	}
	upLate := mk(seq)
	upEarly := mk(rev)
	if upLate <= upEarly {
		t.Errorf("aged store does not weight recency: late=%v early=%v", upLate, upEarly)
	}
}

func TestAgedValidation(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		if _, err := NewAged(alpha); err == nil {
			t.Errorf("alpha=%v accepted", alpha)
		}
	}
	if _, err := NewAged(1); err != nil {
		t.Errorf("alpha=1 rejected: %v", err)
	}
}

func TestNewStoreFactory(t *testing.T) {
	tests := []struct {
		style   string
		wantErr bool
	}{
		{"raw", false},
		{"recent:30m", false},
		{"aged:0.05", false},
		{"recent:bogus", true},
		{"aged:xyz", true},
		{"aged:0", true},
		{"nonsense", true},
		{"", true},
	}
	for _, tt := range tests {
		t.Run(tt.style, func(t *testing.T) {
			s, err := NewStore(tt.style)
			if tt.wantErr {
				if err == nil {
					t.Errorf("NewStore(%q) succeeded, want error", tt.style)
				}
				return
			}
			if err != nil {
				t.Fatalf("NewStore(%q): %v", tt.style, err)
			}
			s.Record(t0, true)
			if e := s.Estimate(t0); e != 1 {
				t.Errorf("fresh store estimate = %v, want 1", e)
			}
		})
	}
}

func TestAllStoresAgreeOnSteadyState(t *testing.T) {
	// Under i.i.d. Bernoulli(0.7) outcomes all three estimators should
	// land near 0.7.
	rng := rand.New(rand.NewSource(11))
	stores := map[string]Store{"raw": NewRaw()}
	rec, _ := NewRecent(time.Hour)
	stores["recent"] = rec
	aged, _ := NewAged(0.02)
	stores["aged"] = aged
	now := t0
	for i := 0; i < 5000; i++ {
		now = now.Add(time.Second)
		up := rng.Float64() < 0.7
		for _, s := range stores {
			s.Record(now, up)
		}
	}
	for name, s := range stores {
		if got := s.Estimate(now); math.Abs(got-0.7) > 0.06 {
			t.Errorf("%s estimate = %v, want ≈ 0.7", name, got)
		}
	}
}
