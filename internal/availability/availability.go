// Package availability implements availability-history maintenance —
// sub-problem II of the paper (Section 1). The paper notes that any
// history mechanism ("raw, aged, recent, etc." following Mickens &
// Noble [9]) composes orthogonally with the AVMON overlay; this
// package provides those three, all behind one Store interface, and
// the monitoring layer in internal/core accepts any of them.
package availability

import (
	"fmt"
	"time"
)

// Sample is the outcome of one monitoring ping.
type Sample struct {
	At time.Time
	Up bool
}

// Store accumulates ping outcomes for one monitored node and produces
// an availability estimate in [0, 1]. Implementations are not safe for
// concurrent use; the owning monitor serializes access.
type Store interface {
	// Record folds in one monitoring-ping outcome.
	Record(at time.Time, up bool)
	// Estimate returns the current availability estimate. now lets
	// windowed stores age out old samples.
	Estimate(now time.Time) float64
	// Samples returns the number of outcomes recorded (and, for
	// windowed stores, still retained).
	Samples() int
}

// NewStore builds a Store by style name: "raw", "recent:<duration>"
// (e.g. "recent:30m"), or "aged:<alpha>" (e.g. "aged:0.05").
func NewStore(style string) (Store, error) {
	switch {
	case style == "raw":
		return NewRaw(), nil
	case len(style) > 7 && style[:7] == "recent:":
		d, err := time.ParseDuration(style[7:])
		if err != nil {
			return nil, fmt.Errorf("availability: bad recent window: %w", err)
		}
		return NewRecent(d)
	case len(style) > 5 && style[:5] == "aged:":
		var alpha float64
		if _, err := fmt.Sscanf(style[5:], "%g", &alpha); err != nil {
			return nil, fmt.Errorf("availability: bad aged alpha: %w", err)
		}
		return NewAged(alpha)
	default:
		return nil, fmt.Errorf("availability: unknown store style %q", style)
	}
}

// Raw keeps lifetime counts: the estimate is the fraction of all
// monitoring pings ever sent that were answered. This is exactly the
// estimator used in the paper's forgetful-pinging experiment
// (Section 5.4: "the fraction of monitoring pings sent to that node
// which receive a response back").
// The counters are int32 so a Raw inlined by value (one per monitored
// target at large N) packs into 8 bytes; one sample per monitoring
// period keeps 2³¹ out of reach for any realistic horizon.
type Raw struct {
	up    int32
	total int32
}

var _ Store = (*Raw)(nil)

// NewRaw returns an empty Raw store.
func NewRaw() *Raw { return &Raw{} }

// Record implements Store.
func (r *Raw) Record(_ time.Time, up bool) {
	r.total++
	if up {
		r.up++
	}
}

// Estimate implements Store. With no samples it returns 0.
func (r *Raw) Estimate(time.Time) float64 {
	if r.total == 0 {
		return 0
	}
	return float64(r.up) / float64(r.total)
}

// Samples implements Store.
func (r *Raw) Samples() int { return int(r.total) }

// Recent keeps only samples within a sliding window and estimates
// availability over that window.
type Recent struct {
	window  time.Duration
	samples []Sample // ordered by time; pruned lazily
	up      int
}

var _ Store = (*Recent)(nil)

// NewRecent returns a windowed store with the given positive window.
func NewRecent(window time.Duration) (*Recent, error) {
	if window <= 0 {
		return nil, fmt.Errorf("availability: window must be positive, got %v", window)
	}
	return &Recent{window: window}, nil
}

// Record implements Store. Samples must arrive in non-decreasing time
// order (the monitoring loop guarantees this).
func (r *Recent) Record(at time.Time, up bool) {
	r.samples = append(r.samples, Sample{At: at, Up: up})
	if up {
		r.up++
	}
	r.prune(at)
}

func (r *Recent) prune(now time.Time) {
	cut := now.Add(-r.window)
	i := 0
	for i < len(r.samples) && r.samples[i].At.Before(cut) {
		if r.samples[i].Up {
			r.up--
		}
		i++
	}
	if i > 0 {
		r.samples = append(r.samples[:0], r.samples[i:]...)
	}
}

// Estimate implements Store.
func (r *Recent) Estimate(now time.Time) float64 {
	r.prune(now)
	if len(r.samples) == 0 {
		return 0
	}
	return float64(r.up) / float64(len(r.samples))
}

// Samples implements Store.
func (r *Recent) Samples() int { return len(r.samples) }

// Aged is an exponentially weighted moving average: each new sample s
// updates the estimate e as e = (1-alpha)·e + alpha·s. Older history
// decays geometrically, which is the "aged" style of [9].
type Aged struct {
	alpha float64
	est   float64
	n     int
}

var _ Store = (*Aged)(nil)

// NewAged returns an aged store with smoothing factor alpha in (0, 1].
func NewAged(alpha float64) (*Aged, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("availability: alpha must be in (0, 1], got %v", alpha)
	}
	return &Aged{alpha: alpha}, nil
}

// Record implements Store.
func (a *Aged) Record(_ time.Time, up bool) {
	s := 0.0
	if up {
		s = 1.0
	}
	if a.n == 0 {
		a.est = s
	} else {
		a.est = (1-a.alpha)*a.est + a.alpha*s
	}
	a.n++
}

// Estimate implements Store.
func (a *Aged) Estimate(time.Time) float64 {
	if a.n == 0 {
		return 0
	}
	return a.est
}

// Samples implements Store.
func (a *Aged) Samples() int { return a.n }
