// Package stats provides the small statistics toolkit used to produce
// every figure in the paper's evaluation: empirical CDFs, streaming
// mean/stddev, and fixed-width histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Welford accumulates a streaming mean and variance using Welford's
// algorithm. The zero value is an empty accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance (0 if fewer than 2 observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 if empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 if empty).
func (w *Welford) Max() float64 { return w.max }

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	samples []float64
	sorted  bool
}

// Add appends an observation.
func (c *CDF) Add(x float64) {
	c.samples = append(c.samples, x)
	c.sorted = false
}

// AddAll appends many observations.
func (c *CDF) AddAll(xs []float64) {
	c.samples = append(c.samples, xs...)
	c.sorted = false
}

// N returns the number of observations.
func (c *CDF) N() int { return len(c.samples) }

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// FractionBelow returns the fraction of samples ≤ x (the empirical
// CDF evaluated at x). An empty CDF yields 0.
func (c *CDF) FractionBelow(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	i := sort.SearchFloat64s(c.samples, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.samples))
}

// Percentile returns the p-th percentile (p in [0, 100]) using
// nearest-rank. An empty CDF yields 0.
func (c *CDF) Percentile(p float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	if p <= 0 {
		return c.samples[0]
	}
	if p >= 100 {
		return c.samples[len(c.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(c.samples))))
	if rank < 1 {
		rank = 1
	}
	return c.samples[rank-1]
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// Max returns the largest sample (0 if empty).
func (c *CDF) Max() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	return c.samples[len(c.samples)-1]
}

// Points returns up to n evenly spaced (x, fraction≤x) points suitable
// for plotting the CDF curve.
func (c *CDF) Points(n int) []Point {
	if len(c.samples) == 0 || n <= 0 {
		return nil
	}
	c.ensureSorted()
	lo, hi := c.samples[0], c.samples[len(c.samples)-1]
	if n == 1 || lo == hi {
		return []Point{{hi, 1}}
	}
	out := make([]Point, 0, n)
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		x := lo + float64(i)*step
		out = append(out, Point{x, c.FractionBelow(x)})
	}
	return out
}

// Point is one (x, y) plot point.
type Point struct {
	X, Y float64
}

// Histogram counts observations in fixed-width bins over [lo, hi);
// out-of-range observations land in the first/last bin.
type Histogram struct {
	lo, hi float64
	bins   []int
	n      int
}

// NewHistogram builds a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: bins must be positive, got %d", bins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: hi (%v) must exceed lo (%v)", hi, lo)
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, bins)}, nil
}

// Add folds one observation into the histogram.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
	h.n++
}

// N returns the number of observations.
func (h *Histogram) N() int { return h.n }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int { return h.bins[i] }

// Bins returns a copy of the bin counts.
func (h *Histogram) Bins() []int {
	out := make([]int, len(h.bins))
	copy(out, h.bins)
	return out
}

// FormatSeries renders plot points as two aligned columns, one point
// per line, for pasting into gnuplot or a spreadsheet.
func FormatSeries(points []Point) string {
	var sb strings.Builder
	for _, p := range points {
		fmt.Fprintf(&sb, "%g\t%g\n", p.X, p.Y)
	}
	return sb.String()
}
