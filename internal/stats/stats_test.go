package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d, want 8", w.N())
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if got := w.Stddev(); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("Stddev = %v, want %v", got, math.Sqrt(32.0/7))
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Error("empty accumulator not zero")
	}
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Var() != 0 {
		t.Errorf("single-sample Mean/Var = %v/%v", w.Mean(), w.Var())
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			w.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naive := ss / float64(n-1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Var()-naive) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFFractionBelow(t *testing.T) {
	var c CDF
	c.AddAll([]float64{1, 2, 3, 4, 5})
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.2}, {2.5, 0.4}, {5, 1}, {10, 1},
	}
	for _, tt := range tests {
		if got := c.FractionBelow(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("FractionBelow(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestCDFPercentile(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {1, 1}, {50, 50}, {93, 93}, {100, 100}, {150, 100}, {-5, 1},
	}
	for _, tt := range tests {
		if got := c.Percentile(tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.FractionBelow(5) != 0 || c.Percentile(50) != 0 || c.Mean() != 0 || c.Max() != 0 {
		t.Error("empty CDF not all-zero")
	}
	if c.Points(5) != nil {
		t.Error("empty CDF produced points")
	}
}

func TestCDFInterleavedAddAndQuery(t *testing.T) {
	var c CDF
	c.Add(10)
	if got := c.FractionBelow(10); got != 1 {
		t.Errorf("FractionBelow = %v, want 1", got)
	}
	c.Add(20) // must re-sort on next query
	if got := c.FractionBelow(10); got != 0.5 {
		t.Errorf("after second Add, FractionBelow(10) = %v, want 0.5", got)
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	var c CDF
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		c.Add(rng.Float64() * 42)
	}
	pts := c.Points(20)
	if len(pts) != 20 {
		t.Fatalf("got %d points, want 20", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatalf("points not monotone at %d: %+v then %+v", i, pts[i-1], pts[i])
		}
	}
	if last := pts[len(pts)-1].Y; last != 1 {
		t.Errorf("final CDF point y = %v, want 1", last)
	}
}

func TestCDFPointsDegenerate(t *testing.T) {
	var c CDF
	c.Add(7)
	c.Add(7)
	pts := c.Points(10)
	if len(pts) != 1 || pts[0].X != 7 || pts[0].Y != 1 {
		t.Errorf("degenerate Points = %+v", pts)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Add(x)
	}
	want := []int{3, 1, 1, 0, 2} // -3 clamps low, 42 clamps high
	got := h.Bins()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bin %d = %d, want %d (bins=%v)", i, got[i], want[i], got)
		}
	}
	if h.N() != 7 {
		t.Errorf("N = %d, want 7", h.N())
	}
	if h.Bin(0) != 3 {
		t.Errorf("Bin(0) = %d, want 3", h.Bin(0))
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(10, 0, 3); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestFormatSeries(t *testing.T) {
	s := FormatSeries([]Point{{1, 0.5}, {2.5, 1}})
	if !strings.Contains(s, "1\t0.5\n") || !strings.Contains(s, "2.5\t1\n") {
		t.Errorf("FormatSeries output:\n%s", s)
	}
	if FormatSeries(nil) != "" {
		t.Error("empty series not empty string")
	}
}
