package netstack

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"avmon/internal/core"
	"avmon/internal/ids"
)

// UDPTransport sends and receives AVMON messages over UDP. A node's
// ids.ID is its own UDP bind address, and peers are dialed by decoding
// their IDs — no lookup service required.
type UDPTransport struct {
	id   ids.ID
	conn *net.UDPConn

	mu     sync.Mutex
	closed bool

	wg sync.WaitGroup

	// Traffic counters, updated atomically so observers can scrape a
	// live transport without taking its lock. wireBytes charges the
	// paper's accounting model (Message.WireSize), not raw datagram
	// bytes, so real-deployment bandwidth is directly comparable to
	// the simulator's per-node traffic numbers.
	datagramsSent uint64
	wireBytes     uint64
	dropped       uint64 // malformed datagrams received
}

var _ core.Transport = (*UDPTransport)(nil)

// Listen binds a UDP socket for the given identity. The identity's
// IP and port must be bindable on this host (use 127.0.0.1 ports for
// local testing).
func Listen(id ids.ID) (*UDPTransport, error) {
	if id.IsNone() {
		return nil, fmt.Errorf("netstack: cannot listen on the None identity")
	}
	addr, err := net.ResolveUDPAddr("udp4", id.String())
	if err != nil {
		return nil, fmt.Errorf("netstack: resolve %v: %w", id, err)
	}
	conn, err := net.ListenUDP("udp4", addr)
	if err != nil {
		return nil, fmt.Errorf("netstack: listen %v: %w", id, err)
	}
	return &UDPTransport{id: id, conn: conn}, nil
}

// ID returns the bound identity.
func (t *UDPTransport) ID() ids.ID { return t.id }

// Send implements core.Transport: best-effort datagram delivery.
// Errors are dropped by design — the protocol treats the network as
// lossy and unresponsive peers as down.
func (t *UDPTransport) Send(to ids.ID, m *core.Message) {
	buf, err := Encode(m)
	if err != nil {
		return
	}
	a, b, c, d := to.Octets()
	dst := &net.UDPAddr{IP: net.IPv4(a, b, c, d), Port: int(to.Port())}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	if _, err := t.conn.WriteToUDP(buf, dst); err == nil {
		atomic.AddUint64(&t.datagramsSent, 1)
		atomic.AddUint64(&t.wireBytes, uint64(m.WireSize()))
	}
}

// DatagramsSent returns how many datagrams were successfully handed to
// the socket.
func (t *UDPTransport) DatagramsSent() uint64 { return atomic.LoadUint64(&t.datagramsSent) }

// WireBytesSent returns the cumulative outgoing traffic under the
// paper's byte-accounting model (Message.WireSize per datagram),
// directly comparable to the simulator's per-node BytesOut.
func (t *UDPTransport) WireBytesSent() uint64 { return atomic.LoadUint64(&t.wireBytes) }

// DroppedDatagrams returns how many received datagrams failed to
// decode and were dropped by Serve.
func (t *UDPTransport) DroppedDatagrams() uint64 { return atomic.LoadUint64(&t.dropped) }

// Serve reads datagrams and invokes handle for each valid message
// until Close is called. It runs in the caller's goroutine; most
// callers run it via `go tr.Serve(...)`. Malformed datagrams are
// counted and dropped.
func (t *UDPTransport) Serve(handle func(from ids.ID, m *core.Message)) error {
	t.wg.Add(1)
	defer t.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("netstack: read: %w", err)
		}
		m, err := Decode(buf[:n])
		if err != nil {
			// Forged or corrupt datagram: counted, then dropped.
			atomic.AddUint64(&t.dropped, 1)
			continue
		}
		handle(m.From, m)
	}
}

// Close shuts the socket down and waits for Serve to return.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	err := t.conn.Close()
	t.mu.Unlock()
	t.wg.Wait()
	return err
}
