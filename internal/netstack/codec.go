// Package netstack runs the AVMON protocol on a real network: a
// compact binary codec for core.Message and a UDP transport. A node's
// identity doubles as its UDP address, so no resolution layer is
// needed — exactly the <IP, port> identity the paper hashes.
package netstack

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"avmon/internal/core"
	"avmon/internal/ids"
)

// ErrCodec reports a malformed wire message.
var ErrCodec = errors.New("netstack: bad message")

// MaxViewEntries bounds the coarse-view payload accepted on the wire,
// protecting against memory-exhaustion from forged datagrams.
const MaxViewEntries = 4096

// validWireType reports whether t is one of the defined message
// types. Encode and Decode both enforce it, so the codec stays
// symmetric when a new type is added.
func validWireType(t core.MsgType) bool {
	return t >= core.MsgJoin && t <= core.MsgAvailBatchResp
}

// fixed layout:
//
//	offset size field
//	0      1    type
//	1      6    from
//	7      6    subject
//	13     6    u
//	19     6    v
//	25     4    weight (int32, big-endian)
//	29     8    seq
//	37     8    nonce (query correlation)
//	45     4    count (int32)
//	49     8    avail (float64 bits)
//	57     1    known
//	58     2    len(view)
//	60     2    len(ests)
//	62     6×n  view entries
//	…      9×m  est entries (8-byte avail bits + 1-byte known)
const fixedLen = 62

// estWireLen is the per-entry size of the AVAIL-BATCH-RESP estimate
// payload: float64 bits plus a strict 0/1 known flag.
const estWireLen = 9

// Encode serializes m. Only the defined message types are encodable;
// the codec is strict in both directions so Encode∘Decode is the
// identity on every accepted datagram.
func Encode(m *core.Message) ([]byte, error) {
	if !validWireType(m.Type) {
		return nil, fmt.Errorf("%w: unknown message type %d", ErrCodec, m.Type)
	}
	if len(m.View) > MaxViewEntries {
		return nil, fmt.Errorf("%w: view too large (%d entries)", ErrCodec, len(m.View))
	}
	if len(m.Avails) != len(m.Knowns) {
		return nil, fmt.Errorf("%w: %d avails vs %d knowns", ErrCodec, len(m.Avails), len(m.Knowns))
	}
	if len(m.Avails) > MaxViewEntries {
		return nil, fmt.Errorf("%w: estimate payload too large (%d entries)", ErrCodec, len(m.Avails))
	}
	if m.Weight > math.MaxInt32 || m.Weight < math.MinInt32 ||
		m.Count > math.MaxInt32 || m.Count < math.MinInt32 {
		return nil, fmt.Errorf("%w: field overflow", ErrCodec)
	}
	buf := make([]byte, 0, fixedLen+ids.WireLen*len(m.View)+estWireLen*len(m.Avails))
	buf = append(buf, byte(m.Type))
	buf = m.From.AppendWire(buf)
	buf = m.Subject.AppendWire(buf)
	buf = m.U.AppendWire(buf)
	buf = m.V.AppendWire(buf)
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(m.Weight)))
	buf = binary.BigEndian.AppendUint64(buf, m.Seq)
	buf = binary.BigEndian.AppendUint64(buf, m.Nonce)
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(m.Count)))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.Avail))
	known := byte(0)
	if m.Known {
		known = 1
	}
	buf = append(buf, known)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.View)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Avails)))
	for _, id := range m.View {
		buf = id.AppendWire(buf)
	}
	for i, av := range m.Avails {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(av))
		k := byte(0)
		if m.Knowns[i] {
			k = 1
		}
		buf = append(buf, k)
	}
	return buf, nil
}

// Decode parses a datagram produced by Encode.
func Decode(buf []byte) (*core.Message, error) {
	if len(buf) < fixedLen {
		return nil, fmt.Errorf("%w: short datagram (%d bytes)", ErrCodec, len(buf))
	}
	m := &core.Message{Type: core.MsgType(buf[0])}
	if !validWireType(m.Type) {
		return nil, fmt.Errorf("%w: unknown message type %d", ErrCodec, buf[0])
	}
	var err error
	if m.From, err = ids.FromWire(buf[1:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	if m.Subject, err = ids.FromWire(buf[7:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	if m.U, err = ids.FromWire(buf[13:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	if m.V, err = ids.FromWire(buf[19:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCodec, err)
	}
	m.Weight = int(int32(binary.BigEndian.Uint32(buf[25:])))
	m.Seq = binary.BigEndian.Uint64(buf[29:])
	m.Nonce = binary.BigEndian.Uint64(buf[37:])
	m.Count = int(int32(binary.BigEndian.Uint32(buf[45:])))
	m.Avail = math.Float64frombits(binary.BigEndian.Uint64(buf[49:]))
	switch buf[57] {
	case 0:
		m.Known = false
	case 1:
		m.Known = true
	default:
		// Strict parse: a forged flag byte must not silently
		// normalize (fuzz-found; Decode is the deployment's attack
		// surface and accepts only Encode's canonical form).
		return nil, fmt.Errorf("%w: bad known flag %d", ErrCodec, buf[57])
	}
	viewLen := int(binary.BigEndian.Uint16(buf[58:]))
	if viewLen > MaxViewEntries {
		return nil, fmt.Errorf("%w: view too large (%d entries)", ErrCodec, viewLen)
	}
	estLen := int(binary.BigEndian.Uint16(buf[60:]))
	if estLen > MaxViewEntries {
		return nil, fmt.Errorf("%w: estimate payload too large (%d entries)", ErrCodec, estLen)
	}
	if len(buf) != fixedLen+ids.WireLen*viewLen+estWireLen*estLen {
		return nil, fmt.Errorf("%w: length %d does not match view count %d + est count %d",
			ErrCodec, len(buf), viewLen, estLen)
	}
	if viewLen > 0 {
		m.View = make([]ids.ID, viewLen)
		for i := 0; i < viewLen; i++ {
			m.View[i], err = ids.FromWire(buf[fixedLen+i*ids.WireLen:])
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCodec, err)
			}
		}
	}
	if estLen > 0 {
		m.Avails = make([]float64, estLen)
		m.Knowns = make([]bool, estLen)
		base := fixedLen + ids.WireLen*viewLen
		for i := 0; i < estLen; i++ {
			off := base + i*estWireLen
			m.Avails[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
			switch buf[off+8] {
			case 0:
				m.Knowns[i] = false
			case 1:
				m.Knowns[i] = true
			default:
				return nil, fmt.Errorf("%w: bad known flag %d in estimate %d", ErrCodec, buf[off+8], i)
			}
		}
	}
	return m, nil
}
