package netstack

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"avmon/internal/core"
	"avmon/internal/ids"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		msg  core.Message
	}{
		{"join", core.Message{Type: core.MsgJoin, From: ids.Sim(1), Subject: ids.Sim(2), Weight: 17}},
		{"ping", core.Message{Type: core.MsgPing, From: ids.Sim(3), Seq: 42}},
		{"notify", core.Message{Type: core.MsgNotify, From: ids.Sim(4), U: ids.Sim(5), V: ids.Sim(6)}},
		{"cvresp", core.Message{
			Type: core.MsgCVResp, From: ids.Sim(7), Seq: 9,
			View: []ids.ID{ids.Sim(1), ids.Sim(2), ids.Sim(3)},
		}},
		{"availresp", core.Message{
			Type: core.MsgAvailResp, From: ids.Sim(8), Subject: ids.Sim(9),
			Avail: 0.875, Known: true, Seq: 11,
		}},
		{"negative weight", core.Message{Type: core.MsgJoin, From: ids.Sim(1), Weight: -3}},
		{"empty view resp", core.Message{Type: core.MsgCVResp, From: ids.Sim(1)}},
		{"nonced report req", core.Message{
			Type: core.MsgReportReq, From: ids.Sim(2), Seq: 12, Nonce: 0xABCDEF0123456789, Count: 4,
		}},
		{"batch req", core.Message{
			Type: core.MsgAvailBatchReq, From: ids.Sim(3), Seq: 13, Nonce: 99,
			View: []ids.ID{ids.Sim(4), ids.Sim(5), ids.Sim(6)},
		}},
		{"batch resp", core.Message{
			Type: core.MsgAvailBatchResp, From: ids.Sim(4), Seq: 13, Nonce: 99,
			View:   []ids.ID{ids.Sim(4), ids.Sim(5)},
			Avails: []float64{0.25, 0},
			Knowns: []bool{true, false},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			buf, err := Encode(&tt.msg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decode(buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Type != tt.msg.Type || got.From != tt.msg.From ||
				got.Subject != tt.msg.Subject || got.U != tt.msg.U || got.V != tt.msg.V ||
				got.Weight != tt.msg.Weight || got.Seq != tt.msg.Seq || got.Nonce != tt.msg.Nonce ||
				got.Count != tt.msg.Count || got.Avail != tt.msg.Avail || got.Known != tt.msg.Known {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tt.msg)
			}
			if len(got.View) != len(tt.msg.View) {
				t.Fatalf("view length %d vs %d", len(got.View), len(tt.msg.View))
			}
			for i := range got.View {
				if got.View[i] != tt.msg.View[i] {
					t.Errorf("view[%d] = %v, want %v", i, got.View[i], tt.msg.View[i])
				}
			}
			if len(got.Avails) != len(tt.msg.Avails) || len(got.Knowns) != len(tt.msg.Knowns) {
				t.Fatalf("estimate payload %d/%d vs %d/%d",
					len(got.Avails), len(got.Knowns), len(tt.msg.Avails), len(tt.msg.Knowns))
			}
			for i := range got.Avails {
				if got.Avails[i] != tt.msg.Avails[i] || got.Knowns[i] != tt.msg.Knowns[i] {
					t.Errorf("est[%d] = (%v, %v), want (%v, %v)",
						i, got.Avails[i], got.Knowns[i], tt.msg.Avails[i], tt.msg.Knowns[i])
				}
			}
		})
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(typ uint8, fromIdx, subjIdx uint16, weight int32, seq, nonce uint64, avail float64, viewN, estN uint8) bool {
		m := &core.Message{
			// The codec is strict about types: draw from the defined
			// range (MsgJoin = 1 .. MsgAvailBatchResp).
			Type:    core.MsgType(typ%uint8(core.MsgAvailBatchResp) + 1),
			From:    ids.Sim(int(fromIdx)),
			Subject: ids.Sim(int(subjIdx)),
			Weight:  int(weight),
			Seq:     seq,
			Nonce:   nonce,
			Avail:   avail,
		}
		for i := 0; i < int(viewN%32); i++ {
			m.View = append(m.View, ids.Sim(i))
		}
		for i := 0; i < int(estN%8); i++ {
			m.Avails = append(m.Avails, avail*float64(i))
			m.Knowns = append(m.Knowns, i%2 == 0)
		}
		buf, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		if got.Weight != m.Weight || got.Seq != m.Seq || got.Nonce != m.Nonce ||
			len(got.View) != len(m.View) || len(got.Avails) != len(m.Avails) {
			return false
		}
		// NaN never compares equal; compare bit patterns via re-encode.
		buf2, err := Encode(got)
		if err != nil {
			return false
		}
		if len(buf) != len(buf2) {
			return false
		}
		for i := range buf {
			if buf[i] != buf2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"short", make([]byte, 10)},
		{"truncated view", func() []byte {
			m := &core.Message{Type: core.MsgCVResp, From: ids.Sim(1), View: []ids.ID{ids.Sim(2), ids.Sim(3)}}
			b, _ := Encode(m)
			return b[:len(b)-4]
		}()},
		{"oversized view count", func() []byte {
			m := &core.Message{Type: core.MsgCVResp, From: ids.Sim(1)}
			b, _ := Encode(m)
			b[58] = 0xFF
			b[59] = 0xFF
			return b
		}()},
		{"oversized est count", func() []byte {
			m := &core.Message{Type: core.MsgAvailBatchResp, From: ids.Sim(1)}
			b, _ := Encode(m)
			b[60] = 0xFF
			b[61] = 0xFF
			return b
		}()},
		{"truncated est payload", func() []byte {
			m := &core.Message{
				Type: core.MsgAvailBatchResp, From: ids.Sim(1),
				View:   []ids.ID{ids.Sim(2)},
				Avails: []float64{0.5}, Knowns: []bool{true},
			}
			b, _ := Encode(m)
			return b[:len(b)-3]
		}()},
		{"bad est known flag", func() []byte {
			m := &core.Message{
				Type: core.MsgAvailBatchResp, From: ids.Sim(1),
				Avails: []float64{0.5}, Knowns: []bool{true},
			}
			b, _ := Encode(m)
			b[len(b)-1] = 2
			return b
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.buf); !errors.Is(err, ErrCodec) {
				t.Errorf("Decode error = %v, want ErrCodec", err)
			}
		})
	}
}

func TestEncodeRejectsOversizedView(t *testing.T) {
	m := &core.Message{Type: core.MsgCVResp, View: make([]ids.ID, MaxViewEntries+1)}
	if _, err := Encode(m); !errors.Is(err, ErrCodec) {
		t.Errorf("Encode error = %v, want ErrCodec", err)
	}
}

func TestEncodeRejectsMisalignedEstimates(t *testing.T) {
	m := &core.Message{
		Type:   core.MsgAvailBatchResp,
		Avails: []float64{0.5, 0.25},
		Knowns: []bool{true},
	}
	if _, err := Encode(m); !errors.Is(err, ErrCodec) {
		t.Errorf("Encode error = %v, want ErrCodec for avails/knowns mismatch", err)
	}
	m = &core.Message{
		Type:   core.MsgAvailBatchResp,
		Avails: make([]float64, MaxViewEntries+1),
		Knowns: make([]bool, MaxViewEntries+1),
	}
	if _, err := Encode(m); !errors.Is(err, ErrCodec) {
		t.Errorf("Encode error = %v, want ErrCodec for oversized estimate payload", err)
	}
}

func pickPorts(t *testing.T, n int) []ids.ID {
	t.Helper()
	out := make([]ids.ID, 0, n)
	base := 20000 + rand.Intn(20000)
	for i := 0; i < n; i++ {
		out = append(out, ids.MustParse(
			"127.0.0.1:"+itoa(base+i)))
	}
	return out
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}

func TestUDPDelivery(t *testing.T) {
	idsPair := pickPorts(t, 2)
	a, err := Listen(idsPair[0])
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen(idsPair[1])
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var mu sync.Mutex
	var got []*core.Message
	done := make(chan struct{}, 1)
	go func() {
		_ = b.Serve(func(from ids.ID, m *core.Message) {
			mu.Lock()
			got = append(got, m)
			mu.Unlock()
			select {
			case done <- struct{}{}:
			default:
			}
		})
	}()

	a.Send(b.ID(), &core.Message{Type: core.MsgPing, From: a.ID(), Seq: 7})
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("datagram not delivered within 3s")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Type != core.MsgPing || got[0].Seq != 7 || got[0].From != a.ID() {
		t.Errorf("received %+v", got)
	}
}

func TestUDPCloseUnblocksServe(t *testing.T) {
	id := pickPorts(t, 1)[0]
	tr, err := Listen(id)
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- tr.Serve(func(ids.ID, *core.Message) {}) }()
	time.Sleep(50 * time.Millisecond)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("Serve returned %v after Close, want nil", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	// Double Close is safe; Send after Close is a no-op.
	if err := tr.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	tr.Send(id, &core.Message{Type: core.MsgPing})
}

func TestUDPMalformedDatagramIgnored(t *testing.T) {
	pair := pickPorts(t, 2)
	rx, err := Listen(pair[0])
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := Listen(pair[1])
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	var mu sync.Mutex
	var count int
	go func() {
		_ = rx.Serve(func(ids.ID, *core.Message) {
			mu.Lock()
			count++
			mu.Unlock()
		})
	}()
	// Raw garbage straight into the socket.
	tx.mu.Lock()
	_, _ = tx.conn.WriteToUDP([]byte{1, 2, 3}, addrOf(rx.ID()))
	tx.mu.Unlock()
	// Then a valid message; only it should arrive.
	tx.Send(rx.ID(), &core.Message{Type: core.MsgPong, From: tx.ID(), Seq: 1})
	time.Sleep(300 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Errorf("handled %d messages, want 1 (garbage dropped)", count)
	}
	// The drop is counted, per Serve's documented contract.
	if got := rx.DroppedDatagrams(); got != 1 {
		t.Errorf("DroppedDatagrams() = %d, want 1", got)
	}
	if got := tx.DroppedDatagrams(); got != 0 {
		t.Errorf("sender DroppedDatagrams() = %d, want 0", got)
	}
	// The valid send was accounted under the paper's wire model.
	want := (&core.Message{Type: core.MsgPong}).WireSize()
	if tx.DatagramsSent() != 1 || tx.WireBytesSent() != uint64(want) {
		t.Errorf("sender counters = (%d datagrams, %d wire bytes), want (1, %d)",
			tx.DatagramsSent(), tx.WireBytesSent(), want)
	}
}

func addrOf(id ids.ID) *net.UDPAddr {
	a, b, c, d := id.Octets()
	return &net.UDPAddr{IP: net.IPv4(a, b, c, d), Port: int(id.Port())}
}
