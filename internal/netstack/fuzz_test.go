package netstack

import (
	"bytes"
	"testing"

	"avmon/internal/core"
	"avmon/internal/ids"
)

// fuzzSeedMessages covers every wire message type with every field
// class populated, so the fuzzer starts from structurally valid
// datagrams of each shape.
func fuzzSeedMessages() []*core.Message {
	a := ids.MustParse("10.1.2.3:4000")
	b := ids.MustParse("192.168.0.9:65535")
	c := ids.MustParse("172.16.5.5:1")
	view := []ids.ID{a, b, c}
	return []*core.Message{
		{Type: core.MsgJoin, From: a, Subject: b, Weight: 7},
		{Type: core.MsgJoin, From: a, Subject: b, Weight: -3},
		{Type: core.MsgPing, From: a, Seq: 1},
		{Type: core.MsgPong, From: b, Seq: 1},
		{Type: core.MsgCVFetch, From: a, Seq: 42},
		{Type: core.MsgCVResp, From: b, Seq: 42, View: view},
		{Type: core.MsgCVResp, From: b, Seq: 43}, // empty view
		{Type: core.MsgNotify, From: c, U: a, V: b},
		{Type: core.MsgMonPing, From: a, Seq: 9},
		{Type: core.MsgMonAck, From: b, Seq: 9},
		{Type: core.MsgPR2, From: c},
		{Type: core.MsgReportReq, From: a, Seq: 5, Nonce: 0x1122334455667788, Count: 3},
		{Type: core.MsgReportResp, From: b, Seq: 5, Nonce: 0x1122334455667788, View: view[:2]},
		{Type: core.MsgAvailReq, From: a, Subject: c, Seq: 6, Nonce: 9},
		{Type: core.MsgAvailResp, From: b, Subject: c, Seq: 6, Nonce: 9, Avail: 0.875, Known: true},
		{Type: core.MsgAvailResp, From: b, Subject: c, Seq: 7, Avail: 0, Known: false},
		{Type: core.MsgAvailBatchReq, From: a, Seq: 8, Nonce: 10, View: view},
		{Type: core.MsgAvailBatchResp, From: b, Seq: 8, Nonce: 10, View: view,
			Avails: []float64{1, 0.5, 0}, Knowns: []bool{true, true, false}},
		{Type: core.MsgAvailBatchResp, From: b, Seq: 9, Nonce: 11}, // empty batch
	}
}

// FuzzDecode hammers the wire decoder — the real deployment's attack
// surface: any host can address a datagram to an AVMON port. The
// decoder must never panic, never allocate proportionally to claimed
// (rather than actual) payload sizes, and must be the inverse of
// Encode on every datagram it accepts.
func FuzzDecode(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		buf, err := Encode(m)
		if err != nil {
			f.Fatalf("seed %v failed to encode: %v", m.Type, err)
		}
		f.Add(buf)
	}
	// Adversarial seeds: truncations, view- and estimate-length lies,
	// junk.
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add(bytes.Repeat([]byte{0xAA}, fixedLen-1))
	lie := make([]byte, fixedLen)
	lie[58], lie[59] = 0xFF, 0xFF // claims 65535 view entries, carries none
	f.Add(lie)
	estLie := make([]byte, fixedLen)
	estLie[60], estLie[61] = 0xFF, 0xFF // claims 65535 estimates, carries none
	f.Add(estLie)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			if m != nil {
				t.Fatal("Decode returned both a message and an error")
			}
			return
		}
		if len(m.View) > MaxViewEntries {
			t.Fatalf("accepted view of %d entries, cap is %d", len(m.View), MaxViewEntries)
		}
		// Round-trip: anything the decoder accepts must re-encode to
		// the identical datagram (the codec has no redundant forms).
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v (%+v)", err, m)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("round-trip mismatch:\n in: %x\nout: %x", data, re)
		}
	})
}
